/**
 * @file
 * In-memory database probing with the HashProbe PEI — the raw Ctx
 * API, without the workload framework.
 *
 * Builds a bucket-chained hash index over simulated memory and runs
 * point lookups: the PEI checks all keys of one 64-byte bucket in
 * memory and returns (match, next-bucket pointer); the host chases
 * the overflow chain, translating each virtual pointer through its
 * own TLB (paper §4.4 — memory never translates addresses).
 *
 *   ./build/examples/inmemory_db [--stats-json <path>]
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "pim/pei_op.hh"
#include "common/rng.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"

using namespace pei;

namespace
{

std::uint64_t
hashKey(std::uint64_t key)
{
    std::uint64_t x = key + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string stats_path = statsJsonPathFromArgs(argc, argv);
    System sys(SystemConfig::scaled(ExecMode::LocalityAware));
    Runtime rt(sys);

    // Build a 4K-bucket index of 16K keys functionally (setup code
    // costs no simulated time).
    constexpr std::uint64_t num_buckets = 4096;
    constexpr std::uint64_t num_keys = 16384;
    const Addr table = rt.alloc((num_buckets + num_keys) * block_size);
    std::uint64_t next_free = num_buckets; // overflow allocation cursor

    VirtualMemory &vm = sys.memory();
    for (std::uint64_t k = 1; k <= num_keys; ++k) {
        const std::uint64_t key = k * 2654435761ULL;
        Addr baddr = table + (hashKey(key) & (num_buckets - 1)) *
                                 block_size;
        while (true) {
            auto bucket = vm.read<HashBucket>(baddr);
            if (bucket.count < HashBucket::max_keys) {
                bucket.keys[bucket.count++] = key;
                vm.write(baddr, bucket);
                break;
            }
            if (bucket.next == 0) {
                bucket.next = table + next_free++ * block_size;
                vm.write(baddr, bucket);
            }
            baddr = bucket.next;
        }
    }

    // Probe with 8 interleaved lookup streams (the software
    // unrolling §5.2 uses so probes overlap in the operand buffer).
    std::uint64_t found = 0, probes = 0;
    rt.spawnThreads(8, [&](Ctx &ctx, unsigned tid, unsigned n) -> Task {
        Rng rng(tid);
        for (int i = 0; i < 4000 / static_cast<int>(n) * 8; ++i) {
            // Half the probes hit, half miss.
            const std::uint64_t key =
                rng.chance(0.5)
                    ? (1 + rng.below(num_keys)) * 2654435761ULL
                    : rng.next() | 1;
            HashProbeIn in{key};
            Addr baddr = table + (hashKey(key) & (num_buckets - 1)) *
                                     block_size;
            while (true) {
                ++probes;
                PimPacket r = co_await ctx.pei(PeiOpcode::HashProbe,
                                               baddr, &in, sizeof(in));
                if (r.output[8]) {
                    ++found;
                    break;
                }
                std::uint64_t next;
                std::memcpy(&next, r.output.data(), 8);
                if (next == 0)
                    break;
                baddr = next;
            }
        }
        co_await ctx.drain();
    });

    const auto wall_start = std::chrono::steady_clock::now();
    const Tick ticks = rt.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

    for (const auto &v : sys.stats().audit()) {
        std::fprintf(stderr, "stats audit FAILED: %s\n", v.c_str());
        return 1;
    }
    if (!stats_path.empty())
        writeRunRecords(stats_path, "inmemory_db",
                        {runRecordJson(sys, wall,
                                       "inmemory_db/Locality-Aware")});

    std::printf("inmemory_db: %llu probes (%llu matched) in %llu "
                "kiloticks\n",
                (unsigned long long)probes, (unsigned long long)found,
                (unsigned long long)(ticks / 1000));
    std::printf("  host-side / memory-side PEIs: %llu / %llu\n",
                (unsigned long long)sys.pmu().peisHost(),
                (unsigned long long)sys.pmu().peisMem());
    return found > 0 ? 0 : 1;
}
