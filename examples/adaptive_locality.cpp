/**
 * @file
 * Watching the locality monitor adapt: the same PEI loop runs over
 * working sets from 1/8x to 8x the last-level cache, and the PMU's
 * host/memory split shifts automatically — the behaviour Figure 8
 * of the paper demonstrates with growing graphs.
 *
 *   ./build/examples/adaptive_locality [--stats-json <path>]
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"

int
main(int argc, char **argv)
{
    using namespace pei;
    const std::string stats_path = statsJsonPathFromArgs(argc, argv);
    std::vector<std::string> records;

    std::printf("%-14s %10s %10s %8s %12s\n", "working set",
                "vs L3", "ticks(k)", "PIM%", "offchip(MB)");

    const std::uint64_t l3_bytes =
        SystemConfig::scaled().cache.l3_bytes;
    for (double ratio : {0.125, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        System sys(SystemConfig::scaled(ExecMode::LocalityAware));
        Runtime rt(sys);
        const auto counters = static_cast<std::uint64_t>(
            ratio * static_cast<double>(l3_bytes) / 8.0);
        const Addr array = rt.allocArray<std::uint64_t>(counters);

        rt.spawnThreads(sys.numCores(),
                        [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                            Rng rng(tid * 7919 + 13);
                            for (int i = 0; i < 15000; ++i) {
                                co_await ctx.inc64(
                                    array + 8 * rng.below(counters));
                            }
                            co_await ctx.drain();
                        });
        const auto wall_start = std::chrono::steady_clock::now();
        const Tick ticks = rt.run();
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();

        for (const auto &v : sys.stats().audit()) {
            std::fprintf(stderr, "stats audit FAILED: %s\n", v.c_str());
            return 1;
        }
        records.push_back(runRecordJson(
            sys, wall,
            "adaptive_locality/ws" + std::to_string(counters * 8)));

        const double total = static_cast<double>(sys.pmu().peisHost() +
                                                 sys.pmu().peisMem());
        std::printf("%10llu KB %9.3fx %10llu %7.1f%% %12.2f\n",
                    (unsigned long long)(counters * 8 / 1024), ratio,
                    (unsigned long long)(ticks / 1000),
                    100.0 * static_cast<double>(sys.pmu().peisMem()) /
                        total,
                    static_cast<double>(sys.mem().offChipBytes()) /
                        1e6);
    }

    std::printf("\nNo flags changed between rows: the PMU's locality "
                "monitor observes L3 accesses and PIM\nissues, and "
                "steers each PEI to the faster side on its own.\n");
    if (!stats_path.empty())
        writeRunRecords(stats_path, "adaptive_locality", records);
    return 0;
}
