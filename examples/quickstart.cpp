/**
 * @file
 * Quickstart: the smallest complete peisim program.
 *
 * Builds a simulated 16-core machine with HMC main memory, spawns
 * one thread per core, and has every thread bump shared counters
 * with the Inc64 PIM-enabled instruction.  The PMU decides per
 * operation whether to run it on the issuing core's PCU (through
 * the L1) or inside the memory cube — the program never says where.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--stats-json <path>]
 */

#include <chrono>
#include <cstdio>

#include "common/rng.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"

int
main(int argc, char **argv)
{
    using namespace pei;
    const std::string stats_path = statsJsonPathFromArgs(argc, argv);

    // A machine with locality-aware PEI execution (the paper's
    // proposal).  SystemConfig::paperBaseline() gives the exact
    // Table 2 machine; scaled() is its fast 1/16 sibling.
    System sys(SystemConfig::scaled(ExecMode::LocalityAware));
    Runtime rt(sys);

    // 64 K counters (512 KB): half the working set fits in the L3.
    constexpr std::uint64_t counters = 1 << 16;
    const Addr array = rt.allocArray<std::uint64_t>(counters);

    // Every thread increments pseudo-random counters with PEIs.
    // peiAsync returns once the operation is issued; the PMU
    // guarantees atomicity between PEIs, so no locks are needed.
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(tid);
                        for (int i = 0; i < 20000; ++i) {
                            const Addr target =
                                array + 8 * rng.below(counters);
                            co_await ctx.inc64(target);
                        }
                        co_await ctx.pfence(); // all increments visible
                        co_await ctx.drain();
                    });

    const auto wall_start = std::chrono::steady_clock::now();
    const Tick ticks = rt.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

    for (const auto &v : sys.stats().audit()) {
        std::fprintf(stderr, "stats audit FAILED: %s\n", v.c_str());
        return 1;
    }
    if (!stats_path.empty())
        writeRunRecords(stats_path, "quickstart",
                        {runRecordJson(sys, wall,
                                       "quickstart/Locality-Aware")});

    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < counters; ++i)
        total += sys.memory().read<std::uint64_t>(array + 8 * i);

    std::printf("quickstart: %llu increments in %llu ticks "
                "(%.2f us simulated)\n",
                (unsigned long long)total, (unsigned long long)ticks,
                static_cast<double>(ticks) / 4000.0);
    std::printf("  executed on host-side PCUs : %llu\n",
                (unsigned long long)sys.pmu().peisHost());
    std::printf("  offloaded to memory-side   : %llu\n",
                (unsigned long long)sys.pmu().peisMem());
    std::printf("  off-chip traffic           : %.2f MB\n",
                static_cast<double>(sys.mem().offChipBytes()) / 1e6);
    return total == 20000ull * sys.numCores() ? 0 : 1;
}
