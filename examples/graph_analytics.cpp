/**
 * @file
 * Graph analytics on PEIs: runs PageRank over a power-law (R-MAT)
 * social-network graph under all four system configurations and
 * prints the comparison — the scenario the paper's introduction
 * motivates (random 8-byte updates across a huge vertex array).
 *
 *   ./build/examples/graph_analytics [vertices] [edges]
 *                                    [--stats-json <path>]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runtime/report.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace pei;
    const std::string stats_path = statsJsonPathFromArgs(argc, argv);
    std::vector<std::string> records;

    const std::uint64_t vertices =
        argc > 1 && argv[1][0] != '-'
            ? std::strtoull(argv[1], nullptr, 10)
            : 98304;
    const std::uint64_t edges =
        argc > 2 && argv[1][0] != '-' && argv[2][0] != '-'
            ? std::strtoull(argv[2], nullptr, 10)
            : 786432;

    std::printf("PageRank on an R-MAT graph: %llu vertices, %llu "
                "edges\n\n",
                (unsigned long long)vertices, (unsigned long long)edges);
    std::printf("%-15s %12s %10s %12s %8s\n", "configuration",
                "ticks(k)", "speedup", "offchip(MB)", "PIM%");

    double base = 0.0;
    for (ExecMode mode :
         {ExecMode::IdealHost, ExecMode::HostOnly, ExecMode::PimOnly,
          ExecMode::LocalityAware}) {
        System sys(SystemConfig::scaled(mode));
        Runtime rt(sys);
        auto pr = makePageRank(vertices, edges, 42, 2);
        pr->setup(rt);
        pr->spawn(rt, sys.numCores());
        const auto wall_start = std::chrono::steady_clock::now();
        const Tick ticks = rt.run();
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();

        std::string msg;
        if (!pr->validate(sys, msg)) {
            std::fprintf(stderr, "validation failed: %s\n", msg.c_str());
            return 1;
        }
        for (const auto &v : sys.stats().audit()) {
            std::fprintf(stderr, "stats audit FAILED: %s\n", v.c_str());
            return 1;
        }
        records.push_back(runRecordJson(
            sys, wall,
            std::string("graph_analytics/") + execModeName(mode)));

        if (mode == ExecMode::IdealHost)
            base = static_cast<double>(ticks);
        const double peis = static_cast<double>(sys.pmu().peisHost() +
                                                sys.pmu().peisMem());
        std::printf("%-15s %12llu %9.3fx %12.2f %7.1f%%\n",
                    execModeName(mode),
                    (unsigned long long)(ticks / 1000),
                    base / static_cast<double>(ticks),
                    static_cast<double>(sys.mem().offChipBytes()) / 1e6,
                    peis > 0 ? 100.0 *
                                   static_cast<double>(
                                       sys.pmu().peisMem()) /
                                   peis
                             : 0.0);
    }

    std::printf("\nLocality-Aware splits the atomic double-add PEIs: "
                "hot (hub) vertices stay on the host's\ncaches, "
                "cold vertices execute inside the memory cube — no "
                "software hints required.\n");
    if (!stats_path.empty())
        writeRunRecords(stats_path, "graph_analytics", records);
    return 0;
}
