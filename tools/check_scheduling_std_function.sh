#!/usr/bin/env sh
# Fail if std::function creeps back into the scheduling paths.
#
# The event & continuation refactor replaced every scheduling/callback
# seam in src/sim, src/cache, src/mem and src/pim with inline-storage
# pei::Continuation / InlineFunction types; a std::function there
# reintroduces a heap allocation per event.  src/mem includes every
# MemoryBackend implementation (hmc, ddr, ideal and any future
# registrant), so new backends inherit the discipline automatically;
# src/energy and src/check sit downstream of backend callbacks and
# are scanned for the same reason.  Deliberately cold uses (the
# event-boundary probe hook, stats invariants) carry a
# `stdfunction-allowed:` comment on the same line or the line above.
#
# Usage: tools/check_scheduling_std_function.sh [repo-root]

set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

status=0
for dir in src/sim src/cache src/mem src/net src/pim src/coherence \
           src/energy src/check src/serve; do
    # `grep -n` per file keeps the output clickable; a match is only
    # a violation when neither its own line nor the preceding line
    # carries the stdfunction-allowed tag.
    for f in $(grep -rl 'std::function' "$dir" 2>/dev/null || true); do
        violations=$(awk '
            /stdfunction-allowed:/ { allow = NR + 1 }
            /^[[:space:]]*(\*|\/\/|\/\*)/ { next } # prose in comments
            /std::function/ && NR > allow {
                print FILENAME ":" NR ": " $0
            }
        ' "$f")
        if [ -n "$violations" ]; then
            echo "$violations"
            status=1
        fi
    done
done

if [ "$status" -ne 0 ]; then
    echo ""
    echo "error: untagged std::function on a scheduling path." >&2
    echo "Use pei::Continuation / pei::InlineFunction, or tag a" >&2
    echo "deliberately cold use with a 'stdfunction-allowed: <why>'" >&2
    echo "comment on the same or preceding line." >&2
    exit 1
fi
echo "check_scheduling_std_function: OK"
