/**
 * @file
 * Figure 12: memory-hierarchy energy of Host-Only, PIM-Only, and
 * Locality-Aware, normalized to Ideal-Host, with per-component
 * breakdown (caches, DRAM, TSV, off-chip links, PCUs, PMU).
 *
 * Paper: Locality-Aware consumes the least energy at every input
 * size; PIM-Only on small inputs inflates off-chip link energy by
 * 36% and DRAM energy by 116%; memory-side PCUs add only ~1.4% of
 * HMC energy.
 */

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::geomean;
using peibench::result;
using peibench::submit;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig12_energy");
    peibench::printHeader(
        "Figure 12", "Normalized memory-hierarchy energy "
                     "(ATF/HG/SVM)",
        "Locality-Aware lowest everywhere; PIM-Only small: +36% link, "
        "+116% DRAM energy; memory PCUs ~1.4% of HMC energy");

    const std::vector<WorkloadKind> apps = {
        WorkloadKind::ATF, WorkloadKind::HG, WorkloadKind::SVM};
    const InputSize sizes[] = {InputSize::Small, InputSize::Large};
    const ExecMode modes[] = {ExecMode::IdealHost, ExecMode::HostOnly,
                              ExecMode::PimOnly, ExecMode::LocalityAware};

    std::map<std::pair<int, int>, std::vector<RunHandle>> cells;
    for (InputSize size : sizes) {
        for (WorkloadKind kind : apps) {
            auto &cell = cells[{(int)size, (int)kind}];
            for (ExecMode mode : modes)
                cell.push_back(submit(kind, size, mode));
        }
    }
    peibench::sweepRun();

    for (InputSize size : sizes) {
        std::printf("\n--- (%s inputs; energy normalized to Ideal-Host "
                    "total) ---\n",
                    sizeName(size));
        std::printf("%-5s %-11s | %7s %7s %7s %7s %7s %7s | %7s\n",
                    "app", "config", "caches", "dram", "tsv", "link",
                    "pcu", "pmu", "total");
        std::vector<double> gm_host, gm_pim, gm_la;
        for (WorkloadKind kind : apps) {
            const auto &cell = cells[{(int)size, (int)kind}];
            if (!peibench::allOk({cell[0], cell[1], cell[2], cell[3]}))
                continue;
            const auto &ideal = result(cell[0]);
            const double base = ideal.energy.total();
            const auto row = [&](const char *name,
                                 const peibench::RunResult &r) {
                const EnergyBreakdown &e = r.energy;
                std::printf(
                    "%-5s %-11s | %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f "
                    "| %7.3f\n",
                    kindName(kind), name, e.caches / base,
                    e.dram / base, e.tsv / base, e.offchip / base,
                    e.pcu / base, e.pmu / base, e.total() / base);
                return e.total() / base;
            };
            row("ideal", ideal);
            gm_host.push_back(row("host-only", result(cell[1])));
            gm_pim.push_back(row("pim-only", result(cell[2])));
            gm_la.push_back(row("loc-aware", result(cell[3])));
        }
        if (!gm_host.empty()) {
            std::printf("GM    %-11s | %55s %7.3f\n", "host-only", "",
                        geomean(gm_host));
            std::printf("GM    %-11s | %55s %7.3f\n", "pim-only", "",
                        geomean(gm_pim));
            std::printf("GM    %-11s | %55s %7.3f\n", "loc-aware", "",
                        geomean(gm_la));
        }
    }
    return peibench::benchFinish();
}
