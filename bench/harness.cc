#include "harness.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"

namespace peibench
{

namespace
{

std::string bench_name;             ///< set by benchInit
std::string stats_json_path;        ///< "" = recording disabled
std::vector<std::string> records;   ///< stats-v2 records of all runs

} // namespace

void
benchInit(int argc, char **argv, const std::string &name)
{
    bench_name = name;
    stats_json_path = statsJsonPathFromArgs(argc, argv);
}

void
benchFinish()
{
    if (stats_json_path.empty())
        return;
    writeRunRecords(stats_json_path, bench_name, records);
    std::printf("stats-v2: wrote %zu record(s) to %s\n", records.size(),
                stats_json_path.c_str());
}

void
recordRun(System &sys, double wall_seconds, const std::string &label)
{
    // Every run ends with a stats audit: a bench over inconsistent
    // accounting is as meaningless as one over wrong results.
    const auto violations = sys.stats().audit();
    if (!violations.empty()) {
        for (const auto &v : violations)
            std::fprintf(stderr, "bench: stats audit FAILED: %s\n",
                         v.c_str());
        std::exit(1);
    }
    records.push_back(runRecordJson(sys, wall_seconds, label));
}

RunResult
runWorkload(const std::function<std::unique_ptr<Workload>()> &factory,
            ExecMode mode, const ConfigTweak &tweak, unsigned threads)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    if (tweak)
        tweak(cfg);
    System sys(cfg);
    Runtime rt(sys);

    std::unique_ptr<Workload> w = factory();
    w->setup(rt);
    w->spawn(rt, threads ? threads : sys.numCores());

    RunResult r;
    const auto wall_start = std::chrono::steady_clock::now();
    r.ticks = rt.run();
    r.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    r.events = sys.eventQueue().executedCount();

    std::string msg;
    r.valid = w->validate(sys, msg);
    if (!r.valid) {
        std::fprintf(stderr, "bench: %s validation FAILED: %s\n",
                     w->name(), msg.c_str());
        std::exit(1);
    }

    recordRun(sys, r.wall_seconds,
              std::string(w->name()) + "/" + execModeName(mode));

    r.peis_host = sys.pmu().peisHost();
    r.peis_mem = sys.pmu().peisMem();
    r.offchip_req_bytes = sys.hmc().requestBytes();
    r.offchip_res_bytes = sys.hmc().responseBytes();
    r.dram_reads = 0;
    r.dram_writes = 0;
    for (unsigned v = 0; v < sys.hmc().totalVaults(); ++v) {
        r.dram_reads += sys.hmc().vault(v).reads();
        r.dram_writes += sys.hmc().vault(v).writes();
    }
    r.retired_ops = 0;
    for (unsigned c = 0; c < sys.numCores(); ++c)
        r.retired_ops += sys.core(c).retiredOps();
    r.energy = computeEnergy(sys.stats());
    r.stats = sys.stats().snapshot();
    return r;
}

RunResult
run(WorkloadKind kind, InputSize size, ExecMode mode,
    const ConfigTweak &tweak)
{
    return runWorkload([kind, size] { return makeWorkload(kind, size); },
                       mode, tweak);
}

void
printHeader(const std::string &figure, const std::string &what,
            const std::string &paper_claim)
{
    std::printf("==================================================="
                "===========================\n");
    std::printf("%s — %s\n", figure.c_str(), what.c_str());
    std::printf("Paper: %s\n", paper_claim.c_str());
    std::printf("Config: SystemConfig::scaled() — 16 cores, 1 MB L3, "
                "1 HMC x 16 vaults, 5 GB/s/dir links\n");
    std::printf("==================================================="
                "===========================\n");
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace peibench
