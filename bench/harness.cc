#include "harness.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "driver/sweep.hh"
#include "runtime/report.hh"
#include "workloads/input_cache.hh"

namespace peibench
{

namespace
{

std::string bench_name;        ///< set by benchInit
std::string stats_json_path;   ///< "" = recording disabled
SweepOptions sweep_opts;

Sweep sweep;                        ///< submitted jobs
std::vector<RunResult> results;     ///< per submission index
SweepReport report;                 ///< filled by sweepRun

/**
 * Guards the flush state below.  Workers append to `completed` as
 * they finish; the periodic flush reads only completed slots, so it
 * never races a slot still being written by another worker.
 */
std::mutex flush_mutex;
std::vector<std::size_t> completed;
std::vector<std::string> failure_records;
bool flush_registered = false;

/** Write all completed records (submission order) + failures. */
void
flushLocked()
{
    if (stats_json_path.empty())
        return;
    std::vector<std::size_t> order = completed;
    std::sort(order.begin(), order.end());
    std::vector<std::string> records;
    records.reserve(order.size());
    for (std::size_t idx : order) {
        if (!results[idx].stats_record.empty())
            records.push_back(results[idx].stats_record);
    }
    // The hit/miss split is interleaving-independent (one miss per
    // distinct key), so the document stays deterministic for any
    // --jobs once the final atexit flush lands.
    writeRunRecords(stats_json_path, bench_name, records,
                    failure_records,
                    "\"input_cache\":" + inputCacheCountersJson());
}

void
flushAtExit()
{
    std::lock_guard<std::mutex> lock(flush_mutex);
    flushLocked();
}

RunHandle
submitJob(const std::string &label, SimJob &&sim)
{
    // --mem-backend / --coherence / --shards / --topology / --cubes /
    // --pmu-shards apply to every submitted simulation (custom jobs
    // construct their own Systems and opt in themselves).
    if (sim.mem_backend.empty())
        sim.mem_backend = sweep_opts.mem_backend;
    if (sim.coherence.empty())
        sim.coherence = sweep_opts.coherence;
    if (!sim.shards)
        sim.shards = sweep_opts.shards;
    if (sim.topology.empty())
        sim.topology = sweep_opts.topology;
    if (!sim.cubes)
        sim.cubes = sweep_opts.cubes;
    if (!sim.pmu_shards)
        sim.pmu_shards = sweep_opts.pmu_shards;
    if (!sim.pei_batch)
        sim.pei_batch = sweep_opts.pei_batch;
    if (!sim.batch_window_ticks)
        sim.batch_window_ticks = sweep_opts.batch_window_ticks;
    if (!sim.queue_depth)
        sim.queue_depth = sweep_opts.queue_depth;
    return sweep.add(label, [sim = std::move(sim)](JobCtx &ctx) {
        const std::size_t idx = ctx.index();
        results[idx] = runSimJob(sim, ctx);
        // Flush completed records every few jobs so an aborted sweep
        // still leaves a usable (partial) stats-v2 document behind.
        std::lock_guard<std::mutex> lock(flush_mutex);
        completed.push_back(idx);
        if (completed.size() % 16 == 0)
            flushLocked();
    });
}

} // namespace

void
benchInit(int argc, char **argv, const std::string &name)
{
    bench_name = name;
    stats_json_path = statsJsonPathFromArgs(argc, argv);
    sweep_opts = sweepOptionsFromArgs(argc, argv);
    if (!flush_registered) {
        std::atexit(flushAtExit);
        flush_registered = true;
    }
}

RunHandle
submit(WorkloadKind kind, InputSize size, ExecMode mode,
       const ConfigTweak &tweak)
{
    const std::string label = std::string(kindName(kind)) + "/" +
                              sizeName(size) + "/" + execModeName(mode);
    SimJob sim;
    sim.label = label;
    sim.factory = [kind, size] { return makeWorkload(kind, size); };
    sim.mode = mode;
    sim.tweak = tweak;
    return submitJob(label, std::move(sim));
}

RunHandle
submitWorkload(const std::function<std::unique_ptr<Workload>()> &factory,
               const std::string &label, ExecMode mode,
               const ConfigTweak &tweak, unsigned threads)
{
    SimJob sim;
    sim.label = label;
    sim.factory = factory;
    sim.mode = mode;
    sim.tweak = tweak;
    sim.threads = threads;
    return submitJob(label, std::move(sim));
}

RunHandle
submitCustom(const std::string &label,
             std::function<RunResult(JobCtx &)> fn)
{
    SimJob sim;
    sim.label = label;
    sim.custom = std::move(fn);
    return submitJob(label, std::move(sim));
}

void
sweepRun()
{
    if (sweep_opts.list) {
        for (const std::string &label : sweep.labels())
            std::printf("%s\n", label.c_str());
        std::exit(0);
    }

    results.assign(sweep.size(), RunResult{});
    report = sweep.run(sweep_opts);

    std::lock_guard<std::mutex> lock(flush_mutex);
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const JobOutcome &o = report.outcomes[i];
        if (o.status == JobStatus::Ok)
            continue;
        results[i].status = o.status;
        results[i].error = o.error;
        results[i].wall_seconds = o.wall_seconds;
        if (o.status != JobStatus::Skipped) {
            std::fprintf(stderr, "bench: %s: %s%s%s\n", o.label.c_str(),
                         jobStatusName(o.status),
                         o.error.empty() ? "" : ": ",
                         o.error.c_str());
            failure_records.push_back(failureRecordJson(o));
        }
    }
    flushLocked();
}

const SweepOptions &
sweepOptions()
{
    return sweep_opts;
}

const RunResult &
result(RunHandle h)
{
    fatal_if(h >= results.size(),
             "result(%zu) before sweepRun() or out of range", h);
    return results[h];
}

bool
allOk(std::initializer_list<RunHandle> hs)
{
    for (RunHandle h : hs) {
        if (!result(h).ok())
            return false;
    }
    return true;
}

int
benchFinish()
{
    {
        std::lock_guard<std::mutex> lock(flush_mutex);
        flushLocked();
        if (!stats_json_path.empty()) {
            std::printf("stats-v2: wrote %zu record(s), %zu failure "
                        "record(s) to %s\n",
                        completed.size(), failure_records.size(),
                        stats_json_path.c_str());
        }
    }

    // Hit/miss totals are interleaving-independent (one miss per
    // unique input, one access per setup), so stdout stays stable.
    const InputCacheCounters cache = inputCacheCounters();
    if (cache.hits + cache.misses) {
        std::printf("input-cache: %llu hit(s), %llu miss(es), "
                    "%llu cached input(s)\n",
                    (unsigned long long)cache.hits,
                    (unsigned long long)cache.misses,
                    (unsigned long long)cache.entries);
    }

    std::fprintf(stderr,
                 "sweep: %zu ok, %zu failed, %zu timed out, "
                 "%zu skipped in %.1fs\n",
                 report.ok, report.failed, report.timed_out,
                 report.skipped, report.wall_seconds);
    return report.clean() ? 0 : 1;
}

void
printHeader(const std::string &figure, const std::string &what,
            const std::string &paper_claim)
{
    std::printf("==================================================="
                "===========================\n");
    std::printf("%s — %s\n", figure.c_str(), what.c_str());
    std::printf("Paper: %s\n", paper_claim.c_str());
    std::printf("Config: SystemConfig::scaled() — 16 cores, 1 MB L3, "
                "1 HMC x 16 vaults, 5 GB/s/dir links\n");
    std::printf("==================================================="
                "===========================\n");
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace peibench
