/**
 * @file
 * Scale-out study (beyond the paper's single-cube evaluation):
 * PageRank speedup of Locality-Aware over Host-Only as the machine
 * grows across cores × cubes × interconnect topology (chain / ring /
 * 2D mesh, src/net/interconnect.hh).
 *
 * The paper's Figure 14 directions ("multiple HMCs connected via a
 * packet network") motivate the sweep: a daisy chain serializes every
 * cube's traffic through one link pair, while ring and mesh spread it
 * over per-hop links — visible here as per-link utilization and
 * request/response hop counts.
 *
 * Besides the table, the bench writes BENCH_scaleout.json (default at
 * the repo root; --scaleout-json overrides) with every point's
 * speedup, hop counters, and per-link flit/utilization figures in
 * submission order — byte-identical for any --jobs.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "net/topology.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

namespace
{

std::uint64_t
stat(const RunResult &r, const char *name)
{
    const auto it = r.stats.find(name);
    return it == r.stats.end() ? 0 : it->second;
}

/** One physical link's counters, pulled out of a stats snapshot. */
struct LinkPoint
{
    unsigned index = 0;
    std::uint64_t flits = 0;
    std::uint64_t busy_ticks = 0;
};

/** Every "link<N>.*" family in @p r, sorted by link index. */
std::vector<LinkPoint>
linkPoints(const RunResult &r)
{
    std::vector<LinkPoint> links;
    for (const auto &[name, value] : r.stats) {
        const char *const sfx = ".busy_ticks";
        if (name.rfind("link", 0) != 0)
            continue;
        if (name.size() <= 4 + std::strlen(sfx) ||
            name.compare(name.size() - std::strlen(sfx),
                         std::strlen(sfx), sfx) != 0) {
            continue;
        }
        const std::string digits =
            name.substr(4, name.size() - 4 - std::strlen(sfx));
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        LinkPoint lp;
        lp.index = static_cast<unsigned>(std::stoul(digits));
        lp.busy_ticks = value;
        lp.flits = stat(r, ("link" + digits + ".flits").c_str());
        links.push_back(lp);
    }
    std::sort(links.begin(), links.end(),
              [](const LinkPoint &a, const LinkPoint &b) {
                  return a.index < b.index;
              });
    return links;
}

double
utilization(const LinkPoint &lp, Tick ticks)
{
    return ticks ? static_cast<double>(lp.busy_ticks) /
                       static_cast<double>(ticks)
                 : 0.0;
}

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
pointJson(const char *topo, unsigned cubes, unsigned cores,
          const RunResult &host, const RunResult &la)
{
    const double speedup =
        la.ticks ? static_cast<double>(host.ticks) /
                       static_cast<double>(la.ticks)
                 : 0.0;
    std::string s = "{\"topology\":\"";
    s += topo;
    s += "\",\"cubes\":" + std::to_string(cubes);
    s += ",\"cores\":" + std::to_string(cores);
    s += ",\"host_ticks\":" + std::to_string(host.ticks);
    s += ",\"pim_ticks\":" + std::to_string(la.ticks);
    s += ",\"speedup\":" + fmt("%.3f", speedup);
    s += ",\"req_hops\":" + std::to_string(stat(la, "net.req_hops"));
    s += ",\"res_hops\":" + std::to_string(stat(la, "net.res_hops"));
    s += ",\"links\":[";
    bool first = true;
    for (const LinkPoint &lp : linkPoints(la)) {
        if (!first)
            s += ",";
        first = false;
        s += "{\"link\":\"link" + std::to_string(lp.index) + "\"";
        s += ",\"flits\":" + std::to_string(lp.flits);
        s += ",\"utilization\":" +
             fmt("%.6f", utilization(lp, la.ticks)) + "}";
    }
    s += "]}";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig14_scaleout");

    std::string scaleout_json = PEISIM_ROOT "/BENCH_scaleout.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scaleout-json") == 0 && i + 1 < argc)
            scaleout_json = argv[++i];
        else if (std::strncmp(argv[i], "--scaleout-json=", 16) == 0)
            scaleout_json = argv[i] + 16;
    }

    std::printf("==================================================="
                "===========================\n");
    std::printf("Scale-out study — PageRank speedup across cores x "
                "cubes x interconnect topology\n");
    std::printf("Paper: §8 names multi-HMC networks as future work; "
                "chain serializes all cubes\n");
    std::printf("through one link pair, ring/mesh spread the traffic "
                "over per-hop links\n");
    std::printf("Config: SystemConfig::scaled() base; cores, cube "
                "count, and topology swept below\n");
    std::printf("==================================================="
                "===========================\n");

    const char *const topos[] = {"chain", "ring", "mesh"};
    const unsigned cube_counts[] = {2, 8};
    const unsigned core_counts[] = {4, 16};

    struct Point
    {
        const char *topo;
        unsigned cubes;
        unsigned cores;
        RunHandle host;
        RunHandle la;
    };
    std::vector<Point> points;
    for (const char *topo : topos) {
        for (const unsigned cubes : cube_counts) {
            for (const unsigned cores : core_counts) {
                const std::string topo_s = topo;
                const auto tweak = [topo_s, cubes,
                                    cores](SystemConfig &cfg) {
                    const bool ok =
                        parseTopology(topo_s, cfg.hmc.topology);
                    fatal_if(!ok, "fig14: unknown topology '%s'",
                             topo_s.c_str());
                    cfg.hmc.num_cubes = cubes;
                    cfg.cores = cores;
                };
                const std::string stem =
                    std::string("pr/") + topo + "/c" +
                    std::to_string(cubes) + "/cores" +
                    std::to_string(cores) + "/";
                Point p;
                p.topo = topo;
                p.cubes = cubes;
                p.cores = cores;
                // Medium is the regime where Locality-Aware beats
                // Host-Only (Fig. 6), so scale-out effects show up as
                // speedup deltas rather than uniform ~1.0 ratios.
                const auto factory = [] {
                    return makeWorkload(WorkloadKind::PR,
                                        InputSize::Medium);
                };
                p.host = submitWorkload(
                    factory, stem + execModeName(ExecMode::HostOnly),
                    ExecMode::HostOnly, tweak);
                p.la = submitWorkload(
                    factory,
                    stem + execModeName(ExecMode::LocalityAware),
                    ExecMode::LocalityAware, tweak);
                points.push_back(p);
            }
        }
    }
    peibench::sweepRun();

    for (const char *topo : topos) {
        std::printf("\n--- (%s, PageRank medium, Locality-Aware vs. "
                    "Host-Only) ---\n",
                    topo);
        std::printf("%5s %5s %14s %14s %8s %9s %9s %9s\n", "cubes",
                    "cores", "host ticks", "LA ticks", "speedup",
                    "req hops", "res hops", "max util");
        for (const Point &p : points) {
            if (std::strcmp(p.topo, topo) != 0)
                continue;
            if (!peibench::allOk({p.host, p.la}))
                continue;
            const RunResult &host = result(p.host);
            const RunResult &la = result(p.la);
            double max_util = 0.0;
            for (const LinkPoint &lp : linkPoints(la))
                max_util =
                    std::max(max_util, utilization(lp, la.ticks));
            std::printf(
                "%5u %5u %14llu %14llu %8.3f %9llu %9llu %9.6f\n",
                p.cubes, p.cores,
                static_cast<unsigned long long>(host.ticks),
                static_cast<unsigned long long>(la.ticks),
                la.ticks ? static_cast<double>(host.ticks) /
                               static_cast<double>(la.ticks)
                         : 0.0,
                static_cast<unsigned long long>(
                    stat(la, "net.req_hops")),
                static_cast<unsigned long long>(
                    stat(la, "net.res_hops")),
                max_util);
        }
    }

    // The committed baseline: every point in submission order.
    // --filter'ed (skipped) points are omitted; a failed point
    // suppresses the write so a broken sweep can never silently
    // refresh the baseline.
    bool all_ok = true;
    std::string doc = "{\"bench\":\"fig14_scaleout\",\"points\":[";
    for (const Point &p : points) {
        const RunResult &host = result(p.host);
        const RunResult &la = result(p.la);
        if (host.status == JobStatus::Skipped ||
            la.status == JobStatus::Skipped) {
            continue;
        }
        if (!host.ok() || !la.ok()) {
            all_ok = false;
            continue;
        }
        if (doc.back() != '[')
            doc += ",";
        doc += "\n" + pointJson(p.topo, p.cubes, p.cores, host, la);
    }
    doc += "\n]}\n";
    // Operational note -> stderr: stdout stays byte-identical even
    // when the destination path differs between runs.
    if (all_ok) {
        std::ofstream out(scaleout_json, std::ios::trunc);
        out << doc;
        std::fprintf(stderr, "Scale-out baseline written to %s\n",
                     scaleout_json.c_str());
    } else {
        std::fprintf(stderr,
                     "Scale-out baseline NOT written (failed points).\n");
    }
    return peibench::benchFinish();
}
