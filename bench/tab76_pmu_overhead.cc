/**
 * @file
 * §7.6: performance overhead of the realistic PMU versus idealized
 * variants — an infinite zero-latency PIM directory, and a
 * zero-latency exact-tag locality monitor.
 *
 * Paper: idealizing the directory gains only 0.13%, idealizing the
 * monitor only 0.31% — the tag-less 2048-entry directory and the
 * 10-bit partial-tag monitor are effectively free.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

namespace
{

RunHandle
submitVariant(WorkloadKind kind, const char *variant,
              const ConfigTweak &tweak)
{
    const std::string label = std::string(kindName(kind)) +
                              "/medium/Locality-Aware/" + variant;
    return submitWorkload(
        [kind] { return makeWorkload(kind, InputSize::Medium); }, label,
        ExecMode::LocalityAware, tweak);
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "tab76_pmu_overhead");
    peibench::printHeader(
        "Section 7.6", "Performance overhead of the PMU "
                       "(Locality-Aware, medium inputs)",
        "ideal directory +0.13%, ideal locality monitor +0.31% — "
        "both negligible");

    struct Row
    {
        WorkloadKind kind;
        RunHandle base, ideal_dir, ideal_mon, ideal_both;
    };
    std::vector<Row> rows;
    for (WorkloadKind kind :
         {WorkloadKind::ATF, WorkloadKind::PR, WorkloadKind::HG}) {
        rows.push_back(
            {kind, submitVariant(kind, "default", nullptr),
             submitVariant(kind, "ideal-dir",
                           [](SystemConfig &cfg) {
                               cfg.pim.directory_entries = 0;
                               cfg.pim.directory_latency = 0;
                           }),
             submitVariant(kind, "ideal-mon",
                           [](SystemConfig &cfg) {
                               cfg.pim.monitor_latency = 0;
                               cfg.pim.monitor_partial_tag_bits = 30;
                           }),
             submitVariant(kind, "ideal-both", [](SystemConfig &cfg) {
                 cfg.pim.directory_entries = 0;
                 cfg.pim.directory_latency = 0;
                 cfg.pim.monitor_latency = 0;
                 cfg.pim.monitor_partial_tag_bits = 30;
             })});
    }
    peibench::sweepRun();

    std::printf("%-5s %12s %12s %12s %12s\n", "app", "default",
                "ideal-dir", "ideal-mon", "ideal-both");
    for (const Row &row : rows) {
        if (!peibench::allOk(
                {row.base, row.ideal_dir, row.ideal_mon, row.ideal_both}))
            continue;
        const auto &base = result(row.base);
        const auto gain = [&](const peibench::RunResult &r) {
            return 100.0 * (static_cast<double>(base.ticks) /
                                static_cast<double>(r.ticks) -
                            1.0);
        };
        std::printf("%-5s %12llu %+11.2f%% %+11.2f%% %+11.2f%%\n",
                    kindName(row.kind),
                    (unsigned long long)(base.ticks / 1000),
                    gain(result(row.ideal_dir)),
                    gain(result(row.ideal_mon)),
                    gain(result(row.ideal_both)));
    }
    std::printf("\n(default column in kiloticks; others show speedup "
                "from idealization — paper reports\n+0.13%% and "
                "+0.31%%, i.e. negligible.)\n");
    return peibench::benchFinish();
}
