/**
 * @file
 * §7.6: performance overhead of the realistic PMU versus idealized
 * variants — an infinite zero-latency PIM directory, and a
 * zero-latency exact-tag locality monitor.
 *
 * Paper: idealizing the directory gains only 0.13%, idealizing the
 * monitor only 0.31% — the tag-less 2048-entry directory and the
 * 10-bit partial-tag monitor are effectively free.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace pei;
using peibench::run;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "tab76_pmu_overhead");
    peibench::printHeader(
        "Section 7.6", "Performance overhead of the PMU "
                       "(Locality-Aware, medium inputs)",
        "ideal directory +0.13%, ideal locality monitor +0.31% — "
        "both negligible");

    std::printf("%-5s %12s %12s %12s %12s\n", "app", "default",
                "ideal-dir", "ideal-mon", "ideal-both");
    for (WorkloadKind kind :
         {WorkloadKind::ATF, WorkloadKind::PR, WorkloadKind::HG}) {
        const auto base =
            run(kind, InputSize::Medium, ExecMode::LocalityAware);
        const auto ideal_dir =
            run(kind, InputSize::Medium, ExecMode::LocalityAware,
                [](SystemConfig &cfg) {
                    cfg.pim.directory_entries = 0; // exact, unlimited
                    cfg.pim.directory_latency = 0;
                });
        const auto ideal_mon =
            run(kind, InputSize::Medium, ExecMode::LocalityAware,
                [](SystemConfig &cfg) {
                    cfg.pim.monitor_latency = 0;
                    cfg.pim.monitor_partial_tag_bits = 30; // exact tags
                });
        const auto ideal_both =
            run(kind, InputSize::Medium, ExecMode::LocalityAware,
                [](SystemConfig &cfg) {
                    cfg.pim.directory_entries = 0;
                    cfg.pim.directory_latency = 0;
                    cfg.pim.monitor_latency = 0;
                    cfg.pim.monitor_partial_tag_bits = 30;
                });
        const auto gain = [&](const peibench::RunResult &r) {
            return 100.0 * (static_cast<double>(base.ticks) /
                                static_cast<double>(r.ticks) -
                            1.0);
        };
        std::printf("%-5s %12llu %+11.2f%% %+11.2f%% %+11.2f%%\n",
                    kindName(kind),
                    (unsigned long long)(base.ticks / 1000),
                    gain(ideal_dir), gain(ideal_mon), gain(ideal_both));
    }
    std::printf("\n(default column in kiloticks; others show speedup "
                "from idealization — paper reports\n+0.13%% and "
                "+0.31%%, i.e. negligible.)\n");
    peibench::benchFinish();
    return 0;
}
