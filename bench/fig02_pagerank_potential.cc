/**
 * @file
 * Figure 2: performance improvement from an in-memory atomic
 * addition used for PageRank, across nine real-world graphs
 * (synthetic stand-ins at 1/32 scale, ascending vertex count).
 *
 * Paper: memory-side addition wins up to +53% on the biggest graphs
 * but loses up to -20% when the graph fits in on-chip caches — the
 * observation that motivates locality-aware execution.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "workloads/graph.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig02_pagerank_potential");
    peibench::printHeader(
        "Figure 2",
        "PageRank speedup from memory-side atomic addition, 9 graphs",
        "up to +53% on large graphs; up to -20% on cache-resident ones "
        "(e.g. p2p-Gnutella31, 50x DRAM accesses)");

    struct Row
    {
        const NamedGraphSpec *spec;
        RunHandle host, pim;
    };
    std::vector<Row> rows;
    for (const NamedGraphSpec &spec : figureGraphs()) {
        auto factory = [spec] {
            return makePageRank(spec.vertices, spec.edges, 1, 1);
        };
        const std::string base = std::string("PR/") + spec.name + "/";
        rows.push_back(
            {&spec,
             submitWorkload(factory, base + "Ideal-Host",
                            ExecMode::IdealHost),
             submitWorkload(factory, base + "PIM-Only",
                            ExecMode::PimOnly)});
    }
    peibench::sweepRun();

    std::printf("%-18s %9s %10s | %8s %8s %8s | %9s\n", "graph",
                "vertices", "edges", "host", "pim", "speedup",
                "dram_x");
    for (const Row &row : rows) {
        if (!peibench::allOk({row.host, row.pim}))
            continue;
        const auto &host = result(row.host);
        const auto &pim = result(row.pim);
        const double speedup = static_cast<double>(host.ticks) /
                               static_cast<double>(pim.ticks);
        const double dram_ratio =
            static_cast<double>(pim.dramAccesses()) /
            static_cast<double>(host.dramAccesses());
        std::printf("%-18s %9llu %10llu | %8llu %8llu %7.2fx | %8.1fx\n",
                    row.spec->name,
                    (unsigned long long)row.spec->vertices,
                    (unsigned long long)row.spec->edges,
                    (unsigned long long)(host.ticks / 1000),
                    (unsigned long long)(pim.ticks / 1000), speedup,
                    dram_ratio);
    }
    std::printf("\n(host/pim columns in kiloticks; dram_x = PIM DRAM "
                "accesses over host DRAM accesses —\n"
                "the paper reports 50x for p2p-Gnutella31.)\n");
    return peibench::benchFinish();
}
