/**
 * @file
 * Figure 13 (repo extension): request-driven serving saturation
 * sweep.  Open-loop Poisson traffic at increasing offered rates is
 * pushed through the multi-tenant serving layer (src/serve) under
 * each execution mode; the table reports achieved throughput and
 * p50/p95/p99 total latency, making the tail divergence past the
 * saturation knee visible.  Bursty (MMPP-2) and closed-loop rows
 * plus a FIFO-vs-WFQ pair round out the sweep.
 *
 * The per-point summaries are also written as a deterministic JSON
 * document (default: BENCH_serving.json at the repo root, override
 * with --serving-json PATH) so CI can diff the serving baseline the
 * same way it diffs the stats-v2 records.  Points are rendered in
 * submission order and contain no wall-clock fields, so the document
 * is byte-identical for any --jobs and at --shards=1 vs sequential.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "pim/pmu.hh"
#include "runtime/runtime.hh"
#include "serve/server.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitCustom;

namespace
{

/** Two tenants, 3:1 weighted, sharing bounded queues. */
ServeConfig
baseConfig()
{
    ServeConfig scfg;
    scfg.tenants.clear();
    TenantTraffic t0;
    t0.weight = 3.0;
    t0.arrival_share = 0.65;
    t0.queue_cap = 64;
    TenantTraffic t1;
    t1.weight = 1.0;
    t1.arrival_share = 0.35;
    t1.queue_cap = 64;
    scfg.tenants = {t0, t1};
    scfg.policy = SchedPolicy::WeightedFair;
    scfg.workers = 8;
    scfg.batch_max = 4;
    scfg.traffic.requests = 512;
    scfg.traffic.seed = 1;
    return scfg;
}

RunResult
runServe(ExecMode mode, const ServeConfig &scfg, const std::string &label,
         JobCtx &ctx)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    const SweepOptions &opts = peibench::sweepOptions();
    if (!opts.mem_backend.empty())
        cfg.mem_backend = opts.mem_backend;
    if (!opts.coherence.empty())
        cfg.pim.coherence.policy = opts.coherence;
    if (opts.shards)
        cfg.shards = opts.shards;
    System sys(cfg);
    Runtime rt(sys);
    Server server(sys, scfg);
    server.setup(rt);
    server.start(rt);

    double wall = 0.0;
    {
        WatchGuard watch(ctx, sys.eventQueue());
        const auto wall_start = std::chrono::steady_clock::now();
        rt.run();
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
    }

    std::string msg;
    if (!server.validate(sys, msg))
        throw std::runtime_error("serving validation failed: " + msg);

    RunResult r;
    collectRun(sys, r, wall, label);
    r.aux_json = "{\"label\":\"" + label + "\",\"mode\":\"" +
                 execModeName(mode) + "\",\"mem_backend\":\"" +
                 cfg.mem_backend + "\",\"summary\":" +
                 server.summaryJson() + "}";
    return r;
}

RunHandle
submitServe(ExecMode mode, const ServeConfig &scfg,
            const std::string &label)
{
    return submitCustom(label, [=](JobCtx &ctx) {
        return runServe(mode, scfg, label, ctx);
    });
}

/** Pull "key":<number> out of one aux summary (rendering only). */
double
jsonNumber(const std::string &json, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = json.find(needle);
    if (pos == std::string::npos)
        return 0.0;
    return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig13_serving");

    std::string serving_json = PEISIM_ROOT "/BENCH_serving.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serving-json") == 0 && i + 1 < argc)
            serving_json = argv[++i];
        else if (std::strncmp(argv[i], "--serving-json=", 15) == 0)
            serving_json = argv[i] + 15;
    }

    peibench::printHeader(
        "Figure 13", "Serving saturation sweep (offered load vs tail "
                     "latency per execution mode)",
        "PEI benefits carry over to request serving: locality-aware "
        "dispatch sustains higher load before the p99 knee");

    const ExecMode modes[] = {ExecMode::HostOnly, ExecMode::PimOnly,
                              ExecMode::LocalityAware};
    const double rates[] = {100, 200, 400, 800, 1600, 3200};

    struct Point
    {
        std::string label;
        RunHandle h;
    };
    std::vector<Point> points;

    for (ExecMode mode : modes) {
        for (double rate : rates) {
            ServeConfig scfg = baseConfig();
            scfg.traffic.mode = TrafficMode::OpenPoisson;
            scfg.traffic.offered_per_mtick = rate;
            const std::string label =
                std::string("poisson/") + execModeName(mode) + "/" +
                std::to_string(static_cast<int>(rate));
            points.push_back({label, submitServe(mode, scfg, label)});
        }
    }
    for (ExecMode mode : modes) {
        ServeConfig scfg = baseConfig();
        scfg.traffic.mode = TrafficMode::OpenBursty;
        scfg.traffic.offered_per_mtick = 400;
        const std::string label =
            std::string("bursty/") + execModeName(mode) + "/400";
        points.push_back({label, submitServe(mode, scfg, label)});
    }
    {
        ServeConfig scfg = baseConfig();
        scfg.traffic.mode = TrafficMode::OpenPoisson;
        scfg.traffic.offered_per_mtick = 1600;
        scfg.policy = SchedPolicy::Fifo;
        const std::string label = "poisson-fifo/loc-aware/1600";
        points.push_back(
            {label, submitServe(ExecMode::LocalityAware, scfg, label)});
    }
    {
        ServeConfig scfg = baseConfig();
        scfg.traffic.mode = TrafficMode::ClosedLoop;
        scfg.traffic.clients = 16;
        scfg.traffic.requests_per_client = 32;
        scfg.traffic.think_mean_ticks = 20'000;
        const std::string label = "closed/loc-aware/16c";
        points.push_back(
            {label, submitServe(ExecMode::LocalityAware, scfg, label)});
    }

    peibench::sweepRun();

    std::printf("%-28s | %8s %8s %5s | %9s %9s %9s\n", "point",
                "offered", "achieved", "shed", "p50", "p95", "p99");
    for (const Point &p : points) {
        if (!peibench::allOk({p.h}))
            continue;
        const std::string &aux = result(p.h).aux_json;
        const double offered = jsonNumber(aux, "offered_per_mtick");
        const double achieved = jsonNumber(aux, "achieved_per_mtick");
        const double shed = jsonNumber(aux, "shed");
        std::printf("%-28s | %8.1f %8.1f %5.0f | %9.0f %9.0f %9.0f%s\n",
                    p.label.c_str(), offered, achieved, shed,
                    jsonNumber(aux, "p50"), jsonNumber(aux, "p95"),
                    jsonNumber(aux, "p99"),
                    achieved < 0.9 * offered ? "  <- saturated" : "");
    }

    // The committed baseline: every run point's summary in submission
    // order.  --filter'ed (skipped) points are omitted; a failed or
    // timed-out point suppresses the write so a broken sweep can
    // never silently refresh the baseline.
    bool all_ok = true;
    std::string doc = "{\"bench\":\"fig13_serving\",\"points\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const RunResult &r = result(points[i].h);
        if (r.status == JobStatus::Skipped)
            continue;
        if (!r.ok()) {
            all_ok = false;
            continue;
        }
        if (doc.back() != '[')
            doc += ",";
        doc += "\n" + r.aux_json;
    }
    doc += "\n]}\n";
    // Operational note -> stderr: stdout stays byte-identical even
    // when the destination path differs between runs.
    if (all_ok) {
        std::ofstream out(serving_json, std::ios::trunc);
        out << doc;
        std::fprintf(stderr, "Serving baseline written to %s\n",
                     serving_json.c_str());
    } else {
        std::fprintf(stderr,
                     "Serving baseline NOT written (failed points).\n");
    }
    return peibench::benchFinish();
}
