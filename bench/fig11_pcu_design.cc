/**
 * @file
 * Figure 11: PCU design-space exploration under Locality-Aware —
 * (a) operand-buffer size sweep, (b) computation-logic issue-width
 * sweep.
 *
 * Paper: four operand-buffer entries capture the available PEI
 * memory-level parallelism (>30% over a single entry; no gain
 * beyond four); issue width has negligible effect because PEI
 * latency is dominated by memory access.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::run;

namespace
{

const std::vector<WorkloadKind> apps = {WorkloadKind::ATF,
                                        WorkloadKind::HG,
                                        WorkloadKind::SVM};

double
avgTicks(unsigned entries, unsigned width,
         std::vector<double> *per_app = nullptr)
{
    double sum = 0.0;
    for (WorkloadKind kind : apps) {
        const auto r = run(kind, InputSize::Medium,
                           ExecMode::LocalityAware,
                           [entries, width](SystemConfig &cfg) {
                               cfg.pim.pcu.operand_buffer_entries =
                                   entries;
                               cfg.pim.pcu.issue_width = width;
                           });
        sum += static_cast<double>(r.ticks);
        if (per_app)
            per_app->push_back(static_cast<double>(r.ticks));
    }
    return sum / static_cast<double>(apps.size());
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig11_pcu_design");
    peibench::printHeader(
        "Figure 11", "PCU design space (Locality-Aware, medium inputs; "
                     "ATF/HG/SVM average)",
        "(a) 4-entry operand buffer saturates PEI MLP (>30% over 1 "
        "entry); (b) issue width does not matter");

    std::printf("\n(a) operand buffer size (issue width 1), speedup vs "
                "default 4 entries\n");
    const double base = avgTicks(4, 1);
    for (unsigned entries : {1u, 2u, 4u, 8u, 16u}) {
        const double t = entries == 4 ? base : avgTicks(entries, 1);
        std::printf("  %2u entries : %6.3f\n", entries, base / t);
    }

    std::printf("\n(b) computation-logic issue width (4-entry buffer), "
                "speedup vs width 1\n");
    for (unsigned width : {1u, 2u, 4u}) {
        const double t = width == 1 ? base : avgTicks(4, width);
        std::printf("  width %u    : %6.3f\n", width, base / t);
    }
    peibench::benchFinish();
    return 0;
}
