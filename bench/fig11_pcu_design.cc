/**
 * @file
 * Figure 11: PCU design-space exploration under Locality-Aware —
 * (a) operand-buffer size sweep, (b) computation-logic issue-width
 * sweep.
 *
 * Paper: four operand-buffer entries capture the available PEI
 * memory-level parallelism (>30% over a single entry; no gain
 * beyond four); issue width has negligible effect because PEI
 * latency is dominated by memory access.
 */

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

namespace
{

const std::vector<WorkloadKind> apps = {WorkloadKind::ATF,
                                        WorkloadKind::HG,
                                        WorkloadKind::SVM};

/// Handles of the three app runs for one (entries, width) point.
std::map<std::pair<unsigned, unsigned>, std::vector<RunHandle>> points;

void
submitPoint(unsigned entries, unsigned width)
{
    auto &handles = points[{entries, width}];
    if (!handles.empty())
        return;
    for (WorkloadKind kind : apps) {
        const std::string label =
            std::string(kindName(kind)) + "/medium/Locality-Aware/buf" +
            std::to_string(entries) + "/w" + std::to_string(width);
        handles.push_back(submitWorkload(
            [kind] { return makeWorkload(kind, InputSize::Medium); },
            label, ExecMode::LocalityAware,
            [entries, width](SystemConfig &cfg) {
                cfg.pim.pcu.operand_buffer_entries = entries;
                cfg.pim.pcu.issue_width = width;
            }));
    }
}

/** Average ticks across the three apps; 0 when any run is not ok. */
double
avgTicks(unsigned entries, unsigned width)
{
    const auto &handles = points[{entries, width}];
    double sum = 0.0;
    for (RunHandle h : handles) {
        if (!result(h).ok())
            return 0.0;
        sum += static_cast<double>(result(h).ticks);
    }
    return sum / static_cast<double>(apps.size());
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig11_pcu_design");
    peibench::printHeader(
        "Figure 11", "PCU design space (Locality-Aware, medium inputs; "
                     "ATF/HG/SVM average)",
        "(a) 4-entry operand buffer saturates PEI MLP (>30% over 1 "
        "entry); (b) issue width does not matter");

    for (unsigned entries : {1u, 2u, 4u, 8u, 16u})
        submitPoint(entries, 1);
    for (unsigned width : {2u, 4u})
        submitPoint(4, width);
    peibench::sweepRun();

    const double base = avgTicks(4, 1);
    std::printf("\n(a) operand buffer size (issue width 1), speedup vs "
                "default 4 entries\n");
    for (unsigned entries : {1u, 2u, 4u, 8u, 16u}) {
        const double t = avgTicks(entries, 1);
        if (base > 0.0 && t > 0.0)
            std::printf("  %2u entries : %6.3f\n", entries, base / t);
    }

    std::printf("\n(b) computation-logic issue width (4-entry buffer), "
                "speedup vs width 1\n");
    for (unsigned width : {1u, 2u, 4u}) {
        const double t = avgTicks(4, width);
        if (base > 0.0 && t > 0.0)
            std::printf("  width %u    : %6.3f\n", width, base / t);
    }
    return peibench::benchFinish();
}
