/**
 * @file
 * Batched-dispatch study (beyond the paper's per-operation PEI
 * dispatch): Average Teenage Follower under PIM-Only as the PMU batching window
 * (`--pei-batch`) and the memory-side PCU issue-queue depth
 * (`--queue-depth`) grow.
 *
 * Every memory-bound PEI normally crosses the off-chip link as its
 * own request packet (head flit + operand flits).  The batching
 * window coalesces same-vault PEIs into packet trains that share one
 * header and one coherence action, so the request-side flit count
 * drops as the batch limit rises — the effect this bench quantifies.
 *
 * Besides the table, the bench writes BENCH_batching.json (default at
 * the repo root; --batching-json overrides) with every point's
 * throughput, train, and flit figures in submission order —
 * byte-identical for any --jobs.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

namespace
{

std::uint64_t
stat(const RunResult &r, const char *name)
{
    const auto it = r.stats.find(name);
    return it == r.stats.end() ? 0 : it->second;
}

/** Sum of every physical "link<N>.flits" counter in @p r. */
std::uint64_t
linkFlits(const RunResult &r)
{
    std::uint64_t flits = 0;
    for (const auto &[name, value] : r.stats) {
        const char *const sfx = ".flits";
        if (name.rfind("link", 0) != 0)
            continue;
        if (name.size() <= 4 + std::strlen(sfx) ||
            name.compare(name.size() - std::strlen(sfx),
                         std::strlen(sfx), sfx) != 0) {
            continue;
        }
        const std::string digits =
            name.substr(4, name.size() - 4 - std::strlen(sfx));
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        flits += value;
    }
    return flits;
}

double
peisPerSecond(const RunResult &r)
{
    return r.ticks ? static_cast<double>(stat(r, "pmu.peis_issued")) *
                         static_cast<double>(ticks_per_second) /
                         static_cast<double>(r.ticks)
                   : 0.0;
}

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
pointJson(unsigned batch, unsigned qd, const RunResult &r,
          std::uint64_t base_link_flits)
{
    const std::uint64_t flits = linkFlits(r);
    std::string s = "{\"batch\":" + std::to_string(batch);
    s += ",\"queue_depth\":" + std::to_string(qd);
    s += ",\"ticks\":" + std::to_string(r.ticks);
    s += ",\"peis\":" + std::to_string(stat(r, "pmu.peis_issued"));
    s += ",\"peis_per_s\":" + fmt("%.0f", peisPerSecond(r));
    s += ",\"trains\":" + std::to_string(stat(r, "pmu.pei_trains"));
    s += ",\"batched_peis\":" +
         std::to_string(stat(r, "pmu.batched_peis"));
    s += ",\"req_flits\":" + std::to_string(stat(r, "net.req.flits"));
    s += ",\"link_flits\":" + std::to_string(flits);
    s += ",\"link_flit_reduction\":" +
         fmt("%.3f", base_link_flits
                         ? 1.0 - static_cast<double>(flits) /
                                     static_cast<double>(base_link_flits)
                         : 0.0);
    s += "}";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig15_batching");

    std::string batching_json = PEISIM_ROOT "/BENCH_batching.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batching-json") == 0 && i + 1 < argc)
            batching_json = argv[++i];
        else if (std::strncmp(argv[i], "--batching-json=", 16) == 0)
            batching_json = argv[i] + 16;
    }

    std::printf("==================================================="
                "===========================\n");
    std::printf("Batched dispatch study — ATF (PIM-Only) across "
                "PMU batch limit x PCU queue depth\n");
    std::printf("Extension: per-op dispatch sends one request packet "
                "per PEI; the batching window\n");
    std::printf("coalesces same-vault PEIs into trains sharing one "
                "header flit and one coherence act\n");
    std::printf("Config: SystemConfig::scaled() base; --pei-batch and "
                "--queue-depth swept below\n");
    std::printf("==================================================="
                "===========================\n");

    const unsigned batches[] = {1, 4, 8};
    const unsigned queue_depths[] = {0, 8};

    struct Point
    {
        unsigned batch;
        unsigned qd;
        RunHandle run;
    };
    std::vector<Point> points;
    for (const unsigned batch : batches) {
        for (const unsigned qd : queue_depths) {
            const auto tweak = [batch, qd](SystemConfig &cfg) {
                cfg.pim.pei_batch = batch;
                cfg.pim.pcu.issue_queue_depth = qd;
            };
            // PIM-Only sends every PEI to the memory side, so the
            // window sees the densest same-vault arrival stream the
            // workload can produce — the regime batching targets.
            const auto factory = [] {
                return makeWorkload(WorkloadKind::ATF, InputSize::Medium);
            };
            const std::string label = "atf/batch" + std::to_string(batch) +
                                      "/qd" + std::to_string(qd);
            points.push_back(
                {batch, qd,
                 submitWorkload(factory, label, ExecMode::PimOnly,
                                tweak)});
        }
    }
    peibench::sweepRun();

    // The batch=1/qd=0 point is the per-op dispatch baseline every
    // reduction figure is computed against.
    std::uint64_t base_link_flits = 0;
    for (const Point &p : points) {
        if (p.batch == 1 && p.qd == 0 && result(p.run).ok())
            base_link_flits = linkFlits(result(p.run));
    }

    std::printf("\n%5s %3s %14s %12s %8s %8s %10s %10s %7s\n", "batch",
                "qd", "ticks", "PEIs/s", "trains", "batched",
                "req flits", "link flits", "reduc");
    for (const Point &p : points) {
        if (!peibench::allOk({p.run}))
            continue;
        const RunResult &r = result(p.run);
        const std::uint64_t flits = linkFlits(r);
        std::printf(
            "%5u %3u %14llu %12.3e %8llu %8llu %10llu %10llu %6.1f%%\n",
            p.batch, p.qd, static_cast<unsigned long long>(r.ticks),
            peisPerSecond(r),
            static_cast<unsigned long long>(stat(r, "pmu.pei_trains")),
            static_cast<unsigned long long>(stat(r, "pmu.batched_peis")),
            static_cast<unsigned long long>(stat(r, "net.req.flits")),
            static_cast<unsigned long long>(flits),
            base_link_flits
                ? 100.0 * (1.0 - static_cast<double>(flits) /
                                     static_cast<double>(base_link_flits))
                : 0.0);
    }

    // The committed baseline: every point in submission order.
    // --filter'ed (skipped) points are omitted; a failed point
    // suppresses the write so a broken sweep can never silently
    // refresh the baseline.
    bool all_ok = true;
    std::string doc = "{\"bench\":\"fig15_batching\",\"points\":[";
    for (const Point &p : points) {
        const RunResult &r = result(p.run);
        if (r.status == JobStatus::Skipped)
            continue;
        if (!r.ok()) {
            all_ok = false;
            continue;
        }
        if (doc.back() != '[')
            doc += ",";
        doc += "\n" + pointJson(p.batch, p.qd, r, base_link_flits);
    }
    doc += "\n]}\n";
    // Operational note -> stderr: stdout stays byte-identical even
    // when the destination path differs between runs.
    if (all_ok) {
        std::ofstream out(batching_json, std::ios::trunc);
        out << doc;
        std::fprintf(stderr, "Batching baseline written to %s\n",
                     batching_json.c_str());
    } else {
        std::fprintf(stderr,
                     "Batching baseline NOT written (failed points).\n");
    }
    return peibench::benchFinish();
}
