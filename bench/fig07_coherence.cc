/**
 * @file
 * Coherence-policy companion to Figure 7: off-chip *coherence*
 * traffic of the eager per-offload mechanism (the paper's Fig. 5
 * step ③ back-invalidations/back-writebacks) vs. the LazyPIM-style
 * speculative policy (coherence/lazy.hh), per workload and execution
 * mode.
 *
 * LazyPIM's claim: batching offloads under compressed signatures
 * amortizes the per-offload coherence handshake, cutting coherence-
 * attributable link flits even after paying for signature transfer
 * and occasional rollback re-execution.  Architectural results are
 * unchanged either way (both policies are timing/traffic models over
 * the same functional execution), so every run still validates.
 *
 * Besides the table, the bench writes BENCH_coherence.json (default
 * at the repo root; --coherence-json overrides) with every point's
 * coherence counters in submission order — the committed baseline
 * the docs reference.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submit;

namespace
{

/** A stats counter, or 0 when the policy did not register it. */
std::uint64_t
stat(const RunResult &r, const char *name)
{
    const auto it = r.stats.find(name);
    return it == r.stats.end() ? 0 : it->second;
}

std::string
pointJson(const char *workload, const char *mode, const char *policy,
          const RunResult &r)
{
    std::string s = "{\"workload\":\"";
    s += workload;
    s += "\",\"mode\":\"";
    s += mode;
    s += "\",\"policy\":\"";
    s += policy;
    s += "\",\"coh_flits\":" + std::to_string(stat(r, "coh.offchip_flits"));
    s += ",\"coh_actions\":" + std::to_string(stat(r, "coh.actions"));
    s += ",\"peis_mem\":" + std::to_string(r.peis_mem);
    s += ",\"commits\":" + std::to_string(stat(r, "coh.commits"));
    s += ",\"conflicts\":" + std::to_string(stat(r, "coh.conflicts"));
    s += ",\"sig_false_positives\":" +
         std::to_string(stat(r, "coh.sig_false_positives"));
    s += ",\"rollbacks\":" + std::to_string(stat(r, "coh.rollbacks"));
    s += ",\"offchip_bytes\":" + std::to_string(r.offchipBytes());
    s += "}";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig07_coherence");

    std::string coherence_json = PEISIM_ROOT "/BENCH_coherence.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--coherence-json") == 0 && i + 1 < argc)
            coherence_json = argv[++i];
        else if (std::strncmp(argv[i], "--coherence-json=", 17) == 0)
            coherence_json = argv[i] + 17;
    }

    peibench::printHeader(
        "Figure 7b", "Off-chip coherence flits, eager vs. lazy "
                     "(speculative) policy",
        "batched signatures amortize the per-offload coherence "
        "handshake: lazy moves fewer coherence flits than eager on "
        "offload-heavy workloads");

    const WorkloadKind kinds[] = {WorkloadKind::PR, WorkloadKind::HJ,
                                  WorkloadKind::ATF, WorkloadKind::SC};
    const ExecMode modes[] = {ExecMode::PimOnly, ExecMode::LocalityAware};
    const char *const policies[] = {"eager", "lazy"};

    // cells[mode][kind][policy] in submission order.
    std::map<std::pair<int, int>, std::pair<RunHandle, RunHandle>> cells;
    std::vector<std::pair<std::string, RunHandle>> points;
    for (ExecMode mode : modes) {
        for (WorkloadKind kind : kinds) {
            RunHandle hs[2];
            for (int p = 0; p < 2; ++p) {
                const std::string policy = policies[p];
                hs[p] = submit(kind, InputSize::Small, mode,
                               [policy](SystemConfig &cfg) {
                                   cfg.pim.coherence.policy = policy;
                               });
                points.push_back({std::string(kindName(kind)) + "/" +
                                      execModeName(mode) + "/" + policy,
                                  hs[p]});
            }
            cells[{(int)mode, (int)kind}] = {hs[0], hs[1]};
        }
    }
    peibench::sweepRun();

    for (ExecMode mode : modes) {
        std::printf("\n--- (%s, small inputs, coherence-attributable "
                    "link flits) ---\n",
                    execModeName(mode));
        std::printf("%-5s %12s %12s %8s | %8s %10s %9s\n", "app",
                    "eager", "lazy", "ratio", "commits", "conflicts",
                    "rollbacks");
        for (WorkloadKind kind : kinds) {
            const auto &cell = cells[{(int)mode, (int)kind}];
            if (!peibench::allOk({cell.first, cell.second}))
                continue;
            const RunResult &eager = result(cell.first);
            const RunResult &lazy = result(cell.second);
            const double ef =
                static_cast<double>(stat(eager, "coh.offchip_flits"));
            const double lf =
                static_cast<double>(stat(lazy, "coh.offchip_flits"));
            std::printf("%-5s %12.0f %12.0f %8.2f | %8llu %10llu "
                        "%9llu\n",
                        kindName(kind), ef, lf, ef > 0 ? lf / ef : 0.0,
                        static_cast<unsigned long long>(
                            stat(lazy, "coh.commits")),
                        static_cast<unsigned long long>(
                            stat(lazy, "coh.conflicts")),
                        static_cast<unsigned long long>(
                            stat(lazy, "coh.rollbacks")));
        }
    }

    // The committed baseline: every point's coherence counters in
    // submission order.  --filter'ed (skipped) points are omitted; a
    // failed point suppresses the write so a broken sweep can never
    // silently refresh the baseline.
    bool all_ok = true;
    std::string doc = "{\"bench\":\"fig07_coherence\",\"points\":[";
    for (const auto &[label, h] : points) {
        const RunResult &r = result(h);
        if (r.status == JobStatus::Skipped)
            continue;
        if (!r.ok()) {
            all_ok = false;
            continue;
        }
        const std::size_t slash1 = label.find('/');
        const std::size_t slash2 = label.rfind('/');
        if (doc.back() != '[')
            doc += ",";
        doc += "\n" +
               pointJson(label.substr(0, slash1).c_str(),
                         label.substr(slash1 + 1, slash2 - slash1 - 1)
                             .c_str(),
                         label.substr(slash2 + 1).c_str(), r);
    }
    doc += "\n]}\n";
    // Operational note -> stderr: stdout stays byte-identical even
    // when the destination path differs between runs.
    if (all_ok) {
        std::ofstream out(coherence_json, std::ios::trunc);
        out << doc;
        std::fprintf(stderr, "Coherence baseline written to %s\n",
                     coherence_json.c_str());
    } else {
        std::fprintf(stderr,
                     "Coherence baseline NOT written (failed points).\n");
    }
    return peibench::benchFinish();
}
