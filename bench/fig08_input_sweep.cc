/**
 * @file
 * Figure 8: PageRank performance across the nine Fig. 2 graphs for
 * Host-Only, PIM-Only, and Locality-Aware, plus the fraction of
 * PEIs Locality-Aware executes memory-side ("PIM %").
 *
 * Paper: Locality-Aware shifts gradually from host-side execution
 * (0.3% offloaded on soc-Slashdot0811) to memory-side execution
 * (87% on cit-Patents) as the input grows, tracking or beating the
 * better of the two static configurations throughout.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "workloads/graph.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig08_input_sweep");
    peibench::printHeader(
        "Figure 8", "PageRank with different graph sizes",
        "Locality-Aware PIM%% grows 0.3%% -> 87%% with graph size and "
        "its speedup tracks max(Host-Only, PIM-Only)");

    // --backend-sweep adds a memory-backend axis: Locality-Aware
    // re-run per graph on every alternative backend.  Opt-in so the
    // default figure (and its --list labels) stay unchanged.
    bool backend_sweep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--backend-sweep") == 0)
            backend_sweep = true;
    }
    static const char *const kAltBackends[] = {"ddr", "ideal"};

    struct Row
    {
        const NamedGraphSpec *spec;
        RunHandle host, pim, la;
        std::vector<RunHandle> la_alt; ///< per kAltBackends entry
    };
    std::vector<Row> rows;
    for (const NamedGraphSpec &spec : figureGraphs()) {
        auto factory = [spec] {
            return makePageRank(spec.vertices, spec.edges, 1, 1);
        };
        const std::string base = std::string("PR/") + spec.name + "/";
        rows.push_back({&spec,
                        submitWorkload(factory, base + "Host-Only",
                                       ExecMode::HostOnly),
                        submitWorkload(factory, base + "PIM-Only",
                                       ExecMode::PimOnly),
                        submitWorkload(factory, base + "Locality-Aware",
                                       ExecMode::LocalityAware),
                        {}});
        if (backend_sweep) {
            for (const char *b : kAltBackends) {
                rows.back().la_alt.push_back(submitWorkload(
                    factory, base + "Locality-Aware@" + b,
                    ExecMode::LocalityAware, [b](SystemConfig &cfg) {
                        cfg.mem_backend = b;
                        cfg.ddr.channels = cfg.hmc.vaults_per_cube;
                        cfg.ideal_mem.pim_units =
                            cfg.hmc.vaults_per_cube;
                    }));
            }
        }
    }
    peibench::sweepRun();

    std::printf("%-18s %9s | %9s %9s %9s | %6s\n", "graph", "vertices",
                "host-only", "pim-only", "loc-aware", "PIM%");
    for (const Row &row : rows) {
        if (!peibench::allOk({row.host, row.pim, row.la}))
            continue;
        const auto &host = result(row.host);
        const auto &pim = result(row.pim);
        const auto &la = result(row.la);
        const auto speed = [&](const peibench::RunResult &r) {
            return static_cast<double>(host.ticks) /
                   static_cast<double>(r.ticks);
        };
        std::printf("%-18s %9llu | %9.3f %9.3f %9.3f | %5.1f%%\n",
                    row.spec->name,
                    (unsigned long long)row.spec->vertices, 1.0,
                    speed(pim), speed(la), 100.0 * la.pimFraction());
    }
    std::printf("\n(speedups normalized to Host-Only.)\n");

    if (backend_sweep) {
        std::printf("\nLocality-Aware across memory backends "
                    "(speedup vs Host-Only on hmc)\n");
        std::printf("%-18s | %9s %9s %9s\n", "graph", "hmc", "ddr",
                    "ideal");
        for (const Row &row : rows) {
            if (!peibench::allOk({row.host, row.la}))
                continue;
            const auto &host = result(row.host);
            const auto speed = [&](const peibench::RunResult &r) {
                return static_cast<double>(host.ticks) /
                       static_cast<double>(r.ticks);
            };
            std::printf("%-18s | %9.3f", row.spec->name,
                        speed(result(row.la)));
            for (RunHandle h : row.la_alt) {
                if (result(h).ok())
                    std::printf(" %9.3f", speed(result(h)));
                else
                    std::printf(" %9s", "-");
            }
            std::printf("\n");
        }
        std::printf("(ddr has no PIM units: Locality-Aware degrades "
                    "to host-side execution.)\n");
    }
    return peibench::benchFinish();
}
