/**
 * @file
 * Figure 8: PageRank performance across the nine Fig. 2 graphs for
 * Host-Only, PIM-Only, and Locality-Aware, plus the fraction of
 * PEIs Locality-Aware executes memory-side ("PIM %").
 *
 * Paper: Locality-Aware shifts gradually from host-side execution
 * (0.3% offloaded on soc-Slashdot0811) to memory-side execution
 * (87% on cit-Patents) as the input grows, tracking or beating the
 * better of the two static configurations throughout.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "workloads/graph.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitWorkload;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig08_input_sweep");
    peibench::printHeader(
        "Figure 8", "PageRank with different graph sizes",
        "Locality-Aware PIM%% grows 0.3%% -> 87%% with graph size and "
        "its speedup tracks max(Host-Only, PIM-Only)");

    struct Row
    {
        const NamedGraphSpec *spec;
        RunHandle host, pim, la;
    };
    std::vector<Row> rows;
    for (const NamedGraphSpec &spec : figureGraphs()) {
        auto factory = [spec] {
            return makePageRank(spec.vertices, spec.edges, 1, 1);
        };
        const std::string base = std::string("PR/") + spec.name + "/";
        rows.push_back({&spec,
                        submitWorkload(factory, base + "Host-Only",
                                       ExecMode::HostOnly),
                        submitWorkload(factory, base + "PIM-Only",
                                       ExecMode::PimOnly),
                        submitWorkload(factory, base + "Locality-Aware",
                                       ExecMode::LocalityAware)});
    }
    peibench::sweepRun();

    std::printf("%-18s %9s | %9s %9s %9s | %6s\n", "graph", "vertices",
                "host-only", "pim-only", "loc-aware", "PIM%");
    for (const Row &row : rows) {
        if (!peibench::allOk({row.host, row.pim, row.la}))
            continue;
        const auto &host = result(row.host);
        const auto &pim = result(row.pim);
        const auto &la = result(row.la);
        const auto speed = [&](const peibench::RunResult &r) {
            return static_cast<double>(host.ticks) /
                   static_cast<double>(r.ticks);
        };
        std::printf("%-18s %9llu | %9.3f %9.3f %9.3f | %5.1f%%\n",
                    row.spec->name,
                    (unsigned long long)row.spec->vertices, 1.0,
                    speed(pim), speed(la), 100.0 * la.pimFraction());
    }
    std::printf("\n(speedups normalized to Host-Only.)\n");
    return peibench::benchFinish();
}
