/**
 * @file
 * Figure 7: total off-chip transfer of PIM-Only, normalized to
 * host-side execution, for small and large inputs.
 *
 * Paper: PIM-Only greatly reduces off-chip traffic for large inputs
 * (computation stays in memory, only results cross the links), but
 * *increases* it dramatically for small, cache-resident inputs — up
 * to 502x for SC.
 *
 * Host-Only's traffic equals Ideal-Host's (PEIs travel the same
 * cache path either way), so Host-Only serves as the normalization
 * base, halving the bench's run count.
 */

#include <cstdio>
#include <map>
#include <utility>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submit;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig07_offchip_traffic");
    peibench::printHeader(
        "Figure 7", "Normalized amount of off-chip transfer",
        "large: PIM-Only well below 1.0; small: far above 1.0 "
        "(up to 502x in SC)");

    const InputSize sizes[] = {InputSize::Small, InputSize::Large};
    std::map<std::pair<int, int>, std::pair<RunHandle, RunHandle>> cells;
    for (InputSize size : sizes) {
        for (WorkloadKind kind : allWorkloadKinds()) {
            cells[{(int)size, (int)kind}] = {
                submit(kind, size, ExecMode::HostOnly),
                submit(kind, size, ExecMode::PimOnly)};
        }
    }
    peibench::sweepRun();

    for (InputSize size : sizes) {
        std::printf("\n--- (%s inputs, bytes normalized to host-side "
                    "execution) ---\n",
                    sizeName(size));
        std::printf("%-5s %12s | %10s | %10s %10s\n", "app", "host(MB)",
                    "pim-only", "pim req/res MB", "");
        for (WorkloadKind kind : allWorkloadKinds()) {
            const auto &cell = cells[{(int)size, (int)kind}];
            if (!peibench::allOk({cell.first, cell.second}))
                continue;
            const auto &host = result(cell.first);
            const auto &pim = result(cell.second);
            std::printf("%-5s %12.2f | %10.2f | %8.1f %8.1f\n",
                        kindName(kind),
                        static_cast<double>(host.offchipBytes()) / 1e6,
                        static_cast<double>(pim.offchipBytes()) /
                            static_cast<double>(host.offchipBytes()),
                        static_cast<double>(pim.offchip_req_bytes) / 1e6,
                        static_cast<double>(pim.offchip_res_bytes) / 1e6);
        }
    }
    return peibench::benchFinish();
}
