/**
 * @file
 * Figure 7: total off-chip transfer of PIM-Only, normalized to
 * host-side execution, for small and large inputs.
 *
 * Paper: PIM-Only greatly reduces off-chip traffic for large inputs
 * (computation stays in memory, only results cross the links), but
 * *increases* it dramatically for small, cache-resident inputs — up
 * to 502x for SC.
 *
 * Host-Only's traffic equals Ideal-Host's (PEIs travel the same
 * cache path either way), so Host-Only serves as the normalization
 * base, halving the bench's run count.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace pei;
using peibench::run;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig07_offchip_traffic");
    peibench::printHeader(
        "Figure 7", "Normalized amount of off-chip transfer",
        "large: PIM-Only well below 1.0; small: far above 1.0 "
        "(up to 502x in SC)");

    for (InputSize size : {InputSize::Small, InputSize::Large}) {
        std::printf("\n--- (%s inputs, bytes normalized to host-side "
                    "execution) ---\n",
                    sizeName(size));
        std::printf("%-5s %12s | %10s | %10s %10s\n", "app", "host(MB)",
                    "pim-only", "pim req/res MB", "");
        for (WorkloadKind kind : allWorkloadKinds()) {
            const auto host = run(kind, size, ExecMode::HostOnly);
            const auto pim = run(kind, size, ExecMode::PimOnly);
            std::printf("%-5s %12.2f | %10.2f | %8.1f %8.1f\n",
                        kindName(kind),
                        static_cast<double>(host.offchipBytes()) / 1e6,
                        static_cast<double>(pim.offchipBytes()) /
                            static_cast<double>(host.offchipBytes()),
                        static_cast<double>(pim.offchip_req_bytes) / 1e6,
                        static_cast<double>(pim.offchip_res_bytes) / 1e6);
        }
    }
    peibench::benchFinish();
    return 0;
}
