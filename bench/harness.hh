/**
 * @file
 * Shared bench harness: runs one workload on one system
 * configuration and collects the metrics the paper's figures plot
 * (runtime, off-chip traffic split by direction, DRAM accesses,
 * PEI placement, throughput, energy).
 *
 * Every bench binary regenerates one table or figure of the paper;
 * it prints the paper's claim next to the measured rows so the
 * comparison is auditable from the raw output.
 */

#ifndef PEISIM_BENCH_HARNESS_HH
#define PEISIM_BENCH_HARNESS_HH

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "energy/energy_model.hh"
#include "workloads/workload.hh"

namespace peibench
{

using namespace pei;

/** Metrics of one simulation run. */
struct RunResult
{
    Tick ticks = 0;
    std::uint64_t peis_host = 0;
    std::uint64_t peis_mem = 0;
    std::uint64_t offchip_req_bytes = 0;
    std::uint64_t offchip_res_bytes = 0;
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writes = 0;
    std::uint64_t retired_ops = 0;
    bool valid = false;
    EnergyBreakdown energy;
    std::map<std::string, std::uint64_t> stats;

    std::uint64_t offchipBytes() const
    {
        return offchip_req_bytes + offchip_res_bytes;
    }

    std::uint64_t dramAccesses() const { return dram_reads + dram_writes; }

    double pimFraction() const
    {
        const double total =
            static_cast<double>(peis_host) + static_cast<double>(peis_mem);
        return total > 0 ? static_cast<double>(peis_mem) / total : 0.0;
    }

    /** Sum-of-IPCs proxy: retired ops per tick (×1000 for scale). */
    double
    opsPerKilotick() const
    {
        return ticks ? 1000.0 * static_cast<double>(retired_ops) /
                           static_cast<double>(ticks)
                     : 0.0;
    }
};

/** Hook to tweak the SystemConfig before construction. */
using ConfigTweak = std::function<void(SystemConfig &)>;

/**
 * Run @p workload (freshly constructed by @p factory) under @p mode
 * on the scaled configuration.  Validates the output and aborts the
 * bench on mismatch — a bench over wrong results is meaningless.
 */
RunResult runWorkload(const std::function<std::unique_ptr<Workload>()>
                          &factory,
                      ExecMode mode, const ConfigTweak &tweak = nullptr,
                      unsigned threads = 0);

/** Shorthand for the Table 3 workloads. */
RunResult run(WorkloadKind kind, InputSize size, ExecMode mode,
              const ConfigTweak &tweak = nullptr);

/** Print the standard bench header. */
void printHeader(const std::string &figure, const std::string &what,
                 const std::string &paper_claim);

/** Geometric mean helper. */
double geomean(const std::vector<double> &xs);

} // namespace peibench

#endif // PEISIM_BENCH_HARNESS_HH
