/**
 * @file
 * Shared bench harness, sweep edition: benches *submit* every
 * simulation they need as a labelled job, run the whole set across a
 * worker pool (`--jobs N`, per-job `--timeout-s`, `--filter`,
 * `--list`), then render their tables from the collected results.
 *
 * Every bench binary regenerates one table or figure of the paper;
 * it prints the paper's claim next to the measured rows so the
 * comparison is auditable from the raw output.  Rendering happens
 * strictly after the sweep, from results keyed by submission index,
 * so stdout is byte-identical regardless of worker count.
 */

#ifndef PEISIM_BENCH_HARNESS_HH
#define PEISIM_BENCH_HARNESS_HH

#include <cstdio>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "driver/options.hh"
#include "driver/sim_job.hh"
#include "workloads/workload.hh"

namespace peibench
{

using namespace pei;

/** Index of a submitted run; pass to result() after sweepRun(). */
using RunHandle = std::size_t;

/**
 * Parse harness-level flags (`--stats-json`, `--jobs`, `--timeout-s`,
 * `--filter`, `--list`, `--no-progress`), name the bench, and
 * register the atexit stats flush.  Call first thing in main().
 */
void benchInit(int argc, char **argv, const std::string &name);

/**
 * Queue one Table 3 workload run, labelled "<kind>/<size>/<mode>".
 */
RunHandle submit(WorkloadKind kind, InputSize size, ExecMode mode,
                 const ConfigTweak &tweak = nullptr);

/** Queue a run of the workload returned by @p factory. */
RunHandle submitWorkload(
    const std::function<std::unique_ptr<Workload>()> &factory,
    const std::string &label, ExecMode mode,
    const ConfigTweak &tweak = nullptr, unsigned threads = 0);

/**
 * Queue a fully custom job (e.g. two workloads sharing one System).
 * @p fn runs inside a worker: it must guard its EventQueue with
 * WatchGuard (for timeouts) and fill the result via collectRun.
 */
RunHandle submitCustom(const std::string &label,
                       std::function<RunResult(JobCtx &)> fn);

/**
 * Execute every submitted job.  Under `--list`, print one label per
 * line and exit(0) instead.  Call between submission and rendering.
 */
void sweepRun();

/** Result of a submitted run (valid only after sweepRun()). */
const RunResult &result(RunHandle h);

/**
 * The harness-level sweep options parsed by benchInit().  Custom
 * jobs construct their own Systems, so `--mem-backend` / `--shards`
 * are not applied to them automatically — they read the options here
 * and opt in themselves.
 */
const SweepOptions &sweepOptions();

/** True when every listed run completed Ok — use to guard a row. */
bool allOk(std::initializer_list<RunHandle> hs);

/**
 * Flush stats-v2 records + failure records to the `--stats-json`
 * path, print the sweep summary, and return the process exit code
 * (0 clean, 1 when any job failed or timed out).  Call last thing
 * in main(): `return peibench::benchFinish();`.
 */
int benchFinish();

/** Print the standard bench header. */
void printHeader(const std::string &figure, const std::string &what,
                 const std::string &paper_claim);

/** Geometric mean helper. */
double geomean(const std::vector<double> &xs);

} // namespace peibench

#endif // PEISIM_BENCH_HARNESS_HH
