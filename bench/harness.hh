/**
 * @file
 * Shared bench harness: runs one workload on one system
 * configuration and collects the metrics the paper's figures plot
 * (runtime, off-chip traffic split by direction, DRAM accesses,
 * PEI placement, throughput, energy).
 *
 * Every bench binary regenerates one table or figure of the paper;
 * it prints the paper's claim next to the measured rows so the
 * comparison is auditable from the raw output.
 */

#ifndef PEISIM_BENCH_HARNESS_HH
#define PEISIM_BENCH_HARNESS_HH

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "energy/energy_model.hh"
#include "workloads/workload.hh"

namespace peibench
{

using namespace pei;

/** Metrics of one simulation run. */
struct RunResult
{
    Tick ticks = 0;
    std::uint64_t peis_host = 0;
    std::uint64_t peis_mem = 0;
    std::uint64_t offchip_req_bytes = 0;
    std::uint64_t offchip_res_bytes = 0;
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writes = 0;
    std::uint64_t retired_ops = 0;
    std::uint64_t events = 0;    ///< simulator events executed
    double wall_seconds = 0.0;   ///< host wall-clock time of the run
    bool valid = false;
    EnergyBreakdown energy;
    std::map<std::string, std::uint64_t> stats;

    std::uint64_t offchipBytes() const
    {
        return offchip_req_bytes + offchip_res_bytes;
    }

    std::uint64_t dramAccesses() const { return dram_reads + dram_writes; }

    double pimFraction() const
    {
        const double total =
            static_cast<double>(peis_host) + static_cast<double>(peis_mem);
        return total > 0 ? static_cast<double>(peis_mem) / total : 0.0;
    }

    /** Sum-of-IPCs proxy: retired ops per tick (×1000 for scale). */
    double
    opsPerKilotick() const
    {
        return ticks ? 1000.0 * static_cast<double>(retired_ops) /
                           static_cast<double>(ticks)
                     : 0.0;
    }
};

/** Hook to tweak the SystemConfig before construction. */
using ConfigTweak = std::function<void(SystemConfig &)>;

/**
 * Parse harness-level flags (`--stats-json <path>`) and name the
 * bench.  Call first thing in main().
 */
void benchInit(int argc, char **argv, const std::string &name);

/**
 * Flush the stats-v2 records of every run since benchInit to the
 * `--stats-json` path (no-op when the flag was absent).  Call last
 * thing in main().
 */
void benchFinish();

/**
 * Audit @p sys's stats (aborting the bench on any violation) and
 * append a stats-v2 run record labelled @p label.  runWorkload calls
 * this automatically; benches that drive Runtime themselves call it
 * once per simulation.
 */
void recordRun(System &sys, double wall_seconds, const std::string &label);

/**
 * Run @p workload (freshly constructed by @p factory) under @p mode
 * on the scaled configuration.  Validates the output and aborts the
 * bench on mismatch — a bench over wrong results is meaningless.
 */
RunResult runWorkload(const std::function<std::unique_ptr<Workload>()>
                          &factory,
                      ExecMode mode, const ConfigTweak &tweak = nullptr,
                      unsigned threads = 0);

/** Shorthand for the Table 3 workloads. */
RunResult run(WorkloadKind kind, InputSize size, ExecMode mode,
              const ConfigTweak &tweak = nullptr);

/** Print the standard bench header. */
void printHeader(const std::string &figure, const std::string &what,
                 const std::string &paper_claim);

/** Geometric mean helper. */
double geomean(const std::vector<double> &xs);

} // namespace peibench

#endif // PEISIM_BENCH_HARNESS_HH
