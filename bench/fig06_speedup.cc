/**
 * @file
 * Figure 6: speedup comparison of Host-Only, PIM-Only, and
 * Locality-Aware (normalized to Ideal-Host) for all ten workloads
 * under small/medium/large input sets.
 *
 * Paper: for large inputs PIM-Only gains ~44% (GM) over Ideal-Host;
 * for small inputs it *loses* ~20% while Host-Only matches
 * Ideal-Host; Locality-Aware tracks the better of the two everywhere
 * and beats both on medium graph inputs (~12%/11% over
 * Host-/PIM-Only) by splitting PEIs between host and memory.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::geomean;
using peibench::result;
using peibench::submit;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig06_speedup");
    peibench::printHeader(
        "Figure 6", "Speedup under different input sizes (vs Ideal-Host)",
        "large: PIM-Only +44% GM, Locality-Aware +47% over Host-Only; "
        "small: PIM-Only -20%, Locality-Aware ~ Host-Only; medium "
        "graphs: Locality-Aware beats both");

    const InputSize sizes[] = {InputSize::Small, InputSize::Medium,
                               InputSize::Large};
    const ExecMode modes[] = {ExecMode::IdealHost, ExecMode::HostOnly,
                              ExecMode::PimOnly, ExecMode::LocalityAware};
    std::map<std::pair<int, int>, std::vector<RunHandle>> cells;
    for (InputSize size : sizes) {
        for (WorkloadKind kind : allWorkloadKinds()) {
            auto &cell = cells[{(int)size, (int)kind}];
            for (ExecMode mode : modes)
                cell.push_back(submit(kind, size, mode));
        }
    }
    peibench::sweepRun();

    for (InputSize size : sizes) {
        std::printf("\n--- (%s inputs) ---\n", sizeName(size));
        std::printf("%-5s %10s %10s %10s %10s | %6s\n", "app",
                    "ideal", "host-only", "pim-only", "loc-aware",
                    "PIM%%");
        std::vector<double> gm_host, gm_pim, gm_la;
        for (WorkloadKind kind : allWorkloadKinds()) {
            const auto &cell = cells[{(int)size, (int)kind}];
            if (!peibench::allOk({cell[0], cell[1], cell[2], cell[3]}))
                continue;
            const auto &ideal = result(cell[0]);
            const auto &host = result(cell[1]);
            const auto &pim = result(cell[2]);
            const auto &la = result(cell[3]);

            const auto speed = [&](const peibench::RunResult &r) {
                return static_cast<double>(ideal.ticks) /
                       static_cast<double>(r.ticks);
            };
            gm_host.push_back(speed(host));
            gm_pim.push_back(speed(pim));
            gm_la.push_back(speed(la));
            std::printf("%-5s %10.3f %10.3f %10.3f %10.3f | %5.1f%%\n",
                        kindName(kind), 1.0, speed(host), speed(pim),
                        speed(la), 100.0 * la.pimFraction());
        }
        if (!gm_host.empty()) {
            std::printf("%-5s %10.3f %10.3f %10.3f %10.3f |\n", "GM",
                        1.0, geomean(gm_host), geomean(gm_pim),
                        geomean(gm_la));
        }
    }
    std::printf("\n(PIM%% = fraction of PEIs Locality-Aware offloads "
                "to memory-side PCUs; paper: 79%% for\nlarge inputs, "
                "14%% for small inputs.)\n");
    return peibench::benchFinish();
}
