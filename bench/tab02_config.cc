/**
 * @file
 * Table 2: baseline simulation configuration — printed from the
 * SystemConfig structs the simulator is actually built from, for
 * both the paper-faithful baseline and the scaled bench config.
 */

#include <cstdio>
#include <string>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "net/topology.hh"

using namespace pei;

namespace
{

/** Table descriptor of the off-chip interconnect ("daisy-chained"
 *  for chain, byte-identical to the pre-topology table). */
std::string
linkArrangement(const HmcConfig &hmc)
{
    switch (hmc.topology) {
      case Topology::Chain:
        return "daisy-chained";
      case Topology::Ring:
        return "bidirectional ring";
      case Topology::Mesh: {
        const unsigned cols = meshCols(hmc.num_cubes);
        const unsigned rows =
            hmc.num_cubes ? (hmc.num_cubes + cols - 1) / cols : 1;
        return std::to_string(cols) + "x" + std::to_string(rows) +
               " mesh";
      }
    }
    return "daisy-chained";
}

void
show(const char *title, const SystemConfig &cfg)
{
    std::printf("--- %s ---\n", title);
    std::printf("Cores            : %u out-of-order, 4 GHz, window %u, "
                "%u-entry TLB\n",
                cfg.cores, cfg.core.window, cfg.core.tlb_entries);
    std::printf("L1 D-cache       : private, %llu KB, %u-way, 64 B "
                "blocks, %u MSHRs\n",
                (unsigned long long)cfg.cache.l1_bytes >> 10,
                cfg.cache.l1_ways, cfg.cache.core_mshrs);
    std::printf("L2 cache         : private, %llu KB, %u-way\n",
                (unsigned long long)cfg.cache.l2_bytes >> 10,
                cfg.cache.l2_ways);
    std::printf("L3 cache         : shared, %llu MB, %u-way, %u MSHRs\n",
                (unsigned long long)cfg.cache.l3_bytes >> 20,
                cfg.cache.l3_ways, cfg.cache.l3_mshrs);
    std::printf("Main memory      : %u HMC(s), %u vaults/cube, "
                "%u banks/vault\n",
                cfg.hmc.num_cubes, cfg.hmc.vaults_per_cube,
                cfg.hmc.dram.banks_per_vault);
    std::printf("DRAM timing      : FR-FCFS, tCL=tRCD=tRP=%.2f ns\n",
                cfg.hmc.dram.tCL_ns);
    std::printf("Vertical links   : %.0f GB/s per vault (64 TSVs x "
                "2 Gb/s)\n",
                cfg.hmc.dram.tsv_gbps);
    std::printf("Off-chip links   : %.1f GB/s per direction, %s\n",
                cfg.hmc.link.gbps,
                linkArrangement(cfg.hmc).c_str());
    std::printf("Host PCUs        : %u (one per core), %u-entry operand "
                "buffer, width %u, 4 GHz\n",
                cfg.cores, cfg.pim.pcu.operand_buffer_entries,
                cfg.pim.pcu.issue_width);
    std::printf("Memory PCUs      : %u (one per vault), same buffer, "
                "2 GHz\n",
                cfg.hmc.num_cubes * cfg.hmc.vaults_per_cube);
    std::printf("PIM directory    : %u entries, %llu-cycle access\n",
                cfg.pim.directory_entries,
                (unsigned long long)cfg.pim.directory_latency);
    // Off-default only: the unsharded table stays byte-identical.
    if (cfg.pim.pmu_shards > 1) {
        std::printf("PMU banks        : %u address-interleaved "
                    "directory+monitor bank pairs\n",
                    cfg.pim.pmu_shards);
    }
    // Off-default only: the unbatched table stays byte-identical.
    if (cfg.pim.pei_batch > 1) {
        std::printf("PEI batching     : per-vault windows, up to %u "
                    "PEIs/train, %llu-tick flush timeout\n",
                    cfg.pim.pei_batch,
                    (unsigned long long)(cfg.pim.batch_window_ticks
                                             ? cfg.pim.batch_window_ticks
                                             : 256));
    }
    if (cfg.pim.pcu.issue_queue_depth > 0) {
        std::printf("PCU issue queues : %u-entry bounded decode queue "
                    "per memory PCU, 1 decode/PCU clock\n",
                    cfg.pim.pcu.issue_queue_depth);
    }
    std::printf("Locality monitor : mirrors L3 tag array (%llu sets x "
                "%u ways), %u-bit partial tags, %llu-cycle access\n\n",
                (unsigned long long)(cfg.cache.l3_bytes / 64 /
                                     cfg.cache.l3_ways),
                cfg.cache.l3_ways, cfg.pim.monitor_partial_tag_bits,
                (unsigned long long)cfg.pim.monitor_latency);
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "tab02_config");
    peibench::printHeader("Table 2", "Baseline Simulation Configuration",
                          "16 OoO cores, 32 KB/256 KB/16 MB caches, "
                          "8 HMCs (32 GB), 80 GB/s full-duplex chain");
    // --topology / --cubes / --pmu-shards / --pei-batch /
    // --batch-window-ticks / --queue-depth preview the table of a
    // swept configuration (the plain table is byte-identical).
    const SweepOptions &sopt = peibench::sweepOptions();
    const auto apply = [&sopt](SystemConfig cfg) {
        if (!sopt.topology.empty()) {
            const bool ok = parseTopology(sopt.topology, cfg.hmc.topology);
            fatal_if(!ok, "tab02: unknown topology '%s'",
                     sopt.topology.c_str());
        }
        if (sopt.cubes)
            cfg.hmc.num_cubes = sopt.cubes;
        if (sopt.pmu_shards)
            cfg.pim.pmu_shards = sopt.pmu_shards;
        if (sopt.pei_batch)
            cfg.pim.pei_batch = sopt.pei_batch;
        if (sopt.batch_window_ticks)
            cfg.pim.batch_window_ticks = sopt.batch_window_ticks;
        if (sopt.queue_depth)
            cfg.pim.pcu.issue_queue_depth = sopt.queue_depth;
        return cfg;
    };
    show("paperBaseline() — Table 2 as published",
         apply(SystemConfig::paperBaseline()));
    show("scaled() — bench configuration (1/16 caches, 1 cube, "
         "bandwidth ratio preserved)",
         apply(SystemConfig::scaled()));
    return peibench::benchFinish();
}
