/**
 * @file
 * Figure 9: multiprogrammed workloads — pairs of applications with
 * randomly chosen input sizes, each spawning eight threads on its
 * own half of the cores.  Metric: system throughput (sum-of-IPC
 * proxy: retired operations per kilotick), normalized to Host-Only.
 *
 * Paper: across 200 random pairs, Locality-Aware outperforms both
 * Host-Only and PIM-Only for the overwhelming majority of mixes —
 * per-cache-block locality tracking works even when applications
 * with different locality behaviour share the machine.  (We run a
 * reduced deterministic sample of pairs to keep the bench fast;
 * sizes are drawn from small/medium.)
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/harness.hh"
#include "common/rng.hh"
#include "runtime/runtime.hh"

using namespace pei;

namespace
{

double
runPair(WorkloadKind ka, InputSize sa, WorkloadKind kb, InputSize sb,
        ExecMode mode)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    System sys(cfg);
    Runtime rt(sys);
    auto wa = makeWorkload(ka, sa, 11);
    auto wb = makeWorkload(kb, sb, 13);
    wa->setup(rt);
    wb->setup(rt);
    wa->spawn(rt, 8, 0);
    wb->spawn(rt, 8, 8);
    const auto wall_start = std::chrono::steady_clock::now();
    const Tick ticks = rt.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

    std::string msg;
    if (!wa->validate(sys, msg) || !wb->validate(sys, msg)) {
        std::fprintf(stderr, "fig09: validation failed: %s\n",
                     msg.c_str());
        std::exit(1);
    }

    peibench::recordRun(sys, wall,
                        std::string(wa->name()) + "+" + wb->name() + "/" +
                            execModeName(mode));

    std::uint64_t retired = 0;
    for (unsigned c = 0; c < sys.numCores(); ++c)
        retired += sys.core(c).retiredOps();
    return 1000.0 * static_cast<double>(retired) /
           static_cast<double>(ticks);
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig09_multiprog");
    peibench::printHeader(
        "Figure 9", "Multiprogrammed workload pairs (throughput vs "
                    "Host-Only)",
        "Locality-Aware beats both static configurations for the "
        "overwhelming majority of random mixes");

    constexpr int pairs = 10;
    Rng rng(2015);
    const auto &kinds = allWorkloadKinds();

    std::printf("%-24s | %9s %9s %9s\n", "pair", "host-only", "pim-only",
                "loc-aware");
    int la_best = 0;
    for (int i = 0; i < pairs; ++i) {
        const WorkloadKind ka = kinds[rng.below(kinds.size())];
        const WorkloadKind kb = kinds[rng.below(kinds.size())];
        const InputSize sa =
            rng.chance(0.5) ? InputSize::Small : InputSize::Medium;
        const InputSize sb =
            rng.chance(0.5) ? InputSize::Small : InputSize::Medium;

        const double host = runPair(ka, sa, kb, sb, ExecMode::HostOnly);
        const double pim = runPair(ka, sa, kb, sb, ExecMode::PimOnly);
        const double la =
            runPair(ka, sa, kb, sb, ExecMode::LocalityAware);

        char label[64];
        std::snprintf(label, sizeof(label), "%s/%s + %s/%s",
                      kindName(ka), sizeName(sa), kindName(kb),
                      sizeName(sb));
        std::printf("%-24s | %9.3f %9.3f %9.3f%s\n", label, 1.0,
                    pim / host, la / host,
                    (la >= host && la >= pim) ? "  <- LA best" : "");
        la_best += (la >= host && la >= pim);
    }
    std::printf("\nLocality-Aware best or tied in %d of %d mixes.\n",
                la_best, pairs);
    peibench::benchFinish();
    return 0;
}
