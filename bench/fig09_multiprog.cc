/**
 * @file
 * Figure 9: multiprogrammed workloads — pairs of applications with
 * randomly chosen input sizes, each spawning eight threads on its
 * own half of the cores.  Metric: system throughput (sum-of-IPC
 * proxy: retired operations per kilotick), normalized to Host-Only.
 *
 * Paper: across 200 random pairs, Locality-Aware outperforms both
 * Host-Only and PIM-Only for the overwhelming majority of mixes —
 * per-cache-block locality tracking works even when applications
 * with different locality behaviour share the machine.  (We run a
 * reduced deterministic sample of pairs to keep the bench fast;
 * sizes are drawn from small/medium.)
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/rng.hh"
#include "runtime/runtime.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submitCustom;

namespace
{

/** Two workloads share one System, eight cores each. */
RunResult
runPair(WorkloadKind ka, InputSize sa, WorkloadKind kb, InputSize sb,
        ExecMode mode, const std::string &label, JobCtx &ctx)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    System sys(cfg);
    Runtime rt(sys);
    auto wa = makeWorkload(ka, sa, 11);
    auto wb = makeWorkload(kb, sb, 13);
    wa->setup(rt);
    wb->setup(rt);
    wa->spawn(rt, 8, 0);
    wb->spawn(rt, 8, 8);

    double wall = 0.0;
    {
        WatchGuard watch(ctx, sys.eventQueue());
        const auto wall_start = std::chrono::steady_clock::now();
        rt.run();
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
    }

    std::string msg;
    if (!wa->validate(sys, msg) || !wb->validate(sys, msg))
        throw std::runtime_error("pair validation failed: " + msg);

    RunResult r;
    collectRun(sys, r, wall, label);
    return r;
}

RunHandle
submitPair(WorkloadKind ka, InputSize sa, WorkloadKind kb, InputSize sb,
           ExecMode mode)
{
    const std::string label = std::string(kindName(ka)) + "/" +
                              sizeName(sa) + "+" + kindName(kb) + "/" +
                              sizeName(sb) + "/" + execModeName(mode);
    return submitCustom(label, [=](JobCtx &ctx) {
        return runPair(ka, sa, kb, sb, mode, label, ctx);
    });
}

} // namespace

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig09_multiprog");
    peibench::printHeader(
        "Figure 9", "Multiprogrammed workload pairs (throughput vs "
                    "Host-Only)",
        "Locality-Aware beats both static configurations for the "
        "overwhelming majority of random mixes");

    constexpr int pairs = 10;
    Rng rng(2015);
    const auto &kinds = allWorkloadKinds();

    struct Mix
    {
        WorkloadKind ka, kb;
        InputSize sa, sb;
        RunHandle host, pim, la;
    };
    std::vector<Mix> mixes;
    for (int i = 0; i < pairs; ++i) {
        Mix m;
        m.ka = kinds[rng.below(kinds.size())];
        m.kb = kinds[rng.below(kinds.size())];
        m.sa = rng.chance(0.5) ? InputSize::Small : InputSize::Medium;
        m.sb = rng.chance(0.5) ? InputSize::Small : InputSize::Medium;
        m.host = submitPair(m.ka, m.sa, m.kb, m.sb, ExecMode::HostOnly);
        m.pim = submitPair(m.ka, m.sa, m.kb, m.sb, ExecMode::PimOnly);
        m.la = submitPair(m.ka, m.sa, m.kb, m.sb,
                          ExecMode::LocalityAware);
        mixes.push_back(m);
    }
    peibench::sweepRun();

    std::printf("%-24s | %9s %9s %9s\n", "pair", "host-only", "pim-only",
                "loc-aware");
    int la_best = 0, rendered = 0;
    for (const Mix &m : mixes) {
        if (!peibench::allOk({m.host, m.pim, m.la}))
            continue;
        const double host = result(m.host).opsPerKilotick();
        const double pim = result(m.pim).opsPerKilotick();
        const double la = result(m.la).opsPerKilotick();

        char label[64];
        std::snprintf(label, sizeof(label), "%s/%s + %s/%s",
                      kindName(m.ka), sizeName(m.sa), kindName(m.kb),
                      sizeName(m.sb));
        std::printf("%-24s | %9.3f %9.3f %9.3f%s\n", label, 1.0,
                    pim / host, la / host,
                    (la >= host && la >= pim) ? "  <- LA best" : "");
        la_best += (la >= host && la >= pim);
        ++rendered;
    }
    std::printf("\nLocality-Aware best or tied in %d of %d mixes.\n",
                la_best, rendered);
    return peibench::benchFinish();
}
