/**
 * @file
 * Figure 10: balanced dispatch (§7.4) on the read-dominated SC and
 * SVM workloads with large inputs.
 *
 * Paper: PIM-Only beats Host-Only on SC/SVM large *despite* similar
 * total traffic because it balances request vs response link load;
 * balanced dispatch (forcing host-side execution when that evens
 * the two links) improves Locality-Aware by up to 25%.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"

using namespace pei;
using peibench::RunHandle;
using peibench::result;
using peibench::submit;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "fig10_balanced_dispatch");
    peibench::printHeader(
        "Figure 10", "Balanced dispatch on SC and SVM (large inputs)",
        "up to +25% over plain Locality-Aware by balancing "
        "request/response link load");

    struct Row
    {
        WorkloadKind kind;
        RunHandle host, pim, la, bal;
    };
    std::vector<Row> rows;
    for (WorkloadKind kind : {WorkloadKind::SC, WorkloadKind::SVM}) {
        rows.push_back(
            {kind,
             submit(kind, InputSize::Large, ExecMode::HostOnly),
             submit(kind, InputSize::Large, ExecMode::PimOnly),
             submit(kind, InputSize::Large, ExecMode::LocalityAware),
             submit(kind, InputSize::Large, ExecMode::LocalityAware,
                    [](SystemConfig &cfg) {
                        cfg.pim.balanced_dispatch = true;
                    })});
    }
    peibench::sweepRun();

    std::printf("%-5s %10s %10s %10s %12s | %13s\n", "app", "host-only",
                "pim-only", "loc-aware", "la+balanced", "req/res MB");
    for (const Row &row : rows) {
        if (!peibench::allOk({row.host, row.pim, row.la, row.bal}))
            continue;
        const auto &host = result(row.host);
        const auto &pim = result(row.pim);
        const auto &la = result(row.la);
        const auto &bal = result(row.bal);
        const auto speed = [&](const peibench::RunResult &r) {
            return static_cast<double>(host.ticks) /
                   static_cast<double>(r.ticks);
        };
        std::printf("%-5s %10.3f %10.3f %10.3f %12.3f | %5.0f/%-5.0f\n",
                    kindName(row.kind), 1.0, speed(pim), speed(la),
                    speed(bal),
                    static_cast<double>(bal.offchip_req_bytes) / 1e6,
                    static_cast<double>(bal.offchip_res_bytes) / 1e6);
    }
    std::printf("\n(speedups vs Host-Only; last column: balanced-"
                "dispatch off-chip bytes by direction.)\n");
    return peibench::benchFinish();
}
