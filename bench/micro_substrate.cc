/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: the event queue, cache arrays, TLB, PIM directory,
 * locality monitor, DRAM vault model, and hash utilities.  These
 * are the ablation hooks DESIGN.md calls out for simulator
 * performance (events/second govern how large an input every figure
 * can afford).
 *
 * Besides the console output, the binary writes a stats-v2 JSON
 * summary (microbenchmark rows plus a full run record of a small
 * locality-aware simulation) to BENCH_substrate.json at the repo
 * root; `--stats-json <path>` overrides the destination.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "cache/cache_array.hh"
#include "common/bitutil.hh"
#include "common/rng.hh"
#include "mem/dram.hh"
#include "mem/vmem.hh"
#include "pim/locality_monitor.hh"
#include "pim/pim_directory.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace pei;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Ticks>(i % 7), [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_FoldedXor(benchmark::State &state)
{
    Rng rng(1);
    std::uint64_t v = rng.next();
    for (auto _ : state) {
        v = foldedXor(v, 11) * 0x9E3779B97F4A7C15ULL + 1;
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FoldedXor);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_CacheArrayFindHit(benchmark::State &state)
{
    CacheArray array(1 << 20, 16);
    Rng rng(3);
    std::vector<Addr> blocks;
    for (int i = 0; i < 4096; ++i) {
        const Addr block = rng.next() >> 20;
        CacheLine &v = array.victim(block);
        array.fill(v, block, MesiState::Shared);
        blocks.push_back(block);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.find(blocks[i]));
        i = (i + 1) % blocks.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayFindHit);

void
BM_TlbAccess(benchmark::State &state)
{
    Tlb tlb(64, 120);
    Rng rng(4);
    std::vector<Addr> addrs;
    for (int i = 0; i < 256; ++i)
        addrs.push_back(rng.below(1 << 28));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(addrs[i]));
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAccess);

void
BM_PimDirectoryAcquireRelease(benchmark::State &state)
{
    EventQueue eq;
    StatRegistry stats;
    PimDirectory dir(eq, 2048, 2, stats, "bm_dir");
    Rng rng(5);
    for (auto _ : state) {
        const Addr block = rng.next() >> 8;
        bool granted = false;
        dir.acquire(block, true, [&granted] { granted = true; });
        eq.run();
        dir.release(block, true);
        benchmark::DoNotOptimize(granted);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PimDirectoryAcquireRelease);

void
BM_LocalityMonitorLookup(benchmark::State &state)
{
    StatRegistry stats;
    LocalityMonitor mon(1024, 16, stats, 10, true, "bm_mon");
    Rng rng(6);
    for (int i = 0; i < 16384; ++i)
        mon.onL3Access(rng.next() >> 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(mon.lookupForPei(rng.next() >> 16));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityMonitorLookup);

void
BM_VaultAccess(benchmark::State &state)
{
    EventQueue eq;
    StatRegistry stats;
    AddrMap map(1, 1, 16, 8192);
    DramConfig cfg;
    Vault vault(eq, cfg, map, 0, stats);
    Rng rng(7);
    std::uint64_t done = 0;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            vault.accessBlock(rng.next() & ~0x3FULL & ((1ULL << 30) - 1),
                              i % 2 == 0, [&done] { ++done; });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_VaultAccess);

void
BM_VirtualMemoryTranslate(benchmark::State &state)
{
    VirtualMemory vm(1ULL << 30);
    const Addr base = vm.alloc(16 << 20);
    Rng rng(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            vm.translate(base + rng.below(16 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtualMemoryTranslate);

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    Rng rng(9);
    for (auto _ : state)
        h.record(rng.next() >> 32);
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/** Console reporter that also collects rows for the JSON summary. */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        double real_ns = 0.0;
        double items_per_sec = 0.0;
    };
    std::vector<Row> rows;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            Row row;
            row.name = r.benchmark_name();
            row.real_ns = r.GetAdjustedRealTime();
            auto it = r.counters.find("items_per_second");
            if (it != r.counters.end())
                row.items_per_sec = it->second.value;
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

/**
 * Run a small locality-aware simulation so the substrate summary
 * also carries a full stats-v2 run record (PEI latency histograms,
 * counters, audit) of the composed machine.
 */
std::string
substrateRunRecord()
{
    System sys(SystemConfig::scaled(ExecMode::LocalityAware));
    Runtime rt(sys);
    constexpr std::uint64_t n = 1 << 15;
    const Addr array = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(tid);
                        for (int i = 0; i < 4000; ++i)
                            co_await ctx.inc64(array + 8 * rng.below(n));
                        co_await ctx.pfence();
                        co_await ctx.drain();
                    });
    const auto wall_start = std::chrono::steady_clock::now();
    rt.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    const auto violations = sys.stats().audit();
    for (const auto &v : violations)
        std::fprintf(stderr, "micro_substrate: stats audit FAILED: %s\n",
                     v.c_str());
    if (!violations.empty())
        std::exit(1);
    return runRecordJson(sys, wall, "substrate_sim/Locality-Aware");
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off --stats-json before google-benchmark sees the args.
    std::string out_path = PEISIM_ROOT "/BENCH_substrate.json";
    std::vector<char *> bm_argv;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        }
        if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
            out_path = argv[i] + 13;
            continue;
        }
        bm_argv.push_back(argv[i]);
    }
    int bm_argc = static_cast<int>(bm_argv.size());
    benchmark::Initialize(&bm_argc, bm_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data()))
        return 1;
    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const std::string record = substrateRunRecord();
    std::ostringstream os;
    os << "{\"tool\":\"micro_substrate\",\"benchmarks\":[";
    for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
        const auto &row = reporter.rows[i];
        if (i)
            os << ",";
        os << "{\"name\":\"" << row.name << "\",\"real_time_ns\":"
           << row.real_ns << ",\"items_per_second\":"
           << row.items_per_sec << "}";
    }
    os << "],\"records\":[" << record << "]}";
    writeStatsJson(out_path, os.str());
    std::printf("stats-v2: wrote %s\n", out_path.c_str());
    return 0;
}
