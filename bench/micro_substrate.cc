/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: the event queue, cache arrays, TLB, PIM directory,
 * locality monitor, DRAM vault model, and hash utilities.  These
 * are the ablation hooks DESIGN.md calls out for simulator
 * performance (events/second govern how large an input every figure
 * can afford).
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "common/bitutil.hh"
#include "common/rng.hh"
#include "mem/dram.hh"
#include "mem/vmem.hh"
#include "pim/locality_monitor.hh"
#include "pim/pim_directory.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace pei;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Ticks>(i % 7), [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_FoldedXor(benchmark::State &state)
{
    Rng rng(1);
    std::uint64_t v = rng.next();
    for (auto _ : state) {
        v = foldedXor(v, 11) * 0x9E3779B97F4A7C15ULL + 1;
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FoldedXor);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_CacheArrayFindHit(benchmark::State &state)
{
    CacheArray array(1 << 20, 16);
    Rng rng(3);
    std::vector<Addr> blocks;
    for (int i = 0; i < 4096; ++i) {
        const Addr block = rng.next() >> 20;
        CacheLine &v = array.victim(block);
        array.fill(v, block, MesiState::Shared);
        blocks.push_back(block);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.find(blocks[i]));
        i = (i + 1) % blocks.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayFindHit);

void
BM_TlbAccess(benchmark::State &state)
{
    Tlb tlb(64, 120);
    Rng rng(4);
    std::vector<Addr> addrs;
    for (int i = 0; i < 256; ++i)
        addrs.push_back(rng.below(1 << 28));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(addrs[i]));
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAccess);

void
BM_PimDirectoryAcquireRelease(benchmark::State &state)
{
    EventQueue eq;
    StatRegistry stats;
    PimDirectory dir(eq, 2048, 2, stats, "bm_dir");
    Rng rng(5);
    for (auto _ : state) {
        const Addr block = rng.next() >> 8;
        bool granted = false;
        dir.acquire(block, true, [&granted] { granted = true; });
        eq.run();
        dir.release(block, true);
        benchmark::DoNotOptimize(granted);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PimDirectoryAcquireRelease);

void
BM_LocalityMonitorLookup(benchmark::State &state)
{
    StatRegistry stats;
    LocalityMonitor mon(1024, 16, stats, 10, true, "bm_mon");
    Rng rng(6);
    for (int i = 0; i < 16384; ++i)
        mon.onL3Access(rng.next() >> 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(mon.lookupForPei(rng.next() >> 16));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityMonitorLookup);

void
BM_VaultAccess(benchmark::State &state)
{
    EventQueue eq;
    StatRegistry stats;
    AddrMap map(1, 1, 16, 8192);
    DramConfig cfg;
    Vault vault(eq, cfg, map, 0, stats);
    Rng rng(7);
    std::uint64_t done = 0;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            vault.accessBlock(rng.next() & ~0x3FULL & ((1ULL << 30) - 1),
                              i % 2 == 0, [&done] { ++done; });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_VaultAccess);

void
BM_VirtualMemoryTranslate(benchmark::State &state)
{
    VirtualMemory vm(1ULL << 30);
    const Addr base = vm.alloc(16 << 20);
    Rng rng(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            vm.translate(base + rng.below(16 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtualMemoryTranslate);

} // namespace

BENCHMARK_MAIN();
