/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: the event queue, cache arrays, TLB, PIM directory,
 * locality monitor, DRAM vault model, and hash utilities.  These
 * are the ablation hooks DESIGN.md calls out for simulator
 * performance (events/second govern how large an input every figure
 * can afford).
 *
 * Besides the console output, the binary writes a stats-v2 JSON
 * summary (microbenchmark rows plus a full run record of a small
 * locality-aware simulation) to BENCH_substrate.json at the repo
 * root; `--stats-json <path>` overrides the destination.
 *
 * It also measures the allocation-free hot path directly — a bare
 * schedule/run storm, a scheduling-churn mix, and an end-to-end
 * locality-aware PEI run — and writes the events/second trajectory
 * to BENCH_hotpath.json (`--hotpath-json <path>` overrides;
 * `--hotpath-only` skips the google-benchmark section so CI's
 * perf-smoke job stays fast).  The committed BENCH_hotpath.json at
 * the repo root is the baseline that job diffs against.
 *
 * Finally it probes every registered memory backend (hmc, ddr,
 * ideal) with the same deterministic block-access stream and writes
 * the per-backend idle and loaded latencies — in simulated ticks, so
 * the numbers are machine-independent — to BENCH_membackend.json
 * (`--membackend-json <path>` overrides, `--membackend-only` runs
 * just this section).  The committed file is the regression
 * baseline: it only moves when a backend's timing model changes.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional> // stdfunction-allowed: naive reference queue baseline
#include <sstream>
#include <thread>
#include <vector>

#include "cache/cache_array.hh"
#include "common/bitutil.hh"
#include "common/rng.hh"
#include "mem/backend.hh"
#include "mem/backend_config.hh"
#include "mem/dram.hh"
#include "mem/vmem.hh"
#include "pim/locality_monitor.hh"
#include "pim/pim_directory.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_queue.hh"

namespace
{

using namespace pei;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Ticks>(i % 7), [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

/**
 * The pre-refactor queue, naively: fat heap nodes each owning a
 * std::function.  Benchmarked side by side with the slab-arena queue
 * so the win from inline continuations stays visible in the output.
 */
class NaiveReferenceQueue
{
  public:
    void
    schedule(Ticks delay, std::function<void()> fn)
    {
        events.push_back(Ev{cur_tick + delay, next_seq++, std::move(fn)});
        std::push_heap(events.begin(), events.end(), Later{});
    }

    bool
    runOne()
    {
        if (events.empty())
            return false;
        std::pop_heap(events.begin(), events.end(), Later{});
        Ev ev = std::move(events.back());
        events.pop_back();
        cur_tick = ev.when;
        ev.fn();
        return true;
    }

    void
    run()
    {
        while (runOne()) {}
    }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Ev> events;
    Tick cur_tick = 0;
    std::uint64_t next_seq = 0;
};

void
BM_NaiveQueueScheduleRun(benchmark::State &state)
{
    NaiveReferenceQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(static_cast<Ticks>(i % 7), [&sink] { ++sink; });
        q.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NaiveQueueScheduleRun);

void
BM_EventQueueSchedulingChurn(benchmark::State &state)
{
    // Mixed schedule/partial-drain/schedule cycles: slots churn
    // through the freelist mid-heap instead of draining cleanly, the
    // pattern the cache hierarchy and PMU produce under load.
    EventQueue eq;
    Rng rng(11);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 512; ++i)
            eq.schedule(static_cast<Ticks>(rng.below(16)),
                        [&sink] { ++sink; });
        for (int i = 0; i < 256; ++i)
            eq.runOne();
        for (int i = 0; i < 256; ++i)
            eq.schedule(static_cast<Ticks>(rng.below(16)),
                        [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_EventQueueSchedulingChurn);

void
BM_FoldedXor(benchmark::State &state)
{
    Rng rng(1);
    std::uint64_t v = rng.next();
    for (auto _ : state) {
        v = foldedXor(v, 11) * 0x9E3779B97F4A7C15ULL + 1;
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FoldedXor);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_CacheArrayFindHit(benchmark::State &state)
{
    CacheArray array(1 << 20, 16);
    Rng rng(3);
    std::vector<Addr> blocks;
    for (int i = 0; i < 4096; ++i) {
        const Addr block = rng.next() >> 20;
        CacheLine &v = array.victim(block);
        array.fill(v, block, MesiState::Shared);
        blocks.push_back(block);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.find(blocks[i]));
        i = (i + 1) % blocks.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayFindHit);

void
BM_TlbAccess(benchmark::State &state)
{
    Tlb tlb(64, 120);
    Rng rng(4);
    std::vector<Addr> addrs;
    for (int i = 0; i < 256; ++i)
        addrs.push_back(rng.below(1 << 28));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(addrs[i]));
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAccess);

void
BM_PimDirectoryAcquireRelease(benchmark::State &state)
{
    EventQueue eq;
    StatRegistry stats;
    PimDirectory dir(eq, 2048, 2, stats, "bm_dir");
    Rng rng(5);
    for (auto _ : state) {
        const Addr block = rng.next() >> 8;
        bool granted = false;
        dir.acquire(block, true, [&granted] { granted = true; });
        eq.run();
        dir.release(block, true);
        benchmark::DoNotOptimize(granted);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PimDirectoryAcquireRelease);

void
BM_LocalityMonitorLookup(benchmark::State &state)
{
    StatRegistry stats;
    LocalityMonitor mon(1024, 16, stats, 10, true, "bm_mon");
    Rng rng(6);
    for (int i = 0; i < 16384; ++i)
        mon.onL3Access(rng.next() >> 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(mon.lookupForPei(rng.next() >> 16));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityMonitorLookup);

void
BM_VaultAccess(benchmark::State &state)
{
    EventQueue eq;
    StatRegistry stats;
    AddrMap map(1, 1, 16, 8192);
    DramConfig cfg;
    Vault vault(eq, cfg, map, 0, stats);
    Rng rng(7);
    std::uint64_t done = 0;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            vault.accessBlock(rng.next() & ~0x3FULL & ((1ULL << 30) - 1),
                              i % 2 == 0, [&done] { ++done; });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_VaultAccess);

void
BM_VirtualMemoryTranslate(benchmark::State &state)
{
    VirtualMemory vm(1ULL << 30);
    const Addr base = vm.alloc(16 << 20);
    Rng rng(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            vm.translate(base + rng.below(16 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtualMemoryTranslate);

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    Rng rng(9);
    for (auto _ : state)
        h.record(rng.next() >> 32);
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/** Console reporter that also collects rows for the JSON summary. */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        double real_ns = 0.0;
        double items_per_sec = 0.0;
    };
    std::vector<Row> rows;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            Row row;
            row.name = r.benchmark_name();
            row.real_ns = r.GetAdjustedRealTime();
            auto it = r.counters.find("items_per_second");
            if (it != r.counters.end())
                row.items_per_sec = it->second.value;
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

// ---- hot-path trajectory (BENCH_hotpath.json) ----

/** Bare schedule/run storm on the arena queue; returns events/sec. */
double
hotpathStorm(std::uint64_t total)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t scheduled = 0;
    while (scheduled < total) {
        for (int i = 0; i < 256; ++i) {
            eq.schedule(static_cast<Ticks>(i & 7), [&sink] { ++sink; });
            ++scheduled;
        }
        eq.run();
    }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(eq.executedCount()) / dt;
}

/** The same storm through the naive fat-node std::function queue. */
double
hotpathNaiveStorm(std::uint64_t total)
{
    NaiveReferenceQueue q;
    std::uint64_t sink = 0;
    std::uint64_t executed = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t scheduled = 0;
    while (scheduled < total) {
        for (int i = 0; i < 256; ++i) {
            q.schedule(static_cast<Ticks>(i & 7),
                       [&sink] { ++sink; });
            ++scheduled;
        }
        q.run();
    }
    executed = sink;
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(executed) / dt;
}

/** Schedule/partial-drain churn cycles; returns events/sec. */
double
hotpathChurn(std::uint64_t total)
{
    EventQueue eq;
    Rng rng(11);
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t scheduled = 0;
    while (scheduled < total) {
        for (int i = 0; i < 512; ++i)
            eq.schedule(static_cast<Ticks>(rng.below(16)),
                        [&sink] { ++sink; });
        for (int i = 0; i < 256; ++i)
            eq.runOne();
        for (int i = 0; i < 256; ++i)
            eq.schedule(static_cast<Ticks>(rng.below(16)),
                        [&sink] { ++sink; });
        eq.run();
        scheduled += 768;
    }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(eq.executedCount()) / dt;
}

/**
 * Free-function kernel (value-captured args, so no lambda frame can
 * dangle): random async Inc64 PEIs, the fig06 inner loop.
 */
Task
hotpathKernel(Ctx &ctx, Addr array, std::uint64_t n, unsigned tid)
{
    Rng rng(tid);
    for (int i = 0; i < 8000; ++i)
        co_await ctx.inc64(array + 8 * rng.below(n));
    co_await ctx.pfence();
    co_await ctx.drain();
}

/** Full-stack locality-aware PEI run; returns simulated events/sec. */
double
hotpathEndToEnd()
{
    System sys(SystemConfig::scaled(ExecMode::LocalityAware));
    Runtime rt(sys);
    const std::uint64_t n = 1 << 15;
    const Addr array = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) {
                        return hotpathKernel(ctx, array, n, tid);
                    });
    const auto t0 = std::chrono::steady_clock::now();
    rt.run();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(sys.eventQueue().executedCount()) / dt;
}

// ---- shard-scaling trajectory (BENCH_hotpath.json) ----

/**
 * A self-rescheduling event chain pinned to one shard's queue.  Each
 * step burns one event and reschedules 1..16 ticks out via an LCG, so
 * a population of chains keeps every shard busy inside any horizon
 * without cross-shard traffic — the pure engine-throughput case.
 */
struct ShardChain
{
    EventQueue *q;
    std::uint64_t remaining;
    std::uint64_t mix;
};

void
shardChainStep(ShardChain *c)
{
    if (c->remaining == 0)
        return;
    --c->remaining;
    c->mix = c->mix * 6364136223846793005ULL + 1;
    const Ticks d = static_cast<Ticks>(1 + (c->mix >> 60));
    c->q->scheduleAt(c->q->now() + d, [c] { shardChainStep(c); });
}

/**
 * Event-storm throughput at @p shards shards: ~@p total events split
 * evenly across shards as self-rescheduling chains, driven through
 * the epoch loop.  shards == 1 exercises the same code path inline on
 * the host queue — the sequential baseline of the scaling curve.
 */
double
shardStorm(unsigned shards, std::uint64_t total)
{
    ShardedQueue sq(shards);
    sq.setLookahead(256); // generous horizon: barrier cost amortizes

    constexpr unsigned nodes_per_shard = 64;
    std::vector<std::unique_ptr<ShardChain>> chains;
    chains.reserve(static_cast<std::size_t>(shards) * nodes_per_shard);
    const std::uint64_t budget =
        total / (static_cast<std::uint64_t>(shards) * nodes_per_shard);
    for (unsigned s = 0; s < shards; ++s) {
        for (unsigned i = 0; i < nodes_per_shard; ++i) {
            chains.push_back(std::make_unique<ShardChain>(
                ShardChain{&sq.shard(s), budget,
                           s * 1000003ULL + i * 7919ULL + 1}));
            ShardChain *c = chains.back().get();
            sq.scheduleOn(s, i, [c] { shardChainStep(c); });
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    while (sq.runEpoch() != 0) {}
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(sq.executedCount()) / dt;
}

/**
 * Full-stack locality-aware PEI run at @p shards shards (the fig06
 * inner loop on the scaled machine).  A modest epoch window batches
 * more events per barrier; it only loosens the zero-latency
 * completion edges, which this wall-clock measurement never reads.
 */
double
shardEndToEnd(unsigned shards)
{
    SystemConfig cfg = SystemConfig::scaled(ExecMode::LocalityAware);
    cfg.shards = shards;
    cfg.shard_window = shards > 1 ? 64 : 0;
    System sys(cfg);
    Runtime rt(sys);
    const std::uint64_t n = 1 << 15;
    const Addr array = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) {
                        return hotpathKernel(ctx, array, n, tid);
                    });
    const auto t0 = std::chrono::steady_clock::now();
    rt.run();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(sys.shardedQueue().executedCount()) / dt;
}

/**
 * Measure the hot-path trajectory and write it as stats-v2 JSON.
 * The pre-refactor numbers are baked in as the fixed reference
 * point: they were measured with identical loops against the seed
 * (fat-node, std::function) implementation on the same class of
 * machine, and the refactor's acceptance bar is >= 1.25x over them.
 */
void
writeHotpathJson(const std::string &path)
{
    constexpr double pre_storm = 17312025.0;
    constexpr double pre_end_to_end = 3358496.0;

    hotpathStorm(1 << 20); // warm up
    double storm = 0, naive = 0, churn = 0, e2e = 0;
    for (int i = 0; i < 3; ++i) {
        storm = std::max(storm, hotpathStorm(4 << 20));
        naive = std::max(naive, hotpathNaiveStorm(4 << 20));
        churn = std::max(churn, hotpathChurn(4 << 20));
        e2e = std::max(e2e, hotpathEndToEnd());
    }

    // Shard-scaling curve: the same storm/end-to-end work at 1, 2, 4
    // and 8 shards (1 = the sequential engine, the scaling baseline).
    const unsigned shard_counts[] = {1, 2, 4, 8};
    double storm_at[4] = {0, 0, 0, 0};
    double e2e_at[4] = {0, 0, 0, 0};
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 4; ++i) {
            storm_at[i] = std::max(
                storm_at[i], shardStorm(shard_counts[i], 8 << 20));
            e2e_at[i] =
                std::max(e2e_at[i], shardEndToEnd(shard_counts[i]));
        }
    }

    std::ostringstream os;
    os << "{\"tool\":\"micro_substrate_hotpath\",\"hotpath\":{"
       << "\"storm_events_per_sec\":" << storm << ","
       << "\"churn_events_per_sec\":" << churn << ","
       << "\"naive_queue_storm_events_per_sec\":" << naive << ","
       << "\"end_to_end_events_per_sec\":" << e2e << ","
       << "\"pre_refactor\":{"
       << "\"storm_events_per_sec\":" << pre_storm << ","
       << "\"end_to_end_events_per_sec\":" << pre_end_to_end << "},"
       << "\"speedup_vs_pre_refactor\":{"
       << "\"storm\":" << storm / pre_storm << ","
       << "\"end_to_end\":" << e2e / pre_end_to_end << "},"
       << "\"shard_scaling\":{";
    for (int i = 0; i < 4; ++i)
        os << (i ? "," : "") << "\"storm_events_per_sec_at_"
           << shard_counts[i] << "\":" << storm_at[i];
    for (int i = 0; i < 4; ++i)
        os << ",\"end_to_end_events_per_sec_at_" << shard_counts[i]
           << "\":" << e2e_at[i];
    // Host core count contextualizes the curve: with fewer cores
    // than shards the workers time-slice one another and the curve
    // measures oversubscription overhead, not scaling.
    os << ",\"storm_speedup_at_4_shards\":" << storm_at[2] / storm_at[0]
       << ",\"end_to_end_speedup_at_4_shards\":"
       << e2e_at[2] / e2e_at[0]
       << ",\"host_cores\":" << std::thread::hardware_concurrency()
       << "}}}";
    writeStatsJson(path, os.str());
    std::printf("hotpath: storm %.0f ev/s (%.2fx), churn %.0f ev/s, "
                "naive-queue storm %.0f ev/s, end-to-end %.0f ev/s "
                "(%.2fx)\n",
                storm, storm / pre_storm, churn, naive, e2e,
                e2e / pre_end_to_end);
    for (int i = 0; i < 4; ++i)
        std::printf("hotpath: %u shard(s): storm %.0f ev/s (%.2fx), "
                    "end-to-end %.0f ev/s (%.2fx)\n",
                    shard_counts[i], storm_at[i],
                    storm_at[i] / storm_at[0], e2e_at[i],
                    e2e_at[i] / e2e_at[0]);
    std::printf("stats-v2: wrote %s\n", path.c_str());
}

// ---- per-backend access latency (BENCH_membackend.json) ----

/** Tick-deterministic latency profile of one memory backend. */
struct BackendProfile
{
    std::string name;
    Ticks read_idle_ticks = 0;   ///< lone read round trip
    Ticks write_idle_ticks = 0;  ///< lone (acknowledged) write
    double burst16_avg_ticks = 0.0; ///< mean over 64x 16-deep bursts
};

/**
 * Probe @p name with a fixed block-access stream.  Fresh EventQueue
 * and StatRegistry per backend so stat names cannot collide and no
 * state leaks between probes; all metrics are simulated ticks, so
 * two runs of the same binary agree byte-for-byte.
 */
BackendProfile
profileBackend(const std::string &name)
{
    ShardedQueue sq; // single shard: the classic sequential engine
    EventQueue &eq = sq.host();
    StatRegistry stats;
    MemBackendConfig cfg;
    cfg.phys_bytes = 64ULL << 20;
    std::unique_ptr<MemoryBackend> mem =
        createMemoryBackend(name, sq, cfg, stats);

    BackendProfile p;
    p.name = name;

    const auto timed = [&](bool write) {
        const Tick start = eq.now();
        Tick done = start;
        if (write)
            mem->writeBlock(0, [&eq, &done] { done = eq.now(); });
        else
            mem->readBlock(0, [&eq, &done] { done = eq.now(); });
        eq.run();
        return static_cast<Ticks>(done - start);
    };
    p.read_idle_ticks = timed(false);
    p.write_idle_ticks = timed(true);

    // 64 bursts of 16 outstanding reads striding blocks: enough
    // overlap to expose banking/queueing without overrunning any
    // backend's buffering model.
    std::uint64_t total_wait = 0;
    Addr a = 0;
    for (int burst = 0; burst < 64; ++burst) {
        const Tick issue = eq.now();
        for (int i = 0; i < 16; ++i) {
            mem->readBlock(a % cfg.phys_bytes,
                           [&eq, &total_wait, issue] {
                               total_wait += eq.now() - issue;
                           });
            a += block_size * 129; // co-prime stride spreads banks
        }
        eq.run();
    }
    p.burst16_avg_ticks = static_cast<double>(total_wait) / (64 * 16);
    return p;
}

/** Profile every registered backend and write the JSON baseline. */
void
writeMemBackendJson(const std::string &path)
{
    std::ostringstream os;
    os << "{\"tool\":\"micro_substrate_membackend\",\"backends\":[";
    bool first = true;
    for (const std::string &name : memoryBackendNames()) {
        const BackendProfile p = profileBackend(name);
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << p.name << "\",\"read_idle_ticks\":"
           << p.read_idle_ticks << ",\"write_idle_ticks\":"
           << p.write_idle_ticks << ",\"burst16_avg_ticks\":"
           << p.burst16_avg_ticks << "}";
        std::printf("membackend: %-5s read %llu write %llu "
                    "burst16-avg %.1f (ticks)\n",
                    p.name.c_str(),
                    (unsigned long long)p.read_idle_ticks,
                    (unsigned long long)p.write_idle_ticks,
                    p.burst16_avg_ticks);
    }
    os << "]}";
    writeStatsJson(path, os.str());
    std::printf("stats-v2: wrote %s\n", path.c_str());
}

/**
 * Run a small locality-aware simulation so the substrate summary
 * also carries a full stats-v2 run record (PEI latency histograms,
 * counters, audit) of the composed machine.
 */
std::string
substrateRunRecord()
{
    System sys(SystemConfig::scaled(ExecMode::LocalityAware));
    Runtime rt(sys);
    constexpr std::uint64_t n = 1 << 15;
    const Addr array = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(tid);
                        for (int i = 0; i < 4000; ++i)
                            co_await ctx.inc64(array + 8 * rng.below(n));
                        co_await ctx.pfence();
                        co_await ctx.drain();
                    });
    const auto wall_start = std::chrono::steady_clock::now();
    rt.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    const auto violations = sys.stats().audit();
    for (const auto &v : violations)
        std::fprintf(stderr, "micro_substrate: stats audit FAILED: %s\n",
                     v.c_str());
    if (!violations.empty())
        std::exit(1);
    return runRecordJson(sys, wall, "substrate_sim/Locality-Aware");
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off our own flags before google-benchmark sees the args.
    std::string out_path = PEISIM_ROOT "/BENCH_substrate.json";
    std::string hotpath_path = PEISIM_ROOT "/BENCH_hotpath.json";
    std::string membackend_path = PEISIM_ROOT "/BENCH_membackend.json";
    bool hotpath_only = false;
    bool membackend_only = false;
    std::vector<char *> bm_argv;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        }
        if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
            out_path = argv[i] + 13;
            continue;
        }
        if (std::strcmp(argv[i], "--hotpath-json") == 0 && i + 1 < argc) {
            hotpath_path = argv[++i];
            continue;
        }
        if (std::strncmp(argv[i], "--hotpath-json=", 15) == 0) {
            hotpath_path = argv[i] + 15;
            continue;
        }
        if (std::strcmp(argv[i], "--hotpath-only") == 0) {
            hotpath_only = true;
            continue;
        }
        if (std::strcmp(argv[i], "--membackend-json") == 0 &&
            i + 1 < argc) {
            membackend_path = argv[++i];
            continue;
        }
        if (std::strncmp(argv[i], "--membackend-json=", 18) == 0) {
            membackend_path = argv[i] + 18;
            continue;
        }
        if (std::strcmp(argv[i], "--membackend-only") == 0) {
            membackend_only = true;
            continue;
        }
        bm_argv.push_back(argv[i]);
    }
    if (membackend_only) {
        writeMemBackendJson(membackend_path);
        return 0;
    }
    if (hotpath_only) {
        writeHotpathJson(hotpath_path);
        return 0;
    }
    int bm_argc = static_cast<int>(bm_argv.size());
    benchmark::Initialize(&bm_argc, bm_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data()))
        return 1;
    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const std::string record = substrateRunRecord();
    std::ostringstream os;
    os << "{\"tool\":\"micro_substrate\",\"benchmarks\":[";
    for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
        const auto &row = reporter.rows[i];
        if (i)
            os << ",";
        os << "{\"name\":\"" << row.name << "\",\"real_time_ns\":"
           << row.real_ns << ",\"items_per_second\":"
           << row.items_per_sec << "}";
    }
    os << "],\"records\":[" << record << "]}";
    writeStatsJson(out_path, os.str());
    std::printf("stats-v2: wrote %s\n", out_path.c_str());

    writeHotpathJson(hotpath_path);
    writeMemBackendJson(membackend_path);
    return 0;
}
