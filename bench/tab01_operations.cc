/**
 * @file
 * Table 1: summary of supported PIM operations — regenerated from
 * the PEI op table the simulator actually executes.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "pim/pei_op.hh"

using namespace pei;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "tab01_operations");
    peibench::printHeader(
        "Table 1", "Summary of Supported PIM Operations",
        "seven operations, R/W flags, input 0-64 B, output 0-16 B");

    std::printf("%-12s %2s %2s %6s %7s %3s  %s\n", "Operation", "R",
                "W", "Input", "Output", "MB", "Applications");
    const char *apps[] = {
        "ATF", "BFS, SP, WCC", "PR", "HJ", "HG, RP", "SC", "SVM",
        "SpMV, copy (extension)", "HG, copy (extension)",
    };
    static_assert(sizeof(apps) / sizeof(apps[0]) ==
                  static_cast<std::size_t>(PeiOpcode::NumOpcodes));
    for (unsigned i = 0;
         i < static_cast<unsigned>(PeiOpcode::NumOpcodes); ++i) {
        const PeiOpInfo &info = peiOpInfo(static_cast<PeiOpcode>(i));
        std::printf("%-12s %2s %2s %5uB %6uB %3s  %s\n", info.name,
                    info.reads ? "O" : "X", info.writes ? "O" : "X",
                    info.input_bytes, info.output_bytes,
                    info.multi_block ? "O" : "X", apps[i]);
    }
    std::printf("\nSingle-block operations obey the single-cache-block "
                "restriction (64 B); the multi-block\n"
                "(MB) gather/scatter extension ops access up to 8 "
                "strided elements whose blocks must\n"
                "decode to one vault for memory-side execution.  All "
                "operations are executable on\n"
                "both host-side and memory-side PCUs.\n");
    return peibench::benchFinish();
}
