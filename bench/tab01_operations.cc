/**
 * @file
 * Table 1: summary of supported PIM operations — regenerated from
 * the PEI op table the simulator actually executes.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "pim/pei_op.hh"

using namespace pei;

int
main(int argc, char **argv)
{
    peibench::benchInit(argc, argv, "tab01_operations");
    peibench::printHeader(
        "Table 1", "Summary of Supported PIM Operations",
        "seven operations, R/W flags, input 0-64 B, output 0-16 B");

    std::printf("%-12s %2s %2s %6s %7s  %s\n", "Operation", "R", "W",
                "Input", "Output", "Applications");
    const char *apps[] = {
        "ATF", "BFS, SP, WCC", "PR", "HJ", "HG, RP", "SC", "SVM",
    };
    for (unsigned i = 0;
         i < static_cast<unsigned>(PeiOpcode::NumOpcodes); ++i) {
        const PeiOpInfo &info = peiOpInfo(static_cast<PeiOpcode>(i));
        std::printf("%-12s %2s %2s %5uB %6uB  %s\n", info.name,
                    info.reads ? "O" : "X", info.writes ? "O" : "X",
                    info.input_bytes, info.output_bytes, apps[i]);
    }
    std::printf("\nAll operations obey the single-cache-block "
                "restriction (64 B) and are executable on both\n"
                "host-side and memory-side PCUs.\n");
    return peibench::benchFinish();
}
