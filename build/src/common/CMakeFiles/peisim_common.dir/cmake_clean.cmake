file(REMOVE_RECURSE
  "CMakeFiles/peisim_common.dir/logging.cc.o"
  "CMakeFiles/peisim_common.dir/logging.cc.o.d"
  "CMakeFiles/peisim_common.dir/stats.cc.o"
  "CMakeFiles/peisim_common.dir/stats.cc.o.d"
  "libpeisim_common.a"
  "libpeisim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
