# Empty compiler generated dependencies file for peisim_common.
# This may be replaced when dependencies are built.
