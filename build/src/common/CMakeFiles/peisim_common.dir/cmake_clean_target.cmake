file(REMOVE_RECURSE
  "libpeisim_common.a"
)
