file(REMOVE_RECURSE
  "libpeisim_workloads.a"
)
