# Empty compiler generated dependencies file for peisim_workloads.
# This may be replaced when dependencies are built.
