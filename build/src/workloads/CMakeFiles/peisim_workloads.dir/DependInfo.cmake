
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/analytics.cc" "src/workloads/CMakeFiles/peisim_workloads.dir/analytics.cc.o" "gcc" "src/workloads/CMakeFiles/peisim_workloads.dir/analytics.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/peisim_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/peisim_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/graph_workloads.cc" "src/workloads/CMakeFiles/peisim_workloads.dir/graph_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/peisim_workloads.dir/graph_workloads.cc.o.d"
  "/root/repo/src/workloads/ml.cc" "src/workloads/CMakeFiles/peisim_workloads.dir/ml.cc.o" "gcc" "src/workloads/CMakeFiles/peisim_workloads.dir/ml.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/peisim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/peisim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/peisim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/peisim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/peisim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/peisim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/peisim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
