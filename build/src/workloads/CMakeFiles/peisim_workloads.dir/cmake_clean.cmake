file(REMOVE_RECURSE
  "CMakeFiles/peisim_workloads.dir/analytics.cc.o"
  "CMakeFiles/peisim_workloads.dir/analytics.cc.o.d"
  "CMakeFiles/peisim_workloads.dir/graph.cc.o"
  "CMakeFiles/peisim_workloads.dir/graph.cc.o.d"
  "CMakeFiles/peisim_workloads.dir/graph_workloads.cc.o"
  "CMakeFiles/peisim_workloads.dir/graph_workloads.cc.o.d"
  "CMakeFiles/peisim_workloads.dir/ml.cc.o"
  "CMakeFiles/peisim_workloads.dir/ml.cc.o.d"
  "CMakeFiles/peisim_workloads.dir/workload.cc.o"
  "CMakeFiles/peisim_workloads.dir/workload.cc.o.d"
  "libpeisim_workloads.a"
  "libpeisim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
