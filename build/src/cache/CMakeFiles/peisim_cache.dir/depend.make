# Empty dependencies file for peisim_cache.
# This may be replaced when dependencies are built.
