file(REMOVE_RECURSE
  "libpeisim_cache.a"
)
