file(REMOVE_RECURSE
  "CMakeFiles/peisim_cache.dir/hierarchy.cc.o"
  "CMakeFiles/peisim_cache.dir/hierarchy.cc.o.d"
  "libpeisim_cache.a"
  "libpeisim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
