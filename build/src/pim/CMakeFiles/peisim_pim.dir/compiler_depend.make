# Empty compiler generated dependencies file for peisim_pim.
# This may be replaced when dependencies are built.
