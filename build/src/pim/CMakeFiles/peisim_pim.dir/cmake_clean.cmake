file(REMOVE_RECURSE
  "CMakeFiles/peisim_pim.dir/locality_monitor.cc.o"
  "CMakeFiles/peisim_pim.dir/locality_monitor.cc.o.d"
  "CMakeFiles/peisim_pim.dir/pcu.cc.o"
  "CMakeFiles/peisim_pim.dir/pcu.cc.o.d"
  "CMakeFiles/peisim_pim.dir/pei_op.cc.o"
  "CMakeFiles/peisim_pim.dir/pei_op.cc.o.d"
  "CMakeFiles/peisim_pim.dir/pim_directory.cc.o"
  "CMakeFiles/peisim_pim.dir/pim_directory.cc.o.d"
  "CMakeFiles/peisim_pim.dir/pmu.cc.o"
  "CMakeFiles/peisim_pim.dir/pmu.cc.o.d"
  "libpeisim_pim.a"
  "libpeisim_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
