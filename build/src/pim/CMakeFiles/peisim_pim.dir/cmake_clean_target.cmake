file(REMOVE_RECURSE
  "libpeisim_pim.a"
)
