
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/locality_monitor.cc" "src/pim/CMakeFiles/peisim_pim.dir/locality_monitor.cc.o" "gcc" "src/pim/CMakeFiles/peisim_pim.dir/locality_monitor.cc.o.d"
  "/root/repo/src/pim/pcu.cc" "src/pim/CMakeFiles/peisim_pim.dir/pcu.cc.o" "gcc" "src/pim/CMakeFiles/peisim_pim.dir/pcu.cc.o.d"
  "/root/repo/src/pim/pei_op.cc" "src/pim/CMakeFiles/peisim_pim.dir/pei_op.cc.o" "gcc" "src/pim/CMakeFiles/peisim_pim.dir/pei_op.cc.o.d"
  "/root/repo/src/pim/pim_directory.cc" "src/pim/CMakeFiles/peisim_pim.dir/pim_directory.cc.o" "gcc" "src/pim/CMakeFiles/peisim_pim.dir/pim_directory.cc.o.d"
  "/root/repo/src/pim/pmu.cc" "src/pim/CMakeFiles/peisim_pim.dir/pmu.cc.o" "gcc" "src/pim/CMakeFiles/peisim_pim.dir/pmu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/peisim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/peisim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/peisim_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
