file(REMOVE_RECURSE
  "CMakeFiles/peisim_energy.dir/energy_model.cc.o"
  "CMakeFiles/peisim_energy.dir/energy_model.cc.o.d"
  "libpeisim_energy.a"
  "libpeisim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
