file(REMOVE_RECURSE
  "libpeisim_energy.a"
)
