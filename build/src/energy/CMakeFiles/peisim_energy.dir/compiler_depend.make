# Empty compiler generated dependencies file for peisim_energy.
# This may be replaced when dependencies are built.
