file(REMOVE_RECURSE
  "CMakeFiles/peisim_mem.dir/dram.cc.o"
  "CMakeFiles/peisim_mem.dir/dram.cc.o.d"
  "CMakeFiles/peisim_mem.dir/hmc.cc.o"
  "CMakeFiles/peisim_mem.dir/hmc.cc.o.d"
  "CMakeFiles/peisim_mem.dir/vmem.cc.o"
  "CMakeFiles/peisim_mem.dir/vmem.cc.o.d"
  "libpeisim_mem.a"
  "libpeisim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
