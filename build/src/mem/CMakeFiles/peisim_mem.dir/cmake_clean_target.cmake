file(REMOVE_RECURSE
  "libpeisim_mem.a"
)
