# Empty compiler generated dependencies file for peisim_mem.
# This may be replaced when dependencies are built.
