file(REMOVE_RECURSE
  "libpeisim_runtime.a"
)
