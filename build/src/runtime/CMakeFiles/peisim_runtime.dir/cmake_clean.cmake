file(REMOVE_RECURSE
  "CMakeFiles/peisim_runtime.dir/system.cc.o"
  "CMakeFiles/peisim_runtime.dir/system.cc.o.d"
  "libpeisim_runtime.a"
  "libpeisim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
