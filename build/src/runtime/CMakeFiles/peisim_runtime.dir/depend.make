# Empty dependencies file for peisim_runtime.
# This may be replaced when dependencies are built.
