file(REMOVE_RECURSE
  "CMakeFiles/inmemory_db.dir/inmemory_db.cpp.o"
  "CMakeFiles/inmemory_db.dir/inmemory_db.cpp.o.d"
  "inmemory_db"
  "inmemory_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inmemory_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
