# Empty compiler generated dependencies file for adaptive_locality.
# This may be replaced when dependencies are built.
