file(REMOVE_RECURSE
  "CMakeFiles/adaptive_locality.dir/adaptive_locality.cpp.o"
  "CMakeFiles/adaptive_locality.dir/adaptive_locality.cpp.o.d"
  "adaptive_locality"
  "adaptive_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
