file(REMOVE_RECURSE
  "../bench/fig10_balanced_dispatch"
  "../bench/fig10_balanced_dispatch.pdb"
  "CMakeFiles/fig10_balanced_dispatch.dir/fig10_balanced_dispatch.cc.o"
  "CMakeFiles/fig10_balanced_dispatch.dir/fig10_balanced_dispatch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_balanced_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
