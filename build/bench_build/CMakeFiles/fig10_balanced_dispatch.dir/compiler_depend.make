# Empty compiler generated dependencies file for fig10_balanced_dispatch.
# This may be replaced when dependencies are built.
