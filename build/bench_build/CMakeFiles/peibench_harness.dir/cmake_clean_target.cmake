file(REMOVE_RECURSE
  "libpeibench_harness.a"
)
