file(REMOVE_RECURSE
  "CMakeFiles/peibench_harness.dir/harness.cc.o"
  "CMakeFiles/peibench_harness.dir/harness.cc.o.d"
  "libpeibench_harness.a"
  "libpeibench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peibench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
