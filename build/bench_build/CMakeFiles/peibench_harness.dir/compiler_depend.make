# Empty compiler generated dependencies file for peibench_harness.
# This may be replaced when dependencies are built.
