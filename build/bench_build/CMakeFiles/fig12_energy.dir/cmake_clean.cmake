file(REMOVE_RECURSE
  "../bench/fig12_energy"
  "../bench/fig12_energy.pdb"
  "CMakeFiles/fig12_energy.dir/fig12_energy.cc.o"
  "CMakeFiles/fig12_energy.dir/fig12_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
