
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_energy.cc" "bench_build/CMakeFiles/fig12_energy.dir/fig12_energy.cc.o" "gcc" "bench_build/CMakeFiles/fig12_energy.dir/fig12_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/peibench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/peisim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/peisim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/peisim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/peisim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/peisim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/peisim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/peisim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
