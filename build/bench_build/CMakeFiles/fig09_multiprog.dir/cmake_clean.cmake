file(REMOVE_RECURSE
  "../bench/fig09_multiprog"
  "../bench/fig09_multiprog.pdb"
  "CMakeFiles/fig09_multiprog.dir/fig09_multiprog.cc.o"
  "CMakeFiles/fig09_multiprog.dir/fig09_multiprog.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
