# Empty dependencies file for fig09_multiprog.
# This may be replaced when dependencies are built.
