file(REMOVE_RECURSE
  "../bench/fig11_pcu_design"
  "../bench/fig11_pcu_design.pdb"
  "CMakeFiles/fig11_pcu_design.dir/fig11_pcu_design.cc.o"
  "CMakeFiles/fig11_pcu_design.dir/fig11_pcu_design.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pcu_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
