# Empty compiler generated dependencies file for fig11_pcu_design.
# This may be replaced when dependencies are built.
