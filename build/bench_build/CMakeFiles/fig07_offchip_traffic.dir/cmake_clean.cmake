file(REMOVE_RECURSE
  "../bench/fig07_offchip_traffic"
  "../bench/fig07_offchip_traffic.pdb"
  "CMakeFiles/fig07_offchip_traffic.dir/fig07_offchip_traffic.cc.o"
  "CMakeFiles/fig07_offchip_traffic.dir/fig07_offchip_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_offchip_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
