# Empty dependencies file for fig07_offchip_traffic.
# This may be replaced when dependencies are built.
