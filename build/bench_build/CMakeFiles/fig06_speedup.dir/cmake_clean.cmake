file(REMOVE_RECURSE
  "../bench/fig06_speedup"
  "../bench/fig06_speedup.pdb"
  "CMakeFiles/fig06_speedup.dir/fig06_speedup.cc.o"
  "CMakeFiles/fig06_speedup.dir/fig06_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
