file(REMOVE_RECURSE
  "../bench/tab02_config"
  "../bench/tab02_config.pdb"
  "CMakeFiles/tab02_config.dir/tab02_config.cc.o"
  "CMakeFiles/tab02_config.dir/tab02_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
