file(REMOVE_RECURSE
  "../bench/tab01_operations"
  "../bench/tab01_operations.pdb"
  "CMakeFiles/tab01_operations.dir/tab01_operations.cc.o"
  "CMakeFiles/tab01_operations.dir/tab01_operations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
