# Empty dependencies file for tab01_operations.
# This may be replaced when dependencies are built.
