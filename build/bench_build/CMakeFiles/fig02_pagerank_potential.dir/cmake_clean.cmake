file(REMOVE_RECURSE
  "../bench/fig02_pagerank_potential"
  "../bench/fig02_pagerank_potential.pdb"
  "CMakeFiles/fig02_pagerank_potential.dir/fig02_pagerank_potential.cc.o"
  "CMakeFiles/fig02_pagerank_potential.dir/fig02_pagerank_potential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_pagerank_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
