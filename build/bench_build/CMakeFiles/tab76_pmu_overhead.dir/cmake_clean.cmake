file(REMOVE_RECURSE
  "../bench/tab76_pmu_overhead"
  "../bench/tab76_pmu_overhead.pdb"
  "CMakeFiles/tab76_pmu_overhead.dir/tab76_pmu_overhead.cc.o"
  "CMakeFiles/tab76_pmu_overhead.dir/tab76_pmu_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab76_pmu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
