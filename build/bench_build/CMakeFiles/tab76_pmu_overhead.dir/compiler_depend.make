# Empty compiler generated dependencies file for tab76_pmu_overhead.
# This may be replaced when dependencies are built.
