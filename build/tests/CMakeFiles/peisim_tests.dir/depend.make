# Empty dependencies file for peisim_tests.
# This may be replaced when dependencies are built.
