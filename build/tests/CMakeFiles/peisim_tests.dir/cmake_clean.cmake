file(REMOVE_RECURSE
  "CMakeFiles/peisim_tests.dir/test_cache.cc.o"
  "CMakeFiles/peisim_tests.dir/test_cache.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_common.cc.o"
  "CMakeFiles/peisim_tests.dir/test_common.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_energy.cc.o"
  "CMakeFiles/peisim_tests.dir/test_energy.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_event_queue.cc.o"
  "CMakeFiles/peisim_tests.dir/test_event_queue.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_mem.cc.o"
  "CMakeFiles/peisim_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_paper_baseline.cc.o"
  "CMakeFiles/peisim_tests.dir/test_paper_baseline.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_pim.cc.o"
  "CMakeFiles/peisim_tests.dir/test_pim.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_runtime_smoke.cc.o"
  "CMakeFiles/peisim_tests.dir/test_runtime_smoke.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_sync.cc.o"
  "CMakeFiles/peisim_tests.dir/test_sync.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_system.cc.o"
  "CMakeFiles/peisim_tests.dir/test_system.cc.o.d"
  "CMakeFiles/peisim_tests.dir/test_workloads.cc.o"
  "CMakeFiles/peisim_tests.dir/test_workloads.cc.o.d"
  "peisim_tests"
  "peisim_tests.pdb"
  "peisim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peisim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
