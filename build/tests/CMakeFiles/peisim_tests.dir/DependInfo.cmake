
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/peisim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/peisim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/peisim_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/peisim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/peisim_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_paper_baseline.cc" "tests/CMakeFiles/peisim_tests.dir/test_paper_baseline.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_paper_baseline.cc.o.d"
  "/root/repo/tests/test_pim.cc" "tests/CMakeFiles/peisim_tests.dir/test_pim.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_pim.cc.o.d"
  "/root/repo/tests/test_runtime_smoke.cc" "tests/CMakeFiles/peisim_tests.dir/test_runtime_smoke.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_runtime_smoke.cc.o.d"
  "/root/repo/tests/test_sync.cc" "tests/CMakeFiles/peisim_tests.dir/test_sync.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_sync.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/peisim_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/peisim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/peisim_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/peisim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/peisim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/peisim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/peisim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/peisim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/peisim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/peisim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
