#include "options.hh"

#include <cstdlib>
#include <cstring>
#include <thread>

#include <algorithm>

#include "coherence/policy.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"
#include "mem/backend.hh"
#include "net/topology.hh"

namespace pei
{

namespace
{

/**
 * If argv[i] spells @p flag, yield its value ("--flag v" or
 * "--flag=v") and advance @p i past consumed arguments.
 */
bool
flagValue(int argc, char **argv, int &i, const char *flag,
          std::string &value)
{
    const std::size_t len = std::strlen(flag);
    if (std::strcmp(argv[i], flag) == 0) {
        fatal_if(i + 1 >= argc, "%s needs a value", flag);
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        value = argv[i] + len + 1;
        return true;
    }
    return false;
}

} // namespace

SweepOptions
sweepOptionsFromArgs(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (flagValue(argc, argv, i, "--jobs", value)) {
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 1,
                     "--jobs wants a positive integer, got '%s'",
                     value.c_str());
            opts.jobs = static_cast<unsigned>(n);
        } else if (flagValue(argc, argv, i, "--timeout-s", value)) {
            char *end = nullptr;
            const double s = std::strtod(value.c_str(), &end);
            fatal_if(!end || *end != '\0' || s <= 0.0,
                     "--timeout-s wants a positive number, got '%s'",
                     value.c_str());
            opts.timeout_s = s;
        } else if (flagValue(argc, argv, i, "--filter", value)) {
            opts.filter = value;
        } else if (flagValue(argc, argv, i, "--mem-backend", value)) {
            const auto names = memoryBackendNames();
            if (std::find(names.begin(), names.end(), value) ==
                names.end()) {
                std::string known;
                for (const auto &n : names)
                    known += (known.empty() ? "" : ", ") + n;
                fatal("--mem-backend '%s' is not registered (known: %s)",
                      value.c_str(), known.c_str());
            }
            opts.mem_backend = value;
        } else if (flagValue(argc, argv, i, "--coherence", value)) {
            const auto names = coherencePolicyNames();
            if (std::find(names.begin(), names.end(), value) ==
                names.end()) {
                std::string known;
                for (const auto &n : names)
                    known += (known.empty() ? "" : ", ") + n;
                fatal("--coherence '%s' is not registered (known: %s)",
                      value.c_str(), known.c_str());
            }
            opts.coherence = value;
        } else if (flagValue(argc, argv, i, "--shards", value)) {
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 1,
                     "--shards wants a positive integer, got '%s'",
                     value.c_str());
            opts.shards = static_cast<unsigned>(n);
        } else if (flagValue(argc, argv, i, "--topology", value)) {
            Topology t;
            if (!parseTopology(value, t)) {
                std::string known;
                for (const auto &n : topologyNames())
                    known += (known.empty() ? "" : ", ") + n;
                fatal("--topology '%s' is not a topology (known: %s)",
                      value.c_str(), known.c_str());
            }
            opts.topology = value;
        } else if (flagValue(argc, argv, i, "--cubes", value)) {
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 1 ||
                         !isPowerOf2(static_cast<std::uint64_t>(n)),
                     "--cubes wants a positive power of two, got '%s'",
                     value.c_str());
            opts.cubes = static_cast<unsigned>(n);
        } else if (flagValue(argc, argv, i, "--pmu-shards", value)) {
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 1 ||
                         !isPowerOf2(static_cast<std::uint64_t>(n)),
                     "--pmu-shards wants a positive power of two, "
                     "got '%s'",
                     value.c_str());
            opts.pmu_shards = static_cast<unsigned>(n);
        } else if (flagValue(argc, argv, i, "--pei-batch", value)) {
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 1 || n > 64,
                     "--pei-batch wants an integer in [1, 64], got '%s'",
                     value.c_str());
            opts.pei_batch = static_cast<unsigned>(n);
        } else if (flagValue(argc, argv, i, "--batch-window-ticks",
                             value)) {
            char *end = nullptr;
            const long long n = std::strtoll(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 1,
                     "--batch-window-ticks wants a positive integer, "
                     "got '%s'",
                     value.c_str());
            opts.batch_window_ticks = static_cast<std::uint64_t>(n);
        } else if (flagValue(argc, argv, i, "--queue-depth", value)) {
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            fatal_if(!end || *end != '\0' || n < 0,
                     "--queue-depth wants a non-negative integer, "
                     "got '%s'",
                     value.c_str());
            opts.queue_depth = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--list") == 0) {
            opts.list = true;
        } else if (std::strcmp(argv[i], "--no-progress") == 0) {
            opts.progress = false;
        }
    }
    return opts;
}

unsigned
resolveWorkerCount(const SweepOptions &opts)
{
    if (opts.jobs)
        return opts.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace pei
