#include "worker_pool.hh"

#include <chrono>
#include <mutex>
#include <thread>

#include "driver/job_queue.hh"

namespace pei
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Shared state between one worker and the watchdog.  The slot mutex
 * orders the watchdog's requestStop against the worker destroying
 * the watched EventQueue (unwatch locks the same mutex), so the
 * watchdog never pokes a dead queue.
 */
struct Slot
{
    std::mutex mutex;
    EventQueue *eq = nullptr;            ///< queue of the active job
    Clock::time_point deadline;          ///< valid while armed
    bool armed = false;                  ///< a job is running
    bool timed_out = false;              ///< watchdog verdict
};

/** JobCtx implementation bound to one worker slot. */
class SlotCtx : public JobCtx
{
  public:
    SlotCtx(Slot &slot, std::size_t index) : slot(slot), index_(index) {}

    std::size_t index() const override { return index_; }

    void
    watch(EventQueue &eq) override
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        slot.eq = &eq;
        // A job flagged before it registered its queue (setup alone
        // blew the deadline) is cancelled on registration instead of
        // waiting for the next watchdog pass.
        if (slot.timed_out)
            eq.requestStop();
    }

    void
    unwatch() override
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        slot.eq = nullptr;
    }

    bool
    timedOut() const override
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        return slot.timed_out;
    }

  private:
    Slot &slot;
    std::size_t index_;
};

} // namespace

WorkerPool::WorkerPool(unsigned workers, double timeout_s)
    : workers(workers ? workers : 1), timeout_s(timeout_s)
{}

std::vector<JobOutcome>
WorkerPool::run(const std::vector<Job> &jobs, const JobDoneFn &on_done)
{
    std::vector<JobOutcome> outcomes(jobs.size());

    // Skipped jobs never enter the queue; their outcomes are
    // emitted up front so `done/total` counts real work only.
    std::size_t runnable = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        outcomes[i].label = jobs[i].label;
        if (jobs[i].fn)
            ++runnable;
        else
            outcomes[i].status = JobStatus::Skipped;
    }

    JobQueue<std::size_t> queue(
        std::max<std::size_t>(2 * this->workers, 16));
    std::vector<Slot> slots(this->workers);

    std::mutex done_mutex;
    std::size_t done = 0;

    auto worker_loop = [&](unsigned wid) {
        Slot &slot = slots[wid];
        std::size_t idx;
        while (queue.pop(idx)) {
            {
                std::lock_guard<std::mutex> lock(slot.mutex);
                slot.armed = timeout_s > 0.0;
                slot.timed_out = false;
                slot.deadline =
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(timeout_s));
            }
            SlotCtx ctx(slot, idx);
            JobOutcome &out = outcomes[idx];
            const auto start = Clock::now();
            try {
                jobs[idx].fn(ctx);
                out.status = JobStatus::Ok;
            } catch (const SimulationStopped &) {
                out.status = ctx.timedOut() ? JobStatus::TimedOut
                                            : JobStatus::Failed;
                out.error = ctx.timedOut()
                                ? "exceeded per-job timeout"
                                : "simulation stopped";
            } catch (const std::exception &e) {
                out.status = JobStatus::Failed;
                out.error = e.what();
            } catch (...) {
                out.status = JobStatus::Failed;
                out.error = "unknown exception";
            }
            out.wall_seconds =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            {
                std::lock_guard<std::mutex> lock(slot.mutex);
                slot.armed = false;
                slot.eq = nullptr; // defensive: job forgot unwatch
            }
            {
                std::lock_guard<std::mutex> lock(done_mutex);
                ++done;
                if (on_done)
                    on_done(out, done, runnable);
            }
        }
    };

    {
        // Workers + watchdog live inside this scope; jthread joins on
        // destruction, and the watchdog's stop_token ends its loop.
        std::vector<std::jthread> threads;
        threads.reserve(this->workers + 1);
        for (unsigned w = 0; w < this->workers; ++w)
            threads.emplace_back(worker_loop, w);

        std::jthread watchdog([&](std::stop_token stop) {
            if (timeout_s <= 0.0)
                return;
            while (!stop.stop_requested()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                const auto now = Clock::now();
                for (Slot &slot : slots) {
                    std::lock_guard<std::mutex> lock(slot.mutex);
                    if (!slot.armed || slot.timed_out ||
                        now < slot.deadline) {
                        continue;
                    }
                    slot.timed_out = true;
                    if (slot.eq)
                        slot.eq->requestStop();
                }
            }
        });

        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (jobs[i].fn)
                queue.push(i);
        }
        queue.close();

        for (auto &t : threads)
            t.join();
        watchdog.request_stop();
    }

    return outcomes;
}

} // namespace pei
