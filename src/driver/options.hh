/**
 * @file
 * Command-line options shared by every sweep-driving binary:
 *
 *   --jobs N        worker threads (default: hardware_concurrency)
 *   --timeout-s S   per-job wall-clock timeout (default: none)
 *   --filter SUBSTR run only jobs whose label contains SUBSTR
 *   --list          print job labels and exit without running
 *   --no-progress   suppress the live progress line on stderr
 *   --mem-backend K main-memory backend (hmc | ddr | ideal)
 *   --coherence P   offload coherence policy (eager | lazy)
 *   --shards N      event-queue shards per simulated System
 *                   (1 = the sequential engine; sim/sharded_queue.hh)
 *   --topology T    off-chip interconnect (chain | ring | mesh)
 *   --cubes N       memory cubes on the interconnect (power of two)
 *   --pmu-shards N  address-partitioned PMU banks (power of two)
 *   --pei-batch N   PMU batching window size (1 = per-op dispatch)
 *   --batch-window-ticks T  max ticks a non-full window waits
 *   --queue-depth N vault-PCU issue-queue depth (0 = unqueued)
 *
 * Both "--flag value" and "--flag=value" spellings are accepted;
 * flags the sweep does not own (e.g. --stats-json) are ignored.
 */

#ifndef PEISIM_DRIVER_OPTIONS_HH
#define PEISIM_DRIVER_OPTIONS_HH

#include <cstdint>
#include <string>

namespace pei
{

struct SweepOptions
{
    unsigned jobs = 0;      ///< 0 = hardware_concurrency
    double timeout_s = 0.0; ///< 0 = no timeout
    std::string filter;     ///< empty = run everything
    /** Memory backend registry key; empty = each job's default. */
    std::string mem_backend;
    /** Coherence-policy registry key; empty = each job's default. */
    std::string coherence;
    /** Event-queue shards per System; 0 = each job's default (1). */
    unsigned shards = 0;
    /** Interconnect topology key; empty = each job's default. */
    std::string topology;
    /** Memory cubes on the interconnect; 0 = each job's default. */
    unsigned cubes = 0;
    /** PMU banks; 0 = each job's default (1, the shared PMU). */
    unsigned pmu_shards = 0;
    /** PMU batching window size; 0 = each job's default (1). */
    unsigned pei_batch = 0;
    /** Window timeout in ticks; 0 = each job's default. */
    std::uint64_t batch_window_ticks = 0;
    /** Vault-PCU issue-queue depth; 0 = each job's default (off). */
    unsigned queue_depth = 0;
    bool list = false;
    bool progress = true;
};

/** Parse the sweep flags out of @p argv (fatal on malformed value). */
SweepOptions sweepOptionsFromArgs(int argc, char **argv);

/** Worker count @p opts asks for (resolves 0 to the host's cores). */
unsigned resolveWorkerCount(const SweepOptions &opts);

} // namespace pei

#endif // PEISIM_DRIVER_OPTIONS_HH
