/**
 * @file
 * Bounded multi-producer/multi-consumer queue feeding the worker
 * pool.  A plain mutex + two condition variables: sweep dispatch is
 * job-granular (each pop admits an entire simulation), so queue
 * overhead is irrelevant and simplicity wins over lock-free designs.
 *
 * Lifecycle: producers push() until close(); consumers pop() until
 * it returns false (queue closed *and* drained).  push() blocks
 * while the queue is full, which backpressures producers that
 * enumerate jobs faster than workers retire them.
 */

#ifndef PEISIM_DRIVER_JOB_QUEUE_HH
#define PEISIM_DRIVER_JOB_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "common/logging.hh"

namespace pei
{

template <typename T>
class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity) : capacity(capacity)
    {
        fatal_if(capacity == 0, "JobQueue needs a nonzero capacity");
    }

    /**
     * Enqueue @p item, blocking while the queue is full.
     * @return false if the queue was closed (item not enqueued).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex);
        not_full.wait(lock,
                      [this] { return items.size() < capacity || closed; });
        if (closed)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        not_empty.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the queue is empty.
     * @return false once the queue is closed and drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex);
        not_empty.wait(lock, [this] { return !items.empty() || closed; });
        if (items.empty())
            return false;
        out = std::move(items.front());
        items.pop_front();
        lock.unlock();
        not_full.notify_one();
        return true;
    }

    /** No more pushes; consumers drain the remainder, then pop()
     *  returns false.  Idempotent. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            closed = true;
        }
        not_empty.notify_all();
        not_full.notify_all();
    }

    /** Snapshot of the current depth (racy; for tests/telemetry). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return items.size();
    }

  private:
    const std::size_t capacity;
    mutable std::mutex mutex;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<T> items;
    bool closed = false;
};

} // namespace pei

#endif // PEISIM_DRIVER_JOB_QUEUE_HH
