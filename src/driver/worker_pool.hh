/**
 * @file
 * WorkerPool: executes a batch of independent jobs on N host
 * threads with per-job wall-clock timeouts and failure isolation.
 *
 * Determinism contract: outcomes are keyed by submission index —
 * outcomes[i] always describes jobs[i] — so aggregation order is
 * independent of worker count and thread interleaving.  Only
 * wall-clock fields vary between runs.
 *
 * Timeouts are cooperative: a watchdog thread flags jobs whose
 * deadline passed and calls EventQueue::requestStop on the queue the
 * job registered via JobCtx::watch; the simulation's run loop then
 * throws SimulationStopped at the next event boundary.  A job that
 * never registers a queue cannot be cancelled.
 */

#ifndef PEISIM_DRIVER_WORKER_POOL_HH
#define PEISIM_DRIVER_WORKER_POOL_HH

#include <functional>
#include <vector>

#include "driver/job.hh"

namespace pei
{

/** Called after each job completes: (outcome, jobs done, jobs total).
 *  Serialized by the pool; safe to print from. */
using JobDoneFn =
    std::function<void(const JobOutcome &, std::size_t, std::size_t)>;

class WorkerPool
{
  public:
    /**
     * @param workers   concurrent worker threads (>= 1)
     * @param timeout_s per-job wall-clock timeout; 0 = unlimited
     */
    WorkerPool(unsigned workers, double timeout_s);

    /**
     * Run every job in @p jobs (null-fn jobs are emitted as Skipped
     * without dispatch) and return their outcomes in submission
     * order.  @p on_done, if set, observes completions as they
     * happen (completion order, not submission order).
     */
    std::vector<JobOutcome> run(const std::vector<Job> &jobs,
                                const JobDoneFn &on_done = nullptr);

  private:
    const unsigned workers;
    const double timeout_s;
};

} // namespace pei

#endif // PEISIM_DRIVER_WORKER_POOL_HH
