#include "progress.hh"

#include <cstdio>

#include <unistd.h>

namespace pei
{

ProgressPrinter::ProgressPrinter(bool enabled)
    : enabled(enabled), is_tty(isatty(fileno(stderr)) != 0),
      start(std::chrono::steady_clock::now())
{}

void
ProgressPrinter::jobDone(const JobOutcome &outcome, std::size_t done,
                         std::size_t total)
{
    if (outcome.status == JobStatus::Failed)
        ++failures;
    else if (outcome.status == JobStatus::TimedOut)
        ++timeouts;
    if (!enabled)
        return;

    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total - done)
             : 0.0;

    if (is_tty) {
        std::fprintf(stderr,
                     "\r[%zu/%zu] fail:%zu timeout:%zu eta:%.0fs  "
                     "%-40.40s",
                     done, total, failures, timeouts, eta,
                     outcome.label.c_str());
        dirty_line = true;
    } else {
        std::fprintf(stderr,
                     "[%zu/%zu] %-9s %s (%.2fs) fail:%zu timeout:%zu "
                     "eta:%.0fs\n",
                     done, total, jobStatusName(outcome.status),
                     outcome.label.c_str(), outcome.wall_seconds,
                     failures, timeouts, eta);
    }
    std::fflush(stderr);
}

void
ProgressPrinter::finish()
{
    if (enabled && dirty_line) {
        std::fprintf(stderr, "\n");
        std::fflush(stderr);
        dirty_line = false;
    }
}

} // namespace pei
