/**
 * @file
 * Job model of the experiment-sweep driver (peisim_driver).
 *
 * A Job is one independent unit of work — typically one complete
 * simulation (System construction, workload setup, event loop,
 * validation) — executed on a host worker thread.  Jobs are isolated:
 * a throwing job produces a structured JobOutcome and the sweep
 * continues; a job that registers its EventQueue via JobCtx::watch
 * can be cancelled cooperatively when it exceeds the sweep's
 * per-job wall-clock timeout.
 */

#ifndef PEISIM_DRIVER_JOB_HH
#define PEISIM_DRIVER_JOB_HH

#include <cstddef>
#include <functional>
#include <string>

#include "sim/event_queue.hh"

namespace pei
{

/** Terminal state of one job. */
enum class JobStatus
{
    Ok,       ///< ran to completion
    Failed,   ///< threw (validation/audit failure, exception)
    TimedOut, ///< cancelled after exceeding the per-job timeout
    Skipped,  ///< filtered out (--filter) or never submitted
};

const char *jobStatusName(JobStatus status);

/**
 * Per-job services the worker pool hands to the running job.
 * Implemented by the pool; jobs only consume the interface.
 */
class JobCtx
{
  public:
    virtual ~JobCtx() = default;

    /** Submission index of this job (stable aggregation key). */
    virtual std::size_t index() const = 0;

    /**
     * Register the event queue driving this job's simulation so the
     * pool's watchdog can cancel it on timeout (via
     * EventQueue::requestStop).  A job that never calls watch cannot
     * be cancelled — it will run to completion even past its
     * deadline.  Must be balanced by unwatch() before the queue is
     * destroyed; prefer WatchGuard.
     */
    virtual void watch(EventQueue &eq) = 0;

    /** Deregister the queue passed to watch(). */
    virtual void unwatch() = 0;

    /** True once the watchdog flagged this job as over deadline. */
    virtual bool timedOut() const = 0;
};

/** RAII watch()/unwatch() pairing scoped to the simulation's life. */
class WatchGuard
{
  public:
    WatchGuard(JobCtx &ctx, EventQueue &eq) : ctx(ctx) { ctx.watch(eq); }
    ~WatchGuard() { ctx.unwatch(); }

    WatchGuard(const WatchGuard &) = delete;
    WatchGuard &operator=(const WatchGuard &) = delete;

  private:
    JobCtx &ctx;
};

/**
 * One schedulable unit.  A null fn marks the job as skipped: the
 * pool emits a Skipped outcome without dispatching it (how --filter
 * removes jobs while keeping submission indices stable).
 */
struct Job
{
    std::string label;               ///< unique, human-readable; filter key
    std::function<void(JobCtx &)> fn; ///< throwing = job failure
};

/** Structured result of one job, reported in submission order. */
struct JobOutcome
{
    JobStatus status = JobStatus::Skipped;
    std::string label;
    std::string error;        ///< diagnostic for Failed/TimedOut
    double wall_seconds = 0.0; ///< host wall-clock of the whole job
};

} // namespace pei

#endif // PEISIM_DRIVER_JOB_HH
