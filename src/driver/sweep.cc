#include "sweep.hh"

#include <chrono>
#include <sstream>

#include "driver/progress.hh"
#include "driver/worker_pool.hh"
#include "runtime/report.hh"

namespace pei
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Skipped: return "skipped";
    }
    return "?";
}

std::string
failureRecordJson(const JobOutcome &outcome)
{
    std::ostringstream os;
    os << "{\"label\":\"" << jsonEscape(outcome.label) << "\""
       << ",\"status\":\"" << jobStatusName(outcome.status) << "\""
       << ",\"error\":\"" << jsonEscape(outcome.error) << "\""
       << ",\"wall_seconds\":" << outcome.wall_seconds << "}";
    return os.str();
}

std::size_t
Sweep::add(std::string label, std::function<void(JobCtx &)> fn)
{
    jobs.push_back(Job{std::move(label), std::move(fn)});
    return jobs.size() - 1;
}

std::vector<std::string>
Sweep::labels() const
{
    std::vector<std::string> out;
    out.reserve(jobs.size());
    for (const Job &job : jobs)
        out.push_back(job.label);
    return out;
}

SweepReport
Sweep::run(const SweepOptions &opts)
{
    // --filter drops jobs by nulling their fn: submission indices
    // stay stable, so result slots still line up with handles.
    std::vector<Job> filtered = jobs;
    if (!opts.filter.empty()) {
        for (Job &job : filtered) {
            if (job.label.find(opts.filter) == std::string::npos)
                job.fn = nullptr;
        }
    }

    ProgressPrinter progress(opts.progress);
    WorkerPool pool(resolveWorkerCount(opts), opts.timeout_s);

    const auto start = std::chrono::steady_clock::now();
    SweepReport report;
    report.outcomes = pool.run(
        filtered,
        [&progress](const JobOutcome &outcome, std::size_t done,
                    std::size_t total) {
            progress.jobDone(outcome, done, total);
        });
    progress.finish();
    report.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();

    for (const JobOutcome &outcome : report.outcomes) {
        switch (outcome.status) {
          case JobStatus::Ok: ++report.ok; break;
          case JobStatus::Failed: ++report.failed; break;
          case JobStatus::TimedOut: ++report.timed_out; break;
          case JobStatus::Skipped: ++report.skipped; break;
        }
    }
    return report;
}

} // namespace pei
