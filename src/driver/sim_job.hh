/**
 * @file
 * Simulation jobs: the bridge between the generic driver layer
 * (Job/WorkerPool/Sweep) and the simulator (System/Runtime/Workload).
 *
 * runSimJob builds a fresh System per job, runs the workload under
 * the job's timeout watch, validates the result, audits the stats,
 * and returns every figure-level metric plus the stats-v2 record —
 * all produced inside the worker thread so the caller only renders.
 */

#ifndef PEISIM_DRIVER_SIM_JOB_HH
#define PEISIM_DRIVER_SIM_JOB_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "driver/job.hh"
#include "energy/energy_model.hh"
#include "workloads/workload.hh"

namespace pei
{

/** Metrics of one simulation run. */
struct RunResult
{
    Tick ticks = 0;
    std::uint64_t peis_host = 0;
    std::uint64_t peis_mem = 0;
    std::uint64_t offchip_req_bytes = 0;
    std::uint64_t offchip_res_bytes = 0;
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writes = 0;
    std::uint64_t retired_ops = 0;
    std::uint64_t events = 0;    ///< simulator events executed
    double wall_seconds = 0.0;   ///< host wall-clock time of the run
    EnergyBreakdown energy;
    std::map<std::string, std::uint64_t> stats;

    /** How the job ended; only Ok results carry valid metrics. */
    JobStatus status = JobStatus::Skipped;
    std::string error;          ///< failure message when !ok()
    std::string stats_record;   ///< stats-v2 run record JSON

    /**
     * Optional job-specific JSON payload (e.g. one serving sweep
     * point).  Filled by custom jobs; the bench renders these in
     * submission order, so derived documents stay byte-identical
     * for any --jobs.  Must not contain wall-clock-derived fields.
     */
    std::string aux_json;

    bool ok() const { return status == JobStatus::Ok; }

    std::uint64_t offchipBytes() const
    {
        return offchip_req_bytes + offchip_res_bytes;
    }

    std::uint64_t dramAccesses() const { return dram_reads + dram_writes; }

    double pimFraction() const
    {
        const double total =
            static_cast<double>(peis_host) + static_cast<double>(peis_mem);
        return total > 0 ? static_cast<double>(peis_mem) / total : 0.0;
    }

    /** Sum-of-IPCs proxy: retired ops per tick (×1000 for scale). */
    double
    opsPerKilotick() const
    {
        return ticks ? 1000.0 * static_cast<double>(retired_ops) /
                           static_cast<double>(ticks)
                     : 0.0;
    }
};

/** Hook to tweak the SystemConfig before construction. */
using ConfigTweak = std::function<void(SystemConfig &)>;

/** Description of one simulation to run inside a worker. */
struct SimJob
{
    std::string label;
    std::function<std::unique_ptr<Workload>()> factory;
    ExecMode mode = ExecMode::HostOnly;
    /** Memory backend registry key; empty = the config's default.
     *  Applied before @ref tweak so a tweak can still override. */
    std::string mem_backend;
    /** Coherence-policy registry key; empty = the config's default
     *  (eager).  Applied before @ref tweak, like mem_backend. */
    std::string coherence;
    /** Event-queue shards; 0 = the config's default (sequential).
     *  Applied before @ref tweak so a tweak can still override. */
    unsigned shards = 0;
    /** Interconnect topology key; empty = the config's default
     *  (chain).  Applied before @ref tweak, like mem_backend. */
    std::string topology;
    /** Memory cubes on the interconnect; 0 = the config's default. */
    unsigned cubes = 0;
    /** PMU banks; 0 = the config's default (1, the shared PMU). */
    unsigned pmu_shards = 0;
    /** PMU batching window size; 0 = the config's default (1). */
    unsigned pei_batch = 0;
    /** Window timeout in ticks; 0 = the config's default. */
    std::uint64_t batch_window_ticks = 0;
    /** Vault-PCU issue-queue depth; 0 = the config's default (off). */
    unsigned queue_depth = 0;
    ConfigTweak tweak;
    unsigned threads = 0;  ///< 0 = one coroutine per core

    /**
     * Escape hatch for benches that drive Runtime themselves (e.g.
     * two workloads sharing one System): when set, runSimJob just
     * invokes it.  The custom fn must watch its EventQueue(s) via
     * WatchGuard and fill the RunResult itself (collectRun helps).
     */
    std::function<RunResult(JobCtx &)> custom;
};

/**
 * Audit @p sys's stats (throws std::runtime_error listing every
 * violation), then fill @p r's metrics, energy breakdown, stats
 * snapshot, and stats-v2 record from it.  Does not set r.status.
 */
void collectRun(System &sys, RunResult &r, double wall_seconds,
                const std::string &label);

/**
 * Execute @p job to completion inside the current worker thread.
 * Validation failures and audit violations throw (the WorkerPool
 * turns them into Failed outcomes); timeouts propagate as
 * SimulationStopped.  Returns a fully-populated Ok result.
 */
RunResult runSimJob(const SimJob &job, JobCtx &ctx);

} // namespace pei

#endif // PEISIM_DRIVER_SIM_JOB_HH
