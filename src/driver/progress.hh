/**
 * @file
 * Live sweep progress on stderr: done/total, failure counts, ETA.
 *
 * On a terminal the line rewrites in place (\r); otherwise (CI logs,
 * redirects) each completion prints its own line so the log stays
 * readable.  Progress goes to stderr only — stdout carries the
 * rendered figure tables and must stay byte-identical across
 * --jobs settings.
 */

#ifndef PEISIM_DRIVER_PROGRESS_HH
#define PEISIM_DRIVER_PROGRESS_HH

#include <chrono>
#include <cstddef>

#include "driver/job.hh"

namespace pei
{

class ProgressPrinter
{
  public:
    explicit ProgressPrinter(bool enabled);

    /** Report one completed job (called serialized by the pool). */
    void jobDone(const JobOutcome &outcome, std::size_t done,
                 std::size_t total);

    /** Terminate the in-place line (tty mode) once the sweep ends. */
    void finish();

  private:
    const bool enabled;
    const bool is_tty;
    std::chrono::steady_clock::time_point start;
    std::size_t failures = 0;
    std::size_t timeouts = 0;
    bool dirty_line = false;
};

} // namespace pei

#endif // PEISIM_DRIVER_PROGRESS_HH
