/**
 * @file
 * Sweep: the job-level experiment orchestrator.
 *
 * Benches describe their whole figure as a list of labelled jobs,
 * then hand the list to Sweep::run, which executes them across a
 * WorkerPool with per-job timeouts and failure isolation and returns
 * every outcome keyed by submission index.  Rendering happens
 * afterwards, from the collected results, so the emitted tables and
 * merged stats-v2 documents are byte-identical regardless of
 * `--jobs N` or thread interleaving.
 */

#ifndef PEISIM_DRIVER_SWEEP_HH
#define PEISIM_DRIVER_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "driver/job.hh"
#include "driver/options.hh"

namespace pei
{

/** Aggregated result of one sweep; outcomes are in submission order. */
struct SweepReport
{
    std::vector<JobOutcome> outcomes;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timed_out = 0;
    std::size_t skipped = 0;
    double wall_seconds = 0.0;

    /** True when no job failed or timed out (skips are fine). */
    bool clean() const { return failed == 0 && timed_out == 0; }
};

/**
 * Failure record of @p outcome for the stats-v2 "failures" array:
 * {"label", "status", "error", "wall_seconds"}.
 */
std::string failureRecordJson(const JobOutcome &outcome);

class Sweep
{
  public:
    /** Append a job; returns its submission index. */
    std::size_t add(std::string label, std::function<void(JobCtx &)> fn);

    /** Labels of all added jobs, in submission order. */
    std::vector<std::string> labels() const;

    std::size_t size() const { return jobs.size(); }

    /**
     * Execute every job whose label passes opts.filter (substring
     * match; filtered-out jobs yield Skipped outcomes) on
     * resolveWorkerCount(opts) workers and return the report.
     * Ignores opts.list — callers decide how to render a listing.
     */
    SweepReport run(const SweepOptions &opts);

  private:
    std::vector<Job> jobs;
};

} // namespace pei

#endif // PEISIM_DRIVER_SWEEP_HH
