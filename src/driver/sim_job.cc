#include "sim_job.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "net/topology.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"

namespace pei
{

void
collectRun(System &sys, RunResult &r, double wall_seconds,
           const std::string &label)
{
    // Every run ends with a stats audit: a figure over inconsistent
    // accounting is as meaningless as one over wrong results.
    const auto violations = sys.stats().audit();
    if (!violations.empty()) {
        std::ostringstream os;
        os << "stats audit failed:";
        for (const auto &v : violations)
            os << " [" << v << "]";
        throw std::runtime_error(os.str());
    }

    r.ticks = sys.now();
    r.wall_seconds = wall_seconds;
    // Sum over every shard (identical to the host queue's count when
    // shards == 1, so sequential run records are unchanged).
    r.events = sys.shardedQueue().executedCount();
    r.peis_host = sys.pmu().peisHost();
    r.peis_mem = sys.pmu().peisMem();
    r.offchip_req_bytes = sys.mem().requestBytes();
    r.offchip_res_bytes = sys.mem().responseBytes();
    r.dram_reads = sys.mem().memReads();
    r.dram_writes = sys.mem().memWrites();
    r.retired_ops = 0;
    for (unsigned c = 0; c < sys.numCores(); ++c)
        r.retired_ops += sys.core(c).retiredOps();
    r.energy = computeEnergy(sys.stats());
    r.stats = sys.stats().snapshot();
    r.stats_record = runRecordJson(sys, wall_seconds, label);
}

RunResult
runSimJob(const SimJob &job, JobCtx &ctx)
{
    if (job.custom) {
        RunResult r = job.custom(ctx);
        r.status = JobStatus::Ok;
        return r;
    }

    SystemConfig cfg = SystemConfig::scaled(job.mode);
    if (!job.mem_backend.empty())
        cfg.mem_backend = job.mem_backend;
    if (!job.coherence.empty())
        cfg.pim.coherence.policy = job.coherence;
    if (job.shards)
        cfg.shards = job.shards;
    if (!job.topology.empty()) {
        const bool known = parseTopology(job.topology, cfg.hmc.topology);
        fatal_if(!known, "job '%s': unknown topology '%s'",
                 job.label.c_str(), job.topology.c_str());
    }
    if (job.cubes)
        cfg.hmc.num_cubes = job.cubes;
    if (job.pmu_shards)
        cfg.pim.pmu_shards = job.pmu_shards;
    if (job.pei_batch)
        cfg.pim.pei_batch = job.pei_batch;
    if (job.batch_window_ticks)
        cfg.pim.batch_window_ticks = job.batch_window_ticks;
    if (job.queue_depth)
        cfg.pim.pcu.issue_queue_depth = job.queue_depth;
    if (job.tweak)
        job.tweak(cfg);
    System sys(cfg);
    Runtime rt(sys);

    std::unique_ptr<Workload> w = job.factory();
    w->setup(rt);
    w->spawn(rt, job.threads ? job.threads : sys.numCores());

    RunResult r;
    double wall = 0.0;
    {
        WatchGuard watch(ctx, sys.eventQueue());
        const auto wall_start = std::chrono::steady_clock::now();
        rt.run();
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
    }

    std::string msg;
    if (!w->validate(sys, msg)) {
        throw std::runtime_error(std::string(w->name()) +
                                 " validation failed: " + msg);
    }

    collectRun(sys, r, wall,
               std::string(w->name()) + "/" + execModeName(job.mode));
    r.status = JobStatus::Ok;
    return r;
}

} // namespace pei
