/**
 * @file
 * Locality monitor: the PMU structure that predicts per-PEI data
 * locality (paper §4.3).
 *
 * A tag array with the same sets/ways as the last-level cache, but
 * holding only a valid bit, a 10-bit folded-XOR *partial* tag, LRU
 * replacement info, and a 1-bit ignore flag.  It is updated on every
 * L3 access *and* whenever a PIM operation is issued to memory, so
 * the locality of PEI targets is tracked regardless of where they
 * execute.  A PEI whose target hits in the monitor is predicted to
 * have high locality and is executed host-side — except the first
 * hit on an entry allocated by a PIM issue, which the ignore flag
 * suppresses (first-touch PIM allocations are not yet "hot").
 */

#ifndef PEISIM_PIM_LOCALITY_MONITOR_HH
#define PEISIM_PIM_LOCALITY_MONITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pei
{

/** The PMU's locality-prediction tag array. */
class LocalityMonitor
{
  public:
    /**
     * @param sets/@p ways   mirror the L3 tag-array organization.
     * @param partial_tag_bits  width of the folded-XOR partial tag.
     * @param use_ignore_flag   ablation hook for the ignore bit.
     */
    LocalityMonitor(unsigned sets, unsigned ways, StatRegistry &stats,
                    unsigned partial_tag_bits = 10,
                    bool use_ignore_flag = true,
                    const std::string &name = "loc_mon");

    /**
     * PEI-issue query: does the target block have high locality?
     * Consumes the first hit on ignore-flagged entries.
     */
    bool lookupForPei(Addr block);

    /** Update on a last-level cache access to @p block. */
    void onL3Access(Addr block);

    /** Update on a PIM operation being issued to memory. */
    void onPimIssue(Addr block);

    /** Access latency in ticks (CACTI-derived 3 cycles by default). */
    Ticks accessLatency() const { return latency; }
    void setAccessLatency(Ticks t) { latency = t; }

    std::uint64_t lookups() const { return stat_lookups.value(); }
    std::uint64_t hits() const { return stat_hits.value(); }
    std::uint64_t misses() const { return stat_misses.value(); }
    std::uint64_t ignoredHits() const { return stat_ignored_hits.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        bool ignore = false;
        std::uint32_t partial_tag = 0; ///< up to 32 folded tag bits
        std::uint64_t last_use = 0;
    };

    unsigned setOf(Addr block) const
    {
        return static_cast<unsigned>(block & (sets - 1));
    }

    std::uint32_t
    tagOf(Addr block) const
    {
        return static_cast<std::uint32_t>(
            foldedXor(block >> set_bits, tag_bits));
    }

    Entry *find(Addr block);
    void insertOrPromote(Addr block, bool from_pim);

    unsigned sets;
    unsigned ways;
    unsigned set_bits;
    unsigned tag_bits;
    bool use_ignore_flag;
    Ticks latency = 3;
    std::uint64_t use_clock = 0;
    std::vector<Entry> array;

    Counter stat_lookups;
    Counter stat_hits;
    Counter stat_misses;
    Counter stat_ignored_hits;
};

} // namespace pei

#endif // PEISIM_PIM_LOCALITY_MONITOR_HH
