#include "pim_directory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pei
{

PimDirectory::PimDirectory(EventQueue &eq, unsigned num_entries,
                           Ticks access_latency, StatRegistry &stats,
                           const std::string &name)
    : eq(eq), num_entries(num_entries), access_latency(access_latency)
{
    if (num_entries > 0) {
        fatal_if(!isPowerOf2(num_entries),
                 "PIM directory entry count must be a power of two");
        index_bits = floorLog2(num_entries);
        // Sized construction (not resize): Entry holds a deque of
        // move-only waiters, whose non-noexcept move makes resize's
        // relocation path demand a (deleted) copy constructor.
        entries = std::vector<Entry>(num_entries);
    }
    stats.add(name + ".acquires", &stat_acquires);
    stats.add(name + ".releases", &stat_releases);
    stats.add(name + ".conflicts", &stat_conflicts);
    stats.add(name + ".false_conflicts", &stat_false_conflicts);
    stats.add(name + ".pfences", &stat_pfences);
    stats.addInvariant(
        name + ".acquires == releases",
        [this] {
            if (stat_acquires.value() == stat_releases.value())
                return std::string();
            return "acquires=" + std::to_string(stat_acquires.value()) +
                   " != releases=" + std::to_string(stat_releases.value());
        });
    stats.addInvariant(
        name + ".no writers in flight at end of sim",
        [this] {
            if (writers_in_flight == 0)
                return std::string();
            return std::to_string(writers_in_flight) +
                   " writer(s) never retired";
        });
}

std::size_t
PimDirectory::indexOf(Addr block) const
{
    return static_cast<std::size_t>(foldedXor(block, index_bits));
}

PimDirectory::Entry &
PimDirectory::entryFor(Addr block)
{
    if (num_entries == 0)
        return ideal_map[block]; // ideal: exact per-block entry
    return entries[indexOf(block)];
}

void
PimDirectory::grantLocked(Entry &e, Waiter w)
{
    if (w.writer)
        e.active_writer = true;
    else
        ++e.active_readers;
    e.holder_blocks.push_back(w.block);
    if (access_latency == 0)
        eq.schedule(0, std::move(w.cb));
    else
        eq.schedule(access_latency, std::move(w.cb));
}

void
PimDirectory::registerWriter()
{
    ++writers_in_flight;
}

void
PimDirectory::acquire(Addr block, bool writer, Callback granted,
                      bool writer_registered)
{
    ++stat_acquires;
    if (writer && !writer_registered)
        ++writers_in_flight;

    Entry &e = entryFor(block);
    const bool compatible =
        writer ? (!e.active_writer && e.active_readers == 0)
               : !e.active_writer;
    // FIFO fairness: nobody overtakes a queued waiter.  A queued
    // writer therefore blocks later readers (the paper's
    // "non-readable" bit) and a queued reader behind a writer keeps
    // its place (the "non-writeable" bit analogue).
    if (compatible && e.queue.empty()) {
        grantLocked(e, Waiter{writer, block, std::move(granted)});
        return;
    }

    ++stat_conflicts;
    const bool same_block_held =
        std::find(e.holder_blocks.begin(), e.holder_blocks.end(), block) !=
            e.holder_blocks.end() ||
        std::any_of(e.queue.begin(), e.queue.end(),
                    [block](const Waiter &w) { return w.block == block; });
    if (!same_block_held)
        ++stat_false_conflicts;

    e.queue.push_back(Waiter{writer, block, std::move(granted)});
}

void
PimDirectory::drainEntry(Entry &e)
{
    while (!e.queue.empty()) {
        Waiter &front = e.queue.front();
        if (front.writer) {
            if (e.active_writer || e.active_readers > 0)
                break;
            Waiter w = std::move(front);
            e.queue.pop_front();
            grantLocked(e, std::move(w));
            break; // only one writer may hold the entry
        }
        if (e.active_writer)
            break;
        Waiter w = std::move(front);
        e.queue.pop_front();
        grantLocked(e, std::move(w)); // grant consecutive readers together
    }
}

void
PimDirectory::release(Addr block, bool writer, bool count_writer)
{
    ++release_calls;
    if (release_calls == inject_skip_release)
        return; // fault injection: leak this lock (checker self-test)

    ++stat_releases;
    Entry &e = entryFor(block);
    auto holder =
        std::find(e.holder_blocks.begin(), e.holder_blocks.end(), block);
    panic_if(holder == e.holder_blocks.end(),
             "PIM directory release without matching acquire (0x%llx)",
             static_cast<unsigned long long>(block));
    e.holder_blocks.erase(holder);

    if (writer) {
        panic_if(!e.active_writer, "writer release without active writer");
        e.active_writer = false;
    } else {
        panic_if(e.active_readers == 0, "reader release underflow");
        --e.active_readers;
    }

    drainEntry(e);

    if (num_entries == 0 && !e.active_writer && e.active_readers == 0 &&
        e.queue.empty()) {
        ideal_map.erase(block);
    }

    if (writer && count_writer)
        writerDone();
}

void
PimDirectory::writerDone()
{
    panic_if(writers_in_flight == 0, "writer completion underflow");
    --writers_in_flight;
    if (writers_in_flight == 0 && !pfence_waiters.empty()) {
        auto waiters = std::move(pfence_waiters);
        pfence_waiters.clear();
        for (auto &w : waiters)
            eq.schedule(0, std::move(w));
    }
}

std::string
PimDirectory::probeViolation() const
{
    auto check = [](const Entry &e, const std::string &which) {
        if (e.active_writer && e.active_readers > 0) {
            return which + ": writer and " +
                   std::to_string(e.active_readers) +
                   " reader(s) hold the entry together";
        }
        const std::size_t holders =
            e.active_readers + (e.active_writer ? 1u : 0u);
        if (e.holder_blocks.size() != holders) {
            return which + ": " + std::to_string(e.holder_blocks.size()) +
                   " holder block(s) recorded for " +
                   std::to_string(holders) + " grant(s)";
        }
        if (!e.queue.empty() && holders == 0) {
            return which + ": " + std::to_string(e.queue.size()) +
                   " waiter(s) queued behind a free entry";
        }
        return std::string();
    };

    for (std::size_t i = 0; i < entries.size(); ++i) {
        std::string v = check(entries[i], "entry " + std::to_string(i));
        if (!v.empty())
            return v;
    }
    for (const auto &[block, e] : ideal_map) {
        std::string v = check(
            e, "ideal entry for block " + std::to_string(block));
        if (!v.empty())
            return v;
    }
    return std::string();
}

void
PimDirectory::pfence(Callback done)
{
    ++stat_pfences;
    if (writers_in_flight == 0) {
        eq.schedule(access_latency, std::move(done));
        return;
    }
    pfence_waiters.push_back(std::move(done));
}

} // namespace pei
