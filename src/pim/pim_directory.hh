/**
 * @file
 * PIM directory: atomicity management for in-flight PEIs (paper
 * §4.3).
 *
 * A direct-mapped, tag-less table of reader-writer locks indexed by
 * the XOR-folded target block address.  False positives (two PEIs
 * with different targets sharing an entry) only serialize execution;
 * false negatives cannot happen because every PEI acquires the entry
 * its block folds to.  Grants are FIFO-fair per entry: a waiting
 * writer marks the entry non-readable, so later readers cannot
 * starve it (and vice versa).
 *
 * Entry count 0 selects the *ideal* directory used by the Ideal-Host
 * configuration and the §7.6 ablation: exact per-block tracking with
 * unlimited entries and zero access latency.
 */

#ifndef PEISIM_PIM_PIM_DIRECTORY_HH
#define PEISIM_PIM_PIM_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/bitutil.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"

namespace pei
{

/** Reader-writer lock table guarding PEI atomicity. */
class PimDirectory
{
  public:
    using Callback = Continuation;

    /**
     * @param entries  number of direct-mapped entries (power of two),
     *                 or 0 for the ideal (exact, unlimited) directory.
     * @param access_latency  lookup latency in ticks (0 when ideal).
     */
    PimDirectory(EventQueue &eq, unsigned entries, Ticks access_latency,
                 StatRegistry &stats, const std::string &name = "pim_dir");

    /**
     * Register a writer PEI for pfence tracking *at issue time*,
     * before its directory acquisition (which may trail the issue by
     * a TLB-miss penalty or the PMU crossbar hop).  The matching
     * release() retires the writer, so pfence covers the whole
     * issue-to-retire pipeline.  Callers that pre-register must pass
     * writer_registered = true to acquire().
     */
    void registerWriter();

    /**
     * Acquire the lock covering @p block (a block address) for a
     * reader or writer PEI; @p granted fires (after the directory
     * access latency) once the PEI may execute atomically.
     * @p writer_registered marks a writer already counted in flight
     * via registerWriter().
     */
    void acquire(Addr block, bool writer, Callback granted,
                 bool writer_registered = false);

    /**
     * Release a previously granted acquisition.  A writer PEI
     * holding several element locks passes count_writer = true on
     * exactly one of its releases (the one on the bank that
     * registerWriter()ed it); the extra releases must not retire the
     * writer again.
     */
    void release(Addr block, bool writer, bool count_writer = true);

    /**
     * Stable ordering/dedup key of the entry @p block folds to (the
     * block itself in ideal mode, the direct-mapped index
     * otherwise).  Multi-block PEIs acquire their element locks in
     * ascending (bank, key) order — ordered acquisition over a
     * globally consistent key order cannot form a wait cycle — and
     * acquire each distinct entry once (re-acquiring an aliased
     * entry as a writer would self-deadlock).
     */
    Addr entryKey(Addr block) const
    {
        return num_entries == 0 ? block
                                : static_cast<Addr>(indexOf(block));
    }

    /**
     * pfence: @p done fires once every in-flight writer PEI issued
     * before this call has completed (all entries readable).
     */
    void pfence(Callback done);

    /** Directory access latency (exposed for the PMU's accounting). */
    Ticks accessLatency() const { return access_latency; }

    /** In-flight writer PEIs (granted or queued). */
    std::uint64_t inFlightWriters() const { return writers_in_flight; }

    /** Granted acquisitions / releases (aggregate-invariant hooks). */
    std::uint64_t acquires() const { return stat_acquires.value(); }
    std::uint64_t releases() const { return stat_releases.value(); }

    /** Acquisitions that had to wait behind a holder. */
    std::uint64_t conflicts() const { return stat_conflicts.value(); }

    /** Waits caused only by entry aliasing (different blocks). */
    std::uint64_t falseConflicts() const
    {
        return stat_false_conflicts.value();
    }

    /**
     * Fault injection for checker self-validation (simfuzz
     * --inject-bug skip-unlock): silently discard the @p nth call to
     * release() (1-based).  The holder keeps the entry forever, so a
     * correct checker must flag the run via the acquire/release
     * audit, the leaked-writer audit, or a deadlock.  0 disables.
     */
    void injectSkipRelease(std::uint64_t nth)
    {
        inject_skip_release = nth;
    }

    /**
     * Structural self-check for mid-simulation probes: verifies that
     * every entry's holder bookkeeping is consistent (a writer never
     * coexists with readers, holder_blocks matches the grant counts,
     * and nobody waits behind a free entry).  Returns an empty string
     * when consistent, else a description of the first violation.
     */
    std::string probeViolation() const;

  private:
    struct Waiter
    {
        bool writer;
        Addr block;
        Callback cb;
    };

    struct Entry
    {
        unsigned active_readers = 0;
        bool active_writer = false;
        std::deque<Waiter> queue;
        /** Target blocks of current holders (stats only). */
        std::vector<Addr> holder_blocks;
    };

    Entry &entryFor(Addr block);
    std::size_t indexOf(Addr block) const;
    void grantLocked(Entry &e, Waiter w);
    void drainEntry(Entry &e);
    void writerDone();

    EventQueue &eq;
    unsigned num_entries; ///< 0 = ideal
    unsigned index_bits = 0;
    Ticks access_latency;

    std::vector<Entry> entries;                 ///< real mode
    std::unordered_map<Addr, Entry> ideal_map;  ///< ideal mode

    std::uint64_t writers_in_flight = 0;
    std::deque<Callback> pfence_waiters;

    std::uint64_t inject_skip_release = 0; ///< 0 = no fault injection
    std::uint64_t release_calls = 0;       ///< release() invocations

    Counter stat_acquires;
    Counter stat_releases;
    Counter stat_conflicts;
    Counter stat_false_conflicts;
    Counter stat_pfences;
};

} // namespace pei

#endif // PEISIM_PIM_PIM_DIRECTORY_HH
