/**
 * @file
 * The PEI operation set (paper Table 1) and its functional/timing
 * metadata.
 *
 * Every operation obeys the single-cache-block restriction: its
 * memory operand is confined to one 64 B last-level-cache block, and
 * its input/output operands are at most one block in size.  The same
 * computation logic exists in every PCU (host-side and memory-side),
 * so any PEI can execute at either location.
 */

#ifndef PEISIM_PIM_PEI_OP_HH
#define PEISIM_PIM_PEI_OP_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/pim_iface.hh"
#include "mem/vmem.hh"

namespace pei
{

/** Opcodes of the seven PIM operations of Table 1, plus the
 *  multi-block gather/scatter extension ops. */
enum class PeiOpcode : std::uint16_t
{
    Inc64 = 0,     ///< 8-byte atomic integer increment (ATF)
    Min64,         ///< 8-byte atomic integer min (BFS, SP, WCC)
    FaddDouble,    ///< atomic double add (PR)
    HashProbe,     ///< hash-bucket probe (HJ)
    HistBinIdx,    ///< histogram bin indexes of 16 ints (HG, RP)
    EuclidDist,    ///< 16-dim float distance accumulation (SC)
    DotProduct,    ///< 4-dim double dot product (SVM)
    Gather,        ///< strided N-element u64 gather (SpMV, copy)
    Scatter,       ///< strided N-element u64 scatter-add (HG, copy)
    NumOpcodes,
};

/** Static description of one PEI operation. */
struct PeiOpInfo
{
    const char *name;
    bool reads;            ///< reads its target block ('R' column)
    bool writes;           ///< modifies its target block ('W' column)
    unsigned input_bytes;  ///< input operand size
    unsigned output_bytes; ///< output operand size (max, for gather)
    unsigned target_bytes; ///< bytes touched per target block
    unsigned compute_cycles; ///< PCU-clock cycles of computation
    bool multi_block = false; ///< strided multi-block element access
};

/** Metadata for @p op. */
const PeiOpInfo &peiOpInfo(PeiOpcode op);

/**
 * Hash-join bucket layout: exactly one cache block.  Keys are probed
 * in place by the HashProbe PEI; 'next' chains overflow buckets
 * (a virtual address the *host* translates on the next probe,
 * keeping all address translation host-side per paper §4.4).
 */
struct HashBucket
{
    static constexpr unsigned max_keys = 6;
    std::uint64_t keys[max_keys];
    std::uint64_t count; ///< valid keys in this bucket
    std::uint64_t next;  ///< virtual address of overflow bucket or 0
};
static_assert(sizeof(HashBucket) == block_size);

/** Input operand of HashProbe. */
struct HashProbeIn
{
    std::uint64_t key;
};

/** Output operand of HashProbe (paper: 9 bytes). */
struct HashProbeOut
{
    std::uint64_t next; ///< overflow-chain virtual address (or 0)
    std::uint8_t match; ///< 1 if the key was found in this bucket
};

/**
 * Input operand of Gather: read count 8-byte elements at
 * paddr + i*stride (count <= max_pei_target_blocks, stride and the
 * target address 8-byte aligned so no element straddles a block).
 * The output operand holds the count gathered u64s.
 */
struct GatherIn
{
    std::uint64_t stride;
    std::uint64_t count;
};

/**
 * Input operand of Scatter: add @p addend to each of count 8-byte
 * elements at paddr + i*stride (a strided scatter-add; wrapping u64
 * addition keeps the op commutative with Inc64-class writers).
 */
struct ScatterIn
{
    std::uint64_t stride;
    std::uint64_t count;
    std::uint64_t addend;
};

/**
 * Functionally execute @p pkt against the backing store (physical
 * addressing).  Called by whichever PCU the operation runs on; the
 * PIM directory guarantees this is race-free among PEIs.
 */
void executePeiFunctional(VirtualMemory &vm, PimPacket &pkt);

/** Populate a PimPacket for @p op targeting physical @p paddr. */
PimPacket makePimPacket(PeiOpcode op, Addr paddr, const void *input,
                        unsigned input_size);

} // namespace pei

#endif // PEISIM_PIM_PEI_OP_HH
