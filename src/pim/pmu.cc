#include "pmu.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pei
{

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::HostOnly: return "Host-Only";
      case ExecMode::PimOnly: return "PIM-Only";
      case ExecMode::IdealHost: return "Ideal-Host";
      case ExecMode::LocalityAware: return "Locality-Aware";
    }
    return "?";
}

Pmu::Pmu(EventQueue &eq, const PimConfig &cfg, unsigned cores,
         unsigned l3_sets, unsigned l3_ways, CacheHierarchy &hierarchy,
         MemoryBackend &mem, VirtualMemory &vm, StatRegistry &stats)
    : eq(eq), cfg(cfg), hierarchy(hierarchy), mem(mem), vm(vm)
{
    // Address-partitioned PMU banks: block-interleaved across
    // pmu_shards directory/monitor pairs, splitting the capacity so
    // total reach is unchanged.  One shard keeps the legacy stat
    // names and is byte-identical to the unsharded PMU.
    const unsigned nshards = cfg.pmu_shards ? cfg.pmu_shards : 1;
    fatal_if(!isPowerOf2(nshards),
             "pmu_shards must be a power of two, got %u",
             cfg.pmu_shards);
    fatal_if(cfg.pei_batch == 0 || cfg.pei_batch > 64,
             "pei_batch must be in [1, 64], got %u", cfg.pei_batch);
    shard_bits = floorLog2(nshards);
    shard_mask = nshards - 1;

    // Ideal-Host idealizes the directory: exact tracking, zero
    // latency, PEIs behave like host instructions (§7: "its PIM
    // directory is infinitely large and can be accessed in zero
    // cycles").  Entry count 0 also selects the ideal directory
    // (§7.6 ablation), so it must not be divided per bank.
    const bool ideal = cfg.mode == ExecMode::IdealHost;
    const unsigned dir_entries =
        (ideal || cfg.directory_entries == 0)
            ? 0
            : std::max(1u, cfg.directory_entries >> shard_bits);

    const unsigned sets = cfg.monitor_sets ? cfg.monitor_sets : l3_sets;
    const unsigned ways = cfg.monitor_ways ? cfg.monitor_ways : l3_ways;
    const unsigned bank_sets = std::max(1u, sets >> shard_bits);

    dirs.reserve(nshards);
    mons.reserve(nshards);
    for (unsigned s = 0; s < nshards; ++s) {
        const std::string prefix =
            nshards == 1 ? "" : "pmu" + std::to_string(s) + ".";
        dirs.push_back(std::make_unique<PimDirectory>(
            eq, dir_entries, ideal ? 0 : cfg.directory_latency, stats,
            prefix + "pim_dir"));
        mons.push_back(std::make_unique<LocalityMonitor>(
            bank_sets, ways, stats, cfg.monitor_partial_tag_bits,
            cfg.monitor_ignore_flag, prefix + "loc_mon"));
        mons.back()->setAccessLatency(cfg.monitor_latency);
    }

    coh = createCoherencePolicy(cfg.coherence.policy, eq, hierarchy,
                                cfg.coherence, stats);

    // The monitor mirrors every last-level cache access (§4.3), but
    // only when locality-aware execution is enabled; Host-Only and
    // PIM-Only "disable the locality monitor" (§7).
    if (cfg.mode == ExecMode::LocalityAware) {
        hierarchy.setL3AccessListener([this](Addr block) {
            monFor(block).onL3Access(bankBlock(block));
        });
    }

    host_pcus.reserve(cores);
    for (unsigned c = 0; c < cores; ++c) {
        host_pcus.push_back(std::make_unique<Pcu>(
            eq, "host_pcu" + std::to_string(c),
            cfg.pcu.operand_buffer_entries, cfg.pcu.issue_width,
            cfg.pcu.host_mhz, stats));
    }

    // Memory-side PCUs exist only where the backend can execute
    // them; on a non-PIM backend every PEI degrades to host-side
    // execution (decideLookup/memExecute below).
    if (mem.supportsPim()) {
        mem_pcus.reserve(mem.pimUnits());
        for (unsigned v = 0; v < mem.pimUnits(); ++v) {
            // A memory-side PCU schedules on its unit's shard queue:
            // PIM execution at vault v stays on the same shard as
            // vault v's DRAM timing (sim/sharded_queue.hh).
            mem_pcus.push_back(std::make_unique<MemSidePcu>(
                mem.pimUnitQueue(v), cfg.pcu, mem.pimUnitPort(v), vm,
                stats));
            mem.attachPimHandler(v, mem_pcus.back().get());
        }
    }

    // Batching window: only meaningful where PEIs can actually be
    // offloaded.  pei_batch == 1 leaves every window field untouched
    // and the whole dispatch path byte-identical to per-op dispatch.
    batch_on = cfg.pei_batch > 1 && mem.supportsPim();
    if (batch_on) {
        window_ticks =
            cfg.batch_window_ticks ? cfg.batch_window_ticks : 256;
        windows.resize(mem.pimUnits());
        vault_inflight.assign(mem.pimUnits(), 0);
    }

    stats.add("pmu.peis_issued", &stat_peis_issued);
    stats.add("pmu.peis_host", &stat_peis_host);
    stats.add("pmu.peis_mem", &stat_peis_mem);
    stats.add("pmu.mb_span_host", &stat_mb_span_host);
    stats.add("pmu.peis_mem_writers", &stat_peis_mem_writers);
    stats.add("pmu.peis_mem_readers", &stat_peis_mem_readers);
    stats.add("pmu.mem_writer_blocks", &stat_mem_writer_blocks);
    stats.add("pmu.mem_reader_blocks", &stat_mem_reader_blocks);
    if (batch_on) {
        stats.add("pmu.batched_peis", &stat_batched_peis);
        stats.add("pmu.pei_trains", &stat_pei_trains);
        stats.add("pmu.window_singletons", &stat_window_singletons);
        stats.add("pmu.batch_stalls", &stat_batch_stalls);
        stats.add("pmu.window_peis", &hist_window_peis);
    }
    stats.add("pmu.balanced_to_host", &stat_balanced_to_host);
    stats.add("pmu.balanced_to_mem", &stat_balanced_to_mem);
    stats.add("pmu.saturation_to_mem", &stat_saturation_to_mem);
    stats.add("pmu.pei_latency_ticks", &hist_pei_latency);
    stats.add("pmu.pei_latency_host_ticks", &hist_pei_latency_host);
    stats.add("pmu.pei_latency_mem_ticks", &hist_pei_latency_mem);
    stats.add("pmu.dir_wait_ticks", &hist_dir_wait);
    stats.add("pmu.host_cache_ticks", &hist_host_cache);
    stats.addInvariant(
        "pmu.peis_issued == peis_host + peis_mem",
        [this] {
            const std::uint64_t retired =
                stat_peis_host.value() + stat_peis_mem.value();
            if (stat_peis_issued.value() == retired)
                return std::string();
            return "issued=" + std::to_string(stat_peis_issued.value()) +
                   " != host+mem=" + std::to_string(retired) +
                   " (PEI lost in the pipeline?)";
        });
    // Offload/coherence conservation: under the eager policy every
    // element block of a memory-side writer PEI performs exactly one
    // back-invalidation and every reader element block exactly one
    // back-writeback (Fig. 5 step ③).  Classic ops have one element
    // block, so these are the per-PEI identities of old; gather/
    // scatter contribute one action per element block.  The cache
    // counters count performed operations once, so a skipped cleaning
    // step (e.g. simfuzz's --inject-bug skip-back-inval) breaks the
    // balance.  The batching window dedups actions across a merged
    // train and deferred policies batch and elide by design, so the
    // balance holds only for eager per-op dispatch; lazy registers
    // its own invariants (coherence/lazy.cc).
    if (cfg.coherence.policy == "eager" && !batch_on) {
        stats.addInvariant(
            "pmu.mem_writer_blocks == cache.back_invalidations",
            [this, &stats] {
                const std::uint64_t w = stat_mem_writer_blocks.value();
                const std::uint64_t bi =
                    stats.get("cache.back_invalidations");
                if (w == bi)
                    return std::string();
                return "mem-side writer blocks=" + std::to_string(w) +
                       " != back-invalidations=" + std::to_string(bi);
            });
        stats.addInvariant(
            "pmu.mem_reader_blocks == cache.back_writebacks",
            [this, &stats] {
                const std::uint64_t r = stat_mem_reader_blocks.value();
                const std::uint64_t bw = stats.get("cache.back_writebacks");
                if (r == bw)
                    return std::string();
                return "mem-side reader blocks=" + std::to_string(r) +
                       " != back-writebacks=" + std::to_string(bw);
            });
    }
    if (batch_on) {
        stats.addInvariant(
            "pmu.batch windows drain by end of sim",
            [this] {
                std::size_t parked = 0;
                for (const auto &w : windows)
                    parked += w.txns.size();
                std::uint64_t credits = 0;
                for (unsigned c : vault_inflight)
                    credits += c;
                if (parked == 0 && credits == 0)
                    return std::string();
                return std::to_string(parked) +
                       " PEI(s) still parked in batch windows, " +
                       std::to_string(credits) +
                       " vault credit(s) still held";
            });
        // Train conservation: every PEI the window dispatched in a
        // multi-member train rode exactly one interconnect train
        // (packetized backends only; others fall back to per-op
        // dispatch inside sendPimTrain).
        if (std::string(mem.kind()) == "hmc") {
            stats.addInvariant(
                "pmu.batched_peis == net.trains.peis",
                [this, &stats] {
                    const std::uint64_t b = stat_batched_peis.value();
                    const std::uint64_t t = stats.get("net.trains.peis");
                    if (b == t)
                        return std::string();
                    return "batched PEIs=" + std::to_string(b) +
                           " != train-carried PEIs=" + std::to_string(t);
                });
        }
    }
    // Sharded PMU: the per-bank invariants (lookup partition,
    // acquire/release balance, writer drain) register inside each
    // bank; these aggregate views re-check the same identities across
    // all banks so a packet routed to the wrong bank cannot balance
    // out locally yet corrupt the total.
    if (nshards > 1) {
        stats.addInvariant(
            "pmu.sharded directory acquires == releases in total",
            [this] {
                std::uint64_t acq = 0, rel = 0;
                for (const auto &d : dirs) {
                    acq += d->acquires();
                    rel += d->releases();
                }
                if (acq == rel)
                    return std::string();
                return "total acquires=" + std::to_string(acq) +
                       " != total releases=" + std::to_string(rel);
            });
        stats.addInvariant(
            "pmu.sharded monitor lookups partition in total",
            [this] {
                std::uint64_t lookups = 0, split = 0;
                for (const auto &m : mons) {
                    lookups += m->lookups();
                    split += m->hits() + m->misses() + m->ignoredHits();
                }
                if (lookups == split)
                    return std::string();
                return "total lookups=" + std::to_string(lookups) +
                       " != hits+misses+ignored=" +
                       std::to_string(split);
            });
    }
}

void
Pmu::executePei(unsigned core, PeiOpcode op, Addr paddr, const void *input,
                unsigned input_size, DoneFn done, Ticks issue_latency)
{
    PimPacket pkt = makePimPacket(op, paddr, input, input_size);
    pkt.issue_tick = eq.now();
    ++stat_peis_issued;
    // Writers count as in flight from issue (not from directory
    // acquisition), so a pfence issued right after covers PEIs still
    // in their TLB-penalty or crossbar window; the directory retires
    // the writer in Pmu::finish via release().
    if (pkt.is_writer)
        dirFor(pkt.paddr >> block_shift).registerWriter();

    const std::uint32_t txn =
        txns.emplace(PeiTxn{std::move(pkt), std::move(done), core});
    if (issue_latency > 0) {
        eq.schedule(issue_latency, [this, txn] { startPei(txn); });
        return;
    }
    startPei(txn);
}

void
Pmu::startPei(std::uint32_t txn)
{
    if (cfg.mode == ExecMode::IdealHost) {
        // PEIs are ordinary host instructions: atomicity is free
        // (ideal zero-cycle directory) and no PCU resources exist.
        PeiTxn &t = txns[txn];
        t.asked = eq.now();
        buildLockList(t);
        acquireNextLock(txn);
        return;
    }

    // ①② The core stages the PEI in its PCU's memory-mapped
    // registers and the PCU accesses the PMU over the crossbar to
    // obtain the reader-writer lock (directory latency charged
    // inside dir->acquire).  Note Fig. 4's ordering: the operand
    // buffer entry is allocated *after* the PMU grants the lock, so
    // PEIs waiting on a contended block do not occupy buffer
    // entries — host-side execution claims a host-PCU entry and
    // memory-side execution claims the target vault's PCU entry
    // (hence the paper's 576 = 16x4 + 128x4 in-flight PEI bound).
    eq.schedule(cfg.pmu_xbar_latency, [this, txn] { acquireLock(txn); });
}

void
Pmu::idealGranted(std::uint32_t txn)
{
    hist_dir_wait.record(eq.now() - txns[txn].asked);
    hostExecute(txn);
}

void
Pmu::acquireLock(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    t.asked = eq.now();
    buildLockList(t);
    acquireNextLock(txn);
}

void
Pmu::buildLockList(PeiTxn &t)
{
    const Addr primary = t.pkt.paddr >> block_shift;
    t.locks_held = 0;
    if (t.pkt.mb_count <= 1) {
        t.lock_blocks[0] = primary;
        t.lock_count = 1;
        return;
    }
    Addr paddrs[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(paddrs, max_pei_target_blocks);
    struct Lock
    {
        unsigned shard;
        Addr key;
        Addr block;
    };
    Lock locks[max_pei_target_blocks];
    for (unsigned i = 0; i < nb; ++i) {
        const Addr block = paddrs[i] >> block_shift;
        const unsigned shard = shardOf(block);
        locks[i] = {shard, dirs[shard]->entryKey(bankBlock(block)),
                    block};
    }
    // Ascending (bank, entry-key) acquisition order — globally
    // consistent across all PEIs, so ordered multi-acquisition
    // cannot form a wait cycle — with aliased entries acquired once.
    std::sort(locks, locks + nb, [](const Lock &a, const Lock &b) {
        return a.shard != b.shard ? a.shard < b.shard : a.key < b.key;
    });
    t.lock_count = 0;
    unsigned i = 0;
    while (i < nb) {
        Addr rep = locks[i].block;
        unsigned j = i;
        while (j < nb && locks[j].shard == locks[i].shard &&
               locks[j].key == locks[i].key)
        {
            // The primary represents its own entry, so the one
            // writer-retiring release in finish() lands on the bank
            // that registerWriter()ed this PEI.
            if (locks[j].block == primary)
                rep = primary;
            ++j;
        }
        t.lock_blocks[t.lock_count++] = rep;
        i = j;
    }
}

void
Pmu::acquireNextLock(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    if (t.locks_held == t.lock_count) {
        if (cfg.mode == ExecMode::IdealHost)
            idealGranted(txn);
        else
            lockGranted(txn);
        return;
    }
    const Addr block = t.lock_blocks[t.locks_held];
    dirFor(block).acquire(bankBlock(block), t.pkt.is_writer,
                          Callback([this, txn] {
                              ++txns[txn].locks_held;
                              acquireNextLock(txn);
                          }),
                          /*writer_registered=*/t.pkt.is_writer);
}

void
Pmu::lockGranted(std::uint32_t txn)
{
    hist_dir_wait.record(eq.now() - txns[txn].asked);
    decide(txn);
}

bool
Pmu::vaultSpanning(const PimPacket &pkt) const
{
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = pkt.targetBlocks(blocks, max_pei_target_blocks);
    const unsigned gv = mem.addrMap().decode(blocks[0]).globalVault;
    for (unsigned i = 1; i < nb; ++i) {
        if (mem.addrMap().decode(blocks[i]).globalVault != gv)
            return true;
    }
    return false;
}

void
Pmu::decide(std::uint32_t txn)
{
    if (cfg.mode == ExecMode::HostOnly) {
        hostExecute(txn);
        return;
    }
    // A multi-block run executes on a single vault-side PCU, so a
    // run whose element blocks decode to different vaults (block-
    // interleaved address maps spread consecutive blocks across
    // vaults) cannot go memory-side.  The decision stage forces such
    // runs host-side — the host reaches any address through the
    // cache hierarchy — generalizing the paper's single-cache-block
    // restriction to single-vault in every mode, PIM-Only included.
    if (txns[txn].pkt.mb_count > 1 && mem.supportsPim() &&
        vaultSpanning(txns[txn].pkt)) {
        ++stat_mb_span_host;
        hostExecute(txn);
        return;
    }
    switch (cfg.mode) {
      case ExecMode::HostOnly:
        hostExecute(txn);
        return;
      case ExecMode::PimOnly:
        memExecute(txn);
        return;
      case ExecMode::IdealHost:
        panic("Ideal-Host PEIs do not reach the PMU decision stage");
        return;
      case ExecMode::LocalityAware:
        break;
    }

    // The locality monitor is consulted in parallel with the
    // directory (Fig. 4 step ②); charge only the extra latency
    // beyond the directory lookup.
    const Ticks extra =
        mons[0]->accessLatency() > dirs[0]->accessLatency()
            ? mons[0]->accessLatency() - dirs[0]->accessLatency()
            : 0;
    eq.schedule(extra, [this, txn] { decideLookup(txn); });
}

void
Pmu::decideLookup(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    const Addr block = t.pkt.paddr >> block_shift;
    const bool high_locality =
        monFor(block).lookupForPei(bankBlock(block));
    if (!mem.supportsPim()) {
        // The monitor still profiles, but there is nowhere to
        // offload to: degrade to host-side execution.
        hostExecute(txn);
        return;
    }
    if (high_locality) {
        // §7.4 saturation override: a saturated off-chip link can
        // make memory-side execution cheaper even for a
        // high-locality PEI.  The EMA decays with a 10 µs half-life,
        // so the override releases once pressure subsides.
        if (cfg.balanced_dispatch && cfg.balanced_saturation_flits > 0.0 &&
            std::max(mem.emaRequestFlits(), mem.emaResponseFlits()) >=
                cfg.balanced_saturation_flits) {
            ++stat_saturation_to_mem;
            memExecute(txn);
            return;
        }
        hostExecute(txn);
        return;
    }
    bool offload = true;
    if (cfg.balanced_dispatch) {
        offload = balancedChoice(t.pkt);
        if (offload)
            ++stat_balanced_to_mem;
        else
            ++stat_balanced_to_host;
    }
    if (offload)
        memExecute(txn);
    else
        hostExecute(txn);
}

bool
Pmu::balancedChoice(const PimPacket &pkt)
{
    // §7.4: when response traffic dominates, pick the execution
    // location that consumes less response bandwidth; when request
    // traffic dominates, the one that consumes less request
    // bandwidth.  Host-side execution of a monitor-missed PEI
    // fetches the target block (16 B request, 80 B response) and,
    // for writers, eventually writes it back (80 B request).
    auto flits = [](unsigned bytes) { return (bytes + 15u) / 16u; };
    const unsigned host_req = flits(16) + (pkt.is_writer ? flits(80) : 0);
    const unsigned host_res = flits(16 + block_size);
    const unsigned mem_req = flits(pkt.requestBytes());
    const unsigned mem_res = flits(pkt.responseBytes());

    const double c_req = mem.emaRequestFlits();
    const double c_res = mem.emaResponseFlits();
    if (c_res > c_req)
        return mem_res <= host_res; // minimize response traffic
    return mem_req <= host_req;     // minimize request traffic
}

void
Pmu::hostExecute(std::uint32_t txn)
{
    if (cfg.mode != ExecMode::IdealHost) {
        // Fig. 4 step ③: allocate the operand buffer entry now that
        // the lock is held; stall if the buffer is full.
        host_pcus[txns[txn].core]->acquireEntry(
            [this, txn] { hostExecuteBuffered(txn); });
        return;
    }
    hostExecuteBuffered(txn);
}

void
Pmu::hostExecuteBuffered(std::uint32_t txn)
{
    // Fig. 4 steps ③-⑤: load the target block through the core's
    // L1, compute, store back if the PEI modifies the block.
    PeiTxn &t = txns[txn];
    t.load_start = eq.now();
    if (t.pkt.mb_count <= 1) {
        hierarchy.access(t.core, t.pkt.paddr, false,
                         [this, txn] { hostLoaded(txn); });
        return;
    }
    // Host-side gather/scatter: load every element block through the
    // core's L1; the loads overlap and the compute starts when the
    // last one lands.
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(blocks, max_pei_target_blocks);
    t.mb_pending = nb;
    for (unsigned i = 0; i < nb; ++i) {
        hierarchy.access(t.core, blocks[i], false, [this, txn] {
            if (--txns[txn].mb_pending == 0)
                hostLoaded(txn);
        });
    }
}

void
Pmu::hostLoaded(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    hist_host_cache.record(eq.now() - t.load_start);
    const PeiOpInfo &info = peiOpInfo(static_cast<PeiOpcode>(t.pkt.op));
    if (cfg.mode == ExecMode::IdealHost) {
        // Normal-instruction execution: fixed ALU latency, no PCU
        // port contention (the OoO core absorbs it).
        eq.schedule(info.compute_cycles, [this, txn] { hostComputed(txn); });
    } else {
        host_pcus[t.core]->compute(info.compute_cycles,
                                   [this, txn] { hostComputed(txn); });
    }
}

void
Pmu::hostComputed(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    executePeiFunctional(vm, t.pkt);
    if (!t.pkt.is_writer) {
        finish(txn, true);
        return;
    }
    if (t.pkt.mb_count <= 1) {
        hierarchy.access(t.core, t.pkt.paddr, true,
                         [this, txn] { finish(txn, true); });
        return;
    }
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(blocks, max_pei_target_blocks);
    t.mb_pending = nb;
    for (unsigned i = 0; i < nb; ++i) {
        hierarchy.access(t.core, blocks[i], true, [this, txn] {
            if (--txns[txn].mb_pending == 0)
                finish(txn, true);
        });
    }
}

void
Pmu::memExecute(std::uint32_t txn)
{
    if (!mem.supportsPim()) {
        // PIM-Only (and balanced dispatch) on a non-PIM backend
        // degrades to host-side execution.
        hostExecute(txn);
        return;
    }
    PeiTxn &t = txns[txn];
    const Addr block = t.pkt.paddr >> block_shift;
    if (cfg.mode == ExecMode::LocalityAware)
        monFor(block).onPimIssue(bankBlock(block));
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(blocks, max_pei_target_blocks);
    if (t.pkt.is_writer) {
        ++stat_peis_mem_writers;
        stat_mem_writer_blocks += nb;
    } else {
        ++stat_peis_mem_readers;
        stat_mem_reader_blocks += nb;
    }

    // Batched dispatch: park the PEI in its vault's coalescing
    // window; the flush takes the coherence action and the
    // interconnect trip for the whole train at once.
    if (batch_on) {
        windowInsert(txn);
        return;
    }

    // Fig. 5 step ③: make the on-chip copies of the target block
    // coherent with the offload.  Eager cleans them now
    // (back-invalidation for writers, back-writeback for readers);
    // lazy records the access in its batch signatures and defers the
    // reconciliation to commit time.
    t.coh_token =
        coh->beforeOffload(t.pkt, Callback([this, txn] { offload(txn); }));
}

void
Pmu::windowInsert(std::uint32_t txn)
{
    // A parked PEI keeps holding its directory lock; the window timer
    // bounds the added latency and guarantees every window drains
    // even if no further PEI ever arrives.
    const unsigned gv =
        mem.addrMap().decode(txns[txn].pkt.paddr).globalVault;
    BatchWindow &w = windows[gv];
    w.txns.push_back(txn);
    if (w.txns.size() >= cfg.pei_batch) {
        flushWindow(gv);
        return;
    }
    if (w.txns.size() == 1)
        armWindowTimer(gv);
}

void
Pmu::armWindowTimer(unsigned gv)
{
    // Generation-checked timeout: a flush bumps timer_gen, voiding
    // any timer armed for the previous fill.
    const std::uint64_t gen = windows[gv].timer_gen;
    eq.schedule(window_ticks, [this, gv, gen] {
        BatchWindow &w = windows[gv];
        if (w.timer_gen != gen || w.txns.empty())
            return;
        flushWindow(gv);
    });
}

void
Pmu::flushWindow(unsigned gv)
{
    BatchWindow &w = windows[gv];
    if (w.txns.empty())
        return;
    ++w.timer_gen; // draining now; void any pending timeout
    w.flush_pending = false;
    const unsigned depth = cfg.pcu.issue_queue_depth;
    while (!w.txns.empty()) {
        unsigned n = static_cast<unsigned>(
            std::min<std::size_t>(w.txns.size(), cfg.pei_batch));
        if (depth > 0) {
            // Vault-PCU credit gate: never put more packets in flight
            // than the vault's issue queue can absorb.  A stalled
            // flush is retried as in-flight members retire (finish).
            if (vault_inflight[gv] >= depth) {
                w.flush_pending = true;
                ++stat_batch_stalls;
                return;
            }
            n = std::min(n, depth - vault_inflight[gv]);
        }
        dispatchTrain(gv, n);
    }
}

void
Pmu::dispatchTrain(unsigned gv, unsigned n)
{
    BatchWindow &w = windows[gv];
    const std::uint32_t train = train_txns.emplace(TrainTxn{});
    TrainTxn &tr = train_txns[train];
    tr.txns.assign(w.txns.begin(), w.txns.begin() + n);
    w.txns.erase(w.txns.begin(), w.txns.begin() + n);
    vault_inflight[gv] += n;

    hist_window_peis.record(n);
    if (n >= 2) {
        ++stat_pei_trains;
        stat_batched_peis += n;
    } else {
        ++stat_window_singletons;
    }

    // One merged coherence action covers the whole train (Fig. 5
    // step ③ amortized): eager dedups the members' element blocks
    // into one back-inval/back-writeback set, lazy folds them into
    // one speculation batch.  Copy the member handles out first: the
    // ready callback may fire inline and retire the train record.
    std::uint32_t members[64];
    for (unsigned i = 0; i < n; ++i)
        members[i] = tr.txns[i];
    const PimPacket *pkts[64];
    std::uint32_t tokens[64] = {};
    for (unsigned i = 0; i < n; ++i)
        pkts[i] = &txns[members[i]].pkt;
    coh->beforeOffloadBatch(
        pkts, n, Callback([this, train] { offloadTrain(train); }),
        tokens);
    for (unsigned i = 0; i < n; ++i)
        txns[members[i]].coh_token = tokens[i];
}

void
Pmu::offloadTrain(std::uint32_t train)
{
    // Coherence granted for every member: record the in-flight probe
    // windows and hand the train to the backend — one compound packet
    // on HMC, a per-member fallback loop elsewhere.
    TrainTxn &tr = train_txns[train];
    const unsigned n = static_cast<unsigned>(tr.txns.size());
    PimPacket pkts[64];
    PimHandler::Respond cbs[64];
    for (unsigned i = 0; i < n; ++i) {
        const std::uint32_t txn = tr.txns[i];
        PeiTxn &t = txns[txn];
        pushInflightBlocks(t);
        pkts[i] = std::move(t.pkt);
        cbs[i] = [this, txn](PimPacket completed) {
            memFinish(txn, std::move(completed));
        };
    }
    train_txns.erase(train);
    mem.sendPimTrain(pkts, n, cbs);
}

void
Pmu::pushInflightBlocks(const PeiTxn &t)
{
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(blocks, max_pei_target_blocks);
    auto &inflight =
        t.pkt.is_writer ? mem_writer_blocks : mem_reader_blocks;
    for (unsigned i = 0; i < nb; ++i)
        inflight.push_back(blocks[i] >> block_shift);
}

void
Pmu::offload(std::uint32_t txn)
{
    // The blocks are clean off-chip from here until retirement;
    // probes verify no (writer) / no Modified (reader) cached copy
    // exists in this window — one record per element block.
    PeiTxn &t = txns[txn];
    pushInflightBlocks(t);
    mem.sendPim(std::move(t.pkt), [this, txn](PimPacket completed) {
        memFinish(txn, std::move(completed));
    });
}

void
Pmu::memFinish(std::uint32_t txn, PimPacket completed)
{
    txns[txn].pkt = std::move(completed);
    finish(txn, false);
}

void
Pmu::finish(std::uint32_t txn, bool executed_at_host)
{
    PeiTxn &t = txns[txn];
    const Ticks latency = eq.now() - t.pkt.issue_tick;
    hist_pei_latency.record(latency);
    if (executed_at_host) {
        ++stat_peis_host;
        hist_pei_latency_host.record(latency);
    } else {
        ++stat_peis_mem;
        hist_pei_latency_mem.record(latency);
        Addr blocks[max_pei_target_blocks];
        const unsigned nb =
            t.pkt.targetBlocks(blocks, max_pei_target_blocks);
        auto &inflight =
            t.pkt.is_writer ? mem_writer_blocks : mem_reader_blocks;
        for (unsigned i = 0; i < nb; ++i) {
            const auto it = std::find(inflight.begin(), inflight.end(),
                                      blocks[i] >> block_shift);
            panic_if(it == inflight.end(),
                     "mem-side PEI retired without an in-flight record");
            inflight.erase(it);
        }
        coh->onRetire(t.coh_token);
        if (batch_on) {
            // Return the vault-PCU credit and retry a flush the
            // credit gate deferred.
            const unsigned gv =
                mem.addrMap().decode(t.pkt.paddr).globalVault;
            panic_if(vault_inflight[gv] == 0, "vault credit underflow");
            --vault_inflight[gv];
            if (windows[gv].flush_pending)
                flushWindow(gv);
        }
    }

    // Releasing the primary's directory entry also retires the
    // writer that executePei registered, waking pfence waiters when
    // it was the last one in flight; a multi-block run's extra
    // element locks release without retiring the writer again.
    const Addr primary = t.pkt.paddr >> block_shift;
    for (unsigned i = 0; i < t.lock_count; ++i) {
        const Addr block = t.lock_blocks[i];
        dirFor(block).release(bankBlock(block), t.pkt.is_writer,
                              /*count_writer=*/block == primary);
    }
    // Host-side execution held a host-PCU operand buffer entry;
    // memory-side execution used the vault PCU's buffer instead
    // (released inside MemSidePcu).
    if (executed_at_host && cfg.mode != ExecMode::IdealHost)
        host_pcus[t.core]->releaseEntry();

    // Retire the transaction before invoking the issuer: the callback
    // may immediately issue another PEI that reuses this slot.
    DoneFn done = std::move(t.done);
    PimPacket pkt = std::move(t.pkt);
    txns.erase(txn);
    done(pkt);
}

void
Pmu::pfence(Callback done)
{
    // The fence completes once every writer PEI issued before it has
    // retired (§3.2).  The directory tracks writers from issue
    // (registerWriter in executePei) to retire (release in finish),
    // which covers the whole PEI pipeline and subsumes the "all
    // entries readable" condition.  A deferred coherence policy also
    // closes its open speculation batch so the fence's ordering
    // guarantee extends to its commit.  Open batching windows flush
    // first so parked writers head to memory immediately instead of
    // waiting out their window timers (a credit-stalled window drains
    // as its in-flight members retire; the directory keeps tracking
    // its parked writers either way).
    if (batch_on) {
        for (unsigned gv = 0; gv < windows.size(); ++gv)
            flushWindow(gv);
    }
    coh->onFence();
    if (dirs.size() == 1) {
        dirs[0]->pfence(std::move(done));
        return;
    }
    // Sharded PMU: the fence fans out to every directory bank and
    // completes only when the last bank reports its writers drained.
    const std::uint32_t join = pfence_joins.emplace(PfenceJoin{
        static_cast<unsigned>(dirs.size()), std::move(done)});
    for (auto &d : dirs) {
        d->pfence(Callback([this, join] {
            PfenceJoin &j = pfence_joins[join];
            if (--j.remaining > 0)
                return;
            Callback cb = std::move(j.done);
            pfence_joins.erase(join);
            cb();
        }));
    }
}

} // namespace pei
