#include "pmu.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pei
{

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::HostOnly: return "Host-Only";
      case ExecMode::PimOnly: return "PIM-Only";
      case ExecMode::IdealHost: return "Ideal-Host";
      case ExecMode::LocalityAware: return "Locality-Aware";
    }
    return "?";
}

Pmu::Pmu(EventQueue &eq, const PimConfig &cfg, unsigned cores,
         unsigned l3_sets, unsigned l3_ways, CacheHierarchy &hierarchy,
         MemoryBackend &mem, VirtualMemory &vm, StatRegistry &stats)
    : eq(eq), cfg(cfg), hierarchy(hierarchy), mem(mem), vm(vm)
{
    // Address-partitioned PMU banks: block-interleaved across
    // pmu_shards directory/monitor pairs, splitting the capacity so
    // total reach is unchanged.  One shard keeps the legacy stat
    // names and is byte-identical to the unsharded PMU.
    const unsigned nshards = cfg.pmu_shards ? cfg.pmu_shards : 1;
    fatal_if(!isPowerOf2(nshards),
             "pmu_shards must be a power of two, got %u",
             cfg.pmu_shards);
    shard_bits = floorLog2(nshards);
    shard_mask = nshards - 1;

    // Ideal-Host idealizes the directory: exact tracking, zero
    // latency, PEIs behave like host instructions (§7: "its PIM
    // directory is infinitely large and can be accessed in zero
    // cycles").  Entry count 0 also selects the ideal directory
    // (§7.6 ablation), so it must not be divided per bank.
    const bool ideal = cfg.mode == ExecMode::IdealHost;
    const unsigned dir_entries =
        (ideal || cfg.directory_entries == 0)
            ? 0
            : std::max(1u, cfg.directory_entries >> shard_bits);

    const unsigned sets = cfg.monitor_sets ? cfg.monitor_sets : l3_sets;
    const unsigned ways = cfg.monitor_ways ? cfg.monitor_ways : l3_ways;
    const unsigned bank_sets = std::max(1u, sets >> shard_bits);

    dirs.reserve(nshards);
    mons.reserve(nshards);
    for (unsigned s = 0; s < nshards; ++s) {
        const std::string prefix =
            nshards == 1 ? "" : "pmu" + std::to_string(s) + ".";
        dirs.push_back(std::make_unique<PimDirectory>(
            eq, dir_entries, ideal ? 0 : cfg.directory_latency, stats,
            prefix + "pim_dir"));
        mons.push_back(std::make_unique<LocalityMonitor>(
            bank_sets, ways, stats, cfg.monitor_partial_tag_bits,
            cfg.monitor_ignore_flag, prefix + "loc_mon"));
        mons.back()->setAccessLatency(cfg.monitor_latency);
    }

    coh = createCoherencePolicy(cfg.coherence.policy, eq, hierarchy,
                                cfg.coherence, stats);

    // The monitor mirrors every last-level cache access (§4.3), but
    // only when locality-aware execution is enabled; Host-Only and
    // PIM-Only "disable the locality monitor" (§7).
    if (cfg.mode == ExecMode::LocalityAware) {
        hierarchy.setL3AccessListener([this](Addr block) {
            monFor(block).onL3Access(bankBlock(block));
        });
    }

    host_pcus.reserve(cores);
    for (unsigned c = 0; c < cores; ++c) {
        host_pcus.push_back(std::make_unique<Pcu>(
            eq, "host_pcu" + std::to_string(c),
            cfg.pcu.operand_buffer_entries, cfg.pcu.issue_width,
            cfg.pcu.host_mhz, stats));
    }

    // Memory-side PCUs exist only where the backend can execute
    // them; on a non-PIM backend every PEI degrades to host-side
    // execution (decideLookup/memExecute below).
    if (mem.supportsPim()) {
        mem_pcus.reserve(mem.pimUnits());
        for (unsigned v = 0; v < mem.pimUnits(); ++v) {
            // A memory-side PCU schedules on its unit's shard queue:
            // PIM execution at vault v stays on the same shard as
            // vault v's DRAM timing (sim/sharded_queue.hh).
            mem_pcus.push_back(std::make_unique<MemSidePcu>(
                mem.pimUnitQueue(v), cfg.pcu, mem.pimUnitPort(v), vm,
                stats));
            mem.attachPimHandler(v, mem_pcus.back().get());
        }
    }

    stats.add("pmu.peis_issued", &stat_peis_issued);
    stats.add("pmu.peis_host", &stat_peis_host);
    stats.add("pmu.peis_mem", &stat_peis_mem);
    stats.add("pmu.peis_mem_writers", &stat_peis_mem_writers);
    stats.add("pmu.peis_mem_readers", &stat_peis_mem_readers);
    stats.add("pmu.balanced_to_host", &stat_balanced_to_host);
    stats.add("pmu.balanced_to_mem", &stat_balanced_to_mem);
    stats.add("pmu.saturation_to_mem", &stat_saturation_to_mem);
    stats.add("pmu.pei_latency_ticks", &hist_pei_latency);
    stats.add("pmu.pei_latency_host_ticks", &hist_pei_latency_host);
    stats.add("pmu.pei_latency_mem_ticks", &hist_pei_latency_mem);
    stats.add("pmu.dir_wait_ticks", &hist_dir_wait);
    stats.add("pmu.host_cache_ticks", &hist_host_cache);
    stats.addInvariant(
        "pmu.peis_issued == peis_host + peis_mem",
        [this] {
            const std::uint64_t retired =
                stat_peis_host.value() + stat_peis_mem.value();
            if (stat_peis_issued.value() == retired)
                return std::string();
            return "issued=" + std::to_string(stat_peis_issued.value()) +
                   " != host+mem=" + std::to_string(retired) +
                   " (PEI lost in the pipeline?)";
        });
    // Offload/coherence conservation: under the eager policy every
    // memory-side writer PEI performs exactly one back-invalidation
    // and every memory-side reader PEI exactly one back-writeback
    // (Fig. 5 step ③).  The cache counters count performed operations
    // once, so a skipped cleaning step (e.g. simfuzz's --inject-bug
    // skip-back-inval) breaks the balance.  Deferred policies batch
    // and elide these actions by design, so the balance is
    // eager-only; lazy registers its own invariants
    // (coherence/lazy.cc).
    if (cfg.coherence.policy == "eager") {
        stats.addInvariant(
            "pmu.peis_mem_writers == cache.back_invalidations",
            [this, &stats] {
                const std::uint64_t w = stat_peis_mem_writers.value();
                const std::uint64_t bi =
                    stats.get("cache.back_invalidations");
                if (w == bi)
                    return std::string();
                return "mem-side writer PEIs=" + std::to_string(w) +
                       " != back-invalidations=" + std::to_string(bi);
            });
        stats.addInvariant(
            "pmu.peis_mem_readers == cache.back_writebacks",
            [this, &stats] {
                const std::uint64_t r = stat_peis_mem_readers.value();
                const std::uint64_t bw = stats.get("cache.back_writebacks");
                if (r == bw)
                    return std::string();
                return "mem-side reader PEIs=" + std::to_string(r) +
                       " != back-writebacks=" + std::to_string(bw);
            });
    }
    // Sharded PMU: the per-bank invariants (lookup partition,
    // acquire/release balance, writer drain) register inside each
    // bank; these aggregate views re-check the same identities across
    // all banks so a packet routed to the wrong bank cannot balance
    // out locally yet corrupt the total.
    if (nshards > 1) {
        stats.addInvariant(
            "pmu.sharded directory acquires == releases in total",
            [this] {
                std::uint64_t acq = 0, rel = 0;
                for (const auto &d : dirs) {
                    acq += d->acquires();
                    rel += d->releases();
                }
                if (acq == rel)
                    return std::string();
                return "total acquires=" + std::to_string(acq) +
                       " != total releases=" + std::to_string(rel);
            });
        stats.addInvariant(
            "pmu.sharded monitor lookups partition in total",
            [this] {
                std::uint64_t lookups = 0, split = 0;
                for (const auto &m : mons) {
                    lookups += m->lookups();
                    split += m->hits() + m->misses() + m->ignoredHits();
                }
                if (lookups == split)
                    return std::string();
                return "total lookups=" + std::to_string(lookups) +
                       " != hits+misses+ignored=" +
                       std::to_string(split);
            });
    }
}

void
Pmu::executePei(unsigned core, PeiOpcode op, Addr paddr, const void *input,
                unsigned input_size, DoneFn done, Ticks issue_latency)
{
    PimPacket pkt = makePimPacket(op, paddr, input, input_size);
    pkt.issue_tick = eq.now();
    ++stat_peis_issued;
    // Writers count as in flight from issue (not from directory
    // acquisition), so a pfence issued right after covers PEIs still
    // in their TLB-penalty or crossbar window; the directory retires
    // the writer in Pmu::finish via release().
    if (pkt.is_writer)
        dirFor(pkt.paddr >> block_shift).registerWriter();

    const std::uint32_t txn =
        txns.emplace(PeiTxn{std::move(pkt), std::move(done), core});
    if (issue_latency > 0) {
        eq.schedule(issue_latency, [this, txn] { startPei(txn); });
        return;
    }
    startPei(txn);
}

void
Pmu::startPei(std::uint32_t txn)
{
    if (cfg.mode == ExecMode::IdealHost) {
        // PEIs are ordinary host instructions: atomicity is free
        // (ideal zero-cycle directory) and no PCU resources exist.
        PeiTxn &t = txns[txn];
        const Addr block = t.pkt.paddr >> block_shift;
        const bool writer = t.pkt.is_writer;
        t.asked = eq.now();
        dirFor(block).acquire(bankBlock(block), writer,
                              [this, txn] { idealGranted(txn); },
                              /*writer_registered=*/writer);
        return;
    }

    // ①② The core stages the PEI in its PCU's memory-mapped
    // registers and the PCU accesses the PMU over the crossbar to
    // obtain the reader-writer lock (directory latency charged
    // inside dir->acquire).  Note Fig. 4's ordering: the operand
    // buffer entry is allocated *after* the PMU grants the lock, so
    // PEIs waiting on a contended block do not occupy buffer
    // entries — host-side execution claims a host-PCU entry and
    // memory-side execution claims the target vault's PCU entry
    // (hence the paper's 576 = 16x4 + 128x4 in-flight PEI bound).
    eq.schedule(cfg.pmu_xbar_latency, [this, txn] { acquireLock(txn); });
}

void
Pmu::idealGranted(std::uint32_t txn)
{
    hist_dir_wait.record(eq.now() - txns[txn].asked);
    hostExecute(txn);
}

void
Pmu::acquireLock(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    const Addr block = t.pkt.paddr >> block_shift;
    const bool writer = t.pkt.is_writer;
    t.asked = eq.now();
    dirFor(block).acquire(bankBlock(block), writer,
                          [this, txn] { lockGranted(txn); },
                          /*writer_registered=*/writer);
}

void
Pmu::lockGranted(std::uint32_t txn)
{
    hist_dir_wait.record(eq.now() - txns[txn].asked);
    decide(txn);
}

void
Pmu::decide(std::uint32_t txn)
{
    switch (cfg.mode) {
      case ExecMode::HostOnly:
        hostExecute(txn);
        return;
      case ExecMode::PimOnly:
        memExecute(txn);
        return;
      case ExecMode::IdealHost:
        panic("Ideal-Host PEIs do not reach the PMU decision stage");
        return;
      case ExecMode::LocalityAware:
        break;
    }

    // The locality monitor is consulted in parallel with the
    // directory (Fig. 4 step ②); charge only the extra latency
    // beyond the directory lookup.
    const Ticks extra =
        mons[0]->accessLatency() > dirs[0]->accessLatency()
            ? mons[0]->accessLatency() - dirs[0]->accessLatency()
            : 0;
    eq.schedule(extra, [this, txn] { decideLookup(txn); });
}

void
Pmu::decideLookup(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    const Addr block = t.pkt.paddr >> block_shift;
    const bool high_locality =
        monFor(block).lookupForPei(bankBlock(block));
    if (!mem.supportsPim()) {
        // The monitor still profiles, but there is nowhere to
        // offload to: degrade to host-side execution.
        hostExecute(txn);
        return;
    }
    if (high_locality) {
        // §7.4 saturation override: a saturated off-chip link can
        // make memory-side execution cheaper even for a
        // high-locality PEI.  The EMA decays with a 10 µs half-life,
        // so the override releases once pressure subsides.
        if (cfg.balanced_dispatch && cfg.balanced_saturation_flits > 0.0 &&
            std::max(mem.emaRequestFlits(), mem.emaResponseFlits()) >=
                cfg.balanced_saturation_flits) {
            ++stat_saturation_to_mem;
            memExecute(txn);
            return;
        }
        hostExecute(txn);
        return;
    }
    bool offload = true;
    if (cfg.balanced_dispatch) {
        offload = balancedChoice(t.pkt);
        if (offload)
            ++stat_balanced_to_mem;
        else
            ++stat_balanced_to_host;
    }
    if (offload)
        memExecute(txn);
    else
        hostExecute(txn);
}

bool
Pmu::balancedChoice(const PimPacket &pkt)
{
    // §7.4: when response traffic dominates, pick the execution
    // location that consumes less response bandwidth; when request
    // traffic dominates, the one that consumes less request
    // bandwidth.  Host-side execution of a monitor-missed PEI
    // fetches the target block (16 B request, 80 B response) and,
    // for writers, eventually writes it back (80 B request).
    auto flits = [](unsigned bytes) { return (bytes + 15u) / 16u; };
    const unsigned host_req = flits(16) + (pkt.is_writer ? flits(80) : 0);
    const unsigned host_res = flits(16 + block_size);
    const unsigned mem_req = flits(pkt.requestBytes());
    const unsigned mem_res = flits(pkt.responseBytes());

    const double c_req = mem.emaRequestFlits();
    const double c_res = mem.emaResponseFlits();
    if (c_res > c_req)
        return mem_res <= host_res; // minimize response traffic
    return mem_req <= host_req;     // minimize request traffic
}

void
Pmu::hostExecute(std::uint32_t txn)
{
    if (cfg.mode != ExecMode::IdealHost) {
        // Fig. 4 step ③: allocate the operand buffer entry now that
        // the lock is held; stall if the buffer is full.
        host_pcus[txns[txn].core]->acquireEntry(
            [this, txn] { hostExecuteBuffered(txn); });
        return;
    }
    hostExecuteBuffered(txn);
}

void
Pmu::hostExecuteBuffered(std::uint32_t txn)
{
    // Fig. 4 steps ③-⑤: load the target block through the core's
    // L1, compute, store back if the PEI modifies the block.
    PeiTxn &t = txns[txn];
    t.load_start = eq.now();
    hierarchy.access(t.core, t.pkt.paddr, false,
                     [this, txn] { hostLoaded(txn); });
}

void
Pmu::hostLoaded(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    hist_host_cache.record(eq.now() - t.load_start);
    const PeiOpInfo &info = peiOpInfo(static_cast<PeiOpcode>(t.pkt.op));
    if (cfg.mode == ExecMode::IdealHost) {
        // Normal-instruction execution: fixed ALU latency, no PCU
        // port contention (the OoO core absorbs it).
        eq.schedule(info.compute_cycles, [this, txn] { hostComputed(txn); });
    } else {
        host_pcus[t.core]->compute(info.compute_cycles,
                                   [this, txn] { hostComputed(txn); });
    }
}

void
Pmu::hostComputed(std::uint32_t txn)
{
    PeiTxn &t = txns[txn];
    executePeiFunctional(vm, t.pkt);
    if (t.pkt.is_writer) {
        hierarchy.access(t.core, t.pkt.paddr, true,
                         [this, txn] { finish(txn, true); });
    } else {
        finish(txn, true);
    }
}

void
Pmu::memExecute(std::uint32_t txn)
{
    if (!mem.supportsPim()) {
        // PIM-Only (and balanced dispatch) on a non-PIM backend
        // degrades to host-side execution.
        hostExecute(txn);
        return;
    }
    PeiTxn &t = txns[txn];
    const Addr block = t.pkt.paddr >> block_shift;
    if (cfg.mode == ExecMode::LocalityAware)
        monFor(block).onPimIssue(bankBlock(block));
    if (t.pkt.is_writer)
        ++stat_peis_mem_writers;
    else
        ++stat_peis_mem_readers;

    // Fig. 5 step ③: make the on-chip copies of the target block
    // coherent with the offload.  Eager cleans them now
    // (back-invalidation for writers, back-writeback for readers);
    // lazy records the access in its batch signatures and defers the
    // reconciliation to commit time.
    t.coh_token =
        coh->beforeOffload(t.pkt, Callback([this, txn] { offload(txn); }));
}

void
Pmu::offload(std::uint32_t txn)
{
    // The block is clean off-chip from here until retirement; probes
    // verify no (writer) / no Modified (reader) cached copy exists in
    // this window.
    PeiTxn &t = txns[txn];
    (t.pkt.is_writer ? mem_writer_blocks : mem_reader_blocks)
        .push_back(t.pkt.paddr >> block_shift);
    mem.sendPim(std::move(t.pkt), [this, txn](PimPacket completed) {
        memFinish(txn, std::move(completed));
    });
}

void
Pmu::memFinish(std::uint32_t txn, PimPacket completed)
{
    txns[txn].pkt = std::move(completed);
    finish(txn, false);
}

void
Pmu::finish(std::uint32_t txn, bool executed_at_host)
{
    PeiTxn &t = txns[txn];
    const Ticks latency = eq.now() - t.pkt.issue_tick;
    hist_pei_latency.record(latency);
    if (executed_at_host) {
        ++stat_peis_host;
        hist_pei_latency_host.record(latency);
    } else {
        ++stat_peis_mem;
        hist_pei_latency_mem.record(latency);
        auto &inflight =
            t.pkt.is_writer ? mem_writer_blocks : mem_reader_blocks;
        const auto it = std::find(inflight.begin(), inflight.end(),
                                  t.pkt.paddr >> block_shift);
        panic_if(it == inflight.end(),
                 "mem-side PEI retired without an in-flight record");
        inflight.erase(it);
        coh->onRetire(t.coh_token);
    }

    // Releasing the directory entry also retires the writer that
    // executePei registered, waking pfence waiters when it was the
    // last one in flight.
    const Addr block = t.pkt.paddr >> block_shift;
    dirFor(block).release(bankBlock(block), t.pkt.is_writer);
    // Host-side execution held a host-PCU operand buffer entry;
    // memory-side execution used the vault PCU's buffer instead
    // (released inside MemSidePcu).
    if (executed_at_host && cfg.mode != ExecMode::IdealHost)
        host_pcus[t.core]->releaseEntry();

    // Retire the transaction before invoking the issuer: the callback
    // may immediately issue another PEI that reuses this slot.
    DoneFn done = std::move(t.done);
    PimPacket pkt = std::move(t.pkt);
    txns.erase(txn);
    done(pkt);
}

void
Pmu::pfence(Callback done)
{
    // The fence completes once every writer PEI issued before it has
    // retired (§3.2).  The directory tracks writers from issue
    // (registerWriter in executePei) to retire (release in finish),
    // which covers the whole PEI pipeline and subsumes the "all
    // entries readable" condition.  A deferred coherence policy also
    // closes its open speculation batch so the fence's ordering
    // guarantee extends to its commit.
    coh->onFence();
    if (dirs.size() == 1) {
        dirs[0]->pfence(std::move(done));
        return;
    }
    // Sharded PMU: the fence fans out to every directory bank and
    // completes only when the last bank reports its writers drained.
    const std::uint32_t join = pfence_joins.emplace(PfenceJoin{
        static_cast<unsigned>(dirs.size()), std::move(done)});
    for (auto &d : dirs) {
        d->pfence(Callback([this, join] {
            PfenceJoin &j = pfence_joins[join];
            if (--j.remaining > 0)
                return;
            Callback cb = std::move(j.done);
            pfence_joins.erase(join);
            cb();
        }));
    }
}

} // namespace pei
