#include "pcu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pei
{

Pcu::Pcu(EventQueue &eq, const std::string &name, unsigned entries,
         unsigned issue_width, std::uint64_t mhz, StatRegistry &stats)
    : eq(eq), capacity(entries), mhz(mhz)
{
    fatal_if(entries == 0 || issue_width == 0,
             "PCU needs at least one operand buffer entry and port");
    port_free_at.assign(issue_width, 0);
    stats.add(name + ".executed", &stat_executed);
    stats.add(name + ".buffer_stalls", &stat_buffer_stalls);
}

void
Pcu::acquireEntry(Callback then)
{
    if (in_use < capacity) {
        ++in_use;
        then();
        return;
    }
    ++stat_buffer_stalls;
    entry_waiters.push_back(std::move(then));
}

void
Pcu::releaseEntry()
{
    panic_if(in_use == 0, "operand buffer release underflow");
    --in_use;
    if (!entry_waiters.empty()) {
        ++in_use;
        Callback next = std::move(entry_waiters.front());
        entry_waiters.pop_front();
        eq.schedule(0, std::move(next));
    }
}

void
Pcu::compute(unsigned cycles, Callback done)
{
    // Pick the earliest-free computation port.
    auto port = std::min_element(port_free_at.begin(), port_free_at.end());
    const Tick start = std::max(eq.now(), *port);
    const Ticks duration = cyclesToTicks(cycles, mhz);
    *port = start + duration;
    ++stat_executed;
    eq.scheduleAt(*port, std::move(done));
}

MemSidePcu::MemSidePcu(EventQueue &eq, const PcuConfig &cfg, Vault &vault,
                       VirtualMemory &vm, StatRegistry &stats)
    : eq(eq), vault(vault), vm(vm),
      logic(eq, "mem_pcu" + std::to_string(vault.globalId()),
            cfg.operand_buffer_entries, cfg.issue_width, cfg.mem_mhz,
            stats),
      stat_ops()
{
    stats.add("mem_pcu" + std::to_string(vault.globalId()) + ".ops",
              &stat_ops);
}

void
MemSidePcu::handle(PimPacket pkt, Respond respond)
{
    ++stat_ops;
    logic.acquireEntry([this, pkt = std::move(pkt),
                        respond = std::move(respond)]() mutable {
        // The operand buffer issues the DRAM read immediately, even
        // if the computation logic is busy (paper §4.2).
        const Addr paddr = pkt.paddr;
        vault.accessBlock(paddr, false, [this, pkt = std::move(pkt),
                                         respond =
                                             std::move(respond)]() mutable {
            const PeiOpInfo &info =
                peiOpInfo(static_cast<PeiOpcode>(pkt.op));
            logic.compute(info.compute_cycles,
                          [this, pkt = std::move(pkt),
                           respond = std::move(respond)]() mutable {
                executePeiFunctional(vm, pkt);
                if (pkt.is_writer) {
                    const Addr paddr = pkt.paddr;
                    vault.accessBlock(
                        paddr, true,
                        [this, pkt = std::move(pkt),
                         respond = std::move(respond)]() mutable {
                            logic.releaseEntry();
                            respond(std::move(pkt));
                        });
                } else {
                    logic.releaseEntry();
                    respond(std::move(pkt));
                }
            });
        });
    });
}

} // namespace pei
