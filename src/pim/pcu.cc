#include "pcu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pei
{

Pcu::Pcu(EventQueue &eq, const std::string &name, unsigned entries,
         unsigned issue_width, std::uint64_t mhz, StatRegistry &stats)
    : eq(eq), capacity(entries), mhz(mhz)
{
    fatal_if(entries == 0 || issue_width == 0,
             "PCU needs at least one operand buffer entry and port");
    port_free_at.assign(issue_width, 0);
    stats.add(name + ".executed", &stat_executed);
    stats.add(name + ".buffer_stalls", &stat_buffer_stalls);
    stats.add(name + ".buffer_acquires", &stat_entry_acquires);
    stats.add(name + ".buffer_releases", &stat_entry_releases);
    stats.add(name + ".buffer_wait_ticks", &hist_buffer_wait);
    stats.addInvariant(
        name + ".operand buffer acquire/release balance",
        [this] {
            if (stat_entry_acquires.value() ==
                stat_entry_releases.value() + in_use)
                return std::string();
            return "acquires=" +
                   std::to_string(stat_entry_acquires.value()) +
                   " != releases=" +
                   std::to_string(stat_entry_releases.value()) +
                   " + in_use=" + std::to_string(in_use);
        });
    stats.addInvariant(
        name + ".operand buffer drains by end of sim",
        [this] {
            if (in_use == 0 && entry_waiters.empty())
                return std::string();
            return std::to_string(in_use) + " entry(ies) still held, " +
                   std::to_string(entry_waiters.size()) +
                   " waiter(s) still queued";
        });
}

void
Pcu::acquireEntry(Callback then)
{
    if (in_use < capacity) {
        ++in_use;
        ++stat_entry_acquires;
        hist_buffer_wait.record(0);
        then();
        return;
    }
    ++stat_buffer_stalls;
    entry_waiters.emplace_back(eq.now(), std::move(then));
}

void
Pcu::releaseEntry()
{
    panic_if(in_use == 0, "operand buffer release underflow");
    --in_use;
    ++stat_entry_releases;
    if (!entry_waiters.empty()) {
        ++in_use;
        ++stat_entry_acquires;
        auto [asked, next] = std::move(entry_waiters.front());
        entry_waiters.pop_front();
        hist_buffer_wait.record(eq.now() - asked);
        eq.schedule(0, std::move(next));
    }
}

void
Pcu::compute(unsigned cycles, Callback done)
{
    // Pick the earliest-free computation port.
    auto port = std::min_element(port_free_at.begin(), port_free_at.end());
    const Tick start = std::max(eq.now(), *port);
    const Ticks duration = cyclesToTicks(cycles, mhz);
    *port = start + duration;
    ++stat_executed;
    eq.scheduleAt(*port, std::move(done));
}

MemSidePcu::MemSidePcu(EventQueue &eq, const PcuConfig &cfg, MemPort &port,
                       VirtualMemory &vm, StatRegistry &stats)
    : eq(eq), port(port), vm(vm),
      logic(eq, "mem_pcu" + std::to_string(port.globalId()),
            cfg.operand_buffer_entries, cfg.issue_width, cfg.mem_mhz,
            stats),
      queue_depth(cfg.issue_queue_depth), mem_mhz(cfg.mem_mhz),
      stat_ops()
{
    const std::string name = "mem_pcu" + std::to_string(port.globalId());
    stats.add(name + ".ops", &stat_ops);
    stats.add(name + ".dram_ticks", &hist_dram_ticks);
    if (queue_depth > 0) {
        stats.add(name + ".queue_overflows", &stat_queue_overflows);
        stats.add(name + ".queue_depth", &hist_queue_depth);
        stats.addInvariant(
            name + ".issue queue drains by end of sim",
            [this] {
                if (iq.empty() && !decode_busy)
                    return std::string();
                return std::to_string(iq.size()) +
                       " packet(s) still queued" +
                       std::string(decode_busy ? ", decode busy" : "");
            });
    }
}

void
MemSidePcu::handle(PimPacket pkt, Respond respond)
{
    ++stat_ops;
    const std::uint32_t txn =
        ops.emplace(OpTxn{std::move(pkt), std::move(respond)});
    if (queue_depth == 0) {
        logic.acquireEntry([this, txn] { entryGranted(txn); });
        return;
    }
    // Bounded issue queue ahead of the operand buffer: arrivals
    // decode serially, one per PCU clock.  The PMU window's credit
    // gate keeps the queue within depth; uncredited (unbatched)
    // dispatch may run past it, which is counted, not dropped.
    hist_queue_depth.record(iq.size());
    if (iq.size() >= queue_depth)
        ++stat_queue_overflows;
    iq.push_back(txn);
    pumpQueue();
}

void
MemSidePcu::pumpQueue()
{
    if (decode_busy || iq.empty())
        return;
    decode_busy = true;
    const std::uint32_t txn = iq.front();
    iq.pop_front();
    eq.schedule(cyclesToTicks(1, mem_mhz), [this, txn] {
        decode_busy = false;
        logic.acquireEntry([this, txn] { entryGranted(txn); });
        pumpQueue();
    });
}

void
MemSidePcu::entryGranted(std::uint32_t txn)
{
    // The operand buffer issues the DRAM read immediately, even if
    // the computation logic is busy (paper §4.2).  Multi-block
    // packets read every element block; the reads overlap and the
    // compute starts when the last one lands.
    OpTxn &t = ops[txn];
    t.read_start = eq.now();
    if (t.pkt.mb_count <= 1) {
        port.accessBlock(t.pkt.paddr, false,
                         [this, txn] { readDone(txn); });
        return;
    }
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(blocks, max_pei_target_blocks);
    t.pending = nb;
    for (unsigned i = 0; i < nb; ++i) {
        port.accessBlock(blocks[i], false, [this, txn] {
            if (--ops[txn].pending == 0)
                readDone(txn);
        });
    }
}

void
MemSidePcu::readDone(std::uint32_t txn)
{
    OpTxn &t = ops[txn];
    hist_dram_ticks.record(eq.now() - t.read_start);
    const PeiOpInfo &info = peiOpInfo(static_cast<PeiOpcode>(t.pkt.op));
    logic.compute(info.compute_cycles, [this, txn] { computed(txn); });
}

void
MemSidePcu::computed(std::uint32_t txn)
{
    OpTxn &t = ops[txn];
    executePeiFunctional(vm, t.pkt);
    if (!t.pkt.is_writer) {
        respondNow(txn);
        return;
    }
    if (t.pkt.mb_count <= 1) {
        port.accessBlock(t.pkt.paddr, true,
                         [this, txn] { respondNow(txn); });
        return;
    }
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = t.pkt.targetBlocks(blocks, max_pei_target_blocks);
    t.pending = nb;
    for (unsigned i = 0; i < nb; ++i) {
        port.accessBlock(blocks[i], true, [this, txn] {
            if (--ops[txn].pending == 0)
                respondNow(txn);
        });
    }
}

void
MemSidePcu::respondNow(std::uint32_t txn)
{
    OpTxn &t = ops[txn];
    Respond respond = std::move(t.respond);
    PimPacket pkt = std::move(t.pkt);
    ops.erase(txn);
    logic.releaseEntry();
    respond(std::move(pkt));
}

} // namespace pei
