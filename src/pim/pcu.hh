/**
 * @file
 * PEI Computation Units (paper §4.2).
 *
 * Every PCU pairs an operand buffer (a small SRAM tracking in-flight
 * PEIs; memory accesses of buffered PEIs overlap, giving PEI-level
 * memory parallelism) with computation logic shared by all buffered
 * PEIs (configurable issue width; PEIs execute serially per port).
 *
 * Host-side PCUs (one per core, 4 GHz) execute PEIs through their
 * core's L1 cache; memory-side PCUs (one per vault, 2 GHz) implement
 * the PimHandler interface and access DRAM through their vault.
 */

#ifndef PEISIM_PIM_PCU_HH
#define PEISIM_PIM_PCU_HH

#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"
#include "mem/pim_iface.hh"
#include "mem/vmem.hh"
#include "pim/pei_op.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/** PCU configuration. */
struct PcuConfig
{
    unsigned operand_buffer_entries = 4;
    unsigned issue_width = 1;
    std::uint64_t host_mhz = 4000; ///< host-side PCU clock
    std::uint64_t mem_mhz = 2000;  ///< memory-side PCU clock

    /**
     * Memory-side PCU issue/decode queue depth (0 = issue straight
     * into the operand buffer, byte-identical to the unqueued PCU).
     * When set, arriving PIM packets decode serially — one per PCU
     * clock — out of a bounded queue; the PMU batching window treats
     * the depth as its per-vault credit pool (backpressure).
     */
    unsigned issue_queue_depth = 0;
};

/**
 * The shared PCU mechanics: operand-buffer slot management and
 * serialized computation logic.
 */
class Pcu
{
  public:
    using Callback = Continuation;

    Pcu(EventQueue &eq, const std::string &name, unsigned entries,
        unsigned issue_width, std::uint64_t mhz, StatRegistry &stats);

    /**
     * Allocate an operand-buffer entry; @p then fires once one is
     * available (PEIs stall on a full buffer, paper §4.2).
     */
    void acquireEntry(Callback then);

    /** Free an operand-buffer entry. */
    void releaseEntry();

    /**
     * Occupy one computation port for @p cycles PCU-clock cycles;
     * @p done fires when the computation retires.
     */
    void compute(unsigned cycles, Callback done);

    unsigned entriesInUse() const { return in_use; }
    unsigned bufferCapacity() const { return capacity; }
    std::uint64_t executed() const { return stat_executed.value(); }

  private:
    EventQueue &eq;
    unsigned capacity;
    std::uint64_t mhz;

    unsigned in_use = 0;
    /** Waiters queued for an operand-buffer entry, with the tick the
     *  wait began (for the buffer-wait histogram). */
    std::deque<std::pair<Tick, Callback>> entry_waiters;
    std::vector<Tick> port_free_at; ///< one per issue-width port

    Counter stat_executed;
    Counter stat_buffer_stalls;
    Counter stat_entry_acquires;
    Counter stat_entry_releases;
    Histogram hist_buffer_wait; ///< acquireEntry request → grant
};

/**
 * Memory-side PCU: one per PIM unit, attached to the memory backend
 * as the unit's PimHandler and reaching DRAM through the unit's
 * MemPort.  Execution sequence per packet: allocate an operand-buffer
 * entry, read the target block from DRAM (reads of distinct in-flight
 * PEIs overlap), compute, write the block back for writer PEIs,
 * respond.
 */
class MemSidePcu : public PimHandler
{
  public:
    MemSidePcu(EventQueue &eq, const PcuConfig &cfg, MemPort &port,
               VirtualMemory &vm, StatRegistry &stats);

    void handle(PimPacket pkt, Respond respond) override;

    Pcu &pcu() { return logic; }

  private:
    /** One in-flight PIM operation: packet + responder parked in a
     *  pooled record so stage events capture only `{this, handle}`. */
    struct OpTxn
    {
        PimPacket pkt;
        Respond respond;
        Tick read_start = 0;
        unsigned pending = 0; ///< outstanding multi-block DRAM accesses
    };

    void pumpQueue();
    void entryGranted(std::uint32_t txn);
    void readDone(std::uint32_t txn);
    void computed(std::uint32_t txn);
    void respondNow(std::uint32_t txn);

    EventQueue &eq;
    MemPort &port;
    VirtualMemory &vm;
    Pcu logic;
    SlotPool<OpTxn> ops;

    unsigned queue_depth;   ///< cfg.issue_queue_depth (0 = unqueued)
    std::uint64_t mem_mhz;  ///< decode rate: one packet per PCU clock
    std::deque<std::uint32_t> iq; ///< issue queue ahead of the buffer
    bool decode_busy = false;

    Counter stat_ops;
    Counter stat_queue_overflows; ///< arrivals past depth (uncredited)
    Histogram hist_dram_ticks;   ///< target-block DRAM read latency
    Histogram hist_queue_depth;  ///< issue-queue depth at arrival
};

} // namespace pei

#endif // PEISIM_PIM_PCU_HH
