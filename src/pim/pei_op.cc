#include "pei_op.hh"

#include <cstring>

#include "common/logging.hh"

namespace pei
{

namespace
{

// Table 1 of the paper, plus compute-cycle estimates for the PCU's
// single-issue computation logic (simple ALU ops take a cycle;
// vector reductions a few more).
const PeiOpInfo op_table[] = {
    // name        R      W      in  out target cycles multi-block
    {"inc64",      true,  true,  0,  0,  8,  1},
    {"min64",      true,  true,  8,  0,  8,  1},
    {"fadd",       true,  true,  8,  0,  8,  4},
    {"hash_probe", true,  false, 8,  9,  64, 8},
    {"hist_idx",   true,  false, 1,  16, 64, 16},
    {"euclid",     true,  false, 64, 4,  64, 16},
    {"dot",        true,  false, 32, 8,  32, 8},
    {"gather",     true,  false, 16, 64, 8,  8,  true},
    {"scatter",    true,  true,  24, 0,  8,  8,  true},
};

static_assert(sizeof(op_table) / sizeof(op_table[0]) ==
              static_cast<std::size_t>(PeiOpcode::NumOpcodes));

} // namespace

const PeiOpInfo &
peiOpInfo(PeiOpcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    panic_if(idx >= static_cast<std::size_t>(PeiOpcode::NumOpcodes),
             "bad PEI opcode %zu", idx);
    return op_table[idx];
}

PimPacket
makePimPacket(PeiOpcode op, Addr paddr, const void *input,
              unsigned input_size)
{
    const PeiOpInfo &info = peiOpInfo(op);
    panic_if(input_size != info.input_bytes,
             "PEI %s: input operand is %u bytes, expected %u", info.name,
             input_size, info.input_bytes);

    PimPacket pkt;
    pkt.op = static_cast<std::uint16_t>(op);
    pkt.is_writer = info.writes;
    pkt.paddr = paddr;
    pkt.input_size = info.input_bytes;
    pkt.output_size = info.output_bytes;
    if (input_size > 0)
        std::memcpy(pkt.input.data(), input, input_size);

    if (info.multi_block) {
        // The input operand leads with {stride, count}; each element
        // obeys the single-cache-block restriction individually.
        std::uint64_t stride, count;
        std::memcpy(&stride, pkt.input.data(), 8);
        std::memcpy(&count, pkt.input.data() + 8, 8);
        panic_if(count == 0 || count > max_pei_target_blocks,
                 "PEI %s: element count %llu outside 1..%u", info.name,
                 static_cast<unsigned long long>(count),
                 max_pei_target_blocks);
        panic_if(paddr % 8 != 0 || stride % 8 != 0,
                 "PEI %s: target and stride must be 8-byte aligned so "
                 "no element straddles a cache block",
                 info.name);
        pkt.mb_count = static_cast<std::uint16_t>(count);
        pkt.mb_stride = static_cast<std::uint32_t>(stride);
        if (op == PeiOpcode::Gather)
            pkt.output_size = static_cast<unsigned>(count) * 8;
    } else {
        panic_if(!fitsInBlock(paddr, info.target_bytes),
                 "PEI %s target 0x%llx violates the single-cache-block "
                 "restriction",
                 info.name, static_cast<unsigned long long>(paddr));
    }
    return pkt;
}

void
executePeiFunctional(VirtualMemory &vm, PimPacket &pkt)
{
    const auto op = static_cast<PeiOpcode>(pkt.op);
    switch (op) {
      case PeiOpcode::Inc64: {
        const auto v = vm.readPhys<std::uint64_t>(pkt.paddr);
        vm.writePhys<std::uint64_t>(pkt.paddr, v + 1);
        break;
      }
      case PeiOpcode::Min64: {
        std::uint64_t in;
        std::memcpy(&in, pkt.input.data(), 8);
        const auto cur = vm.readPhys<std::uint64_t>(pkt.paddr);
        if (in < cur)
            vm.writePhys<std::uint64_t>(pkt.paddr, in);
        break;
      }
      case PeiOpcode::FaddDouble: {
        double delta;
        std::memcpy(&delta, pkt.input.data(), 8);
        const auto cur = vm.readPhys<double>(pkt.paddr);
        vm.writePhys<double>(pkt.paddr, cur + delta);
        break;
      }
      case PeiOpcode::HashProbe: {
        HashProbeIn in;
        std::memcpy(&in, pkt.input.data(), sizeof(in));
        const auto bucket = vm.readPhys<HashBucket>(blockAlign(pkt.paddr));
        HashProbeOut out{bucket.next, 0};
        const std::uint64_t n =
            bucket.count < HashBucket::max_keys ? bucket.count
                                                : HashBucket::max_keys;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (bucket.keys[i] == in.key) {
                out.match = 1;
                break;
            }
        }
        std::memcpy(pkt.output.data(), &out.next, 8);
        pkt.output[8] = out.match;
        break;
      }
      case PeiOpcode::HistBinIdx: {
        const std::uint8_t shift = pkt.input[0];
        const Addr base = blockAlign(pkt.paddr);
        for (unsigned i = 0; i < 16; ++i) {
            const auto word =
                vm.readPhys<std::uint32_t>(base + i * 4);
            pkt.output[i] =
                static_cast<std::uint8_t>((word >> shift) & 0xFF);
        }
        break;
      }
      case PeiOpcode::EuclidDist: {
        float in[16];
        std::memcpy(in, pkt.input.data(), sizeof(in));
        const Addr base = blockAlign(pkt.paddr);
        float sum = 0.0f;
        for (unsigned i = 0; i < 16; ++i) {
            const auto a = vm.readPhys<float>(base + i * 4);
            const float d = a - in[i];
            sum += d * d;
        }
        std::memcpy(pkt.output.data(), &sum, 4);
        break;
      }
      case PeiOpcode::DotProduct: {
        double in[4];
        std::memcpy(in, pkt.input.data(), sizeof(in));
        double sum = 0.0;
        for (unsigned i = 0; i < 4; ++i) {
            const auto a = vm.readPhys<double>(pkt.paddr + i * 8);
            sum += a * in[i];
        }
        std::memcpy(pkt.output.data(), &sum, 8);
        break;
      }
      case PeiOpcode::Gather: {
        for (unsigned i = 0; i < pkt.mb_count; ++i) {
            const auto v = vm.readPhys<std::uint64_t>(
                pkt.paddr + static_cast<Addr>(i) * pkt.mb_stride);
            std::memcpy(pkt.output.data() + 8 * i, &v, 8);
        }
        break;
      }
      case PeiOpcode::Scatter: {
        std::uint64_t addend;
        std::memcpy(&addend, pkt.input.data() + 16, 8);
        for (unsigned i = 0; i < pkt.mb_count; ++i) {
            const Addr a =
                pkt.paddr + static_cast<Addr>(i) * pkt.mb_stride;
            const auto v = vm.readPhys<std::uint64_t>(a);
            vm.writePhys<std::uint64_t>(a, v + addend);
        }
        break;
      }
      default:
        panic("unknown PEI opcode %u", pkt.op);
    }
}

} // namespace pei
