/**
 * @file
 * PEI Management Unit (paper §4.3): the shared structure near the
 * last-level cache that coordinates every PEI in the system.
 *
 * Responsibilities:
 *  1. atomicity management via the PIM directory (plus pfence);
 *  2. cache-coherence management for offloaded PEIs
 *     (back-invalidation for writers, back-writeback for readers);
 *  3. data-locality profiling via the locality monitor, deciding
 *     host-side vs. memory-side execution per PEI;
 *  4. (§7.4) optional balanced dispatch using the memory backend's
 *     EMA request/response flit counters.
 *
 * The PMU also owns all PCUs: one host-side PCU per core and — when
 * the memory backend reports PIM capability — one memory-side PCU
 * per PIM unit (attached to the backend as PIM packet handlers).  On
 * a non-PIM backend every PEI degrades to host-side execution.
 */

#ifndef PEISIM_PIM_PMU_HH
#define PEISIM_PIM_PMU_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "coherence/policy.hh"
#include "common/stats.hh"
#include "mem/backend.hh"
#include "mem/vmem.hh"
#include "pim/locality_monitor.hh"
#include "pim/pcu.hh"
#include "pim/pei_op.hh"
#include "pim/pim_directory.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/** The four system configurations evaluated in §7. */
enum class ExecMode
{
    HostOnly,      ///< all PEIs on host-side PCUs (monitor disabled)
    PimOnly,       ///< all PEIs on memory-side PCUs (monitor disabled)
    IdealHost,     ///< PEIs as normal instructions; ideal, free directory
    LocalityAware, ///< locality-monitor-driven placement (the proposal)
};

/** Returns the display name of an execution mode. */
const char *execModeName(ExecMode mode);

/** PEI subsystem configuration (defaults = paper §6.1). */
struct PimConfig
{
    ExecMode mode = ExecMode::LocalityAware;

    unsigned directory_entries = 2048; ///< 0 = ideal directory
    Ticks directory_latency = 2;
    Ticks monitor_latency = 3;
    bool monitor_ignore_flag = true;
    unsigned monitor_partial_tag_bits = 10;
    /** 0 = mirror the L3 tag-array organization (paper default). */
    unsigned monitor_sets = 0;
    unsigned monitor_ways = 0;

    bool balanced_dispatch = false; ///< §7.4 extension

    /**
     * Saturation half of balanced dispatch (§7.4): when the busier
     * off-chip link's EMA flit count reaches this threshold, even
     * monitor-*hit* PEIs are offloaded to memory until the pressure
     * decays (the EMA halves every 10 µs).  0 disables the override,
     * leaving the monitor's host decision absolute on hits (the
     * default, so baseline figures are unchanged).  Only consulted
     * when balanced_dispatch is on.
     */
    double balanced_saturation_flits = 0.0;

    /**
     * Address-partitioned PMU banks (power of two): PEI target blocks
     * interleave across `pmu_shards` PimDirectory + LocalityMonitor
     * bank pairs (shard = block mod shards, banks indexed by
     * block / shards), splitting the directory entries and monitor
     * sets evenly.  1 (the default) is the paper's single shared PMU
     * and is byte-identical to the unsharded code; sharded runs
     * register per-bank `pmuN.pim_dir.*` / `pmuN.loc_mon.*` stats and
     * invariants plus aggregate cross-bank invariants.  pfence fans
     * out to every bank and completes when the last one drains.
     */
    unsigned pmu_shards = 1;

    Ticks pmu_xbar_latency = 8;     ///< core→PMU crossbar hop

    /**
     * PMU batching window (`--pei-batch`): memory-side PEIs bound for
     * the same vault coalesce into trains of up to this many ops —
     * one merged coherence action through the CoherencePolicy seam
     * and one packet train through the interconnect per flush.  1
     * (the default) bypasses the window entirely and is
     * byte-identical to per-op dispatch; only meaningful on
     * PIM-capable backends.  Capped at 64.
     */
    unsigned pei_batch = 1;

    /**
     * Max ticks a non-full window waits before flushing
     * (`--batch-window-ticks`); 0 picks the default (256 ticks =
     * 64 ns).  Only consulted when pei_batch > 1.
     */
    Ticks batch_window_ticks = 0;

    /**
     * Coherence policy for memory-side offloads (Fig. 5 step ③):
     * "eager" = the paper's per-operation back-inval/back-writeback
     * (bit-identical default); "lazy" = LazyPIM-style batched
     * speculation (coherence/lazy.hh).  `--coherence` on every bench
     * and simfuzz.
     */
    CoherenceConfig coherence;

    PcuConfig pcu;
};

/** The PEI management unit plus all PCUs. */
class Pmu
{
  public:
    using Callback = Continuation;
    /**
     * PEI-retirement callback.  The 48-byte inline budget fits the
     * largest issuer closure in the tree: an async PEI's
     * `{Ctx *, CompletionFn}` completion forwarder.
     */
    using DoneFn = InlineFunction<void(const PimPacket &), 48>;

    Pmu(EventQueue &eq, const PimConfig &cfg, unsigned cores,
        unsigned l3_sets, unsigned l3_ways, CacheHierarchy &hierarchy,
        MemoryBackend &mem, VirtualMemory &vm, StatRegistry &stats);

    /**
     * Execute one PEI issued by @p core targeting physical address
     * @p paddr.  @p done receives the completed packet (output
     * operands filled in) when the PEI retires.  @p issue_latency
     * defers the pipeline start (e.g. a TLB-miss penalty at the
     * issuing core) while still registering the PEI for pfence
     * tracking immediately, preserving issue-order fence semantics.
     */
    void executePei(unsigned core, PeiOpcode op, Addr paddr,
                    const void *input, unsigned input_size, DoneFn done,
                    Ticks issue_latency = 0);

    /** pfence: @p done fires once all earlier writer PEIs complete. */
    void pfence(Callback done);

    /** Bank 0 — the whole PMU when pmu_shards == 1. */
    PimDirectory &directory() { return *dirs[0]; }
    LocalityMonitor &monitor() { return *mons[0]; }

    /** Address-partitioned PMU banks (probe/bench hooks). */
    unsigned pmuShards() const
    {
        return static_cast<unsigned>(dirs.size());
    }
    PimDirectory &directoryBank(unsigned s) { return *dirs[s]; }
    LocalityMonitor &monitorBank(unsigned s) { return *mons[s]; }

    CoherencePolicy &coherence() { return *coh; }
    Pcu &hostPcu(unsigned core) { return *host_pcus[core]; }

    /** Memory-side PCU buffer of PIM unit @p unit (probe hook). */
    Pcu &memPcu(unsigned unit) { return mem_pcus[unit]->pcu(); }
    unsigned numHostPcus() const
    {
        return static_cast<unsigned>(host_pcus.size());
    }
    unsigned numMemPcus() const
    {
        return static_cast<unsigned>(mem_pcus.size());
    }

    std::uint64_t peisHost() const { return stat_peis_host.value(); }
    std::uint64_t peisMem() const { return stat_peis_mem.value(); }

    /** Vault-spanning multi-block PEIs forced to host execution. */
    std::uint64_t peisSpanHost() const
    {
        return stat_mb_span_host.value();
    }

    /** PEIs the saturation override diverted memory-side (§7.4). */
    std::uint64_t saturationToMem() const
    {
        return stat_saturation_to_mem.value();
    }

    /**
     * Target blocks of memory-side *writer* PEIs between the end of
     * their back-invalidation and their retirement: no cache level
     * may hold a copy of these (probe hook; one entry per PEI).
     */
    const std::vector<Addr> &memWriterBlocks() const
    {
        return mem_writer_blocks;
    }

    /**
     * Target blocks of memory-side *reader* PEIs between the end of
     * their back-writeback and their retirement: copies may stay
     * cached but none may be Modified (probe hook).
     */
    const std::vector<Addr> &memReaderBlocks() const
    {
        return mem_reader_blocks;
    }

  private:
    /**
     * One in-flight PEI from issue to retirement.  The packet and
     * the issuer's completion callback are parked here (pooled, slab
     * storage) so that every pipeline-stage event captures only
     * `{this, txn-handle}` — the restructure that keeps the whole
     * PEI pipeline inside Continuation's inline-capture budget.
     */
    struct PeiTxn
    {
        PimPacket pkt;
        DoneFn done;
        unsigned core;
        Tick asked = 0;      ///< directory-wait start
        Tick load_start = 0; ///< host cache-load start
        std::uint32_t coh_token = 0; ///< coherence-policy batch token
        unsigned mb_pending = 0; ///< outstanding multi-block host accesses
        /**
         * Directory locks this PEI holds, one representative block
         * per distinct (bank, entry), in ascending acquisition
         * order.  Single-block PEIs hold exactly their target block;
         * multi-block runs lock every element block so the paper's
         * per-block atomicity (and the probes' stale/dirty-copy
         * windows) extend to the whole run.
         */
        Addr lock_blocks[max_pei_target_blocks] = {};
        std::uint8_t lock_count = 0;
        std::uint8_t locks_held = 0; ///< acquisition progress
    };

    // Pipeline stages, one per latency edge of the PEI's lifetime.
    void startPei(std::uint32_t txn);
    void idealGranted(std::uint32_t txn);
    void acquireLock(std::uint32_t txn);
    void buildLockList(PeiTxn &t);
    void acquireNextLock(std::uint32_t txn);
    void lockGranted(std::uint32_t txn);
    void decide(std::uint32_t txn);
    void decideLookup(std::uint32_t txn);
    void hostExecute(std::uint32_t txn);
    void hostExecuteBuffered(std::uint32_t txn);
    void hostLoaded(std::uint32_t txn);
    void hostComputed(std::uint32_t txn);
    void memExecute(std::uint32_t txn);
    void offload(std::uint32_t txn);
    void memFinish(std::uint32_t txn, PimPacket completed);
    void finish(std::uint32_t txn, bool executed_at_host);

    // Batching-window stages (cfg.pei_batch > 1 on a PIM backend).
    void windowInsert(std::uint32_t txn);
    void armWindowTimer(unsigned gv);
    void flushWindow(unsigned gv);
    void dispatchTrain(unsigned gv, unsigned n);
    void offloadTrain(std::uint32_t train);

    /** Record one in-flight probe entry per element block. */
    void pushInflightBlocks(const PeiTxn &t);

    /** True when @p pkt's element blocks decode to multiple vaults. */
    bool vaultSpanning(const PimPacket &pkt) const;

    /** Balanced-dispatch choice on a locality-monitor miss:
     *  true = offload to memory. */
    bool balancedChoice(const PimPacket &pkt);

    /** PMU bank owning @p block (block-interleaved, power of two). */
    unsigned shardOf(Addr block) const
    {
        return static_cast<unsigned>(block) & shard_mask;
    }

    /** @p block as seen inside its bank: the interleave bits drop out
     *  so bank indexing stays injective (identity when unsharded). */
    Addr bankBlock(Addr block) const { return block >> shard_bits; }

    PimDirectory &dirFor(Addr block) { return *dirs[shardOf(block)]; }
    LocalityMonitor &monFor(Addr block)
    {
        return *mons[shardOf(block)];
    }

    EventQueue &eq;
    PimConfig cfg;
    CacheHierarchy &hierarchy;
    MemoryBackend &mem;
    VirtualMemory &vm;

    unsigned shard_bits = 0;
    unsigned shard_mask = 0;
    std::vector<std::unique_ptr<PimDirectory>> dirs;
    std::vector<std::unique_ptr<LocalityMonitor>> mons;
    std::unique_ptr<CoherencePolicy> coh;
    std::vector<std::unique_ptr<Pcu>> host_pcus;
    std::vector<std::unique_ptr<MemSidePcu>> mem_pcus;

    SlotPool<PeiTxn> txns; ///< in-flight PEI transaction records

    /**
     * Per-vault coalescing window (tentpole of the batched-dispatch
     * pipeline).  Memory-side PEIs park here until the window fills
     * (cfg.pei_batch), its timer expires (window_ticks) or a pfence
     * flushes it; a flush takes one merged coherence action and one
     * interconnect train for the whole batch.  Parked PEIs hold their
     * directory locks, so the timer is always armed while a window is
     * non-empty — a window can never strand its members.
     */
    struct BatchWindow
    {
        std::vector<std::uint32_t> txns; ///< parked PeiTxn handles
        std::uint64_t timer_gen = 0;     ///< voids stale timer events
        bool flush_pending = false;      ///< stalled on vault credits
    };

    /** One dispatched train between coherence grant and offload. */
    struct TrainTxn
    {
        std::vector<std::uint32_t> txns;
    };

    bool batch_on = false;   ///< pei_batch > 1 on a PIM backend
    Ticks window_ticks = 0;  ///< resolved batch_window_ticks
    std::vector<BatchWindow> windows;      ///< one per global vault
    std::vector<unsigned> vault_inflight;  ///< dispatched, unretired
    SlotPool<TrainTxn> train_txns;

    /** One outstanding sharded pfence: completes when every bank's
     *  fence callback has fired. */
    struct PfenceJoin
    {
        unsigned remaining;
        Callback done;
    };
    SlotPool<PfenceJoin> pfence_joins;

    /** In-flight memory-side PEI targets (see memWriterBlocks()). */
    std::vector<Addr> mem_writer_blocks;
    std::vector<Addr> mem_reader_blocks;

    Counter stat_peis_issued;
    Counter stat_peis_host;
    Counter stat_peis_mem;
    Counter stat_peis_mem_writers; ///< writer PEIs sent memory-side
    Counter stat_peis_mem_readers; ///< reader PEIs sent memory-side
    /** Element blocks of memory-side writer/reader PEIs (one per
     *  target block — equals the PEI counters for classic ops, more
     *  for gather/scatter).  Basis of the eager coherence-conservation
     *  invariants, which count per-block actions. */
    Counter stat_mem_writer_blocks;
    Counter stat_mem_reader_blocks;
    Counter stat_batched_peis;      ///< PEIs dispatched in trains (>= 2)
    Counter stat_pei_trains;        ///< trains dispatched (>= 2 members)
    Counter stat_window_singletons; ///< windows that drained with 1 PEI
    Counter stat_batch_stalls;      ///< flushes deferred on vault credits
    Counter stat_mb_span_host;      ///< vault-spanning runs forced host
    Counter stat_balanced_to_host;
    Counter stat_balanced_to_mem;
    Counter stat_saturation_to_mem; ///< monitor hits overridden (§7.4)

    /** End-to-end PEI latency (issue → retire), all PEIs. */
    Histogram hist_pei_latency;
    /** End-to-end latency of host-side-executed PEIs. */
    Histogram hist_pei_latency_host;
    /** End-to-end latency of memory-side-executed PEIs. */
    Histogram hist_pei_latency_mem;
    /** Directory wait: acquire request → lock granted. */
    Histogram hist_dir_wait;
    /** Cache-stage latency of host-executed PEIs (target load). */
    Histogram hist_host_cache;
    /** PEIs per dispatched window flush (batching only). */
    Histogram hist_window_peis;
};

} // namespace pei

#endif // PEISIM_PIM_PMU_HH
