#include "locality_monitor.hh"

#include "common/logging.hh"

namespace pei
{

LocalityMonitor::LocalityMonitor(unsigned sets, unsigned ways,
                                 StatRegistry &stats,
                                 unsigned partial_tag_bits,
                                 bool use_ignore_flag,
                                 const std::string &name)
    : sets(sets), ways(ways), set_bits(floorLog2(sets)),
      tag_bits(partial_tag_bits), use_ignore_flag(use_ignore_flag),
      array(static_cast<std::size_t>(sets) * ways)
{
    fatal_if(!isPowerOf2(sets) || ways == 0,
             "bad locality monitor geometry %ux%u", sets, ways);
    stats.add(name + ".lookups", &stat_lookups);
    stats.add(name + ".hits", &stat_hits);
    stats.add(name + ".misses", &stat_misses);
    stats.add(name + ".ignored_hits", &stat_ignored_hits);
    stats.addInvariant(
        name + ".hits + misses + ignored_hits == lookups",
        [this] {
            const std::uint64_t parts = stat_hits.value() +
                                        stat_misses.value() +
                                        stat_ignored_hits.value();
            if (parts == stat_lookups.value())
                return std::string();
            return "hits=" + std::to_string(stat_hits.value()) +
                   " misses=" + std::to_string(stat_misses.value()) +
                   " ignored_hits=" +
                   std::to_string(stat_ignored_hits.value()) +
                   " sum to " + std::to_string(parts) + " != lookups=" +
                   std::to_string(stat_lookups.value());
        });
}

LocalityMonitor::Entry *
LocalityMonitor::find(Addr block)
{
    Entry *base = &array[static_cast<std::size_t>(setOf(block)) * ways];
    const std::uint32_t tag = tagOf(block);
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].partial_tag == tag)
            return &base[w];
    }
    return nullptr;
}

bool
LocalityMonitor::lookupForPei(Addr block)
{
    ++stat_lookups;
    Entry *e = find(block);
    if (!e) {
        ++stat_misses;
        return false;
    }
    if (use_ignore_flag && e->ignore) {
        // First hit on a PIM-allocated entry does not count as high
        // locality, but clears the flag so subsequent hits do.  It is
        // an ignored hit, not a miss: the three outcome counters
        // partition lookups disjointly.
        e->ignore = false;
        ++stat_ignored_hits;
        return false;
    }
    ++stat_hits;
    return true;
}

void
LocalityMonitor::insertOrPromote(Addr block, bool from_pim)
{
    if (Entry *e = find(block)) {
        e->last_use = ++use_clock;
        if (!from_pim)
            e->ignore = false; // demand accesses clear the flag
        return;
    }
    // Allocate: LRU victim within the set.
    Entry *base = &array[static_cast<std::size_t>(setOf(block)) * ways];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].last_use < victim->last_use)
            victim = &base[w];
    }
    victim->valid = true;
    victim->partial_tag = tagOf(block);
    victim->ignore = from_pim && use_ignore_flag;
    victim->last_use = ++use_clock;
}

void
LocalityMonitor::onL3Access(Addr block)
{
    insertOrPromote(block, false);
}

void
LocalityMonitor::onPimIssue(Addr block)
{
    insertOrPromote(block, true);
}

} // namespace pei
