#include "locality_monitor.hh"

#include "common/logging.hh"

namespace pei
{

LocalityMonitor::LocalityMonitor(unsigned sets, unsigned ways,
                                 StatRegistry &stats,
                                 unsigned partial_tag_bits,
                                 bool use_ignore_flag,
                                 const std::string &name)
    : sets(sets), ways(ways), set_bits(floorLog2(sets)),
      tag_bits(partial_tag_bits), use_ignore_flag(use_ignore_flag),
      array(static_cast<std::size_t>(sets) * ways)
{
    fatal_if(!isPowerOf2(sets) || ways == 0,
             "bad locality monitor geometry %ux%u", sets, ways);
    stats.add(name + ".hits", &stat_hits);
    stats.add(name + ".misses", &stat_misses);
    stats.add(name + ".ignored_hits", &stat_ignored_hits);
}

LocalityMonitor::Entry *
LocalityMonitor::find(Addr block)
{
    Entry *base = &array[static_cast<std::size_t>(setOf(block)) * ways];
    const std::uint32_t tag = tagOf(block);
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].partial_tag == tag)
            return &base[w];
    }
    return nullptr;
}

bool
LocalityMonitor::lookupForPei(Addr block)
{
    Entry *e = find(block);
    if (!e) {
        ++stat_misses;
        return false;
    }
    if (use_ignore_flag && e->ignore) {
        // First hit on a PIM-allocated entry does not count as high
        // locality, but clears the flag so subsequent hits do.
        e->ignore = false;
        ++stat_ignored_hits;
        ++stat_misses;
        return false;
    }
    ++stat_hits;
    return true;
}

void
LocalityMonitor::insertOrPromote(Addr block, bool from_pim)
{
    if (Entry *e = find(block)) {
        e->last_use = ++use_clock;
        if (!from_pim)
            e->ignore = false; // demand accesses clear the flag
        return;
    }
    // Allocate: LRU victim within the set.
    Entry *base = &array[static_cast<std::size_t>(setOf(block)) * ways];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].last_use < victim->last_use)
            victim = &base[w];
    }
    victim->valid = true;
    victim->partial_tag = tagOf(block);
    victim->ignore = from_pim && use_ignore_flag;
    victim->last_use = ++use_clock;
}

void
LocalityMonitor::onL3Access(Addr block)
{
    insertOrPromote(block, false);
}

void
LocalityMonitor::onPimIssue(Addr block)
{
    insertOrPromote(block, true);
}

} // namespace pei
