/**
 * @file
 * The request-driven serving layer: traffic generators feeding
 * multi-tenant bounded queues, drained by batching worker coroutines
 * that run PEI kernels against shared in-memory state.
 *
 * One Server instance drives one System:
 *
 *   planTraffic() ──> TenantQueues ──> worker coroutines ──> kernels
 *   (host-side,        (bounded,        (admit up to           (PEIs on
 *    pre-sampled)       FIFO/WFQ,        batch_max, pay         shared
 *                       shed on          dispatch cost,         state)
 *                       overflow)        run kernels)
 *
 * Open-loop modes use an arrival-driver coroutine walking the
 * pre-sampled trace; closed-loop mode uses one coroutine per client
 * (think, enqueue, await completion).  Workers park when the queues
 * are empty and are woken by a zero-delay event on every enqueue, so
 * scheduling stays deterministic and lost-wakeup-free.  All serving
 * logic runs on the host shard; only the kernels' memory traffic
 * crosses shards under --shards > 1.
 *
 * Per-request latency stages (enqueue→admit→dispatch→retire) are
 * recorded in per-tenant stats-v2 histograms
 * ("serve.t<N>.{queue_wait,dispatch_wait,service,total}_ticks"),
 * with counters "serve.t<N>.{arrivals,accepted,shed,completed}" and
 * audit invariants arrivals == accepted + shed and
 * completed == accepted.
 *
 * Cooperative cancellation: the Server adds no blocking constructs
 * of its own — every wait is an EventQueue event — so a watchdog's
 * EventQueue::requestStop unwinds a serving run exactly like any
 * other workload (SimulationStopped out of Runtime::run, parked
 * coroutine frames reclaimed by ~Runtime/~Server).
 */

#ifndef PEISIM_SERVE_SERVER_HH
#define PEISIM_SERVE_SERVER_HH

#include <coroutine>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "serve/queue.hh"
#include "serve/state.hh"
#include "serve/traffic.hh"
#include "sim/task.hh"

namespace pei
{

class System;
class Runtime;
class Ctx;
class EventQueue;

struct ServeConfig
{
    TrafficConfig traffic;
    ServeStateConfig state;
    std::vector<TenantTraffic> tenants{TenantTraffic{}};
    SchedPolicy policy = SchedPolicy::WeightedFair;
    unsigned workers = 8;           ///< worker coroutines (round-robin cores)
    unsigned batch_max = 4;         ///< max requests admitted per batch
    Ticks dispatch_cost_ticks = 200; ///< per-batch dispatch overhead
};

/** Per-tenant latency/throughput summary (ticks). */
struct TenantSummary
{
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
};

/** End-of-run summary used by the fig13 bench and tests. */
struct ServingSummary
{
    std::uint64_t arrivals = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    Tick last_enqueue = 0;
    Tick last_retire = 0;
    double offered_per_mtick = 0.0;  ///< measured arrival rate
    double achieved_per_mtick = 0.0; ///< measured completion rate
    double p50 = 0.0;                ///< aggregate total-latency ticks
    double p95 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    std::vector<TenantSummary> tenants;
};

class Server
{
  public:
    /** Registers the serve.* stats with @p sys's registry. */
    Server(System &sys, const ServeConfig &cfg);

    /** Build shared state and the traffic plan (before start()). */
    void setup(Runtime &rt);

    /** Spawn the traffic driver(s) and worker coroutines. */
    void start(Runtime &rt);

    /** Recompute every request's expected result host-side. */
    bool validate(System &sys, std::string &msg) const;

    const ServeConfig &config() const { return cfg_; }
    const ServeState &state() const { return state_; }
    const std::vector<Request> &requests() const
    {
        return plan_.requests;
    }

    ServingSummary summary() const;

    /** Deterministic JSON rendering of summary() (no wall-clock). */
    std::string summaryJson() const;

    /**
     * One line per request: "id tenant kind param arrival enqueue
     * admit dispatch retire shed matches result" — byte-comparable
     * across runs for the determinism tests.
     */
    std::string requestTrace() const;

  private:
    struct TenantStats
    {
        Counter arrivals;
        Counter accepted;
        Counter shed;
        Counter completed;
        Histogram queue_wait;
        Histogram dispatch_wait;
        Histogram service;
        Histogram total;
    };

    /** Parks a worker until work (or close) arrives. */
    class ParkAwaiter
    {
      public:
        explicit ParkAwaiter(Server &s) : server(s) {}

        bool
        await_ready() const
        {
            return !server.queues_.empty() || server.queues_.closed();
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            server.parked_.push_back(h);
        }

        void await_resume() {}

      private:
        Server &server;
    };

    /** Parks a closed-loop client until its request retires. */
    class CompletionAwaiter
    {
      public:
        explicit CompletionAwaiter(Request &r) : req(r) {}

        bool await_ready() const { return req.completed; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            req.waiter = h;
        }

        void await_resume() {}

      private:
        Request &req;
    };

    Task arrivalDriver(Ctx &ctx);
    Task clientLoop(Ctx &ctx, unsigned cid);
    Task workerLoop(Ctx &ctx, unsigned wid);

    Task hashProbeKernel(Ctx &ctx, Request &r);
    Task pageRankKernel(Ctx &ctx, Request &r);
    Task knnKernel(Ctx &ctx, Request &r);

    void enqueue(Request &r, EventQueue &eq);
    void wakeWorkers(EventQueue &eq);
    void finishRequest(Request &r, EventQueue &eq);

    System &sys_;
    ServeConfig cfg_;
    ServeState state_;
    TrafficPlan plan_;
    TenantQueues queues_;
    std::vector<std::coroutine_handle<>> parked_;
    std::uint64_t enqueued_ = 0; ///< arrivals processed (incl. shed)

    std::vector<std::unique_ptr<TenantStats>> tstats_;
    Counter batches_;
    Histogram batch_size_;
    Histogram total_all_; ///< total latency across tenants
};

} // namespace pei

#endif // PEISIM_SERVE_SERVER_HH
