#include "traffic.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pei
{

namespace
{

/** Exponential sample with mean @p mean_ticks, rounded to >= 1. */
Ticks
expTicks(Rng &rng, double mean_ticks)
{
    // uniform() is in [0, 1); 1-u is in (0, 1] so the log is finite.
    const double u = rng.uniform();
    const double x = -std::log(1.0 - u) * mean_ticks;
    const double r = std::llround(x);
    return r < 1.0 ? 1 : static_cast<Ticks>(r);
}

/** Pick an index by relative weights (cumulative scan). */
unsigned
pickWeighted(Rng &rng, const std::vector<double> &weights, double total)
{
    const double u = rng.uniform() * total;
    double acc = 0.0;
    for (unsigned i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (u < acc)
            return i;
    }
    return static_cast<unsigned>(weights.size() - 1);
}

/** Sample tenant, kind, and parameter for one request. */
void
sampleRequestBody(Request &r, Rng &rng,
                  const std::vector<TenantTraffic> &tenants,
                  const std::vector<double> &shares, double share_total,
                  std::vector<ZipfSampler> &zipfs)
{
    r.tenant = pickWeighted(rng, shares, share_total);
    const TenantTraffic &tt = tenants[r.tenant];
    std::vector<double> mix(tt.kind_mix, tt.kind_mix + num_request_kinds);
    double mix_total = 0.0;
    for (double m : mix)
        mix_total += m;
    const unsigned kind = pickWeighted(rng, mix, mix_total);
    r.kind = static_cast<RequestKind>(kind);
    r.param = zipfs[kind].sample();
}

} // namespace

TrafficPlan
planTraffic(const TrafficConfig &cfg,
            const std::vector<TenantTraffic> &tenants)
{
    fatal_if(tenants.empty(), "traffic plan needs at least one tenant");
    fatal_if(cfg.offered_per_mtick <= 0.0, "offered rate must be > 0");

    TrafficPlan plan;
    Rng rng(cfg.seed ^ 0x5E47);

    std::vector<double> shares;
    double share_total = 0.0;
    for (const TenantTraffic &tt : tenants) {
        fatal_if(tt.arrival_share <= 0.0, "tenant share must be > 0");
        shares.push_back(tt.arrival_share);
        share_total += tt.arrival_share;
    }

    // One independent Zipf stream per request kind, over that kind's
    // own domain (hot probe keys, hub vertices, popular queries).
    std::vector<ZipfSampler> zipfs;
    for (unsigned k = 0; k < num_request_kinds; ++k) {
        zipfs.emplace_back(cfg.kind_domain[k], cfg.zipf_s,
                           cfg.seed ^ (0xA110C8ULL + k));
    }

    if (cfg.mode == TrafficMode::ClosedLoop) {
        const std::uint64_t total =
            std::uint64_t{cfg.clients} * cfg.requests_per_client;
        plan.requests.resize(total);
        plan.clients.resize(cfg.clients);
        std::uint64_t id = 0;
        for (unsigned c = 0; c < cfg.clients; ++c) {
            for (unsigned i = 0; i < cfg.requests_per_client; ++i) {
                Request &r = plan.requests[id];
                r.id = id;
                sampleRequestBody(r, rng, tenants, shares, share_total,
                                  zipfs);
                // Closed loop keeps a client on one tenant so the
                // weighted-fair share comparison is meaningful.
                r.tenant = c % tenants.size();
                ClientStep step;
                step.think = expTicks(
                    rng, static_cast<double>(cfg.think_mean_ticks));
                step.request = id;
                plan.clients[c].push_back(step);
                ++id;
            }
        }
        return plan;
    }

    // Open-loop modes: pre-sample the entire arrival time series.
    const double mean_inter =
        1e6 / cfg.offered_per_mtick; // ticks between arrivals

    // MMPP-2 phase machine (OpenPoisson never flips out of "low",
    // whose rate is then exactly the offered rate).
    double mean_lo = mean_inter;
    double mean_hi = mean_inter;
    double dwell_lo = 0.0;
    double dwell_hi = 0.0;
    bool bursty = cfg.mode == TrafficMode::OpenBursty;
    if (bursty) {
        const double f = cfg.burst_fraction;
        const double ratio = cfg.burst_ratio;
        fatal_if(f <= 0.0 || f >= 1.0,
                 "burst_fraction must be in (0, 1)");
        fatal_if(ratio <= 1.0, "burst_ratio must be > 1");
        // rate_lo * (1-f) + rate_hi * f == offered, rate_hi == R*rate_lo.
        const double rate = 1.0 / mean_inter;
        const double rate_lo = rate / (1.0 - f + ratio * f);
        mean_lo = 1.0 / rate_lo;
        mean_hi = mean_lo / ratio;
        dwell_hi = static_cast<double>(cfg.burst_dwell_hi);
        dwell_lo = dwell_hi * (1.0 - f) / f;
    }

    plan.requests.resize(cfg.requests);
    Tick t = 0;
    bool high = false;
    double phase_end =
        bursty ? static_cast<double>(expTicks(rng, dwell_lo)) : 0.0;
    for (std::uint64_t i = 0; i < cfg.requests; ++i) {
        if (bursty) {
            while (static_cast<double>(t) >= phase_end) {
                high = !high;
                phase_end += static_cast<double>(
                    expTicks(rng, high ? dwell_hi : dwell_lo));
            }
        }
        t += expTicks(rng, high ? mean_hi : mean_lo);
        Request &r = plan.requests[i];
        r.id = i;
        r.arrival_tick = t;
        sampleRequestBody(r, rng, tenants, shares, share_total, zipfs);
    }
    return plan;
}

} // namespace pei
