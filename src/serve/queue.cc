#include "queue.hh"

#include "common/logging.hh"

namespace pei
{

TenantQueues::TenantQueues(const std::vector<TenantTraffic> &tenants,
                           SchedPolicy policy)
    : policy_(policy)
{
    fatal_if(tenants.empty(), "TenantQueues needs at least one tenant");
    queues_.resize(tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        fatal_if(tenants[i].queue_cap == 0,
                 "tenant %zu has a zero queue cap", i);
        fatal_if(tenants[i].weight <= 0.0,
                 "tenant %zu has a non-positive weight", i);
        queues_[i].cap = tenants[i].queue_cap;
        queues_[i].weight = tenants[i].weight;
    }
}

bool
TenantQueues::push(Request *r)
{
    panic_if(closed_, "push after close");
    TQ &tq = queues_[r->tenant];
    if (tq.q.size() >= tq.cap)
        return false;
    tq.q.push_back(r);
    ++queued_;
    return true;
}

Request *
TenantQueues::pop()
{
    if (queued_ == 0)
        return nullptr;

    std::size_t best = queues_.size();
    if (policy_ == SchedPolicy::Fifo) {
        for (std::size_t i = 0; i < queues_.size(); ++i) {
            if (queues_[i].q.empty())
                continue;
            const Request *cand = queues_[i].q.front();
            if (best == queues_.size())
                best = i;
            else {
                const Request *cur = queues_[best].q.front();
                if (cand->enqueue_tick < cur->enqueue_tick ||
                    (cand->enqueue_tick == cur->enqueue_tick &&
                     cand->id < cur->id)) {
                    best = i;
                }
            }
        }
    } else {
        double best_start = 0.0;
        for (std::size_t i = 0; i < queues_.size(); ++i) {
            if (queues_[i].q.empty())
                continue;
            const double start =
                queues_[i].vfinish > vnow_ ? queues_[i].vfinish : vnow_;
            if (best == queues_.size() || start < best_start) {
                best = i;
                best_start = start;
            }
        }
        TQ &tq = queues_[best];
        const double start = tq.vfinish > vnow_ ? tq.vfinish : vnow_;
        vnow_ = start;
        tq.vfinish = start + 1.0 / tq.weight;
    }

    TQ &tq = queues_[best];
    Request *r = tq.q.front();
    tq.q.pop_front();
    --queued_;
    return r;
}

std::uint64_t
TenantQueues::queuedOf(unsigned tenant) const
{
    return queues_[tenant].q.size();
}

unsigned
TenantQueues::numTenants() const
{
    return static_cast<unsigned>(queues_.size());
}

} // namespace pei
