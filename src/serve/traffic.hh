/**
 * @file
 * Deterministic traffic planning for the serving layer.
 *
 * The whole arrival process — arrival times, tenants, request kinds,
 * kind parameters, and closed-loop think times — is sampled host-side
 * *before* the simulation starts, from the repo's deterministic Rng.
 * The resulting TrafficPlan is a pure function of (TrafficConfig,
 * tenant specs), so a run replays bit-identically for any `--jobs`
 * worker count and the request trace is byte-identical across
 * `--shards` values (only the simulated service timing may differ
 * under conservative shard clamping).
 *
 * Generators:
 *  - OpenPoisson: exponential inter-arrivals at `offered_per_mtick`
 *    (arrivals per million ticks), rounded to >= 1 tick.
 *  - OpenBursty: a 2-state Markov-modulated Poisson process.  The
 *    process alternates exponential-dwell low/high phases whose rates
 *    are scaled so the long-run average stays `offered_per_mtick`
 *    (rate_hi = burst_ratio * rate_lo).  State flips are evaluated at
 *    arrival points, so dwell boundaries are approximated to the
 *    nearest arrival — an accepted simplification for a synthetic
 *    generator; the process remains exactly reproducible.
 *  - ClosedLoop: `clients` independent clients issue
 *    `requests_per_client` requests each, thinking an exponential
 *    `think_mean_ticks` between completion and the next request.
 *    Arrival *times* emerge from the simulation; everything else
 *    (think durations, tenants, kinds, parameters) is pre-sampled.
 *
 * Kind parameters are Zipf-distributed over per-kind domains (hot
 * keys / hub vertices / popular queries), with one independent
 * ZipfSampler stream per kind.
 */

#ifndef PEISIM_SERVE_TRAFFIC_HH
#define PEISIM_SERVE_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "serve/request.hh"

namespace pei
{

enum class TrafficMode : std::uint8_t
{
    OpenPoisson,
    OpenBursty,
    ClosedLoop,
};

inline const char *
trafficModeName(TrafficMode m)
{
    switch (m) {
      case TrafficMode::OpenPoisson: return "open_poisson";
      case TrafficMode::OpenBursty: return "open_bursty";
      case TrafficMode::ClosedLoop: return "closed_loop";
    }
    return "?";
}

/** Per-tenant traffic/queueing parameters. */
struct TenantTraffic
{
    double weight = 1.0;        ///< weighted-fair scheduler weight
    unsigned queue_cap = 64;    ///< bounded queue depth (shed above)
    double arrival_share = 1.0; ///< relative share of offered load
    /** Relative request-kind mix (HashProbe, PageRankFragment,
     *  KnnQuery); normalized internally. */
    double kind_mix[num_request_kinds] = {1.0, 1.0, 1.0};
};

struct TrafficConfig
{
    TrafficMode mode = TrafficMode::OpenPoisson;
    std::uint64_t requests = 1024;   ///< total (open-loop modes)
    double offered_per_mtick = 50.0; ///< arrivals per 1e6 ticks

    // ---- OpenBursty (MMPP-2) ----
    double burst_ratio = 8.0;       ///< high-state rate / low-state rate
    double burst_fraction = 0.2;    ///< long-run fraction of time high
    Ticks burst_dwell_hi = 50'000;  ///< mean high-state dwell, ticks

    // ---- ClosedLoop ----
    unsigned clients = 16;
    unsigned requests_per_client = 32;
    Ticks think_mean_ticks = 20'000;

    // ---- parameter sampling ----
    std::uint64_t seed = 1;
    double zipf_s = 0.8;
    /** Zipf domain per kind (probe universe, vertices, queries);
     *  filled by the Server from its state config. */
    std::uint64_t kind_domain[num_request_kinds] = {1, 1, 1};
};

/** One closed-loop client step: think, then issue a planned request. */
struct ClientStep
{
    Ticks think = 0;           ///< pre-sampled think time
    std::uint64_t request = 0; ///< index into TrafficPlan::requests
};

struct TrafficPlan
{
    /** Every request of the run; Request::id == index.  Open loop:
     *  sorted by strictly increasing arrival_tick. */
    std::vector<Request> requests;
    /** Closed loop only: each client's scripted steps. */
    std::vector<std::vector<ClientStep>> clients;
};

/** Plan the full arrival process (see file comment). */
TrafficPlan planTraffic(const TrafficConfig &cfg,
                        const std::vector<TenantTraffic> &tenants);

} // namespace pei

#endif // PEISIM_SERVE_TRAFFIC_HH
