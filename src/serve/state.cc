#include "state.hh"

#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/runtime.hh"
#include "workloads/input_cache.hh"

namespace pei
{

/** Memoized host-side inputs shared by every System of a sweep. */
struct ServeState::Image
{
    HashTableImage table;
    EdgeList edges;
    std::vector<float> points;  ///< points * knn_dims floats
    std::vector<float> queries; ///< queries * knn_dims floats
};

void
ServeState::setup(Runtime &rt)
{
    fatal_if(cfg_.probe_universe < cfg_.table_rows,
             "probe universe smaller than the table");
    fatal_if(cfg_.points < cfg_.knn_window,
             "kNN window larger than the point set");
    fatal_if(cfg_.queries == 0 || cfg_.vertices == 0,
             "empty serve state domain");

    const std::string key =
        "serve/table=" + std::to_string(cfg_.table_rows) +
        "/universe=" + std::to_string(cfg_.probe_universe) +
        "/v=" + std::to_string(cfg_.vertices) +
        "/e=" + std::to_string(cfg_.edges) +
        "/pts=" + std::to_string(cfg_.points) +
        "/q=" + std::to_string(cfg_.queries) +
        "/seed=" + std::to_string(cfg_.seed);
    const ServeStateConfig cfg = cfg_;
    // stdfunction-allowed: one-time host-side input build, not a
    // scheduling path (cachedInput's builder parameter).
    image_ = &cachedInput<Image>(key, [cfg]() -> Image {
        Image img;
        std::vector<std::uint64_t> build_keys(cfg.table_rows);
        for (std::uint64_t i = 0; i < cfg.table_rows; ++i)
            build_keys[i] = probeKey(i);
        img.table = buildHashTable(build_keys);
        img.edges = genRmat(cfg.vertices, cfg.edges, cfg.seed ^ 0x6A);
        Rng rng(cfg.seed ^ 0x6B);
        img.points.resize(cfg.points * ServeStateConfig::knn_dims);
        for (auto &f : img.points)
            f = static_cast<float>(rng.uniform());
        img.queries.resize(cfg.queries * ServeStateConfig::knn_dims);
        for (auto &f : img.queries)
            f = static_cast<float>(rng.uniform());
        return img;
    });

    table_addr_ = materializeHashTable(rt, image_->table);
    graph_ = std::make_unique<CsrGraph>(rt, image_->edges);

    VirtualMemory &vm = rt.system().memory();
    rank_addr_ = rt.allocArray<double>(cfg_.vertices);
    for (std::uint64_t v = 0; v < cfg_.vertices; ++v)
        vm.write<double>(rank_addr_ + 8 * v, 0.0);

    points_addr_ =
        rt.allocArray<float>(cfg_.points * ServeStateConfig::knn_dims);
    for (std::size_t i = 0; i < image_->points.size(); ++i)
        vm.write<float>(points_addr_ + 4 * i, image_->points[i]);
}

std::uint64_t
ServeState::numBuckets() const
{
    return image_->table.num_buckets;
}

const float *
ServeState::queryVec(std::uint64_t q) const
{
    return &image_->queries[q * ServeStateConfig::knn_dims];
}

const float *
ServeState::pointVec(std::uint64_t p) const
{
    return &image_->points[p * ServeStateConfig::knn_dims];
}

float
ServeState::refKnnMin(std::uint64_t q) const
{
    const float *qv = queryVec(q);
    const std::uint64_t w0 = windowStart(q);
    float best = 0.0f;
    for (std::uint64_t p = w0; p < w0 + cfg_.knn_window; ++p) {
        const float *pv = pointVec(p);
        // Same accumulation order as the EuclidDist PEI.
        float sum = 0.0f;
        for (unsigned i = 0; i < ServeStateConfig::knn_dims; ++i) {
            const float d = pv[i] - qv[i];
            sum += d * d;
        }
        if (p == w0 || sum < best)
            best = sum;
    }
    return best;
}

} // namespace pei
