/**
 * @file
 * The unit of work of the serving layer: one client request.
 *
 * A request names a PEI kernel (hash-table probe, PageRank fragment,
 * kNN query) plus a sampled parameter, and carries the four
 * lifecycle timestamps the tail-latency analysis is built on:
 *
 *   enqueue  — arrival at the tenant queue (open-loop: the traffic
 *              trace's arrival tick; closed-loop: when the client
 *              finished thinking)
 *   admit    — popped from the queue by the admission scheduler
 *   dispatch — the worker starts the kernel (after the batch's
 *              dispatch overhead)
 *   retire   — the kernel completed (all PEIs drained)
 *
 * Requests are preallocated host-side by the traffic planner and
 * never move, so raw pointers into the request vector stay valid for
 * the whole run and per-request records can be compared bit-for-bit
 * across runs.
 */

#ifndef PEISIM_SERVE_REQUEST_HH
#define PEISIM_SERVE_REQUEST_HH

#include <coroutine>
#include <cstdint>

#include "common/types.hh"

namespace pei
{

enum class RequestKind : std::uint8_t
{
    HashProbe,        ///< chase HashProbe PEIs through the shared table
    PageRankFragment, ///< FaddDouble contributions of one vertex's edges
    KnnQuery,         ///< EuclidDist scan of a point window, min host-side
};

constexpr unsigned num_request_kinds = 3;

inline const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::HashProbe: return "hash_probe";
      case RequestKind::PageRankFragment: return "pagerank_fragment";
      case RequestKind::KnnQuery: return "knn_query";
    }
    return "?";
}

struct Request
{
    std::uint64_t id = 0;    ///< index into the traffic plan
    unsigned tenant = 0;
    RequestKind kind = RequestKind::HashProbe;
    /** Kind-specific parameter sampled by the traffic planner (key
     *  index / source vertex / query index). */
    std::uint64_t param = 0;
    /** Open loop: absolute arrival tick from the trace. */
    Tick arrival_tick = 0;

    // ---- lifecycle stamps (filled during the run) ----
    Tick enqueue_tick = 0;
    Tick admit_tick = 0;
    Tick dispatch_tick = 0;
    Tick retire_tick = 0;
    bool shed = false;       ///< rejected at enqueue (queue full)
    bool completed = false;  ///< kernel retired

    // ---- kernel results (validated host-side after the run) ----
    std::uint64_t matches = 0; ///< HashProbe: keys found
    double result = 0.0;       ///< kNN: min distance; PR: sum added

    /** Closed-loop client parked on this request's completion. */
    std::coroutine_handle<> waiter = {};

    Ticks queueWait() const { return admit_tick - enqueue_tick; }
    Ticks dispatchWait() const { return dispatch_tick - admit_tick; }
    Ticks serviceTicks() const { return retire_tick - dispatch_tick; }
    Ticks totalTicks() const { return retire_tick - enqueue_tick; }
};

} // namespace pei

#endif // PEISIM_SERVE_REQUEST_HH
