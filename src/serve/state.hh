/**
 * @file
 * Shared in-memory state the serving layer's request kernels operate
 * on: one bucket-chained hash table (HashProbe requests), one R-MAT
 * graph with a rank array (PageRankFragment requests), and one point
 * set plus precomputed query vectors (KnnQuery requests).
 *
 * The host-side images (table buckets, edge list, point/query
 * floats) are memoized process-wide through the input cache, so a
 * saturation sweep building dozens of Systems generates each input
 * once; only the copy into each System's simulated memory is
 * per-run.  Host copies double as the reference for post-run
 * validation.
 */

#ifndef PEISIM_SERVE_STATE_HH
#define PEISIM_SERVE_STATE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "workloads/graph.hh"
#include "workloads/hash_table.hh"

namespace pei
{

struct ServeStateConfig
{
    // Hash table: table_rows build keys; probes sample indices over
    // [0, probe_universe) — indices < table_rows are present keys
    // (even values), the rest are absent (odd values), so expected
    // match counts are known by construction and the Zipf-hot low
    // indices give the locality monitor something to find.
    std::uint64_t table_rows = 8192;
    std::uint64_t probe_universe = 16384;
    unsigned probes_per_request = 8;

    // Graph for PageRank fragments.
    std::uint64_t vertices = 4096;
    std::uint64_t edges = 32768;

    // kNN: `points` database points and `queries` query vectors of
    // knn_dims floats (one EuclidDist chunk); a request scans a
    // window of `knn_window` consecutive points.
    std::uint64_t points = 2048;
    std::uint64_t queries = 256;
    std::uint64_t knn_window = 32;

    std::uint64_t seed = 7;

    static constexpr unsigned knn_dims = 16;
};

class ServeState
{
  public:
    explicit ServeState(const ServeStateConfig &cfg) : cfg_(cfg) {}

    /** Build (or reuse) host images and copy them into @p rt. */
    void setup(Runtime &rt);

    const ServeStateConfig &config() const { return cfg_; }

    // ---- hash table ----
    Addr tableAddr() const { return table_addr_; }
    std::uint64_t numBuckets() const;

    /** The probe key for universe index @p idx. */
    static std::uint64_t
    probeKey(std::uint64_t idx)
    {
        return idx * 2 + 2; // present keys; absent variant is odd
    }

    /** Universe index -> key, present (even) or absent (odd). */
    std::uint64_t
    universeKey(std::uint64_t idx) const
    {
        return idx < cfg_.table_rows ? probeKey(idx) : idx * 2 + 1;
    }

    bool keyPresent(std::uint64_t idx) const
    {
        return idx < cfg_.table_rows;
    }

    // ---- graph / rank array ----
    const CsrGraph &graph() const { return *graph_; }
    Addr rankAddr(std::uint64_t v) const { return rank_addr_ + 8 * v; }

    // ---- kNN ----
    Addr pointAddr(std::uint64_t p) const
    {
        return points_addr_ + p * ServeStateConfig::knn_dims * 4;
    }

    const float *queryVec(std::uint64_t q) const;
    const float *pointVec(std::uint64_t p) const;

    std::uint64_t
    windowStart(std::uint64_t q) const
    {
        const std::uint64_t span = cfg_.points - cfg_.knn_window;
        return span ? (q * 131) % span : 0;
    }

    /** Host-side reference min squared distance for query @p q. */
    float refKnnMin(std::uint64_t q) const;

  private:
    struct Image; ///< memoized host-side inputs

    ServeStateConfig cfg_;
    const Image *image_ = nullptr;
    std::unique_ptr<CsrGraph> graph_;
    Addr table_addr_ = invalid_addr;
    Addr rank_addr_ = invalid_addr;
    Addr points_addr_ = invalid_addr;
};

} // namespace pei

#endif // PEISIM_SERVE_STATE_HH
