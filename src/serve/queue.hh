/**
 * @file
 * Multi-tenant bounded request queues with a pluggable admission
 * policy.
 *
 * Each tenant owns one bounded FIFO deque; push() sheds (returns
 * false) when the tenant's queue is at its cap, which bounds both
 * memory and the worst-case queueing delay a tenant can build up.
 * pop() implements the admission policy:
 *
 *  - Fifo: global arrival order — the head request with the smallest
 *    (enqueue_tick, id) across tenants wins.
 *  - WeightedFair: start-time fair queueing with unit request cost.
 *    Each tenant carries a virtual finish time; pop() picks the
 *    backlogged tenant with the smallest max(vfinish, vnow) (ties to
 *    the lower tenant id) and advances its vfinish by 1/weight.
 *    vnow tracks the last admitted start so a long-idle tenant
 *    re-enters at the current virtual time instead of burning
 *    accumulated credit.
 *
 * Everything is plain single-threaded simulation state driven from
 * coroutines on the host shard — determinism comes for free.
 */

#ifndef PEISIM_SERVE_QUEUE_HH
#define PEISIM_SERVE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.hh"
#include "serve/traffic.hh"

namespace pei
{

enum class SchedPolicy : std::uint8_t
{
    Fifo,
    WeightedFair,
};

inline const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::Fifo: return "fifo";
      case SchedPolicy::WeightedFair: return "weighted_fair";
    }
    return "?";
}

class TenantQueues
{
  public:
    TenantQueues(const std::vector<TenantTraffic> &tenants,
                 SchedPolicy policy);

    /** Append @p r to its tenant's queue; false = shed (queue full). */
    bool push(Request *r);

    /** Admit the next request per policy; nullptr when all empty. */
    Request *pop();

    /** No further arrivals will come (workers drain, then exit). */
    void close() { closed_ = true; }
    bool closed() const { return closed_; }

    bool empty() const { return queued_ == 0; }
    std::uint64_t queued() const { return queued_; }
    std::uint64_t queuedOf(unsigned tenant) const;
    unsigned numTenants() const;

  private:
    struct TQ
    {
        std::deque<Request *> q;
        unsigned cap = 0;
        double weight = 1.0;
        double vfinish = 0.0; ///< WeightedFair virtual finish time
    };

    std::vector<TQ> queues_;
    SchedPolicy policy_;
    bool closed_ = false;
    std::uint64_t queued_ = 0;
    double vnow_ = 0.0;
};

} // namespace pei

#endif // PEISIM_SERVE_QUEUE_HH
