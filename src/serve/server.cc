#include "server.hh"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "pim/pei_op.hh"
#include "runtime/runtime.hh"

namespace pei
{

Server::Server(System &sys, const ServeConfig &cfg)
    : sys_(sys), cfg_(cfg), state_(cfg.state),
      queues_(cfg.tenants, cfg.policy)
{
    fatal_if(cfg_.workers == 0, "server needs at least one worker");
    fatal_if(cfg_.batch_max == 0, "batch_max must be >= 1");

    // The traffic planner samples kind parameters over the state's
    // domains (hot probe keys / hub vertices / popular queries).
    cfg_.traffic.kind_domain[0] = cfg_.state.probe_universe;
    cfg_.traffic.kind_domain[1] = cfg_.state.vertices;
    cfg_.traffic.kind_domain[2] = cfg_.state.queries;

    StatRegistry &reg = sys_.stats();
    for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
        tstats_.push_back(std::make_unique<TenantStats>());
        TenantStats *ts = tstats_.back().get();
        const std::string p = "serve.t" + std::to_string(i) + ".";
        reg.add(p + "arrivals", &ts->arrivals);
        reg.add(p + "accepted", &ts->accepted);
        reg.add(p + "shed", &ts->shed);
        reg.add(p + "completed", &ts->completed);
        reg.add(p + "queue_wait_ticks", &ts->queue_wait);
        reg.add(p + "dispatch_wait_ticks", &ts->dispatch_wait);
        reg.add(p + "service_ticks", &ts->service);
        reg.add(p + "total_ticks", &ts->total);
        reg.addInvariant(p + "admission", [ts] {
            const auto a = ts->arrivals.value();
            const auto c = ts->accepted.value();
            const auto s = ts->shed.value();
            if (a == c + s)
                return std::string();
            return "arrivals " + std::to_string(a) + " != accepted " +
                   std::to_string(c) + " + shed " + std::to_string(s);
        });
        reg.addInvariant(p + "drain", [ts] {
            const auto c = ts->accepted.value();
            const auto d = ts->completed.value();
            if (c == d)
                return std::string();
            return "accepted " + std::to_string(c) + " != completed " +
                   std::to_string(d);
        });
    }
    reg.add("serve.batches", &batches_);
    reg.add("serve.batch_size", &batch_size_);
    reg.add("serve.total_ticks", &total_all_);
    reg.addInvariant("serve.batching", [this] {
        std::uint64_t accepted = 0;
        for (const auto &ts : tstats_)
            accepted += ts->accepted.value();
        if (batch_size_.sum() == accepted)
            return std::string();
        return "batched " + std::to_string(batch_size_.sum()) +
               " requests != accepted " + std::to_string(accepted);
    });
}

void
Server::setup(Runtime &rt)
{
    state_.setup(rt);
    plan_ = planTraffic(cfg_.traffic, cfg_.tenants);
    for (const Request &r : plan_.requests) {
        fatal_if(r.tenant >= cfg_.tenants.size(),
                 "planned request for unknown tenant %u", r.tenant);
    }
    if (plan_.requests.empty())
        queues_.close(); // nothing will arrive; workers exit at once
}

void
Server::start(Runtime &rt)
{
    const unsigned cores = sys_.config().cores;
    for (unsigned w = 0; w < cfg_.workers; ++w) {
        rt.spawn(w % cores,
                 [this, w](Ctx &ctx) { return workerLoop(ctx, w); });
    }
    if (cfg_.traffic.mode == TrafficMode::ClosedLoop) {
        for (unsigned c = 0; c < cfg_.traffic.clients; ++c) {
            rt.spawn(c % cores,
                     [this, c](Ctx &ctx) { return clientLoop(ctx, c); });
        }
    } else {
        rt.spawn(cores - 1,
                 [this](Ctx &ctx) { return arrivalDriver(ctx); });
    }
}

// --------------------------------------------------------- traffic in

void
Server::enqueue(Request &r, EventQueue &eq)
{
    r.enqueue_tick = eq.now();
    TenantStats &ts = *tstats_[r.tenant];
    ++ts.arrivals;
    if (queues_.push(&r)) {
        ++ts.accepted;
    } else {
        r.shed = true;
        r.admit_tick = r.enqueue_tick;
        r.dispatch_tick = r.enqueue_tick;
        r.retire_tick = r.enqueue_tick;
        ++ts.shed;
    }
    if (++enqueued_ == plan_.requests.size())
        queues_.close();
    wakeWorkers(eq);
}

void
Server::wakeWorkers(EventQueue &eq)
{
    if (parked_.empty())
        return;
    auto woken = std::move(parked_);
    parked_.clear();
    for (auto h : woken)
        eq.schedule(0, Continuation([h] { resumeLive(h); }));
}

Task
Server::arrivalDriver(Ctx &ctx)
{
    EventQueue &eq = ctx.sys().eventQueue();
    Tick prev = 0;
    for (Request &r : plan_.requests) {
        co_await DelayAwaiter(eq, r.arrival_tick - prev);
        prev = r.arrival_tick;
        enqueue(r, eq);
    }
}

Task
Server::clientLoop(Ctx &ctx, unsigned cid)
{
    EventQueue &eq = ctx.sys().eventQueue();
    for (const ClientStep &step : plan_.clients[cid]) {
        co_await DelayAwaiter(eq, step.think);
        Request &r = plan_.requests[step.request];
        enqueue(r, eq);
        if (!r.shed)
            co_await CompletionAwaiter(r);
    }
}

// ------------------------------------------------------------ serving

Task
Server::workerLoop(Ctx &ctx, unsigned wid)
{
    (void)wid;
    EventQueue &eq = ctx.sys().eventQueue();
    std::vector<Request *> batch;
    batch.reserve(cfg_.batch_max);
    while (true) {
        batch.clear();
        while (batch.size() < cfg_.batch_max) {
            Request *r = queues_.pop();
            if (!r)
                break;
            r->admit_tick = eq.now();
            batch.push_back(r);
        }
        if (batch.empty()) {
            if (queues_.closed())
                break;
            co_await ParkAwaiter(*this);
            continue;
        }
        ++batches_;
        batch_size_.record(batch.size());
        co_await ctx.compute(cfg_.dispatch_cost_ticks);
        for (Request *r : batch) {
            r->dispatch_tick = eq.now();
            Task kernel =
                r->kind == RequestKind::HashProbe
                    ? hashProbeKernel(ctx, *r)
                : r->kind == RequestKind::PageRankFragment
                    ? pageRankKernel(ctx, *r)
                    : knnKernel(ctx, *r);
            co_await kernel;
            r->retire_tick = eq.now();
            r->completed = true;
            finishRequest(*r, eq);
        }
    }
}

void
Server::finishRequest(Request &r, EventQueue &eq)
{
    TenantStats &ts = *tstats_[r.tenant];
    ++ts.completed;
    ts.queue_wait.record(r.queueWait());
    ts.dispatch_wait.record(r.dispatchWait());
    ts.service.record(r.serviceTicks());
    ts.total.record(r.totalTicks());
    total_all_.record(r.totalTicks());
    if (r.waiter) {
        auto h = r.waiter;
        r.waiter = {};
        eq.schedule(0, Continuation([h] { resumeLive(h); }));
    }
}

// ------------------------------------------------------------ kernels

Task
Server::hashProbeKernel(Ctx &ctx, Request &r)
{
    const std::uint64_t universe = cfg_.state.probe_universe;
    for (unsigned j = 0; j < cfg_.state.probes_per_request; ++j) {
        // Neighborhood of the sampled Zipf index: hot requests probe
        // hot (present) keys, preserving the skew per probe.
        const std::uint64_t idx = (r.param + j) % universe;
        const std::uint64_t key = state_.universeKey(idx);
        HashProbeIn in{key};
        Addr baddr = hashTableBucketAddr(state_.tableAddr(),
                                         state_.numBuckets(), key);
        while (true) {
            PimPacket pkt = co_await ctx.pei(PeiOpcode::HashProbe, baddr,
                                             &in, sizeof(in));
            if (pkt.output[8]) {
                ++r.matches;
                break;
            }
            std::uint64_t next;
            std::memcpy(&next, pkt.output.data(), 8);
            if (next == 0)
                break;
            baddr = next; // host-side pointer chase to the overflow
        }
    }
}

Task
Server::pageRankKernel(Ctx &ctx, Request &r)
{
    const CsrGraph &g = state_.graph();
    const std::uint64_t v = r.param;
    const std::uint64_t deg = g.outDegree(v);
    r.matches = deg;
    if (deg == 0) {
        r.result = 0.0;
        co_return;
    }
    const double contrib = 1.0 / static_cast<double>(deg);
    co_await ctx.load(g.rowPtrAddr(v));
    Ctx::StreamCursor cur;
    const std::uint64_t begin = g.rowPtr()[v];
    const std::uint64_t end = g.rowPtr()[v + 1];
    for (std::uint64_t e = begin; e < end; ++e) {
        co_await ctx.streamLoad(g.colIdxAddr(e), cur);
        const auto dst = ctx.fread<std::uint64_t>(g.colIdxAddr(e));
        co_await ctx.fadd(state_.rankAddr(dst), contrib);
    }
    co_await ctx.drain();
    r.result = contrib * static_cast<double>(deg);
}

Task
Server::knnKernel(Ctx &ctx, Request &r)
{
    const float *query = state_.queryVec(r.param);
    const std::uint64_t w0 = state_.windowStart(r.param);
    const std::uint64_t wend = w0 + cfg_.state.knn_window;
    float best = std::numeric_limits<float>::max();
    for (std::uint64_t p = w0; p < wend; ++p) {
        co_await ctx.peiAsyncCb(
            PeiOpcode::EuclidDist, state_.pointAddr(p), query,
            ServeStateConfig::knn_dims * 4,
            [&best](const PimPacket &pkt) {
                float d;
                std::memcpy(&d, pkt.output.data(), 4);
                if (d < best)
                    best = d;
            });
    }
    co_await ctx.drain();
    r.result = static_cast<double>(best);
    r.matches = cfg_.state.knn_window;
}

// --------------------------------------------------------- validation

bool
Server::validate(System &sys, std::string &msg) const
{
    std::vector<double> expected_rank(cfg_.state.vertices, 0.0);
    for (const Request &r : plan_.requests) {
        if (r.shed) {
            if (r.completed) {
                msg = "serve: shed request " + std::to_string(r.id) +
                      " was executed";
                return false;
            }
            continue;
        }
        if (!r.completed) {
            msg = "serve: request " + std::to_string(r.id) +
                  " never completed";
            return false;
        }
        switch (r.kind) {
          case RequestKind::HashProbe: {
            std::uint64_t want = 0;
            for (unsigned j = 0; j < cfg_.state.probes_per_request; ++j) {
                const std::uint64_t idx =
                    (r.param + j) % cfg_.state.probe_universe;
                want += state_.keyPresent(idx) ? 1 : 0;
            }
            if (r.matches != want) {
                msg = "serve: request " + std::to_string(r.id) +
                      " matched " + std::to_string(r.matches) +
                      " keys, expected " + std::to_string(want);
                return false;
            }
            break;
          }
          case RequestKind::PageRankFragment: {
            const CsrGraph &g = state_.graph();
            const std::uint64_t deg = g.outDegree(r.param);
            const double contrib =
                deg ? 1.0 / static_cast<double>(deg) : 0.0;
            for (std::uint64_t e = g.rowPtr()[r.param];
                 e < g.rowPtr()[r.param + 1]; ++e) {
                expected_rank[g.colIdx()[e]] += contrib;
            }
            break;
          }
          case RequestKind::KnnQuery: {
            const float ref = state_.refKnnMin(r.param);
            const double tol =
                1e-4 * (std::fabs(ref) > 1.0 ? std::fabs(ref) : 1.0);
            if (std::fabs(r.result - static_cast<double>(ref)) > tol) {
                msg = "serve: request " + std::to_string(r.id) +
                      " kNN min " + std::to_string(r.result) +
                      ", expected " + std::to_string(ref);
                return false;
            }
            break;
          }
        }
    }

    // FaddDouble contributions land in scheduling order, the host
    // reference accumulates in request order — compare with an
    // FP-associativity tolerance.
    for (std::uint64_t v = 0; v < cfg_.state.vertices; ++v) {
        const double got =
            sys.memory().read<double>(state_.rankAddr(v));
        const double want = expected_rank[v];
        if (std::fabs(got - want) >
            1e-6 + 1e-9 * std::fabs(want)) {
            msg = "serve: rank[" + std::to_string(v) + "] is " +
                  std::to_string(got) + ", expected " +
                  std::to_string(want);
            return false;
        }
    }
    return true;
}

// ------------------------------------------------------------ reports

ServingSummary
Server::summary() const
{
    ServingSummary s;
    for (std::size_t i = 0; i < tstats_.size(); ++i) {
        const TenantStats &ts = *tstats_[i];
        s.arrivals += ts.arrivals.value();
        s.accepted += ts.accepted.value();
        s.shed += ts.shed.value();
        s.completed += ts.completed.value();
        TenantSummary t;
        t.completed = ts.completed.value();
        t.shed = ts.shed.value();
        t.p50 = ts.total.percentile(0.50);
        t.p95 = ts.total.percentile(0.95);
        t.p99 = ts.total.percentile(0.99);
        t.mean = ts.total.mean();
        s.tenants.push_back(t);
    }
    for (const Request &r : plan_.requests) {
        if (r.enqueue_tick > s.last_enqueue)
            s.last_enqueue = r.enqueue_tick;
        if (r.completed && r.retire_tick > s.last_retire)
            s.last_retire = r.retire_tick;
    }
    if (s.last_enqueue) {
        s.offered_per_mtick = 1e6 * static_cast<double>(s.arrivals) /
                              static_cast<double>(s.last_enqueue);
    }
    if (s.last_retire) {
        s.achieved_per_mtick = 1e6 * static_cast<double>(s.completed) /
                               static_cast<double>(s.last_retire);
    }
    s.p50 = total_all_.percentile(0.50);
    s.p95 = total_all_.percentile(0.95);
    s.p99 = total_all_.percentile(0.99);
    s.mean = total_all_.mean();
    return s;
}

std::string
Server::summaryJson() const
{
    const ServingSummary s = summary();
    std::ostringstream os;
    os.precision(12);
    os << "{\"traffic\":\"" << trafficModeName(cfg_.traffic.mode)
       << "\",\"policy\":\"" << schedPolicyName(cfg_.policy)
       << "\",\"workers\":" << cfg_.workers
       << ",\"batch_max\":" << cfg_.batch_max
       << ",\"requests\":" << plan_.requests.size()
       << ",\"arrivals\":" << s.arrivals
       << ",\"accepted\":" << s.accepted
       << ",\"shed\":" << s.shed
       << ",\"completed\":" << s.completed
       << ",\"offered_per_mtick\":" << s.offered_per_mtick
       << ",\"achieved_per_mtick\":" << s.achieved_per_mtick
       << ",\"last_enqueue_tick\":" << s.last_enqueue
       << ",\"last_retire_tick\":" << s.last_retire
       << ",\"latency_ticks\":{\"p50\":" << s.p50
       << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99
       << ",\"mean\":" << s.mean << "}"
       << ",\"tenants\":[";
    for (std::size_t i = 0; i < s.tenants.size(); ++i) {
        const TenantSummary &t = s.tenants[i];
        if (i)
            os << ",";
        os << "{\"id\":" << i
           << ",\"weight\":" << cfg_.tenants[i].weight
           << ",\"completed\":" << t.completed
           << ",\"shed\":" << t.shed
           << ",\"p50\":" << t.p50 << ",\"p95\":" << t.p95
           << ",\"p99\":" << t.p99 << ",\"mean\":" << t.mean << "}";
    }
    os << "]}";
    return os.str();
}

std::string
Server::requestTrace() const
{
    std::ostringstream os;
    os.precision(17);
    for (const Request &r : plan_.requests) {
        os << r.id << " " << r.tenant << " " << requestKindName(r.kind)
           << " " << r.param << " " << r.arrival_tick << " "
           << r.enqueue_tick << " " << r.admit_tick << " "
           << r.dispatch_tick << " " << r.retire_tick << " "
           << (r.shed ? 1 : 0) << " " << r.matches << " " << r.result
           << "\n";
    }
    return os.str();
}

} // namespace pei
