#include "policy.hh"

#include <map>
#include <mutex>

#include "coherence/eager.hh"
#include "coherence/lazy.hh"
#include "common/logging.hh"

namespace pei
{

namespace
{

/**
 * Guarded registry: Systems are constructed concurrently from the
 * driver's worker threads, so lookups and (rare) registrations
 * synchronize on one mutex (same scheme as the memory-backend
 * registry, mem/backend.cc).
 */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, CoherenceFactory> &
registry()
{
    static std::map<std::string, CoherenceFactory> r;
    return r;
}

std::unique_ptr<CoherencePolicy>
makeEager(EventQueue &eq, CacheHierarchy &hierarchy,
          const CoherenceConfig &cfg, StatRegistry &stats)
{
    (void)eq;
    (void)cfg;
    return std::make_unique<EagerCoherence>(hierarchy, stats);
}

std::unique_ptr<CoherencePolicy>
makeLazy(EventQueue &eq, CacheHierarchy &hierarchy,
         const CoherenceConfig &cfg, StatRegistry &stats)
{
    return std::make_unique<LazyCoherence>(eq, hierarchy, cfg, stats);
}

/**
 * The built-ins register lazily on first registry use (not via
 * static initializers, which a static library may dead-strip).
 * Callers must hold registryMutex().
 */
void
ensureBuiltinsLocked()
{
    auto &r = registry();
    if (r.count("eager"))
        return;
    r.emplace("eager", &makeEager);
    r.emplace("lazy", &makeLazy);
}

} // namespace

void
CoherencePolicy::beforeOffloadBatch(const PimPacket *const *pkts,
                                    unsigned n, Callback ready,
                                    std::uint32_t *tokens)
{
    panic_if(n == 0, "coherence: empty offload batch");
    CoherenceJoin *j = CoherenceJoin::create(n, std::move(ready));
    for (unsigned i = 0; i < n; ++i)
        tokens[i] = beforeOffload(*pkts[i], j->arm());
}

void
registerCoherencePolicy(const std::string &name, CoherenceFactory factory)
{
    fatal_if(name.empty() || factory == nullptr,
             "coherence-policy registration needs a name and a factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltinsLocked();
    registry()[name] = factory;
}

std::vector<std::string>
coherencePolicyNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltinsLocked();
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

std::unique_ptr<CoherencePolicy>
createCoherencePolicy(const std::string &name, EventQueue &eq,
                      CacheHierarchy &hierarchy,
                      const CoherenceConfig &cfg, StatRegistry &stats)
{
    CoherenceFactory factory = nullptr;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        ensureBuiltinsLocked();
        const auto it = registry().find(name);
        if (it != registry().end())
            factory = it->second;
    }
    if (!factory) {
        std::string known;
        for (const auto &n : coherencePolicyNames())
            known += (known.empty() ? "" : ", ") + n;
        fatal("unknown coherence policy '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    return factory(eq, hierarchy, cfg, stats);
}

} // namespace pei
