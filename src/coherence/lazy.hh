/**
 * @file
 * LazyPIM-style speculative coherence (PAPERS.md: "LazyPIM: An
 * Efficient Cache Coherence Mechanism for Processing-in-Memory").
 *
 * Instead of cleaning the host caches before every offload, the PMU
 * batches offloaded PEIs speculatively: each batch accumulates
 * compressed read/write signatures (Bloom-style, coherence/
 * signature.hh) plus exact shadow sets used only as the checker's
 * oracle.  A batch closes when full or at a pfence, and commits once
 * its last PEI retires: the signatures cross the off-chip link, the
 * host scans its cached blocks, invalidates every (possibly falsely)
 * written block, and declares a conflict for every *dirty* host line
 * the kernel touched — the host wrote data the kernel speculatively
 * consumed or overwrote.  A conflict rolls the batch back:
 * re-execution is modeled as a stall window on subsequent offloads
 * plus the batch's packets crossing the link again.
 *
 * Strictly a timing/traffic model: functional PEI execution happened
 * exactly once when the packet reached its vault, and the generator/
 * workload programs are interleaving-independent, so architectural
 * results equal the eager baseline's (the golden model remains the
 * oracle).  The exact shadow sets exist so the audit can prove the
 * Bloom check never misses a true conflict
 * (`coh.conflicts >= coh.exact_conflicts`).
 */

#ifndef PEISIM_COHERENCE_LAZY_HH
#define PEISIM_COHERENCE_LAZY_HH

#include <map>
#include <set>
#include <vector>

#include "coherence/policy.hh"
#include "coherence/signature.hh"

namespace pei
{

class LazyCoherence final : public CoherencePolicy
{
  public:
    LazyCoherence(EventQueue &eq, CacheHierarchy &hierarchy,
                  const CoherenceConfig &cfg, StatRegistry &stats);

    const char *name() const override { return "lazy"; }
    bool deferred() const override { return true; }
    std::uint32_t beforeOffload(const PimPacket &pkt,
                                Callback ready) override;
    void beforeOffloadBatch(const PimPacket *const *pkts, unsigned n,
                            Callback ready,
                            std::uint32_t *tokens) override;
    void onRetire(std::uint32_t token) override;
    void onFence() override;
    std::string probeViolation() const override;

    /** From the @p nth commit (1-based) onward, skip the conflict
     *  check — the exact shadow sets keep counting, so any true
     *  conflict breaks `coh.conflicts >= coh.exact_conflicts`. */
    void
    injectSkipConflictCheck(std::uint64_t nth) override
    {
        inject_skip_conflict = nth;
    }

  private:
    /** One offloaded PEI's share of a batch (rollback accounting). */
    struct Member
    {
        Addr block;
        unsigned req_flits;
        unsigned res_flits;
    };

    /** One speculative kernel batch from first offload to commit. */
    struct Batch
    {
        BlockSignature read_sig;
        BlockSignature write_sig;
        /** Exact shadow sets: checker oracle, not modeled hardware. */
        std::set<Addr> exact_reads;
        std::set<Addr> exact_writes;
        std::vector<Member> members;
        unsigned outstanding = 0; ///< offloaded, not yet retired
        bool closed = false;

        explicit Batch(unsigned sig_bits)
            : read_sig(sig_bits), write_sig(sig_bits)
        {}
    };

    /** The open batch, creating one if none is accumulating. */
    Batch &openBatch();

    /** Enter @p pkt (every element block) into @p b's signatures,
     *  shadow sets, and member list. */
    void addPacket(Batch &b, const PimPacket &pkt);

    /** Close the open batch (full, fence, or quiesce). */
    void closeOpenBatch();

    /** Commit @p token: signature intersection against dirty lines,
     *  deferred invalidations, conflict detection, rollback. */
    void commit(std::uint32_t token);

    EventQueue &eq;
    CacheHierarchy &hierarchy;
    CoherenceConfig cfg;

    std::map<std::uint32_t, Batch> batches; ///< open + closed-uncommitted
    std::uint32_t open_id = 0;              ///< 0 = no open batch
    std::uint32_t next_id = 1;
    Tick stall_until = 0;  ///< rollback re-execution window
    std::uint64_t commit_no = 0;
    std::uint64_t inject_skip_conflict = 0; ///< 0 = no injection

    Counter stat_actions;        ///< deferred back-invals/-writebacks
    Counter stat_offchip_flits;  ///< coherence-attributable link flits
    Counter stat_batches;        ///< batches closed
    Counter stat_commits;        ///< batches committed
    Counter stat_signature_checks;
    Counter stat_conflicts;      ///< dirty host lines hit by a signature
    Counter stat_exact_conflicts;///< ...of which the exact sets confirm
    Counter stat_false_positives;///< ...signature-only (aliasing) hits
    Counter stat_rollbacks;      ///< batches rolled back (<= 1/commit)
    Counter stat_reexec_peis;    ///< PEIs re-executed by rollbacks
    Histogram hist_batch_peis;   ///< batch size at close
    Histogram hist_sig_occupancy;///< read+write bits set at close
};

} // namespace pei

#endif // PEISIM_COHERENCE_LAZY_HH
