#include "lazy.hh"

#include "cache/hierarchy.hh"
#include "common/logging.hh"

namespace pei
{

namespace
{

/** 16-byte link flits needed to carry @p bytes. */
constexpr std::uint64_t
flits(unsigned bytes)
{
    return (bytes + 15u) / 16u;
}

/** One block of writeback data plus its 16-byte packet header. */
constexpr std::uint64_t data_flits = flits(16 + block_size);

} // namespace

LazyCoherence::LazyCoherence(EventQueue &eq, CacheHierarchy &hierarchy,
                             const CoherenceConfig &cfg,
                             StatRegistry &stats)
    : eq(eq), hierarchy(hierarchy), cfg(cfg)
{
    fatal_if(this->cfg.batch_peis == 0,
             "lazy coherence needs batch_peis >= 1");

    stats.add("coh.actions", &stat_actions);
    stats.add("coh.offchip_flits", &stat_offchip_flits);
    stats.add("coh.batches", &stat_batches);
    stats.add("coh.commits", &stat_commits);
    stats.add("coh.signature_checks", &stat_signature_checks);
    stats.add("coh.conflicts", &stat_conflicts);
    stats.add("coh.exact_conflicts", &stat_exact_conflicts);
    stats.add("coh.sig_false_positives", &stat_false_positives);
    stats.add("coh.rollbacks", &stat_rollbacks);
    stats.add("coh.reexec_peis", &stat_reexec_peis);
    stats.add("coh.batch_peis", &hist_batch_peis);
    stats.add("coh.sig_occupancy_bits", &hist_sig_occupancy);

    // Speculative-commit conservation: every closed batch commits by
    // quiesce time (commit events settle before the audit runs).
    stats.addInvariant(
        "coh.commits == coh.batches",
        [this] {
            if (stat_commits.value() == stat_batches.value())
                return std::string();
            return "commits=" + std::to_string(stat_commits.value()) +
                   " != batches=" + std::to_string(stat_batches.value()) +
                   " (batch closed but never committed?)";
        });
    stats.addInvariant(
        "coh.rollbacks <= coh.conflicts",
        [this] {
            if (stat_rollbacks.value() <= stat_conflicts.value())
                return std::string();
            return "rollbacks=" + std::to_string(stat_rollbacks.value()) +
                   " > conflicts=" + std::to_string(stat_conflicts.value());
        });
    stats.addInvariant(
        "coh.conflicts <= coh.signature_checks",
        [this] {
            if (stat_conflicts.value() <= stat_signature_checks.value())
                return std::string();
            return "conflicts=" + std::to_string(stat_conflicts.value()) +
                   " > signature_checks=" +
                   std::to_string(stat_signature_checks.value());
        });
    // Bloom filters admit false positives but never false negatives:
    // every true conflict (a dirty host line the kernel really
    // touched, per the exact shadow sets) must have been detected.
    // This is the audit that catches --inject-bug skip-conflict-check.
    stats.addInvariant(
        "coh.conflicts >= coh.exact_conflicts",
        [this] {
            if (stat_conflicts.value() >= stat_exact_conflicts.value())
                return std::string();
            return "conflicts=" + std::to_string(stat_conflicts.value()) +
                   " < exact_conflicts=" +
                   std::to_string(stat_exact_conflicts.value()) +
                   " (conflict check skipped?)";
        });
}

LazyCoherence::Batch &
LazyCoherence::openBatch()
{
    if (open_id == 0) {
        open_id = next_id++;
        batches.emplace(open_id, Batch(cfg.signature_bits));
    }
    return batches.at(open_id);
}

void
LazyCoherence::closeOpenBatch()
{
    Batch &b = batches.at(open_id);
    b.closed = true;
    ++stat_batches;
    hist_batch_peis.record(b.members.size());
    hist_sig_occupancy.record(b.read_sig.popcount() +
                              b.write_sig.popcount());
    open_id = 0;
}

void
LazyCoherence::addPacket(Batch &b, const PimPacket &pkt)
{
    // Writer PEIs are read-modify-write on their target blocks, so a
    // written block enters both signatures (and both shadow sets).
    // Multi-block packets enter every element block.
    Addr blocks[max_pei_target_blocks];
    const unsigned nb = pkt.targetBlocks(blocks, max_pei_target_blocks);
    for (unsigned i = 0; i < nb; ++i) {
        const Addr block = blocks[i] >> block_shift;
        b.read_sig.add(block);
        b.exact_reads.insert(block);
        if (pkt.is_writer) {
            b.write_sig.add(block);
            b.exact_writes.insert(block);
        }
    }
    b.members.push_back(
        {pkt.paddr >> block_shift,
         static_cast<unsigned>(flits(pkt.requestBytes())),
         static_cast<unsigned>(flits(pkt.responseBytes()))});
    ++b.outstanding;
}

std::uint32_t
LazyCoherence::beforeOffload(const PimPacket &pkt, Callback ready)
{
    Batch &b = openBatch();
    const std::uint32_t id = open_id;
    addPacket(b, pkt);
    if (b.members.size() >= cfg.batch_peis)
        closeOpenBatch();

    // The signature insert is PMU-local (no cache walk, no off-chip
    // handshake) — that is the whole point of deferring.  Offloads
    // issued during a rollback's re-execution window stall until it
    // ends.
    const Tick now = eq.now();
    const Tick at = std::max(now + cfg.insert_latency, stall_until);
    eq.schedule(at - now, std::move(ready));
    return id;
}

void
LazyCoherence::beforeOffloadBatch(const PimPacket *const *pkts,
                                  unsigned n, Callback ready,
                                  std::uint32_t *tokens)
{
    panic_if(n == 0, "lazy coherence: empty offload batch");

    // Align the packet train with the speculative batch so one seam
    // boundary serves both: a train never straddles two batches — if
    // the open batch cannot absorb it whole, close the batch first.
    if (open_id != 0) {
        const Batch &open = batches.at(open_id);
        if (!open.members.empty() &&
            open.members.size() + n > cfg.batch_peis) {
            closeOpenBatch();
        }
    }
    Batch &b = openBatch();
    const std::uint32_t id = open_id;
    for (unsigned i = 0; i < n; ++i) {
        addPacket(b, *pkts[i]);
        tokens[i] = id;
    }
    if (b.members.size() >= cfg.batch_peis)
        closeOpenBatch();

    // One signature insert covers the whole train — a single merged
    // update, which is precisely the dispatch cost batching removes.
    const Tick now = eq.now();
    const Tick at = std::max(now + cfg.insert_latency, stall_until);
    eq.schedule(at - now, std::move(ready));
}

void
LazyCoherence::onRetire(std::uint32_t token)
{
    const auto it = batches.find(token);
    panic_if(it == batches.end(),
             "lazy coherence: retirement for unknown batch %u", token);
    Batch &b = it->second;
    panic_if(b.outstanding == 0,
             "lazy coherence: batch %u retired more PEIs than it "
             "offloaded", token);
    if (--b.outstanding > 0)
        return;

    // Quiesce auto-close: the open batch's last in-flight PEI
    // retired, so the PMU commits rather than holding speculative
    // state open across an idle kernel.
    if (!b.closed) {
        panic_if(token != open_id,
                 "lazy coherence: unclosed batch %u is not the open "
                 "batch", token);
        closeOpenBatch();
    }
    eq.schedule(cfg.commit_latency, [this, token] { commit(token); });
}

void
LazyCoherence::onFence()
{
    // A pfence is a batch boundary: close the open batch so its
    // commit fires at the last retirement instead of riding along
    // with post-fence PEIs.  (The fence itself still waits only on
    // writer retirement — speculative completions are
    // architecturally final in this model, see DESIGN.md.)
    if (open_id != 0)
        closeOpenBatch();
}

void
LazyCoherence::commit(std::uint32_t token)
{
    const auto it = batches.find(token);
    panic_if(it == batches.end(),
             "lazy coherence: commit of unknown batch %u", token);
    const Batch b = std::move(it->second);
    batches.erase(it);
    ++stat_commits;
    ++commit_no;
    const bool skip_check =
        inject_skip_conflict != 0 && commit_no >= inject_skip_conflict;

    // Both signatures cross the off-chip link, one ack returns.
    stat_offchip_flits +=
        flits(2 * ((cfg.signature_bits + 7) / 8)) + 1;

    // Commit scan: intersect the signatures with the host's cached
    // blocks.  Any cached copy of a (possibly falsely) written block
    // is stale and must be invalidated; a *dirty* host line the
    // kernel touched is a conflict — the host wrote data the kernel
    // speculatively consumed or overwrote.
    std::vector<Addr> to_invalidate;
    std::vector<Addr> dirty_read_conflicts;
    std::uint64_t conflicts = 0;
    hierarchy.forEachCachedBlock([&](Addr block, bool dirty) {
        ++stat_signature_checks;
        const bool in_write = b.write_sig.mayContain(block);
        if (in_write)
            to_invalidate.push_back(block);
        if (!dirty)
            return;
        // The exact shadow sets count true conflicts unconditionally
        // (checker oracle; exact_reads ⊇ exact_writes).
        const bool exact = b.exact_reads.count(block) != 0;
        if (exact)
            ++stat_exact_conflicts;
        if (skip_check)
            return;
        ++stat_signature_checks;
        if (in_write || b.read_sig.mayContain(block)) {
            ++conflicts;
            ++stat_conflicts;
            if (!exact)
                ++stat_false_positives;
            if (dirty && in_write)
                stat_offchip_flits += data_flits;
            if (!in_write)
                dirty_read_conflicts.push_back(block);
        }
    });

    // Deferred coherence actions.  The empty completion continuation
    // is fine: nothing downstream waits on a commit-time cleanup.
    for (const Addr block : to_invalidate) {
        ++stat_actions;
        hierarchy.backInvalidate(block << block_shift, Callback([] {}));
    }

    if (conflicts == 0)
        return;

    // Rollback: flush the conflicting host lines the kernel only
    // read (written ones were invalidated above), then re-execute
    // the whole batch.  Functional execution already happened
    // exactly once, so re-execution is a timing/traffic event: the
    // batch's packets cross the link again and subsequent offloads
    // stall for the re-execution window.
    ++stat_rollbacks;
    stat_reexec_peis += b.members.size();
    std::uint64_t redo_flits = 0;
    for (const Member &m : b.members)
        redo_flits += m.req_flits + m.res_flits;
    stat_offchip_flits += redo_flits;
    for (const Addr block : dirty_read_conflicts) {
        ++stat_actions;
        stat_offchip_flits += data_flits;
        hierarchy.backWriteback(block << block_shift, Callback([] {}));
    }
    const Tick window =
        cfg.rollback_penalty * static_cast<Tick>(b.members.size());
    stall_until = std::max(stall_until, eq.now() + window);
}

std::string
LazyCoherence::probeViolation() const
{
    if (open_id != 0 && batches.find(open_id) == batches.end())
        return "open batch " + std::to_string(open_id) +
               " missing from the batch table";
    for (const auto &[id, b] : batches) {
        if (b.outstanding > b.members.size()) {
            return "batch " + std::to_string(id) + " has " +
                   std::to_string(b.outstanding) +
                   " outstanding PEIs but only " +
                   std::to_string(b.members.size()) + " members";
        }
        if (!b.closed && id != open_id) {
            return "batch " + std::to_string(id) +
                   " is neither closed nor open";
        }
        const unsigned occupancy =
            b.read_sig.popcount() + b.write_sig.popcount();
        if (occupancy > 2 * cfg.signature_bits) {
            return "batch " + std::to_string(id) +
                   " signature occupancy " + std::to_string(occupancy) +
                   " exceeds capacity";
        }
    }
    return "";
}

} // namespace pei
