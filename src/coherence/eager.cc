#include "eager.hh"

#include "cache/hierarchy.hh"

namespace pei
{

namespace
{

/** 16-byte link flits needed to carry @p bytes. */
constexpr std::uint64_t
flits(unsigned bytes)
{
    return (bytes + 15u) / 16u;
}

/** One block of writeback data plus its 16-byte packet header. */
constexpr std::uint64_t data_flits = flits(16 + block_size);

} // namespace

EagerCoherence::EagerCoherence(CacheHierarchy &hierarchy,
                               StatRegistry &stats)
    : hierarchy(hierarchy)
{
    stats.add("coh.actions", &stat_actions);
    stats.add("coh.offchip_flits", &stat_offchip_flits);
}

std::uint32_t
EagerCoherence::beforeOffload(const PimPacket &pkt, Callback ready)
{
    if (pkt.mb_count > 1) {
        // Multi-block (gather/scatter) packets clean every element
        // block through the merged-action path.
        const PimPacket *one[1] = {&pkt};
        std::uint32_t token = 0;
        beforeOffloadBatch(one, 1, std::move(ready), &token);
        return token;
    }

    // Off-chip cost of one eager action: a command flit out and an
    // ack flit back, plus a block of writeback data whenever the
    // action flushes a dirty copy.  dirtyIn is a pure query, so the
    // timing path below stays bit-identical to the pre-seam PMU.
    ++stat_actions;
    stat_offchip_flits += 2;
    if (hierarchy.dirtyIn(pkt.paddr))
        stat_offchip_flits += data_flits;

    if (pkt.is_writer)
        hierarchy.backInvalidate(pkt.paddr, std::move(ready));
    else
        hierarchy.backWriteback(pkt.paddr, std::move(ready));
    return 0;
}

void
EagerCoherence::beforeOffloadBatch(const PimPacket *const *pkts,
                                   unsigned n, Callback ready,
                                   std::uint32_t *tokens)
{
    // Merge the train's coherence work: each distinct target block is
    // cleaned exactly once — as a back-invalidation if any member
    // writes it, a back-writeback otherwise.  This is where batching
    // amortizes step ③: the eager baseline would clean a hot block
    // once per PEI.
    struct Action
    {
        Addr addr;
        bool written;
    };
    std::vector<Action> acts;
    acts.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        const PimPacket &pkt = *pkts[i];
        tokens[i] = 0;
        Addr blocks[max_pei_target_blocks];
        const unsigned nb =
            pkt.targetBlocks(blocks, max_pei_target_blocks);
        for (unsigned b = 0; b < nb; ++b) {
            bool seen = false;
            for (Action &a : acts) {
                if (a.addr == blocks[b]) {
                    a.written = a.written || pkt.is_writer;
                    seen = true;
                    break;
                }
            }
            if (!seen)
                acts.push_back({blocks[b], pkt.is_writer});
        }
    }

    CoherenceJoin *j =
        CoherenceJoin::create(static_cast<unsigned>(acts.size()),
                              std::move(ready));
    for (const Action &a : acts) {
        ++stat_actions;
        stat_offchip_flits += 2;
        if (hierarchy.dirtyIn(a.addr))
            stat_offchip_flits += data_flits;
        if (a.written)
            hierarchy.backInvalidate(a.addr, j->arm());
        else
            hierarchy.backWriteback(a.addr, j->arm());
    }
}

} // namespace pei
