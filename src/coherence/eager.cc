#include "eager.hh"

#include "cache/hierarchy.hh"

namespace pei
{

namespace
{

/** 16-byte link flits needed to carry @p bytes. */
constexpr std::uint64_t
flits(unsigned bytes)
{
    return (bytes + 15u) / 16u;
}

/** One block of writeback data plus its 16-byte packet header. */
constexpr std::uint64_t data_flits = flits(16 + block_size);

} // namespace

EagerCoherence::EagerCoherence(CacheHierarchy &hierarchy,
                               StatRegistry &stats)
    : hierarchy(hierarchy)
{
    stats.add("coh.actions", &stat_actions);
    stats.add("coh.offchip_flits", &stat_offchip_flits);
}

std::uint32_t
EagerCoherence::beforeOffload(const PimPacket &pkt, Callback ready)
{
    // Off-chip cost of one eager action: a command flit out and an
    // ack flit back, plus a block of writeback data whenever the
    // action flushes a dirty copy.  dirtyIn is a pure query, so the
    // timing path below stays bit-identical to the pre-seam PMU.
    ++stat_actions;
    stat_offchip_flits += 2;
    if (hierarchy.dirtyIn(pkt.paddr))
        stat_offchip_flits += data_flits;

    if (pkt.is_writer)
        hierarchy.backInvalidate(pkt.paddr, std::move(ready));
    else
        hierarchy.backWriteback(pkt.paddr, std::move(ready));
    return 0;
}

} // namespace pei
