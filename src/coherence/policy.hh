/**
 * @file
 * The coherence-policy seam between the PMU and the cache hierarchy.
 *
 * Fig. 5 step ③ of the paper hard-wires eager per-operation
 * coherence: every memory-side writer PEI back-invalidates its
 * target block and every reader back-writebacks it before the
 * offload leaves the chip.  A CoherencePolicy owns that step, so the
 * eager baseline and LazyPIM-style batched speculation (compressed
 * read/write signatures, commit-time conflict detection, rollback)
 * plug into the same PMU pipeline behind `--coherence`.
 *
 * Policies are a timing/traffic model only: functional PEI execution
 * (executePeiFunctional against VirtualMemory) happens exactly once
 * regardless of policy, which is why the sequential golden model
 * stays the differential-testing oracle — architectural results must
 * be policy-invariant while timing and coherence traffic move.
 *
 * Like memory backends (mem/backend.hh), implementations live in a
 * mutex-guarded factory registry keyed by name ("eager" | "lazy").
 */

#ifndef PEISIM_COHERENCE_POLICY_HH
#define PEISIM_COHERENCE_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/pim_iface.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"

namespace pei
{

class CacheHierarchy;

/** Coherence-policy configuration (part of PimConfig). */
struct CoherenceConfig
{
    /** Registry key of the policy ("eager" | "lazy"). */
    std::string policy = "eager";

    /** Bloom bits per read/write signature (lazy; power of two). */
    unsigned signature_bits = 256;

    /** Offloaded PEIs per speculative batch before it closes (lazy). */
    unsigned batch_peis = 16;

    /** Signature-insert latency charged per offload (lazy). */
    Ticks insert_latency = 1;

    /** Batch-close → commit latency: signature transfer + check (lazy). */
    Ticks commit_latency = 24;

    /** Re-execution stall per rolled-back PEI on a conflict (lazy). */
    Ticks rollback_penalty = 64;
};

/**
 * One coherence policy instance, owned by the PMU.  All hooks run on
 * the host shard's event queue (the PMU's), so implementations need
 * no synchronization of their own.
 */
class CoherencePolicy
{
  public:
    using Callback = Continuation;

    virtual ~CoherencePolicy() = default;

    virtual const char *name() const = 0;

    /**
     * True for policies that defer the coherence action past the
     * offload (lazy): the eager offload-window probes — "a writer
     * PEI's target stays uncached until it retires" — do not apply.
     */
    virtual bool deferred() const { return false; }

    /**
     * Fig. 5 step ③: called once per memory-side PEI offload, before
     * the packet leaves for the vault.  @p ready must eventually fire
     * (on the owning event queue) to let the offload proceed.
     * Returns a retirement token the PMU hands back to onRetire().
     */
    virtual std::uint32_t beforeOffload(const PimPacket &pkt,
                                        Callback ready) = 0;

    /**
     * Batched variant for the PMU coalescing window: one coherence
     * action covers the whole same-vault train.  @p ready fires once
     * when the merged action completes; tokens[i] receives packet
     * i's retirement token (each still retires individually through
     * onRetire).  The default implementation fans out to per-packet
     * beforeOffload calls joined on @p ready; policies override to
     * genuinely merge (eager: one dedup'd back-inval/-writeback set,
     * lazy: the train enters one speculative batch atomically).
     */
    virtual void beforeOffloadBatch(const PimPacket *const *pkts,
                                    unsigned n, Callback ready,
                                    std::uint32_t *tokens);

    /** The memory-side PEI identified by @p token retired. */
    virtual void onRetire(std::uint32_t token) = 0;

    /** pfence boundary: close any open speculative batch. */
    virtual void onFence() {}

    /**
     * Structural self-check for mid-simulation probes (simfuzz):
     * first violated internal invariant, or empty when clean.
     */
    virtual std::string probeViolation() const { return ""; }

    /**
     * Fault injection for checker self-validation (simfuzz
     * --inject-bug skip-conflict-check): the @p nth commit (1-based)
     * skips conflict detection, so a correct checker must flag the
     * run via the `conflicts >= exact_conflicts` audit.  No-op on
     * policies without a conflict check.  0 disables.
     */
    virtual void injectSkipConflictCheck(std::uint64_t) {}
};

/**
 * Heap-allocated fan-in for merged coherence actions: create() a join
 * for @p n sub-actions, hand each one arm(); @p done fires after the
 * last arm completes and the join frees itself.  Each arm captures
 * only the join pointer, so it fits any Continuation inline budget.
 */
struct CoherenceJoin
{
    unsigned remaining;
    Continuation done;

    static CoherenceJoin *
    create(unsigned n, Continuation done)
    {
        return new CoherenceJoin{n, std::move(done)};
    }

    Continuation
    arm()
    {
        CoherenceJoin *j = this;
        return Continuation([j] {
            if (--j->remaining > 0)
                return;
            Continuation cb = std::move(j->done);
            delete j;
            cb();
        });
    }
};

/** Factory signature for registry entries. */
using CoherenceFactory = std::unique_ptr<CoherencePolicy> (*)(
    EventQueue &, CacheHierarchy &, const CoherenceConfig &,
    StatRegistry &);

/**
 * Register a policy under @p name (guarded registry; the built-in
 * policies self-register on first registry use).
 */
void registerCoherencePolicy(const std::string &name,
                             CoherenceFactory factory);

/** Registered policy names, sorted (CLI validation / help text). */
std::vector<std::string> coherencePolicyNames();

/** Instantiate the policy registered under @p name (fatal if none). */
std::unique_ptr<CoherencePolicy> createCoherencePolicy(
    const std::string &name, EventQueue &eq, CacheHierarchy &hierarchy,
    const CoherenceConfig &cfg, StatRegistry &stats);

} // namespace pei

#endif // PEISIM_COHERENCE_POLICY_HH
