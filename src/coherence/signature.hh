/**
 * @file
 * Compressed block-address signatures for speculative (LazyPIM-style)
 * coherence: a small Bloom filter over cache-block numbers.
 *
 * A kernel batch inserts every block it reads/writes; at commit time
 * the host intersects its dirty lines against the signatures.  Bloom
 * semantics give the safety property deferred coherence rests on:
 * mayContain() never returns false for an inserted block (no false
 * negatives — a missed conflict would corrupt memory), while false
 * positives only cost a spurious rollback.
 */

#ifndef PEISIM_COHERENCE_SIGNATURE_HH
#define PEISIM_COHERENCE_SIGNATURE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace pei
{

/** A Bloom-style set of cache-block numbers with k = 2 hash probes. */
class BlockSignature
{
  public:
    /** @p nbits must be a power of two in [8, 1 << 20]. */
    explicit BlockSignature(unsigned nbits) : nbits_(nbits)
    {
        fatal_if(!isPowerOf2(nbits) || nbits < 8 || nbits > (1u << 20),
                 "signature bits must be a power of two in [8, 2^20], "
                 "got %u", nbits);
        words_.resize(nbits / 64 + (nbits % 64 != 0));
    }

    /**
     * The two probe positions for @p block in an @p nbits-wide
     * signature.  Exposed so tests can construct aliasing block
     * pairs (deliberate false positives) deterministically.
     */
    static std::pair<unsigned, unsigned>
    probes(Addr block, unsigned nbits)
    {
        const unsigned width = floorLog2(nbits);
        const unsigned h1 =
            static_cast<unsigned>(foldedXor(block, width));
        const unsigned h2 = static_cast<unsigned>(
            foldedXor(mix(block ^ 0x9E3779B97F4A7C15ULL), width));
        return {h1, h2};
    }

    void
    add(Addr block)
    {
        const auto [h1, h2] = probes(block, nbits_);
        words_[h1 / 64] |= 1ULL << (h1 % 64);
        words_[h2 / 64] |= 1ULL << (h2 % 64);
    }

    bool
    mayContain(Addr block) const
    {
        const auto [h1, h2] = probes(block, nbits_);
        return (words_[h1 / 64] >> (h1 % 64) & 1) &&
               (words_[h2 / 64] >> (h2 % 64) & 1);
    }

    /** Bits set (occupancy; saturation drives the false-positive rate). */
    unsigned
    popcount() const
    {
        unsigned n = 0;
        for (const std::uint64_t w : words_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    void
    clear()
    {
        for (std::uint64_t &w : words_)
            w = 0;
    }

    unsigned bits() const { return nbits_; }

  private:
    /** SplitMix64 finalizer: decorrelates the second probe from the
     *  first so aliasing needs both positions to collide. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
        return x ^ (x >> 31);
    }

    unsigned nbits_;
    std::vector<std::uint64_t> words_;
};

} // namespace pei

#endif // PEISIM_COHERENCE_SIGNATURE_HH
