/**
 * @file
 * Eager coherence: the paper's per-operation baseline.  Every
 * memory-side writer PEI back-invalidates its target block and every
 * reader back-writebacks it before the offload proceeds — an exact
 * passthrough to CacheHierarchy, so the default policy stays
 * bit-identical to the pre-seam simulator.
 */

#ifndef PEISIM_COHERENCE_EAGER_HH
#define PEISIM_COHERENCE_EAGER_HH

#include "coherence/policy.hh"

namespace pei
{

class EagerCoherence final : public CoherencePolicy
{
  public:
    EagerCoherence(CacheHierarchy &hierarchy, StatRegistry &stats);

    const char *name() const override { return "eager"; }
    std::uint32_t beforeOffload(const PimPacket &pkt,
                                Callback ready) override;
    void beforeOffloadBatch(const PimPacket *const *pkts, unsigned n,
                            Callback ready,
                            std::uint32_t *tokens) override;
    void onRetire(std::uint32_t token) override { (void)token; }

  private:
    CacheHierarchy &hierarchy;

    Counter stat_actions;       ///< back-invals + back-writebacks
    Counter stat_offchip_flits; ///< coherence-attributable link flits
};

} // namespace pei

#endif // PEISIM_COHERENCE_EAGER_HH
