/**
 * @file
 * Simplified out-of-order core model.
 *
 * Rather than a per-stage pipeline, each core exposes the property
 * that dominates these memory-bound workloads: a bounded window of
 * in-flight memory operations (memory-level parallelism).  Workload
 * threads acquire a window slot per outstanding load/store/PEI and
 * block when the window is full — the same first-order behaviour an
 * OoO core with a finite ROB/LSQ exhibits.  Each core also owns the
 * TLB used to translate both normal accesses and PEIs (paper §4.4).
 */

#ifndef PEISIM_CPU_CORE_HH
#define PEISIM_CPU_CORE_HH

#include <deque>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/vmem.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"

namespace pei
{

/** Core model configuration. */
struct CoreConfig
{
    unsigned window = 64;      ///< max in-flight memory ops / PEIs
    unsigned tlb_entries = 64;
    double tlb_walk_ns = 30.0; ///< page-walk penalty on TLB miss
};

/** One host core: window accounting + TLB + retirement counters. */
class Core
{
  public:
    using Callback = Continuation;

    Core(EventQueue &eq, const CoreConfig &cfg, unsigned id,
         StatRegistry &stats)
        : eq(eq), cfg(cfg), id_(id),
          tlb(cfg.tlb_entries, nsToTicks(cfg.tlb_walk_ns))
    {
        const std::string p = "core" + std::to_string(id) + ".";
        stats.add(p + "loads", &stat_loads);
        stats.add(p + "stores", &stat_stores);
        stats.add(p + "peis", &stat_peis);
        stats.add(p + "retired_ops", &stat_retired);
        stats.add(p + "window_stalls", &stat_window_stalls);
    }

    unsigned id() const { return id_; }

    /** True if no window slot is free. */
    bool windowFull() const { return outstanding >= cfg.window; }

    /** Number of in-flight operations. */
    unsigned inFlight() const { return outstanding; }

    /**
     * Obtain a window slot, invoking @p then once one is available
     * (immediately if the window has room).
     */
    void
    acquireSlot(Callback then)
    {
        if (!windowFull()) {
            ++outstanding;
            then();
            return;
        }
        ++stat_window_stalls;
        slot_waiters.push_back(std::move(then));
    }

    /** Release a window slot; wakes one waiter / drain watchers. */
    void
    releaseSlot()
    {
        panic_if(outstanding == 0, "core %u released an empty window",
                 id_);
        --outstanding;
        ++stat_retired;
        if (!slot_waiters.empty()) {
            ++outstanding; // hand the slot straight to the waiter
            Callback next = std::move(slot_waiters.front());
            slot_waiters.pop_front();
            eq.schedule(0, std::move(next));
        } else if (outstanding == 0 && !drain_waiters.empty()) {
            // The empty check matters: moving even an empty deque
            // re-initializes both with a fresh map + node, which
            // would put two heap allocations on every blocking op's
            // retire path.
            auto watchers = std::move(drain_waiters);
            drain_waiters.clear();
            for (auto &w : watchers)
                eq.schedule(0, std::move(w));
        }
    }

    /** Invoke @p then once all in-flight operations complete. */
    void
    waitForDrain(Callback then)
    {
        if (outstanding == 0 && slot_waiters.empty()) {
            then();
            return;
        }
        drain_waiters.push_back(std::move(then));
    }

    /** TLB lookup latency contribution for @p vaddr. */
    Ticks translateLatency(Addr vaddr) { return tlb.access(vaddr); }

    void countLoad() { ++stat_loads; }
    void countStore() { ++stat_stores; }
    void countPei() { ++stat_peis; }

    std::uint64_t retiredOps() const { return stat_retired.value(); }

  private:
    EventQueue &eq;
    CoreConfig cfg;
    unsigned id_;
    Tlb tlb;

    unsigned outstanding = 0;
    std::deque<Callback> slot_waiters;
    std::deque<Callback> drain_waiters;

    Counter stat_loads;
    Counter stat_stores;
    Counter stat_peis;
    Counter stat_retired;
    Counter stat_window_stalls;
};

} // namespace pei

#endif // PEISIM_CPU_CORE_HH
