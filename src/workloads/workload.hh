/**
 * @file
 * Workload framework: the ten data-intensive applications of §5,
 * each with a simulated kernel (coroutines issuing loads/stores/PEIs)
 * and a host-side reference implementation used for validation.
 *
 * Input sizes follow Table 3, scaled to SystemConfig::scaled()'s
 * 2 MB L3 with the same working-set/cache ratios: "small" fits in
 * the LLC, "medium" is a small multiple of it, "large" far exceeds
 * it — the regimes that drive every figure in §7.
 */

#ifndef PEISIM_WORKLOADS_WORKLOAD_HH
#define PEISIM_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "runtime/runtime.hh"

namespace pei
{

/** Table 3 input-set sizes. */
enum class InputSize
{
    Small,
    Medium,
    Large,
};

/** The ten workloads of §5. */
enum class WorkloadKind
{
    ATF, ///< Average Teenage Follower
    BFS, ///< Breadth-First Search
    PR,  ///< PageRank
    SP,  ///< Single-Source Shortest Path
    WCC, ///< Weakly Connected Components
    HJ,  ///< Hash Join
    HG,  ///< Histogram
    RP,  ///< Radix Partitioning
    SC,  ///< Streamcluster
    SVM, ///< SVM Recursive Feature Elimination
};

const char *kindName(WorkloadKind kind);
const char *sizeName(InputSize size);
const std::vector<WorkloadKind> &allWorkloadKinds();

/**
 * One benchmark application.  Usage:
 *   auto w = makeWorkload(kind, size);
 *   w->setup(rt);                   // allocate + initialize inputs
 *   w->spawn(rt, threads, base);    // spawn kernel coroutines
 *   rt.run();
 *   std::string msg;
 *   bool ok = w->validate(rt.system(), msg);
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Allocate and initialize all inputs in simulated memory. */
    virtual void setup(Runtime &rt) = 0;

    /** Spawn kernel coroutines on cores [base, base + threads). */
    virtual void spawn(Runtime &rt, unsigned threads,
                       unsigned base_core = 0) = 0;

    /**
     * Check the simulated output against the reference
     * implementation.  @p msg receives a diagnostic on mismatch.
     */
    virtual bool validate(System &sys, std::string &msg) = 0;

    /** PEIs this workload issued (for per-bench reporting). */
    virtual std::uint64_t peiCount() const { return 0; }
};

/** Instantiate workload @p kind with Table 3 input size @p size. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind, InputSize size,
                                       std::uint64_t seed = 1);

/**
 * PageRank parameterized by explicit graph size — used by the
 * Fig. 2 / Fig. 8 nine-graph sweeps.
 */
std::unique_ptr<Workload> makePageRank(std::uint64_t vertices,
                                       std::uint64_t edges,
                                       std::uint64_t seed = 1,
                                       unsigned iterations = 2);

} // namespace pei

#endif // PEISIM_WORKLOADS_WORKLOAD_HH
