/**
 * @file
 * Graph inputs for the five graph-processing workloads (§5.1).
 *
 * Real SNAP/LAW datasets are not available offline, so we synthesize
 * R-MAT graphs (power-law degree distribution, the property §7.1
 * credits for Locality-Aware's wins on social networks) whose sizes
 * are the paper's inputs scaled by the same factor as the caches in
 * SystemConfig::scaled().  The graph lives both host-side (reference
 * algorithms, generation) and in simulated memory as CSR arrays.
 */

#ifndef PEISIM_WORKLOADS_GRAPH_HH
#define PEISIM_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "runtime/runtime.hh"

namespace pei
{

/** Host-side edge list. */
struct EdgeList
{
    std::uint64_t num_vertices = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

/**
 * Generate an R-MAT graph (Chakrabarti et al. parameters a=0.57,
 * b=0.19, c=0.19, d=0.05), which yields the power-law degree
 * distribution of social-network graphs.  Self-loops are dropped;
 * duplicates are kept (as SNAP datasets also contain multi-edges
 * after symmetrization).
 */
EdgeList genRmat(std::uint64_t vertices, std::uint64_t edges,
                 std::uint64_t seed);

/** Generate a uniformly random directed graph (low skew). */
EdgeList genUniform(std::uint64_t vertices, std::uint64_t edges,
                    std::uint64_t seed);

/** Add the reverse of every edge (for WCC's undirected traversal). */
EdgeList symmetrize(const EdgeList &el);

/**
 * CSR graph materialized both host-side (row/col vectors for
 * reference algorithms) and in simulated memory (row_ptr/col_idx
 * arrays of 8-byte entries, as the paper's pointer-chasing kernels
 * traverse).
 */
class CsrGraph
{
  public:
    /** Build from an edge list and copy into simulated memory. */
    CsrGraph(Runtime &rt, const EdgeList &el);

    std::uint64_t numVertices() const { return nv; }
    std::uint64_t numEdges() const { return ne; }

    /** Host-side CSR. */
    const std::vector<std::uint64_t> &rowPtr() const { return row; }
    const std::vector<std::uint32_t> &colIdx() const { return col; }
    std::uint64_t outDegree(std::uint64_t v) const
    {
        return row[v + 1] - row[v];
    }

    /** Simulated-memory addresses of the CSR arrays. */
    Addr rowPtrAddr() const { return row_addr; }
    Addr colIdxAddr() const { return col_addr; }

    /** Address of row_ptr[v]. */
    Addr rowPtrAddr(std::uint64_t v) const { return row_addr + 8 * v; }

    /** Address of col_idx[e]. */
    Addr colIdxAddr(std::uint64_t e) const { return col_addr + 8 * e; }

  private:
    std::uint64_t nv;
    std::uint64_t ne;
    std::vector<std::uint64_t> row;
    std::vector<std::uint32_t> col;
    Addr row_addr;
    Addr col_addr;
};

/**
 * The nine graphs of Figs. 2 and 8, scaled stand-ins for the SNAP /
 * LAW datasets (1/32 of the original vertex and edge counts, listed
 * in ascending vertex order as in the paper's figures).
 */
struct NamedGraphSpec
{
    const char *name;     ///< the real dataset this stands in for
    std::uint64_t vertices;
    std::uint64_t edges;
};

/** The nine Fig. 2/8 graph specs. */
const std::vector<NamedGraphSpec> &figureGraphs();

} // namespace pei

#endif // PEISIM_WORKLOADS_GRAPH_HH
