/**
 * @file
 * Process-wide memoization of generated workload inputs.
 *
 * Every figure bench runs the same workload under several execution
 * modes (and the sweep driver runs those simulations concurrently),
 * but the host-side input for a given (kind, size, seed) — the R-MAT
 * edge list, the hash-join table image, the random key/point arrays —
 * is identical across those runs.  This cache builds each input once
 * and shares it read-only across simulations and host threads; only
 * the cheap copy into each System's simulated memory stays per-run.
 *
 * Thread safety: lookups take a global mutex only to find/insert the
 * entry; the (possibly expensive) build runs under a per-entry
 * std::call_once, so two jobs racing on the *same* input block only
 * each other, and jobs building *different* inputs proceed in
 * parallel.  Returned references stay valid for the process lifetime
 * (entries are never evicted; inputs are bounded by the distinct
 * workload configurations of one bench).
 */

#ifndef PEISIM_WORKLOADS_INPUT_CACHE_HH
#define PEISIM_WORKLOADS_INPUT_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace pei
{

class StatRegistry;

/** Hit/miss counters of the input cache (process-wide totals). */
struct InputCacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
};

/** Snapshot of the counters (reported in sweep summaries). */
InputCacheCounters inputCacheCounters();

/**
 * JSON object form of inputCacheCounters():
 * {"hits": H, "misses": M, "entries": E}.  The split is
 * interleaving-independent (exactly one miss per distinct key), so
 * the end-of-process value is deterministic for any --jobs.
 */
std::string inputCacheCountersJson();

/**
 * Register the process-wide hit/miss counters with @p reg under
 * "input_cache.hits" / "input_cache.misses".  The counters are
 * shared across every System in the process, so register them only
 * in single-run tools (tests, examples) — inside a parallel sweep
 * the per-run values would depend on sibling-job progress.  Note
 * that StatRegistry::resetAll() on @p reg zeroes the process-wide
 * totals.
 */
void registerInputCacheStats(StatRegistry &reg);

/** Drop every entry and zero the counters (tests only — references
 *  returned by cachedInput become dangling). */
void clearInputCache();

namespace detail
{

struct CacheEntry
{
    std::once_flag once;
    std::shared_ptr<void> value;
};

/** Find-or-insert the entry for @p key, counting a hit or miss. */
CacheEntry &inputCacheEntry(const std::string &key);

} // namespace detail

/**
 * The input memoized under @p key, building it with @p build on
 * first use.  @p key must encode every parameter @p build depends on
 * (convention: "<kind>/<param>=<value>/..."); T must be identical
 * for every use of a given key.
 */
template <typename T>
const T &
cachedInput(const std::string &key, const std::function<T()> &build)
{
    detail::CacheEntry &entry = detail::inputCacheEntry(key);
    std::call_once(entry.once, [&] {
        entry.value = std::make_shared<T>(build());
    });
    return *static_cast<const T *>(entry.value.get());
}

} // namespace pei

#endif // PEISIM_WORKLOADS_INPUT_CACHE_HH
