#include "graph.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pei
{

EdgeList
genRmat(std::uint64_t vertices, std::uint64_t edges, std::uint64_t seed)
{
    fatal_if(vertices < 2, "R-MAT needs at least two vertices");
    const unsigned levels = ceilLog2(vertices);
    const std::uint64_t n = 1ULL << levels;
    Rng rng(seed);

    EdgeList el;
    el.num_vertices = vertices;
    el.edges.reserve(edges);

    // Base parameters with per-edge multiplicative noise (the
    // standard "noisy SKG" smoothing): without it, R-MAT piles an
    // unrealistically large share of all edges onto a handful of
    // apex vertices (real social graphs' max in-degree is a fraction
    // of a percent of the edges), which would turn PEI atomicity
    // into an artificial serialization bottleneck.
    constexpr double base_a = 0.57, base_b = 0.19, base_c = 0.19;
    while (el.edges.size() < edges) {
        std::uint64_t src = 0, dst = 0;
        for (unsigned l = 0; l < levels; ++l) {
            const double noise = 0.75 + 0.5 * rng.uniform();
            double a = base_a * noise;
            double b = base_b, c = base_c;
            const double total = a + b + c + (1.0 - base_a - base_b -
                                              base_c);
            a /= total;
            b /= total;
            c /= total;
            const double u = rng.uniform();
            if (u < a) {
                // top-left quadrant
            } else if (u < a + b) {
                dst |= n >> (l + 1);
            } else if (u < a + b + c) {
                src |= n >> (l + 1);
            } else {
                src |= n >> (l + 1);
                dst |= n >> (l + 1);
            }
        }
        if (src >= vertices || dst >= vertices || src == dst)
            continue;
        el.edges.emplace_back(static_cast<std::uint32_t>(src),
                              static_cast<std::uint32_t>(dst));
    }

    // Cap apex in-degree.  Even noisy R-MAT concentrates edges on
    // its top vertices an order of magnitude harder than real
    // social graphs (soc-LiveJournal1's max in-degree is ~0.03% of
    // its edges; plain R-MAT exceeds 1%).  Excess in-edges of
    // over-cap vertices are redirected to uniform targets, keeping
    // the power-law body while matching real apex concentration.
    const std::uint64_t cap = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(0.0005 * static_cast<double>(edges)));
    std::vector<std::uint64_t> indeg(vertices, 0);
    for (auto &[s, d] : el.edges) {
        (void)s;
        ++indeg[d];
    }
    std::vector<std::uint64_t> kept(vertices, 0);
    for (auto &[s, d] : el.edges) {
        if (indeg[d] <= cap)
            continue;
        if (++kept[d] > cap) {
            std::uint32_t nd;
            do {
                nd = static_cast<std::uint32_t>(rng.below(vertices));
            } while (nd == s);
            d = nd;
        }
    }
    return el;
}

EdgeList
genUniform(std::uint64_t vertices, std::uint64_t edges, std::uint64_t seed)
{
    Rng rng(seed);
    EdgeList el;
    el.num_vertices = vertices;
    el.edges.reserve(edges);
    while (el.edges.size() < edges) {
        const auto src = static_cast<std::uint32_t>(rng.below(vertices));
        const auto dst = static_cast<std::uint32_t>(rng.below(vertices));
        if (src == dst)
            continue;
        el.edges.emplace_back(src, dst);
    }
    return el;
}

EdgeList
symmetrize(const EdgeList &el)
{
    EdgeList out;
    out.num_vertices = el.num_vertices;
    out.edges.reserve(el.edges.size() * 2);
    for (const auto &[s, d] : el.edges) {
        out.edges.emplace_back(s, d);
        out.edges.emplace_back(d, s);
    }
    return out;
}

CsrGraph::CsrGraph(Runtime &rt, const EdgeList &el)
    : nv(el.num_vertices), ne(el.edges.size())
{
    // Counting sort by source vertex.
    row.assign(nv + 1, 0);
    for (const auto &[s, d] : el.edges) {
        (void)d;
        ++row[s + 1];
    }
    for (std::uint64_t v = 0; v < nv; ++v)
        row[v + 1] += row[v];
    col.resize(ne);
    std::vector<std::uint64_t> cursor(row.begin(), row.end() - 1);
    for (const auto &[s, d] : el.edges)
        col[cursor[s]++] = d;

    // Materialize in simulated memory as 8-byte entries (the layout
    // the kernels' pointer arithmetic assumes).
    row_addr = rt.allocArray<std::uint64_t>(nv + 1);
    col_addr = rt.allocArray<std::uint64_t>(ne ? ne : 1);
    VirtualMemory &vm = rt.system().memory();
    for (std::uint64_t v = 0; v <= nv; ++v)
        vm.write<std::uint64_t>(row_addr + 8 * v, row[v]);
    for (std::uint64_t e = 0; e < ne; ++e)
        vm.write<std::uint64_t>(col_addr + 8 * e, col[e]);
}

const std::vector<NamedGraphSpec> &
figureGraphs()
{
    // SNAP/LAW dataset sizes scaled by 1/16 in vertex count — the
    // same factor as the caches in SystemConfig::scaled() — so each
    // stand-in keeps the original's vertex-state : LLC ratio
    // (p2p-Gnutella31 deep inside the cache … soc-LiveJournal1 at
    // ~2.3x the LLC, matching the paper's 38 MB vs 16 MB).  Edge
    // counts of the two densest graphs are capped to bound bench
    // runtime; the locality regime is set by the vertex arrays.
    // Ascending vertex count, the paper's Fig. 2/8 x-axis order.
    static const std::vector<NamedGraphSpec> specs = {
        {"p2p-Gnutella31", 3908, 9240},
        {"soc-Slashdot0811", 4848, 56500},
        {"web-Stanford", 17594, 143960},
        {"amazon-2008", 45930, 325860},
        {"com-Youtube", 70963, 187400},
        {"frwiki-2013", 82300, 1000000},
        {"wiki-Talk", 148732, 312700},
        {"cit-Patents", 236172, 1031240},
        {"soc-LiveJournal1", 302656, 2400000},
    };
    return specs;
}

} // namespace pei
