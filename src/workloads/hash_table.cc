#include "hash_table.hh"

#include <algorithm>

#include "runtime/runtime.hh"

namespace pei
{

namespace
{

std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

std::uint64_t
hashTableHash(std::uint64_t key)
{
    std::uint64_t x = key + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

HashTableImage
buildHashTable(const std::vector<std::uint64_t> &keys)
{
    HashTableImage img;
    img.num_buckets =
        nextPow2(std::max<std::uint64_t>(keys.size() / 4, 1));
    img.buckets.resize(img.num_buckets);
    img.chain_next.assign(img.num_buckets, 0);

    for (const auto key : keys) {
        std::uint64_t b = hashTableHash(key) & (img.num_buckets - 1);
        while (true) {
            if (img.buckets[b].count < HashBucket::max_keys) {
                img.buckets[b].keys[img.buckets[b].count++] = key;
                break;
            }
            if (img.chain_next[b] == 0) {
                img.buckets.push_back(HashBucket{});
                img.chain_next.push_back(0);
                img.chain_next[b] = img.buckets.size(); // index+1
            }
            b = img.chain_next[b] - 1;
        }
    }
    return img;
}

Addr
materializeHashTable(Runtime &rt, const HashTableImage &img)
{
    const Addr table =
        rt.alloc(img.buckets.size() * sizeof(HashBucket), block_size);
    VirtualMemory &vm = rt.system().memory();
    for (std::size_t i = 0; i < img.buckets.size(); ++i) {
        HashBucket bucket = img.buckets[i];
        bucket.next = img.chain_next[i]
                          ? table + (img.chain_next[i] - 1) * block_size
                          : 0;
        vm.write(table + i * block_size, bucket);
    }
    return table;
}

} // namespace pei
