#include "analytics.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pim/pei_op.hh"
#include "workloads/hash_table.hh"
#include "workloads/input_cache.hh"

namespace pei
{

/**
 * Memoized host-side hash-join input: the bucket image stores chain
 * links as indices (see HashTableImage) so the cached data is
 * independent of where the table lands in each run's simulated
 * address space; setup() resolves them to addresses.
 */
struct HashJoinInput
{
    HashTableImage table;
    std::vector<std::uint64_t> probe_keys;
    std::uint64_t expected_matches = 0;
};

namespace
{

/** Random u32 input arrays shared by HG and RP. */
const std::vector<std::uint32_t> &
cachedRandomU32(std::uint64_t count, std::uint64_t seed)
{
    const std::string key = "u32/n=" + std::to_string(count) +
                            "/seed=" + std::to_string(seed);
    return cachedInput<std::vector<std::uint32_t>>(key, [count, seed] {
        Rng rng(seed);
        std::vector<std::uint32_t> vals(count);
        for (auto &v : vals)
            v = static_cast<std::uint32_t>(rng.next());
        return vals;
    });
}

} // namespace

// ----------------------------------------------------------------- HJ

namespace
{

HashJoinInput
genHashJoinInput(std::uint64_t build_rows, std::uint64_t probe_rows,
                 std::uint64_t seed)
{
    HashJoinInput in;
    Rng rng(seed ^ 0x41);

    std::vector<std::uint64_t> build_keys(build_rows);
    for (auto &k : build_keys)
        k = rng.next() | 1; // nonzero keys

    in.table = buildHashTable(build_keys);

    // Probe relation: ~50% hits.
    std::unordered_set<std::uint64_t> build_set(build_keys.begin(),
                                                build_keys.end());
    in.probe_keys.resize(probe_rows);
    for (std::uint64_t i = 0; i < probe_rows; ++i) {
        std::uint64_t key;
        if (rng.chance(0.5)) {
            key = build_keys[rng.below(build_rows)];
        } else {
            do {
                key = rng.next() | 1;
            } while (build_set.count(key));
        }
        in.probe_keys[i] = key;
        in.expected_matches += build_set.count(key);
    }
    return in;
}

} // namespace

void
HashJoinWorkload::setup(Runtime &rt)
{
    const std::string key = "hj/build=" + std::to_string(build_rows) +
                            "/probe=" + std::to_string(probe_rows) +
                            "/seed=" + std::to_string(seed);
    input = &cachedInput<HashJoinInput>(key, [this] {
        return genHashJoinInput(build_rows, probe_rows, seed);
    });
    num_buckets = input->table.num_buckets;

    table_addr = materializeHashTable(rt, input->table);
    VirtualMemory &vm = rt.system().memory();

    probe_addr = rt.allocArray<std::uint64_t>(probe_rows);
    expected_matches = input->expected_matches;
    for (std::uint64_t i = 0; i < probe_rows; ++i)
        vm.write<std::uint64_t>(probe_addr + 8 * i, input->probe_keys[i]);
}

Task
HashJoinWorkload::probeStream(Ctx &ctx, std::uint64_t begin,
                              std::uint64_t end, std::uint64_t step)
{
    (void)step;
    Ctx::StreamCursor key_cur;
    for (std::uint64_t i = begin; i < end; ++i) {
        co_await ctx.streamLoad(probe_addr + 8 * i, key_cur);
        const auto key = ctx.fread<std::uint64_t>(probe_addr + 8 * i);
        HashProbeIn in{key};
        Addr baddr = hashTableBucketAddr(table_addr, num_buckets, key);
        while (true) {
            PimPacket pkt = co_await ctx.pei(PeiOpcode::HashProbe, baddr,
                                             &in, sizeof(in));
            ++peis_issued;
            if (pkt.output[8]) {
                ++match_count;
                break;
            }
            std::uint64_t next;
            std::memcpy(&next, pkt.output.data(), 8);
            if (next == 0)
                break;
            baddr = next; // host-side pointer chase to the overflow
        }
    }
    co_await ctx.drain();
}

void
HashJoinWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    // Software unrolling (§5.2): each hardware thread runs `unroll`
    // interleaved probe streams over contiguous slices, giving the
    // OoO core independent lookups to overlap.
    const std::uint64_t streams = std::uint64_t{threads} * unroll;
    for (std::uint64_t s = 0; s < streams; ++s) {
        const std::uint64_t begin = probe_rows * s / streams;
        const std::uint64_t end = probe_rows * (s + 1) / streams;
        const unsigned core = base + static_cast<unsigned>(s % threads);
        rt.spawn(core, [this, begin, end](Ctx &ctx) {
            return probeStream(ctx, begin, end, 1);
        });
    }
}

bool
HashJoinWorkload::validate(System &sys, std::string &msg)
{
    (void)sys;
    if (match_count != expected_matches) {
        msg = "HJ: matched " + std::to_string(match_count) +
              " probes, expected " + std::to_string(expected_matches);
        return false;
    }
    return true;
}

// ----------------------------------------------------------------- HG

void
HistogramWorkload::setup(Runtime &rt)
{
    fatal_if(num_ints % 16 != 0, "HG input must be a whole block count");
    input_addr = rt.allocArray<std::uint32_t>(num_ints);
    VirtualMemory &vm = rt.system().memory();
    const auto &vals = cachedRandomU32(num_ints, seed ^ 0x47);
    for (std::uint64_t i = 0; i < num_ints; ++i)
        vm.write<std::uint32_t>(input_addr + 4 * i, vals[i]);
}

Task
HistogramWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const std::uint64_t nblocks = num_ints / 16;
    const std::uint64_t bb = nblocks * tid / n;
    const std::uint64_t be = nblocks * (tid + 1) / n;
    auto &bins = local_bins[tid];
    const std::uint8_t sh = shift;
    for (std::uint64_t b = bb; b < be; ++b) {
        const Addr addr = input_addr + b * block_size;
        co_await ctx.peiAsyncCb(
            PeiOpcode::HistBinIdx, addr, &sh, 1,
            [&bins](const PimPacket &pkt) {
                for (unsigned k = 0; k < 16; ++k)
                    ++bins[pkt.output[k]];
            });
        ++peis_issued;
    }
    co_await ctx.drain();
}

void
HistogramWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    local_bins.assign(threads, std::vector<std::uint64_t>(256, 0));
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
HistogramWorkload::validate(System &sys, std::string &msg)
{
    merged.assign(256, 0);
    for (const auto &bins : local_bins)
        for (unsigned b = 0; b < 256; ++b)
            merged[b] += bins[b];

    std::vector<std::uint64_t> ref(256, 0);
    for (std::uint64_t i = 0; i < num_ints; ++i) {
        const auto v = sys.memory().read<std::uint32_t>(input_addr + 4 * i);
        ++ref[(v >> shift) & 0xFF];
    }
    for (unsigned b = 0; b < 256; ++b) {
        if (merged[b] != ref[b]) {
            msg = "HG: bin " + std::to_string(b) + " is " +
                  std::to_string(merged[b]) + ", expected " +
                  std::to_string(ref[b]);
            return false;
        }
    }
    return true;
}

// ----------------------------------------------------------------- RP

void
RadixPartitionWorkload::setup(Runtime &rt)
{
    fatal_if(rows % 16 != 0, "RP input must be a whole block count");
    input_addr = rt.allocArray<std::uint32_t>(rows);
    output_addr = rt.allocArray<std::uint32_t>(rows);
    VirtualMemory &vm = rt.system().memory();
    const auto &vals = cachedRandomU32(rows, seed ^ 0x52);
    for (std::uint64_t i = 0; i < rows; ++i)
        vm.write<std::uint32_t>(input_addr + 4 * i, vals[i]);
}

Task
RadixPartitionWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const std::uint64_t nblocks = rows / 16;
    const std::uint64_t bb = nblocks * tid / n;
    const std::uint64_t be = nblocks * (tid + 1) / n;
    const std::uint8_t sh = shift;

    for (unsigned rep = 0; rep < repetitions; ++rep) {
        // Phase 1: histogram of the keys (same PEI as HG).
        auto &bins = local_hist[tid];
        bins.assign(partitions, 0);
        for (std::uint64_t b = bb; b < be; ++b) {
            const Addr addr = input_addr + b * block_size;
            co_await ctx.peiAsyncCb(
                PeiOpcode::HistBinIdx, addr, &sh, 1,
                [&bins](const PimPacket &pkt) {
                    for (unsigned k = 0; k < 16; ++k)
                        ++bins[pkt.output[k]];
                });
            ++peis_issued;
        }
        co_await ctx.drain();
        co_await barrier->arrive();

        if (tid == 0) {
            // Exclusive prefix sum over the merged histogram.
            part_base.assign(partitions, 0);
            std::uint64_t acc = 0;
            for (unsigned p = 0; p < partitions; ++p) {
                part_base[p] = acc;
                for (const auto &h : local_hist)
                    acc += h[p];
            }
            part_cursor = part_base;
        }
        co_await barrier->arrive();

        // Phase 2: scatter rows into their partitions.
        Ctx::StreamCursor in_cur;
        for (std::uint64_t i = bb * 16; i < be * 16; ++i) {
            co_await ctx.streamLoad(input_addr + 4 * i, in_cur);
            const auto key =
                ctx.fread<std::uint32_t>(input_addr + 4 * i);
            const unsigned p = (key >> shift) & 0xFF;
            const std::uint64_t slot = part_cursor[p]++;
            ctx.fwrite<std::uint32_t>(output_addr + 4 * slot, key);
            co_await ctx.storeAsync(output_addr + 4 * slot);
        }
        co_await ctx.drain();
        co_await barrier->arrive();
    }
}

void
RadixPartitionWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    barrier = std::make_unique<Barrier>(rt.system().eventQueue(), threads);
    local_hist.assign(threads, std::vector<std::uint64_t>(partitions, 0));
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
RadixPartitionWorkload::validate(System &sys, std::string &msg)
{
    // Reference histogram → partition boundaries; then check that
    // every output element sits inside its own partition's range.
    std::vector<std::uint64_t> ref(partitions, 0);
    for (std::uint64_t i = 0; i < rows; ++i) {
        const auto v = sys.memory().read<std::uint32_t>(input_addr + 4 * i);
        ++ref[(v >> shift) & 0xFF];
    }
    std::vector<std::uint64_t> base(partitions, 0);
    std::uint64_t acc = 0;
    for (unsigned p = 0; p < partitions; ++p) {
        base[p] = acc;
        acc += ref[p];
    }
    for (unsigned p = 0; p < partitions; ++p) {
        const std::uint64_t end = (p + 1 < partitions) ? base[p + 1] : rows;
        for (std::uint64_t i = base[p]; i < end; ++i) {
            const auto v =
                sys.memory().read<std::uint32_t>(output_addr + 4 * i);
            if (((v >> shift) & 0xFF) != p) {
                msg = "RP: element at slot " + std::to_string(i) +
                      " belongs to partition " +
                      std::to_string((v >> shift) & 0xFF) + ", not " +
                      std::to_string(p);
                return false;
            }
        }
    }
    return true;
}

} // namespace pei
