/**
 * @file
 * The in-memory data-analytics workloads of §5.2: Hash Join (HJ),
 * Histogram (HG), and Radix Partitioning (RP).
 */

#ifndef PEISIM_WORKLOADS_ANALYTICS_HH
#define PEISIM_WORKLOADS_ANALYTICS_HH

#include <memory>
#include <vector>

#include "runtime/sync.hh"
#include "workloads/workload.hh"

namespace pei
{

struct HashJoinInput; ///< memoized build-table + probe-key image

/**
 * Hash Join: build a bucket-chained hash table from relation R, then
 * probe it with every key of relation S using the HashProbe PEI.
 * Probes are software-unrolled (paper §5.2): each hardware thread
 * runs several interleaved probe streams so the out-of-order core /
 * operand buffer can overlap the pointer-chasing lookups.
 */
class HashJoinWorkload : public Workload
{
  public:
    HashJoinWorkload(std::uint64_t build_rows, std::uint64_t probe_rows,
                     std::uint64_t seed, unsigned unroll = 4)
        : build_rows(build_rows), probe_rows(probe_rows), seed(seed),
          unroll(unroll)
    {}

    const char *name() const override { return "HJ"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;
    std::uint64_t peiCount() const override { return peis_issued; }

    std::uint64_t matches() const { return match_count; }

  private:
    Task probeStream(Ctx &ctx, std::uint64_t begin, std::uint64_t end,
                     std::uint64_t step);

    std::uint64_t build_rows;
    std::uint64_t probe_rows;
    std::uint64_t seed;
    unsigned unroll;

    std::uint64_t num_buckets = 0;
    Addr table_addr = invalid_addr;    ///< num_buckets HashBucket blocks
    Addr probe_addr = invalid_addr;    ///< u64 probe keys
    const HashJoinInput *input = nullptr; ///< cached, shared read-only
    std::uint64_t match_count = 0;
    std::uint64_t expected_matches = 0;
    std::uint64_t peis_issued = 0;
};

/**
 * Histogram: 256-bin histogram of 32-bit integers.  One HistBinIdx
 * PEI per 64 B input block returns the 16 bin indexes; threads
 * accumulate into private histograms merged at the end.
 */
class HistogramWorkload : public Workload
{
  public:
    HistogramWorkload(std::uint64_t num_ints, std::uint64_t seed)
        : num_ints(num_ints), seed(seed)
    {}

    const char *name() const override { return "HG"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;
    std::uint64_t peiCount() const override { return peis_issued; }

    const std::vector<std::uint64_t> &bins() const { return merged; }

    static constexpr std::uint8_t shift = 24; ///< bin = value >> 24

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    std::uint64_t num_ints;
    std::uint64_t seed;
    Addr input_addr = invalid_addr;
    std::vector<std::vector<std::uint64_t>> local_bins;
    std::vector<std::uint64_t> merged;
    std::uint64_t peis_issued = 0;
};

/**
 * Radix Partitioning: histogram the keys with HistBinIdx PEIs, then
 * scatter rows into their partitions with normal stores; the whole
 * pass repeats (database servers re-partitioning the same relation,
 * §5.2 — the paper uses 100 repetitions, we scale to a few), which
 * makes small inputs cache-resident on later passes.
 */
class RadixPartitionWorkload : public Workload
{
  public:
    RadixPartitionWorkload(std::uint64_t rows, std::uint64_t seed,
                           unsigned repetitions = 4)
        : rows(rows), seed(seed), repetitions(repetitions)
    {}

    const char *name() const override { return "RP"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;
    std::uint64_t peiCount() const override { return peis_issued; }

    static constexpr std::uint8_t shift = 24; ///< partition = key >> 24
    static constexpr unsigned partitions = 256;

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    std::uint64_t rows;
    std::uint64_t seed;
    unsigned repetitions;
    Addr input_addr = invalid_addr;  ///< u32 keys
    Addr output_addr = invalid_addr; ///< u32 partitioned keys
    std::unique_ptr<Barrier> barrier;
    std::vector<std::vector<std::uint64_t>> local_hist;
    std::vector<std::uint64_t> part_base;   ///< partition start offsets
    std::vector<std::uint64_t> part_cursor; ///< scatter cursors
    std::uint64_t peis_issued = 0;
};

} // namespace pei

#endif // PEISIM_WORKLOADS_ANALYTICS_HH
