/**
 * @file
 * The five large-scale graph-processing workloads of §5.1.
 *
 * Every kernel is written the way the paper describes the software:
 * vertices are range-partitioned across threads, vertex/edge arrays
 * are streamed (one timing load per cache block), and the inner
 * random-access update becomes one PEI per edge.  Phases are
 * separated by pfence + barrier exactly where the paper requires
 * (normal reads of PEI-written data).
 */

#ifndef PEISIM_WORKLOADS_GRAPH_WORKLOADS_HH
#define PEISIM_WORKLOADS_GRAPH_WORKLOADS_HH

#include <memory>
#include <vector>

#include "runtime/sync.hh"
#include "workloads/graph.hh"
#include "workloads/workload.hh"

namespace pei
{

/** Shared machinery for the graph workloads. */
class GraphWorkloadBase : public Workload
{
  public:
    GraphWorkloadBase(std::uint64_t vertices, std::uint64_t edges,
                      std::uint64_t seed, bool undirected)
        : vertices(vertices), edges(edges), seed(seed),
          undirected(undirected)
    {}

    std::uint64_t peiCount() const override { return peis_issued; }

  protected:
    /** Generate the R-MAT input and materialize the CSR. */
    void setupGraph(Runtime &rt);

    /** [begin, end) vertex range of thread @p tid of @p n. */
    std::pair<std::uint64_t, std::uint64_t>
    rangeOf(unsigned tid, unsigned n) const
    {
        const std::uint64_t nv = graph->numVertices();
        return {nv * tid / n, nv * (tid + 1) / n};
    }

    std::uint64_t vertices;
    std::uint64_t edges;
    std::uint64_t seed;
    bool undirected;

    const EdgeList *edge_list = nullptr; ///< cached, shared read-only
    std::unique_ptr<CsrGraph> graph;
    std::unique_ptr<Barrier> barrier;
    std::uint64_t peis_issued = 0;
};

/** Average Teenage Follower: one Inc64 PEI per teen out-edge. */
class AtfWorkload : public GraphWorkloadBase
{
  public:
    AtfWorkload(std::uint64_t v, std::uint64_t e, std::uint64_t seed)
        : GraphWorkloadBase(v, e, seed, false)
    {}

    const char *name() const override { return "ATF"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    Addr teen_addr = invalid_addr;      ///< u8 per vertex
    Addr followers_addr = invalid_addr; ///< u64 per vertex
    std::vector<std::uint8_t> teen_ref;
};

/** Level-synchronous BFS: one Min64 PEI per frontier edge. */
class BfsWorkload : public GraphWorkloadBase
{
  public:
    BfsWorkload(std::uint64_t v, std::uint64_t e, std::uint64_t seed)
        : GraphWorkloadBase(v, e, seed, false)
    {}

    const char *name() const override { return "BFS"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;

    static constexpr std::uint64_t unreachable = ~0ULL;

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    Addr level_addr = invalid_addr; ///< u64 per vertex
    std::uint64_t source = 0;
    bool frontier_nonempty = true;
};

/** PageRank (Fig. 1): one FaddDouble PEI per edge per iteration. */
class PageRankWorkload : public GraphWorkloadBase
{
  public:
    PageRankWorkload(std::uint64_t v, std::uint64_t e, std::uint64_t seed,
                     unsigned iterations)
        : GraphWorkloadBase(v, e, seed, false), iterations(iterations)
    {}

    const char *name() const override { return "PR"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    unsigned iterations;
    Addr pr_addr = invalid_addr;      ///< double per vertex
    Addr next_pr_addr = invalid_addr; ///< double per vertex
    Addr degree_addr = invalid_addr;  ///< u64 per vertex
    Addr diff_addr = invalid_addr;    ///< one double
};

/** Bellman-Ford SSSP: one Min64 PEI per relaxed edge. */
class SsspWorkload : public GraphWorkloadBase
{
  public:
    SsspWorkload(std::uint64_t v, std::uint64_t e, std::uint64_t seed)
        : GraphWorkloadBase(v, e, seed, false)
    {}

    const char *name() const override { return "SP"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;

    static constexpr std::uint64_t inf_dist = ~0ULL;
    static constexpr unsigned max_rounds = 64;

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);
    std::uint64_t weightOf(std::uint64_t e) const;

    Addr dist_addr = invalid_addr;   ///< u64 per vertex
    Addr weight_addr = invalid_addr; ///< u64 per edge
    std::uint64_t source = 0;
    std::vector<std::uint64_t> prev_dist;
    std::vector<std::uint8_t> active;
    bool changed = true;
};

/** WCC by label propagation: one Min64 PEI per edge per round. */
class WccWorkload : public GraphWorkloadBase
{
  public:
    WccWorkload(std::uint64_t v, std::uint64_t e, std::uint64_t seed)
        : GraphWorkloadBase(v, e, seed, true)
    {}

    const char *name() const override { return "WCC"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;

    static constexpr unsigned max_rounds = 64;

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    Addr label_addr = invalid_addr; ///< u64 per vertex
    std::vector<std::uint64_t> prev_label;
    std::vector<std::uint8_t> active;
    bool active_all = true;
    bool changed = true;
};

} // namespace pei

#endif // PEISIM_WORKLOADS_GRAPH_WORKLOADS_HH
