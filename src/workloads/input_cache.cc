#include "input_cache.hh"

#include <map>

namespace pei
{

namespace
{

struct Cache
{
    std::mutex mutex;
    // unique_ptr values: entry addresses must survive rehash/insert
    // so the per-entry once_flag can be used outside the map lock.
    std::map<std::string, std::unique_ptr<detail::CacheEntry>> entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

Cache &
cache()
{
    static Cache c;
    return c;
}

} // namespace

namespace detail
{

CacheEntry &
inputCacheEntry(const std::string &key)
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    auto it = c.entries.find(key);
    if (it != c.entries.end()) {
        ++c.hits;
        return *it->second;
    }
    ++c.misses;
    it = c.entries.emplace(key, std::make_unique<CacheEntry>()).first;
    return *it->second;
}

} // namespace detail

InputCacheCounters
inputCacheCounters()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return {c.hits, c.misses,
            static_cast<std::uint64_t>(c.entries.size())};
}

void
clearInputCache()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.hits = 0;
    c.misses = 0;
}

} // namespace pei
