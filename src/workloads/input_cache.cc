#include "input_cache.hh"

#include <map>
#include <sstream>

#include "common/stats.hh"

namespace pei
{

namespace
{

struct Cache
{
    std::mutex mutex;
    // unique_ptr values: entry addresses must survive rehash/insert
    // so the per-entry once_flag can be used outside the map lock.
    std::map<std::string, std::unique_ptr<detail::CacheEntry>> entries;
    // Counter-backed so the totals can be registered with a
    // StatRegistry; every update happens under `mutex`.
    Counter hits;
    Counter misses;
};

Cache &
cache()
{
    static Cache c;
    return c;
}

} // namespace

namespace detail
{

CacheEntry &
inputCacheEntry(const std::string &key)
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    auto it = c.entries.find(key);
    if (it != c.entries.end()) {
        ++c.hits;
        return *it->second;
    }
    ++c.misses;
    it = c.entries.emplace(key, std::make_unique<CacheEntry>()).first;
    return *it->second;
}

} // namespace detail

InputCacheCounters
inputCacheCounters()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return {c.hits.value(), c.misses.value(),
            static_cast<std::uint64_t>(c.entries.size())};
}

std::string
inputCacheCountersJson()
{
    const InputCacheCounters snap = inputCacheCounters();
    std::ostringstream os;
    os << "{\"hits\":" << snap.hits << ",\"misses\":" << snap.misses
       << ",\"entries\":" << snap.entries << "}";
    return os.str();
}

void
registerInputCacheStats(StatRegistry &reg)
{
    Cache &c = cache();
    reg.add("input_cache.hits", &c.hits);
    reg.add("input_cache.misses", &c.misses);
}

void
clearInputCache()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.hits.reset();
    c.misses.reset();
}

} // namespace pei
