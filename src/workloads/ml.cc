#include "ml.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pim/pei_op.hh"
#include "workloads/input_cache.hh"

namespace pei
{

/** Memoized SC input: point matrix and candidate centers, generated
 *  from one RNG stream and shared read-only across runs. */
struct ScInput
{
    std::vector<float> points;
    std::vector<float> centers;
};

/** Memoized SVM input: instance matrix and hyperplane weights. */
struct SvmInput
{
    std::vector<double> x;
    std::vector<double> w;
};

// ----------------------------------------------------------------- SC

void
StreamclusterWorkload::setup(Runtime &rt)
{
    fatal_if(dims % chunk_floats != 0,
             "SC dims must be a multiple of %u", chunk_floats);
    points_addr = rt.allocArray<float>(num_points * dims);
    VirtualMemory &vm = rt.system().memory();

    const std::string key = "sc/p=" + std::to_string(num_points) +
                            "/d=" + std::to_string(dims) +
                            "/c=" + std::to_string(num_centers) +
                            "/seed=" + std::to_string(seed);
    input = &cachedInput<ScInput>(key, [this] {
        Rng rng(seed ^ 0x5C);
        ScInput in;
        in.points.resize(num_points * dims);
        for (auto &p : in.points)
            p = static_cast<float>(rng.uniform() * 10.0 - 5.0);
        in.centers.resize(std::size_t{num_centers} * dims);
        for (auto &c : in.centers)
            c = static_cast<float>(rng.uniform() * 10.0 - 5.0);
        return in;
    });
    for (std::uint64_t i = 0; i < input->points.size(); ++i)
        vm.write<float>(points_addr + 4 * i, input->points[i]);

    assignment.assign(num_points, 0);
    best_dist.assign(num_points, 0.0f);
}

Task
StreamclusterWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const std::uint64_t pb = num_points * tid / n;
    const std::uint64_t pe = num_points * (tid + 1) / n;
    const unsigned chunks = dims / chunk_floats;

    // PARSEC streamcluster evaluates one candidate center at a time
    // against every point (pgain), so each pass streams the whole
    // point matrix once — there is no block reuse across centers,
    // which is exactly why the paper's Host-Only SC reads 64 bytes
    // per PEI (§7.4).  Batched issue overlaps the PEIs of several
    // points; the per-point squared distance accumulates from the
    // PEI outputs and argmin folds functionally after each pass.
    constexpr std::uint64_t batch = 32;
    std::vector<float> acc(batch);

    for (unsigned c = 0; c < num_centers; ++c) {
        for (std::uint64_t p0 = pb; p0 < pe; p0 += batch) {
            const std::uint64_t bend = std::min(p0 + batch, pe);
            std::fill(acc.begin(), acc.end(), 0.0f);
            for (std::uint64_t p = p0; p < bend; ++p) {
                float *slot = &acc[p - p0];
                for (unsigned ch = 0; ch < chunks; ++ch) {
                    const Addr chunk_addr =
                        points_addr +
                        4 * (p * dims + std::uint64_t{ch} * chunk_floats);
                    const float *center_chunk =
                        &input->centers[std::size_t{c} * dims +
                                        std::size_t{ch} * chunk_floats];
                    co_await ctx.peiAsyncCb(
                        PeiOpcode::EuclidDist, chunk_addr, center_chunk,
                        chunk_floats * 4,
                        [slot](const PimPacket &pkt) {
                            float partial;
                            std::memcpy(&partial, pkt.output.data(), 4);
                            *slot += partial;
                        });
                    ++peis_issued;
                }
            }
            co_await ctx.drain();
            for (std::uint64_t p = p0; p < bend; ++p) {
                if (c == 0 || acc[p - p0] < best_dist[p]) {
                    best_dist[p] = acc[p - p0];
                    assignment[p] = c;
                }
            }
            co_await ctx.compute(2 * (bend - p0));
        }
    }
}

void
StreamclusterWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
StreamclusterWorkload::validate(System &sys, std::string &msg)
{
    (void)sys;
    for (std::uint64_t p = 0; p < num_points; ++p) {
        float ref_best = 0.0f;
        unsigned ref_idx = 0;
        for (unsigned c = 0; c < num_centers; ++c) {
            float d = 0.0f;
            for (unsigned k = 0; k < dims; ++k) {
                const float diff =
                    input->points[p * dims + k] -
                    input->centers[std::size_t{c} * dims + k];
                d += diff * diff;
            }
            if (c == 0 || d < ref_best) {
                ref_best = d;
                ref_idx = c;
            }
        }
        // FP accumulation order differs; require the chosen center's
        // distance to be within tolerance of the true minimum.
        const float tol = 1e-3f * (1.0f + ref_best);
        if (assignment[p] != ref_idx &&
            std::fabs(best_dist[p] - ref_best) > tol) {
            msg = "SC: point " + std::to_string(p) + " assigned to " +
                  std::to_string(assignment[p]) + " (dist " +
                  std::to_string(best_dist[p]) + "), expected " +
                  std::to_string(ref_idx) + " (dist " +
                  std::to_string(ref_best) + ")";
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------- SVM

void
SvmWorkload::setup(Runtime &rt)
{
    fatal_if(dims % chunk_doubles != 0,
             "SVM dims must be a multiple of %u", chunk_doubles);
    x_addr = rt.allocArray<double>(num_instances * dims);
    VirtualMemory &vm = rt.system().memory();

    const std::string key = "svm/n=" + std::to_string(num_instances) +
                            "/d=" + std::to_string(dims) +
                            "/seed=" + std::to_string(seed);
    input = &cachedInput<SvmInput>(key, [this] {
        Rng rng(seed ^ 0x5D);
        SvmInput in;
        in.x.resize(num_instances * dims);
        for (auto &v : in.x)
            v = rng.uniform() * 2.0 - 1.0;
        in.w.resize(dims);
        for (auto &v : in.w)
            v = rng.uniform() * 2.0 - 1.0;
        return in;
    });
    for (std::uint64_t i = 0; i < input->x.size(); ++i)
        vm.write<double>(x_addr + 8 * i, input->x[i]);

    dots.assign(num_instances, 0.0);
}

Task
SvmWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const std::uint64_t ib = num_instances * tid / n;
    const std::uint64_t ie = num_instances * (tid + 1) / n;
    const unsigned chunks = dims / chunk_doubles;

    constexpr std::uint64_t batch = 8;
    for (std::uint64_t i0 = ib; i0 < ie; i0 += batch) {
        const std::uint64_t bend = std::min(i0 + batch, ie);
        for (std::uint64_t i = i0; i < bend; ++i) {
            double *slot = &dots[i];
            for (unsigned ch = 0; ch < chunks; ++ch) {
                const Addr chunk_addr =
                    x_addr +
                    8 * (i * dims + std::uint64_t{ch} * chunk_doubles);
                const double *w_chunk =
                    &input->w[std::size_t{ch} * chunk_doubles];
                co_await ctx.peiAsyncCb(
                    PeiOpcode::DotProduct, chunk_addr, w_chunk,
                    chunk_doubles * 8,
                    [slot](const PimPacket &pkt) {
                        double partial;
                        std::memcpy(&partial, pkt.output.data(), 8);
                        *slot += partial;
                    });
                ++peis_issued;
            }
        }
        co_await ctx.drain();
        co_await ctx.compute(8);
    }
}

void
SvmWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
SvmWorkload::validate(System &sys, std::string &msg)
{
    (void)sys;
    for (std::uint64_t i = 0; i < num_instances; ++i) {
        double ref = 0.0;
        for (unsigned k = 0; k < dims; ++k)
            ref += input->w[k] * input->x[i * dims + k];
        if (std::fabs(dots[i] - ref) > 1e-9 + 1e-6 * std::fabs(ref)) {
            msg = "SVM: dot product of instance " + std::to_string(i) +
                  " is " + std::to_string(dots[i]) + ", expected " +
                  std::to_string(ref);
            return false;
        }
    }
    return true;
}

} // namespace pei
