#include "graph_workloads.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "common/logging.hh"
#include "workloads/input_cache.hh"

namespace pei
{

void
GraphWorkloadBase::setupGraph(Runtime &rt)
{
    // The R-MAT generation is the dominant host-side setup cost and
    // is identical for every exec-mode run of one (v, e, seed) input;
    // memoize it and share the edge list read-only across runs.
    const std::string key = "rmat/v=" + std::to_string(vertices) +
                            "/e=" + std::to_string(edges) +
                            "/seed=" + std::to_string(seed) +
                            "/sym=" + (undirected ? "1" : "0");
    edge_list = &cachedInput<EdgeList>(key, [this] {
        EdgeList el = genRmat(vertices, edges, seed);
        return undirected ? symmetrize(el) : el;
    });
    graph = std::make_unique<CsrGraph>(rt, *edge_list);
}

namespace
{

/** Vertex with the highest out-degree (a deterministic hub source). */
std::uint64_t
hubVertex(const CsrGraph &g)
{
    std::uint64_t best = 0, best_deg = 0;
    for (std::uint64_t v = 0; v < g.numVertices(); ++v) {
        const std::uint64_t d = g.outDegree(v);
        if (d > best_deg) {
            best_deg = d;
            best = v;
        }
    }
    return best;
}

} // namespace

// ---------------------------------------------------------------- ATF

void
AtfWorkload::setup(Runtime &rt)
{
    setupGraph(rt);
    const std::uint64_t nv = graph->numVertices();
    teen_addr = rt.allocArray<std::uint8_t>(nv);
    followers_addr = rt.allocArray<std::uint64_t>(nv);

    Rng rng(seed ^ 0xA7F);
    teen_ref.resize(nv);
    VirtualMemory &vm = rt.system().memory();
    for (std::uint64_t v = 0; v < nv; ++v) {
        teen_ref[v] = rng.chance(0.25) ? 1 : 0;
        vm.write<std::uint8_t>(teen_addr + v, teen_ref[v]);
    }
}

Task
AtfWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const auto [vb, ve] = rangeOf(tid, n);
    Ctx::StreamCursor teen_cur, row_cur, col_cur;
    for (std::uint64_t v = vb; v < ve; ++v) {
        co_await ctx.streamLoad(teen_addr + v, teen_cur);
        co_await ctx.streamLoad(graph->rowPtrAddr(v), row_cur);
        if (!teen_ref[v])
            continue;
        const std::uint64_t ebeg = graph->rowPtr()[v];
        const std::uint64_t eend = graph->rowPtr()[v + 1];
        for (std::uint64_t e = ebeg; e < eend; ++e) {
            co_await ctx.streamLoad(graph->colIdxAddr(e), col_cur);
            const std::uint64_t w = graph->colIdx()[e];
            co_await ctx.inc64(followers_addr + 8 * w);
            ++peis_issued;
        }
    }
    co_await ctx.pfence();
    co_await ctx.drain();
}

void
AtfWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    barrier = std::make_unique<Barrier>(rt.system().eventQueue(), threads);
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
AtfWorkload::validate(System &sys, std::string &msg)
{
    const std::uint64_t nv = graph->numVertices();
    std::vector<std::uint64_t> ref(nv, 0);
    for (std::uint64_t v = 0; v < nv; ++v) {
        if (!teen_ref[v])
            continue;
        for (std::uint64_t e = graph->rowPtr()[v];
             e < graph->rowPtr()[v + 1]; ++e)
            ++ref[graph->colIdx()[e]];
    }
    for (std::uint64_t v = 0; v < nv; ++v) {
        const auto got =
            sys.memory().read<std::uint64_t>(followers_addr + 8 * v);
        if (got != ref[v]) {
            msg = "ATF: follower count mismatch at vertex " +
                  std::to_string(v) + ": got " + std::to_string(got) +
                  ", expected " + std::to_string(ref[v]);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------- BFS

void
BfsWorkload::setup(Runtime &rt)
{
    setupGraph(rt);
    const std::uint64_t nv = graph->numVertices();
    level_addr = rt.allocArray<std::uint64_t>(nv);
    source = hubVertex(*graph);

    VirtualMemory &vm = rt.system().memory();
    for (std::uint64_t v = 0; v < nv; ++v)
        vm.write<std::uint64_t>(level_addr + 8 * v, unreachable);
    vm.write<std::uint64_t>(level_addr + 8 * source, 0);
}

Task
BfsWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const auto [vb, ve] = rangeOf(tid, n);
    for (std::uint64_t cur = 0;; ++cur) {
        Ctx::StreamCursor lvl_cur, row_cur, col_cur;
        for (std::uint64_t v = vb; v < ve; ++v) {
            co_await ctx.streamLoad(level_addr + 8 * v, lvl_cur);
            if (ctx.fread<std::uint64_t>(level_addr + 8 * v) != cur)
                continue;
            co_await ctx.streamLoad(graph->rowPtrAddr(v), row_cur);
            for (std::uint64_t e = graph->rowPtr()[v];
                 e < graph->rowPtr()[v + 1]; ++e) {
                co_await ctx.streamLoad(graph->colIdxAddr(e), col_cur);
                const std::uint64_t w = graph->colIdx()[e];
                co_await ctx.min64(level_addr + 8 * w, cur + 1);
                ++peis_issued;
            }
        }
        co_await ctx.pfence();
        co_await barrier->arrive();
        if (tid == 0) {
            frontier_nonempty = false;
            for (std::uint64_t v = 0; v < graph->numVertices(); ++v) {
                if (ctx.fread<std::uint64_t>(level_addr + 8 * v) ==
                    cur + 1) {
                    frontier_nonempty = true;
                    break;
                }
            }
        }
        co_await barrier->arrive();
        if (!frontier_nonempty)
            break;
    }
    co_await ctx.drain();
}

void
BfsWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    barrier = std::make_unique<Barrier>(rt.system().eventQueue(), threads);
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
BfsWorkload::validate(System &sys, std::string &msg)
{
    const std::uint64_t nv = graph->numVertices();
    std::vector<std::uint64_t> ref(nv, unreachable);
    std::queue<std::uint64_t> q;
    ref[source] = 0;
    q.push(source);
    while (!q.empty()) {
        const std::uint64_t v = q.front();
        q.pop();
        for (std::uint64_t e = graph->rowPtr()[v];
             e < graph->rowPtr()[v + 1]; ++e) {
            const std::uint64_t w = graph->colIdx()[e];
            if (ref[w] == unreachable) {
                ref[w] = ref[v] + 1;
                q.push(w);
            }
        }
    }
    for (std::uint64_t v = 0; v < nv; ++v) {
        const auto got =
            sys.memory().read<std::uint64_t>(level_addr + 8 * v);
        if (got != ref[v]) {
            msg = "BFS: level mismatch at vertex " + std::to_string(v) +
                  ": got " + std::to_string(got) + ", expected " +
                  std::to_string(ref[v]);
            return false;
        }
    }
    return true;
}

// ----------------------------------------------------------------- PR

void
PageRankWorkload::setup(Runtime &rt)
{
    setupGraph(rt);
    const std::uint64_t nv = graph->numVertices();
    pr_addr = rt.allocArray<double>(nv);
    next_pr_addr = rt.allocArray<double>(nv);
    degree_addr = rt.allocArray<std::uint64_t>(nv);
    diff_addr = rt.allocArray<double>(1);

    VirtualMemory &vm = rt.system().memory();
    const double n = static_cast<double>(nv);
    for (std::uint64_t v = 0; v < nv; ++v) {
        vm.write<double>(pr_addr + 8 * v, 1.0 / n);
        vm.write<double>(next_pr_addr + 8 * v, 0.15 / n);
        vm.write<std::uint64_t>(degree_addr + 8 * v,
                                graph->outDegree(v));
    }
}

Task
PageRankWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const auto [vb, ve] = rangeOf(tid, n);
    const double nvd = static_cast<double>(graph->numVertices());
    for (unsigned iter = 0; iter < iterations; ++iter) {
        // Fig. 1 lines 7-12: scatter deltas through out-edges.
        Ctx::StreamCursor pr_cur, deg_cur, row_cur, col_cur;
        for (std::uint64_t v = vb; v < ve; ++v) {
            co_await ctx.streamLoad(pr_addr + 8 * v, pr_cur);
            co_await ctx.streamLoad(degree_addr + 8 * v, deg_cur);
            co_await ctx.streamLoad(graph->rowPtrAddr(v), row_cur);
            const std::uint64_t deg = graph->outDegree(v);
            if (deg == 0)
                continue;
            const double delta =
                0.85 * ctx.fread<double>(pr_addr + 8 * v) /
                static_cast<double>(deg);
            for (std::uint64_t e = graph->rowPtr()[v];
                 e < graph->rowPtr()[v + 1]; ++e) {
                co_await ctx.streamLoad(graph->colIdxAddr(e), col_cur);
                const std::uint64_t w = graph->colIdx()[e];
                co_await ctx.fadd(next_pr_addr + 8 * w, delta);
                ++peis_issued;
            }
        }
        // Fig. 1: pfence after the scatter loop — the next loop reads
        // next_pagerank with normal instructions.
        co_await ctx.pfence();
        co_await barrier->arrive();

        // Fig. 1 lines 13-18: fold diff, swap ranks.  The diff
        // reduction accumulates thread-locally with one atomic fadd
        // per thread per iteration (the thread-local reduction any
        // parallel-for framework, incl. Green-Marl, generates —
        // a per-vertex atomic to one shared word would serialize
        // every configuration on a single cache block).
        double local_diff = 0.0;
        Ctx::StreamCursor next_cur, pr2_cur;
        for (std::uint64_t v = vb; v < ve; ++v) {
            co_await ctx.streamLoad(next_pr_addr + 8 * v, next_cur);
            co_await ctx.streamLoad(pr_addr + 8 * v, pr2_cur);
            const double next = ctx.fread<double>(next_pr_addr + 8 * v);
            const double old = ctx.fread<double>(pr_addr + 8 * v);
            local_diff += std::fabs(next - old);
            ctx.fwrite<double>(pr_addr + 8 * v, next);
            co_await ctx.storeAsync(pr_addr + 8 * v);
            ctx.fwrite<double>(next_pr_addr + 8 * v, 0.15 / nvd);
            co_await ctx.storeAsync(next_pr_addr + 8 * v);
        }
        co_await ctx.fadd(diff_addr, local_diff);
        ++peis_issued;
        co_await ctx.pfence();
        co_await ctx.drain();
        co_await barrier->arrive();
    }
}

void
PageRankWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    barrier = std::make_unique<Barrier>(rt.system().eventQueue(), threads);
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
PageRankWorkload::validate(System &sys, std::string &msg)
{
    const std::uint64_t nv = graph->numVertices();
    const double n = static_cast<double>(nv);
    std::vector<double> pr(nv, 1.0 / n), next(nv, 0.15 / n);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        for (std::uint64_t v = 0; v < nv; ++v) {
            const std::uint64_t deg = graph->outDegree(v);
            if (deg == 0)
                continue;
            const double delta = 0.85 * pr[v] / static_cast<double>(deg);
            for (std::uint64_t e = graph->rowPtr()[v];
                 e < graph->rowPtr()[v + 1]; ++e)
                next[graph->colIdx()[e]] += delta;
        }
        for (std::uint64_t v = 0; v < nv; ++v) {
            pr[v] = next[v];
            next[v] = 0.15 / n;
        }
    }
    for (std::uint64_t v = 0; v < nv; ++v) {
        const auto got = sys.memory().read<double>(pr_addr + 8 * v);
        // Parallel atomic adds reorder FP sums; tolerate rounding.
        if (std::fabs(got - pr[v]) >
            1e-9 + 1e-6 * std::fabs(pr[v])) {
            msg = "PR: rank mismatch at vertex " + std::to_string(v) +
                  ": got " + std::to_string(got) + ", expected " +
                  std::to_string(pr[v]);
            return false;
        }
    }
    return true;
}

// ----------------------------------------------------------------- SP

std::uint64_t
SsspWorkload::weightOf(std::uint64_t e) const
{
    // Deterministic pseudo-random weight in [1, 16].
    std::uint64_t x = e * 0x9E3779B97F4A7C15ULL + seed;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 32;
    return 1 + (x & 0xF);
}

void
SsspWorkload::setup(Runtime &rt)
{
    setupGraph(rt);
    const std::uint64_t nv = graph->numVertices();
    const std::uint64_t ne = graph->numEdges();
    dist_addr = rt.allocArray<std::uint64_t>(nv);
    weight_addr = rt.allocArray<std::uint64_t>(ne ? ne : 1);
    source = hubVertex(*graph);

    VirtualMemory &vm = rt.system().memory();
    for (std::uint64_t v = 0; v < nv; ++v)
        vm.write<std::uint64_t>(dist_addr + 8 * v, inf_dist);
    vm.write<std::uint64_t>(dist_addr + 8 * source, 0);
    for (std::uint64_t e = 0; e < ne; ++e)
        vm.write<std::uint64_t>(weight_addr + 8 * e, weightOf(e));

    prev_dist.assign(nv, inf_dist);
    prev_dist[source] = 0;
    active.assign(nv, 0);
    active[source] = 1;
}

Task
SsspWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const auto [vb, ve] = rangeOf(tid, n);
    for (unsigned round = 0; round < max_rounds; ++round) {
        Ctx::StreamCursor dist_cur, row_cur, col_cur, w_cur;
        for (std::uint64_t v = vb; v < ve; ++v) {
            if (!active[v])
                continue;
            co_await ctx.streamLoad(dist_addr + 8 * v, dist_cur);
            const auto dv = ctx.fread<std::uint64_t>(dist_addr + 8 * v);
            co_await ctx.streamLoad(graph->rowPtrAddr(v), row_cur);
            for (std::uint64_t e = graph->rowPtr()[v];
                 e < graph->rowPtr()[v + 1]; ++e) {
                co_await ctx.streamLoad(graph->colIdxAddr(e), col_cur);
                co_await ctx.streamLoad(weight_addr + 8 * e, w_cur);
                const std::uint64_t w = graph->colIdx()[e];
                const std::uint64_t wgt =
                    ctx.fread<std::uint64_t>(weight_addr + 8 * e);
                co_await ctx.min64(dist_addr + 8 * w, dv + wgt);
                ++peis_issued;
            }
        }
        co_await ctx.pfence();
        co_await barrier->arrive();
        if (tid == 0) {
            changed = false;
            for (std::uint64_t v = 0; v < graph->numVertices(); ++v) {
                const auto d =
                    ctx.fread<std::uint64_t>(dist_addr + 8 * v);
                active[v] = (d != prev_dist[v]);
                changed |= active[v];
                prev_dist[v] = d;
            }
        }
        co_await barrier->arrive();
        if (!changed)
            break;
    }
    co_await ctx.drain();
}

void
SsspWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    barrier = std::make_unique<Barrier>(rt.system().eventQueue(), threads);
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
SsspWorkload::validate(System &sys, std::string &msg)
{
    // Dijkstra reference with the same weights.
    const std::uint64_t nv = graph->numVertices();
    std::vector<std::uint64_t> ref(nv, inf_dist);
    using Item = std::pair<std::uint64_t, std::uint64_t>; // (dist, v)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    ref[source] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > ref[v])
            continue;
        for (std::uint64_t e = graph->rowPtr()[v];
             e < graph->rowPtr()[v + 1]; ++e) {
            const std::uint64_t w = graph->colIdx()[e];
            const std::uint64_t nd = d + weightOf(e);
            if (nd < ref[w]) {
                ref[w] = nd;
                pq.emplace(nd, w);
            }
        }
    }
    for (std::uint64_t v = 0; v < nv; ++v) {
        const auto got =
            sys.memory().read<std::uint64_t>(dist_addr + 8 * v);
        if (got != ref[v]) {
            msg = "SP: distance mismatch at vertex " + std::to_string(v) +
                  ": got " + std::to_string(got) + ", expected " +
                  std::to_string(ref[v]);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------- WCC

void
WccWorkload::setup(Runtime &rt)
{
    setupGraph(rt); // symmetrized (undirected flag)
    const std::uint64_t nv = graph->numVertices();
    label_addr = rt.allocArray<std::uint64_t>(nv);
    VirtualMemory &vm = rt.system().memory();
    for (std::uint64_t v = 0; v < nv; ++v)
        vm.write<std::uint64_t>(label_addr + 8 * v, v);
    prev_label.resize(nv);
    for (std::uint64_t v = 0; v < nv; ++v)
        prev_label[v] = v;
    // Every vertex is active in round 0.
    active_all = true;
}

Task
WccWorkload::kernel(Ctx &ctx, unsigned tid, unsigned n)
{
    const auto [vb, ve] = rangeOf(tid, n);
    for (unsigned round = 0; round < max_rounds; ++round) {
        Ctx::StreamCursor lbl_cur, row_cur, col_cur;
        for (std::uint64_t v = vb; v < ve; ++v) {
            if (!active_all && !active[v])
                continue;
            co_await ctx.streamLoad(label_addr + 8 * v, lbl_cur);
            const auto lv = ctx.fread<std::uint64_t>(label_addr + 8 * v);
            co_await ctx.streamLoad(graph->rowPtrAddr(v), row_cur);
            for (std::uint64_t e = graph->rowPtr()[v];
                 e < graph->rowPtr()[v + 1]; ++e) {
                co_await ctx.streamLoad(graph->colIdxAddr(e), col_cur);
                const std::uint64_t w = graph->colIdx()[e];
                co_await ctx.min64(label_addr + 8 * w, lv);
                ++peis_issued;
            }
        }
        co_await ctx.pfence();
        co_await barrier->arrive();
        if (tid == 0) {
            changed = false;
            active.assign(graph->numVertices(), 0);
            for (std::uint64_t v = 0; v < graph->numVertices(); ++v) {
                const auto l =
                    ctx.fread<std::uint64_t>(label_addr + 8 * v);
                if (l != prev_label[v]) {
                    active[v] = 1;
                    changed = true;
                    prev_label[v] = l;
                }
            }
            active_all = false;
        }
        co_await barrier->arrive();
        if (!changed)
            break;
    }
    co_await ctx.drain();
}

void
WccWorkload::spawn(Runtime &rt, unsigned threads, unsigned base)
{
    barrier = std::make_unique<Barrier>(rt.system().eventQueue(), threads);
    rt.spawnThreads(
        threads,
        [this](Ctx &ctx, unsigned tid, unsigned n) {
            return kernel(ctx, tid, n);
        },
        base);
}

bool
WccWorkload::validate(System &sys, std::string &msg)
{
    // Union-find reference: component label = min vertex id.
    const std::uint64_t nv = graph->numVertices();
    std::vector<std::uint64_t> parent(nv);
    for (std::uint64_t v = 0; v < nv; ++v)
        parent[v] = v;
    std::function<std::uint64_t(std::uint64_t)> find =
        [&](std::uint64_t v) {
            while (parent[v] != v) {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            return v;
        };
    for (const auto &[s, d] : edge_list->edges) {
        const auto rs = find(s), rd = find(d);
        if (rs != rd)
            parent[std::max(rs, rd)] = std::min(rs, rd);
    }
    std::vector<std::uint64_t> ref(nv);
    for (std::uint64_t v = 0; v < nv; ++v)
        ref[v] = find(v);
    // Normalize: label of component = min member id.
    std::vector<std::uint64_t> min_id(nv, ~0ULL);
    for (std::uint64_t v = 0; v < nv; ++v)
        min_id[ref[v]] = std::min(min_id[ref[v]], v);
    for (std::uint64_t v = 0; v < nv; ++v) {
        const auto got =
            sys.memory().read<std::uint64_t>(label_addr + 8 * v);
        if (got != min_id[ref[v]]) {
            msg = "WCC: label mismatch at vertex " + std::to_string(v) +
                  ": got " + std::to_string(got) + ", expected " +
                  std::to_string(min_id[ref[v]]);
            return false;
        }
    }
    return true;
}

} // namespace pei
