/**
 * @file
 * Shared bucket-chained hash-table image for HashProbe-PEI consumers.
 *
 * The Hash Join workload and the serving layer's hash-probe request
 * kernel both need the same structure: a power-of-two array of 64 B
 * HashBucket blocks (~4 keys per primary bucket) with overflow
 * buckets chained behind them.  The host-side image stores chain
 * links as bucket *indices* (index+1, 0 = end) so it can be memoized
 * process-wide and shared across Systems; materializeHashTable()
 * resolves the links against one run's table base when copying the
 * image into simulated memory.
 */

#ifndef PEISIM_WORKLOADS_HASH_TABLE_HH
#define PEISIM_WORKLOADS_HASH_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "pim/pei_op.hh"

namespace pei
{

class Runtime;

/** Host-side, address-independent bucket-chained table image. */
struct HashTableImage
{
    std::uint64_t num_buckets = 0;      ///< primary buckets (pow2)
    std::vector<HashBucket> buckets;    ///< primary + overflow blocks
    std::vector<std::uint64_t> chain_next; ///< index+1 links, 0 = end
};

/** SplitMix64 finalizer used as the shared bucket hash. */
std::uint64_t hashTableHash(std::uint64_t key);

/** Build the image for @p keys (~4 keys per primary bucket). */
HashTableImage buildHashTable(const std::vector<std::uint64_t> &keys);

/**
 * Allocate simulated memory for @p img, resolve the index links into
 * addresses, and copy every bucket in.  Returns the table base.
 */
Addr materializeHashTable(Runtime &rt, const HashTableImage &img);

/** Simulated address of @p key's primary bucket. */
inline Addr
hashTableBucketAddr(Addr table_base, std::uint64_t num_buckets,
                    std::uint64_t key)
{
    return table_base + (hashTableHash(key) & (num_buckets - 1)) *
                            block_size;
}

} // namespace pei

#endif // PEISIM_WORKLOADS_HASH_TABLE_HH
