/**
 * @file
 * The machine-learning / data-mining workloads of §5.3:
 * Streamcluster (SC) and SVM-RFE (SVM).
 *
 * Both stream a large matrix (points / instances) against a small
 * resident vector set (cluster centers / hyperplane), one PEI per
 * 64 B chunk: EuclidDist for SC (16-float chunks), DotProduct for
 * SVM (4-double chunks).  The small operand travels as the PEI input
 * (paper Table 1), so offloaded execution reads the big matrix with
 * vertical DRAM bandwidth only.
 */

#ifndef PEISIM_WORKLOADS_ML_HH
#define PEISIM_WORKLOADS_ML_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace pei
{

struct ScInput;  ///< memoized point matrix + centers
struct SvmInput; ///< memoized instance matrix + hyperplane

/** Streamcluster distance kernel: assign points to nearest center. */
class StreamclusterWorkload : public Workload
{
  public:
    StreamclusterWorkload(std::uint64_t points, unsigned dims,
                          unsigned centers, std::uint64_t seed)
        : num_points(points), dims(dims), num_centers(centers), seed(seed)
    {}

    const char *name() const override { return "SC"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;
    std::uint64_t peiCount() const override { return peis_issued; }

    static constexpr unsigned chunk_floats = 16; ///< one cache block

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    std::uint64_t num_points;
    unsigned dims;
    unsigned num_centers;
    std::uint64_t seed;

    Addr points_addr = invalid_addr;  ///< num_points x dims floats
    const ScInput *input = nullptr;   ///< cached, shared read-only
    std::vector<unsigned> assignment;
    std::vector<float> best_dist;
    std::uint64_t peis_issued = 0;
};

/** SVM-RFE dot-product kernel: w·x for every instance x. */
class SvmWorkload : public Workload
{
  public:
    SvmWorkload(std::uint64_t instances, unsigned dims, std::uint64_t seed)
        : num_instances(instances), dims(dims), seed(seed)
    {}

    const char *name() const override { return "SVM"; }
    void setup(Runtime &rt) override;
    void spawn(Runtime &rt, unsigned threads, unsigned base) override;
    bool validate(System &sys, std::string &msg) override;
    std::uint64_t peiCount() const override { return peis_issued; }

    static constexpr unsigned chunk_doubles = 4; ///< 32 B (Table 1)

  private:
    Task kernel(Ctx &ctx, unsigned tid, unsigned n);

    std::uint64_t num_instances;
    unsigned dims;
    std::uint64_t seed;

    Addr x_addr = invalid_addr;      ///< num_instances x dims doubles
    const SvmInput *input = nullptr; ///< cached, shared read-only
    std::vector<double> dots;        ///< per-instance results
    std::uint64_t peis_issued = 0;
};

} // namespace pei

#endif // PEISIM_WORKLOADS_ML_HH
