#include "workload.hh"

#include "common/logging.hh"
#include "workloads/analytics.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/ml.hh"

namespace pei
{

const char *
kindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::ATF: return "ATF";
      case WorkloadKind::BFS: return "BFS";
      case WorkloadKind::PR: return "PR";
      case WorkloadKind::SP: return "SP";
      case WorkloadKind::WCC: return "WCC";
      case WorkloadKind::HJ: return "HJ";
      case WorkloadKind::HG: return "HG";
      case WorkloadKind::RP: return "RP";
      case WorkloadKind::SC: return "SC";
      case WorkloadKind::SVM: return "SVM";
    }
    return "?";
}

const char *
sizeName(InputSize size)
{
    switch (size) {
      case InputSize::Small: return "small";
      case InputSize::Medium: return "medium";
      case InputSize::Large: return "large";
    }
    return "?";
}

const std::vector<WorkloadKind> &
allWorkloadKinds()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::ATF, WorkloadKind::BFS, WorkloadKind::PR,
        WorkloadKind::SP,  WorkloadKind::WCC, WorkloadKind::HJ,
        WorkloadKind::HG,  WorkloadKind::RP,  WorkloadKind::SC,
        WorkloadKind::SVM,
    };
    return kinds;
}

namespace
{

/**
 * Table 3 input sets, scaled to the 2 MB L3 of
 * SystemConfig::scaled() with the paper's working-set/cache ratios:
 * small fits comfortably in the LLC, medium is a small multiple of
 * it, large far exceeds it.
 */
struct GraphSpec
{
    std::uint64_t v, e;
};

GraphSpec
graphSpec(InputSize size)
{
    // Vertex-state footprint (the PEI-targeted arrays, ~8-32 B per
    // vertex) relative to the scaled 1 MB L3 mirrors the paper's
    // ratios against its 16 MB L3: small « L3, medium ≈ L3 (partially
    // resident), large ≈ several × L3.
    switch (size) {
      case InputSize::Small: return {8192, 65536};      // ~0.8 MB total
      case InputSize::Medium: return {131072, 655360};  // ~9 MB total
      case InputSize::Large: return {524288, 2621440};  // ~36 MB total
    }
    return {8192, 65536};
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, InputSize size, std::uint64_t seed)
{
    const GraphSpec g = graphSpec(size);
    switch (kind) {
      case WorkloadKind::ATF:
        return std::make_unique<AtfWorkload>(g.v, g.e, seed);
      case WorkloadKind::BFS:
        return std::make_unique<BfsWorkload>(g.v, g.e, seed);
      case WorkloadKind::PR:
        return std::make_unique<PageRankWorkload>(g.v, g.e, seed, 2);
      case WorkloadKind::SP:
        return std::make_unique<SsspWorkload>(g.v, g.e, seed);
      case WorkloadKind::WCC:
        // Symmetrization doubles the edges; halve the budget.
        return std::make_unique<WccWorkload>(g.v, g.e / 2, seed);
      case WorkloadKind::HJ:
        // Hash table ≈ 16 B/row of buckets; probes fixed at 128 K.
        switch (size) {
          case InputSize::Small: // ~0.1 MB table
            return std::make_unique<HashJoinWorkload>(4096, 131072, seed);
          case InputSize::Medium: // ~1 MB table
            return std::make_unique<HashJoinWorkload>(49152, 131072, seed);
          case InputSize::Large: // ~6 MB table
            return std::make_unique<HashJoinWorkload>(262144, 131072,
                                                      seed);
        }
        break;
      case WorkloadKind::HG:
        switch (size) {
          case InputSize::Small: // 0.5 MB of ints
            return std::make_unique<HistogramWorkload>(1u << 17, seed);
          case InputSize::Medium: // 4 MB
            return std::make_unique<HistogramWorkload>(1u << 20, seed);
          case InputSize::Large: // 16 MB
            return std::make_unique<HistogramWorkload>(1u << 22, seed);
        }
        break;
      case WorkloadKind::RP:
        switch (size) {
          case InputSize::Small: // 0.25 MB in + out
            return std::make_unique<RadixPartitionWorkload>(1u << 16,
                                                            seed, 4);
          case InputSize::Medium: // 2 MB in + out
            return std::make_unique<RadixPartitionWorkload>(1u << 19,
                                                            seed, 3);
          case InputSize::Large: // 8 MB in + out
            return std::make_unique<RadixPartitionWorkload>(1u << 21,
                                                            seed, 2);
        }
        break;
      case WorkloadKind::SC:
        switch (size) {
          case InputSize::Small: // 1K 32-dim points: 128 KB
            return std::make_unique<StreamclusterWorkload>(1024, 32, 8,
                                                           seed);
          case InputSize::Medium: // 4K 128-dim points: 2 MB
            return std::make_unique<StreamclusterWorkload>(4096, 128, 8,
                                                           seed);
          case InputSize::Large: // 16K 128-dim points: 8 MB
            return std::make_unique<StreamclusterWorkload>(16384, 128, 8,
                                                           seed);
        }
        break;
      case WorkloadKind::SVM:
        switch (size) {
          case InputSize::Small: // 24 x 2048 doubles: 0.4 MB
            return std::make_unique<SvmWorkload>(24, 2048, seed);
          case InputSize::Medium: // 64 x 2048: 1 MB
            return std::make_unique<SvmWorkload>(64, 2048, seed);
          case InputSize::Large: // 256 x 2048: 4 MB
            return std::make_unique<SvmWorkload>(256, 2048, seed);
        }
        break;
    }
    panic("unhandled workload kind/size");
}

std::unique_ptr<Workload>
makePageRank(std::uint64_t vertices, std::uint64_t edges,
             std::uint64_t seed, unsigned iterations)
{
    return std::make_unique<PageRankWorkload>(vertices, edges, seed,
                                              iterations);
}

} // namespace pei
