#include "backend.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "mem/backend_config.hh"
#include "sim/sharded_queue.hh"

namespace pei
{

namespace
{

/**
 * Guarded registry: Systems are constructed concurrently from the
 * driver's worker threads, so lookups and (rare) registrations
 * synchronize on one mutex.
 */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, MemBackendFactory> &
registry()
{
    static std::map<std::string, MemBackendFactory> r;
    return r;
}

std::unique_ptr<MemoryBackend>
makeHmc(ShardedQueue &sq, const MemBackendConfig &cfg, StatRegistry &stats)
{
    return std::make_unique<HmcBackend>(sq, cfg.hmc, stats,
                                        cfg.phys_bytes);
}

std::unique_ptr<MemoryBackend>
makeDdr(ShardedQueue &sq, const MemBackendConfig &cfg, StatRegistry &stats)
{
    return std::make_unique<DdrBackend>(sq, cfg.ddr, stats,
                                        cfg.phys_bytes);
}

std::unique_ptr<MemoryBackend>
makeIdeal(ShardedQueue &sq, const MemBackendConfig &cfg, StatRegistry &stats)
{
    return std::make_unique<IdealBackend>(sq, cfg.ideal, stats,
                                          cfg.phys_bytes);
}

/**
 * The built-ins register lazily on first registry use (not via
 * static initializers, which a static library may dead-strip).
 * Callers must hold registryMutex().
 */
void
ensureBuiltinsLocked()
{
    auto &r = registry();
    if (r.count("hmc"))
        return;
    r.emplace("hmc", &makeHmc);
    r.emplace("ddr", &makeDdr);
    r.emplace("ideal", &makeIdeal);
}

} // namespace

void
registerMemoryBackend(const std::string &name, MemBackendFactory factory)
{
    fatal_if(name.empty() || factory == nullptr,
             "memory-backend registration needs a name and a factory");
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltinsLocked();
    registry()[name] = factory;
}

std::vector<std::string>
memoryBackendNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltinsLocked();
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

std::unique_ptr<MemoryBackend>
createMemoryBackend(const std::string &name, ShardedQueue &sq,
                    const MemBackendConfig &cfg, StatRegistry &stats)
{
    MemBackendFactory factory = nullptr;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        ensureBuiltinsLocked();
        const auto it = registry().find(name);
        if (it != registry().end())
            factory = it->second;
    }
    if (!factory) {
        std::string known;
        for (const std::string &n : memoryBackendNames())
            known += (known.empty() ? "" : ", ") + n;
        fatal("unknown memory backend '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    return factory(sq, cfg, stats);
}

} // namespace pei
