#include "dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pei
{

Vault::Vault(EventQueue &eq, const DramConfig &cfg, const AddrMap &map,
             unsigned global_id, StatRegistry &stats)
    : eq(eq), cfg(cfg), map(map), global_id(global_id)
{
    t_cl = nsToTicks(cfg.tCL_ns);
    t_rcd = nsToTicks(cfg.tRCD_ns);
    t_rp = nsToTicks(cfg.tRP_ns);
    // Burst: one cache block over the vault's TSV bundle.
    const double ns = static_cast<double>(block_size) / cfg.tsv_gbps;
    t_burst = nsToTicks(ns);
    banks.resize(cfg.banks_per_vault);

    const std::string p = "vault" + std::to_string(global_id) + ".";
    stats.add(p + "reads", &stat_reads);
    stats.add(p + "writes", &stat_writes);
    stats.add(p + "activates", &stat_activates);
    stats.add(p + "row_hits", &stat_row_hits);
    stats.add(p + "tsv_bytes", &stat_tsv_bytes);
    if (cfg.queue_histogram)
        stats.add(p + "queue_depth", &hist_queue_depth);
}

void
Vault::accessBlock(Addr paddr, bool is_write, Callback cb)
{
    const MemLoc loc = map.decode(paddr);
    panic_if(loc.globalVault != global_id,
             "request for vault %u routed to vault %u", loc.globalVault,
             global_id);
    queue.push_back(Request{paddr, is_write, loc.row, loc.bank, next_seq++,
                            std::move(cb)});
    if (cfg.queue_histogram)
        hist_queue_depth.record(queue.size());
    trySchedule();
}

void
Vault::armRetry(Tick when)
{
    if (retry_armed && retry_at <= when)
        return;
    retry_armed = true;
    retry_at = when;
    eq.scheduleAt(when, [this] {
        retry_armed = false;
        retry_at = max_tick;
        trySchedule();
    });
}

void
Vault::trySchedule()
{
    const Tick now = eq.now();

    // Issue every request that can start now, FR-FCFS order: first
    // the oldest row hit on an idle bank, else the oldest request on
    // an idle bank.
    bool progress = true;
    while (progress && !queue.empty()) {
        progress = false;

        auto ready = [&](const Request &r) {
            return banks[r.bank].free_at <= now;
        };
        auto row_hit = [&](const Request &r) {
            return banks[r.bank].open_row ==
                   static_cast<std::int64_t>(r.row);
        };

        auto pick = queue.end();
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (!ready(*it))
                continue;
            if (row_hit(*it)) {
                pick = it;
                break; // oldest row hit wins immediately
            }
            if (pick == queue.end())
                pick = it; // oldest ready request as fallback
        }

        if (pick != queue.end()) {
            Request req = std::move(*pick);
            queue.erase(pick);

            Bank &bank = banks[req.bank];
            Ticks access = 0;
            if (bank.open_row == static_cast<std::int64_t>(req.row)) {
                access = t_cl;
                ++stat_row_hits;
            } else if (bank.open_row >= 0) {
                access = t_rp + t_rcd + t_cl;
                ++stat_activates;
            } else {
                access = t_rcd + t_cl;
                ++stat_activates;
            }
            bank.open_row = static_cast<std::int64_t>(req.row);

            // Data moves over the shared TSV bundle after the array
            // access; serialize transfers.
            const Tick data_ready = now + access;
            const Tick xfer_start = std::max(data_ready, tsv_free_at);
            const Tick done = xfer_start + t_burst;
            tsv_free_at = done;
            bank.free_at = done;
            stat_tsv_bytes += block_size;
            if (req.is_write)
                ++stat_writes;
            else
                ++stat_reads;

            if (req.cb)
                eq.scheduleAt(done, std::move(req.cb));
            progress = true;
        }
    }

    if (!queue.empty()) {
        // All remaining requests wait on busy banks; retry at the
        // earliest release time.
        Tick earliest = max_tick;
        for (const auto &r : queue)
            earliest = std::min(earliest, banks[r.bank].free_at);
        panic_if(earliest == max_tick || earliest <= now,
                 "vault scheduler stuck");
        armRetry(earliest);
    }
}

} // namespace pei
