#include "ddr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pei
{

DdrChannel::DdrChannel(EventQueue &eq, const DdrConfig &cfg,
                       const AddrMap &map, unsigned chan_id,
                       StatRegistry &stats)
    : eq(eq), cfg(cfg), map(map), chan_id(chan_id)
{
    t_cl = nsToTicks(cfg.tCL_ns);
    t_rcd = nsToTicks(cfg.tRCD_ns);
    t_rp = nsToTicks(cfg.tRP_ns);
    t_ras = nsToTicks(cfg.tRAS_ns);
    t_rrd_s = nsToTicks(cfg.tRRD_S_ns);
    t_rrd_l = nsToTicks(cfg.tRRD_L_ns);
    t_faw = nsToTicks(cfg.tFAW_ns);
    t_refi = nsToTicks(cfg.tREFI_ns);
    t_rfc = nsToTicks(cfg.tRFC_ns);
    // Burst: one cache block over the channel's data bus.
    const double ns = static_cast<double>(block_size) / cfg.chan_gbps;
    t_burst = nsToTicks(ns);

    banks.resize(cfg.bank_groups * cfg.banks_per_group);
    group_last_act.assign(cfg.bank_groups, 0);
    next_refresh = t_refi;

    const std::string p = "chan" + std::to_string(chan_id) + ".";
    stats.add(p + "reads", &stat_reads);
    stats.add(p + "writes", &stat_writes);
    stats.add(p + "activates", &stat_activates);
    stats.add(p + "row_hits", &stat_row_hits);
    stats.add(p + "refreshes", &stat_refreshes);
    stats.add(p + "retry_arms", &stat_retry_arms);
    stats.add(p + "retry_fires", &stat_retry_fires);
    stats.add(p + "retry_stale", &stat_retry_stale);
    stats.add(p + "queue_depth", &hist_queue_depth);
    stats.addInvariant(
        p + "retry events balance at drain",
        [this] {
            // Every armed retry either fired live or drained as a
            // stale no-op; an imbalance (or a still-armed retry at
            // audit time) means a wakeup storm or a lost wakeup.
            const std::uint64_t arms = stat_retry_arms.value();
            const std::uint64_t done =
                stat_retry_fires.value() + stat_retry_stale.value();
            if (arms == done && !retry_armed)
                return std::string();
            return "retry_arms=" + std::to_string(arms) +
                   " but fires+stale=" + std::to_string(done) +
                   (retry_armed ? " with a retry still armed" : "");
        });
}

void
DdrChannel::accessBlock(Addr paddr, bool is_write, Callback cb)
{
    const MemLoc loc = map.decode(paddr);
    panic_if(loc.globalVault != chan_id,
             "request for channel %u routed to channel %u", loc.globalVault,
             chan_id);
    auto &q = is_write ? write_q : read_q;
    q.push_back(Request{paddr, is_write, loc.row, loc.bank, std::move(cb)});
    hist_queue_depth.record(read_q.size() + write_q.size());
    trySchedule();
}

void
DdrChannel::armRetry(Tick when)
{
    if (retry_armed && retry_at <= when)
        return;
    // Re-arming earlier abandons the already-scheduled later event;
    // it stays in the queue, so tag every arm with a generation and
    // let outdated events no-op instead of re-running the scheduler.
    const std::uint64_t gen = ++retry_gen;
    ++stat_retry_arms;
    retry_armed = true;
    retry_at = when;
    eq.scheduleAt(when, [this, gen] {
        if (gen != retry_gen) {
            ++stat_retry_stale;
            return;
        }
        ++stat_retry_fires;
        retry_armed = false;
        retry_at = max_tick;
        trySchedule();
    });
}

void
DdrChannel::advanceRefresh(Tick now)
{
    if (now < next_refresh)
        return;
    // Closed-form catch-up over any idle gap: only the most recent
    // refresh can still be blocking banks.
    const std::uint64_t periods = (now - next_refresh) / t_refi + 1;
    stat_refreshes += periods;
    const Tick last = next_refresh + (periods - 1) * t_refi;
    next_refresh += periods * t_refi;
    for (Bank &b : banks) {
        b.open_row = -1; // refresh precharges every bank
        b.free_at = std::max(b.free_at, last + t_rfc);
        b.ras_ready_at = 0;
    }
}

Tick
DdrChannel::earliestStart(const Request &r, Tick now) const
{
    const Bank &b = banks[r.bank];
    Tick t = std::max(now, b.free_at);
    if (b.open_row == static_cast<std::int64_t>(r.row))
        return t;
    // Row miss: precharge honours tRAS; tRRD_S/tRRD_L and the rolling
    // four-activate tFAW window gate the *activate*, which issue()
    // places at start + tRP on a conflict (the precharge runs first),
    // at the start itself on a closed bank.
    const Ticks pre = b.open_row >= 0 ? t_rp : Ticks{0};
    if (b.open_row >= 0)
        t = std::max(t, b.ras_ready_at);
    Tick act = t + pre;
    act = std::max(act, any_last_act + t_rrd_s);
    act = std::max(act, group_last_act[groupOf(r.bank)] + t_rrd_l);
    if (act_window.size() >= 4)
        act = std::max(act, act_window.front() + t_faw);
    return act - pre;
}

void
DdrChannel::issue(Request req, Tick now)
{
    Bank &bank = banks[req.bank];
    Ticks access = 0;
    if (bank.open_row == static_cast<std::int64_t>(req.row)) {
        access = t_cl;
        ++stat_row_hits;
    } else {
        access = (bank.open_row >= 0 ? t_rp : Ticks{0}) + t_rcd + t_cl;
        ++stat_activates;
        const Tick act = now + (bank.open_row >= 0 ? t_rp : Ticks{0});
        any_last_act = act;
        group_last_act[groupOf(req.bank)] = act;
        act_window.push_back(act);
        if (act_window.size() > 4)
            act_window.pop_front();
        bank.ras_ready_at = act + t_ras;
    }
    bank.open_row = static_cast<std::int64_t>(req.row);

    // Data moves over the shared channel bus after the array access.
    const Tick data_ready = now + access;
    const Tick xfer_start = std::max(data_ready, bus_free_at);
    const Tick done = xfer_start + t_burst;
    bus_free_at = done;
    bank.free_at = done;
    if (req.is_write)
        ++stat_writes;
    else
        ++stat_reads;

    if (req.cb)
        eq.scheduleAt(done, std::move(req.cb));
}

void
DdrChannel::trySchedule()
{
    const Tick now = eq.now();
    advanceRefresh(now);

    bool progress = true;
    while (progress && (!read_q.empty() || !write_q.empty())) {
        progress = false;

        // Drain hysteresis: once the write queue hits the high
        // watermark, writes win until it is back at the low one.
        if (write_q.size() >= cfg.write_drain_high)
            draining = true;
        else if (write_q.size() <= cfg.write_drain_low)
            draining = false;

        auto &q = (draining || read_q.empty()) && !write_q.empty()
                      ? write_q
                      : read_q;
        if (q.empty())
            break;

        // FR-FCFS within the active queue: oldest issuable row hit
        // wins, else the oldest issuable request.
        auto pick = q.end();
        for (auto it = q.begin(); it != q.end(); ++it) {
            if (earliestStart(*it, now) > now)
                continue;
            if (banks[it->bank].open_row ==
                static_cast<std::int64_t>(it->row)) {
                pick = it;
                break;
            }
            if (pick == q.end())
                pick = it;
        }

        if (pick != q.end()) {
            Request req = std::move(*pick);
            q.erase(pick);
            issue(std::move(req), now);
            progress = true;
        }
    }

    if (read_q.empty() && write_q.empty())
        return;

    // Everything the policy would serve next waits on a timing
    // constraint; retry at its earliest release.  Only the active
    // queue counts — a write that is issuable *now* but outranked by
    // pending reads is not progress.
    const auto &q = (draining || read_q.empty()) && !write_q.empty()
                        ? write_q
                        : read_q;
    Tick earliest = max_tick;
    for (const auto &r : q)
        earliest = std::min(earliest, earliestStart(r, now));
    panic_if(earliest == max_tick || earliest <= now,
             "ddr channel scheduler stuck");
    armRetry(earliest);
}

DdrBackend::DdrBackend(ShardedQueue &sq, const DdrConfig &cfg,
                       StatRegistry &stats, std::uint64_t phys_bytes)
    : sq(sq), eq(sq.host()), cfg(cfg),
      map(1, cfg.channels, cfg.bank_groups * cfg.banks_per_group,
          cfg.row_bytes, phys_bytes)
{
    // Same burst computation as DdrChannel: one block over the bus.
    t_burst =
        nsToTicks(static_cast<double>(block_size) / cfg.chan_gbps);

    channels.reserve(cfg.channels);
    // Each channel's FR-FCFS state, retry events and stats live on
    // its shard's queue (single-writer discipline per Counter).
    for (unsigned c = 0; c < cfg.channels; ++c)
        channels.push_back(std::make_unique<DdrChannel>(
            sq.shard(sq.shardFor(c)), cfg, map, c, stats));

    stats.add("ddr.reads", &stat_reads);
    stats.add("ddr.writes", &stat_writes);
    stats.add("ddr.read_ticks", &hist_read_ticks);
}

void
DdrBackend::readBlock(Addr paddr, Callback cb)
{
    ++stat_reads;
    const MemLoc loc = map.decode(paddr);
    const std::uint32_t txn =
        read_txns.emplace(ReadTxn{eq.now(), std::move(cb)});
    const unsigned c = loc.globalVault;
    if (!sq.parallel()) {
        // Exact sequential path: the channel is driven synchronously
        // on the host queue, bit-identical to the pre-sharding code.
        channels[c]->accessBlock(paddr, false,
                                 [this, txn] { readDone(txn); });
        return;
    }
    // Both directions of the host<->channel hop are zero-latency
    // (it used to be a plain call), so they take the clamped mailbox
    // path; the worker-side lambda carries only plain values.
    sq.post(sq.shardFor(c), Continuation([this, txn, c, paddr] {
        channels[c]->accessBlock(paddr, false, [this, txn] {
            completeOnHost([this, txn] { readDone(txn); });
        });
    }));
}

void
DdrBackend::readDone(std::uint32_t txn)
{
    ReadTxn &t = read_txns[txn];
    hist_read_ticks.record(eq.now() - t.issued);
    Callback cb = std::move(t.cb);
    read_txns.erase(txn);
    if (cb)
        cb();
}

void
DdrBackend::writeBlock(Addr paddr, Callback cb)
{
    ++stat_writes;
    const MemLoc loc = map.decode(paddr);
    const unsigned c = loc.globalVault;
    if (!sq.parallel()) {
        // Exact sequential path, including the null-cb case: wrapping
        // a null cb would add an event and change executed counts.
        channels[c]->accessBlock(paddr, true, std::move(cb));
        return;
    }
    // Park the host-side ack (if any) so the cross-shard lambda stays
    // within the mailbox Continuation's inline budget.
    const std::uint32_t txn =
        cb ? write_txns.emplace(WriteTxn{std::move(cb)}) : no_write_ack;
    sq.post(sq.shardFor(c), Continuation([this, txn, c, paddr] {
        Callback done;
        if (txn != no_write_ack)
            done = [this, txn] {
                completeOnHost([this, txn] { writeDone(txn); });
            };
        channels[c]->accessBlock(paddr, true, std::move(done));
    }));
}

void
DdrBackend::writeDone(std::uint32_t txn)
{
    Callback cb = std::move(write_txns[txn].cb);
    write_txns.erase(txn);
    cb();
}

MemPort &
DdrBackend::pimUnitPort(unsigned unit)
{
    panic("ddr backend has no PIM unit %u", unit);
}

EventQueue &
DdrBackend::pimUnitQueue(unsigned unit)
{
    panic("ddr backend has no PIM unit %u (no queue)", unit);
}

void
DdrBackend::attachPimHandler(unsigned unit, PimHandler *)
{
    panic("cannot attach a PCU to non-PIM ddr backend (unit %u)", unit);
}

void
DdrBackend::sendPim(PimPacket, PimHandler::Respond)
{
    panic("PIM operation dispatched to non-PIM ddr backend");
}

std::uint64_t
DdrBackend::memReads() const
{
    std::uint64_t n = 0;
    for (const auto &c : channels)
        n += c->reads();
    return n;
}

std::uint64_t
DdrBackend::memWrites() const
{
    std::uint64_t n = 0;
    for (const auto &c : channels)
        n += c->writes();
    return n;
}

} // namespace pei
