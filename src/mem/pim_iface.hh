/**
 * @file
 * The packetized PIM-operation interface between the host-side PMU
 * and the memory-side PCUs (paper §4.2: "memory-side PCUs are
 * interfaced with the HMC controllers using special memory
 * commands").
 *
 * Lives in the mem module so that the HMC model can route PIM
 * packets without depending on the pim module (the pim module
 * registers concrete handlers at system construction).
 */

#ifndef PEISIM_MEM_PIM_IFACE_HH
#define PEISIM_MEM_PIM_IFACE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "sim/continuation.hh"

namespace pei
{

/** Maximum input/output operand size: one last-level cache block
 *  (paper §3.1's single-cache-block restriction). */
constexpr unsigned max_operand_bytes = block_size;

/** Maximum element count of a multi-block (gather/scatter) PEI. */
constexpr unsigned max_pei_target_blocks = 8;

/**
 * A PIM operation in flight between the PMU and a memory-side PCU.
 * Carries the opcode, the exact (physical) target address inside one
 * cache block, and up to one block of input/output operand data.
 */
struct PimPacket
{
    std::uint16_t op = 0;      ///< opcode (index into the PEI op table)
    bool is_writer = false;    ///< does the op modify its target block?
    Addr paddr = invalid_addr; ///< physical target address
    Tick issue_tick = 0;       ///< PMU issue time (latency accounting)
    unsigned input_size = 0;
    unsigned output_size = 0;

    /**
     * Multi-block (gather/scatter) element descriptor.  Classic
     * Table-1 ops leave mb_count at 0; multi-block ops access
     * mb_count 8-byte elements at paddr + i*mb_stride.  Kept on the
     * packet so the coherence seam and PCUs can enumerate the touched
     * blocks without decoding op-specific input operands.
     */
    std::uint16_t mb_count = 0;
    std::uint32_t mb_stride = 0;

    std::array<std::uint8_t, max_operand_bytes> input{};
    std::array<std::uint8_t, max_operand_bytes> output{};

    /**
     * Request-packet size on the off-chip link: an 8-byte compound-
     * command header plus the input operands (§2.2 counts 8 bytes of
     * off-chip traffic for a memory-side 8-byte atomic add).
     */
    unsigned requestBytes() const { return 8 + input_size; }

    /**
     * Response-packet size.  Operations with output operands return
     * a full packet; pure writer operations (no output) complete
     * with posted, aggregated acks that consume no link bandwidth.
     */
    unsigned responseBytes() const
    {
        return output_size > 0 ? 16 + output_size : 0;
    }

    /**
     * Enumerate the distinct cache blocks this packet touches into
     * @p out (block-aligned addresses); returns the count.  Classic
     * single-block ops yield one block; multi-block ops dedup
     * elements that share a block.  @p max must be at least
     * max_pei_target_blocks for multi-block packets.
     */
    unsigned targetBlocks(Addr *out, unsigned max) const
    {
        if (mb_count <= 1) {
            if (max == 0)
                return 0;
            out[0] = blockAlign(paddr);
            return 1;
        }
        unsigned n = 0;
        for (unsigned i = 0; i < mb_count; ++i) {
            const Addr b =
                blockAlign(paddr + static_cast<Addr>(i) * mb_stride);
            bool seen = false;
            for (unsigned j = 0; j < n; ++j)
                seen = seen || out[j] == b;
            if (!seen && n < max)
                out[n++] = b;
        }
        return n;
    }
};

/**
 * Handler for PIM packets arriving at a vault; implemented by the
 * memory-side PCU.  @p respond must eventually be invoked with the
 * completed packet (output operands filled in).
 */
class PimHandler
{
  public:
    virtual ~PimHandler() = default;

    /**
     * Completion callback for a dispatched PIM packet.  The 24-byte
     * inline budget fits the HMC controller's `{this, txn-handle}`
     * response stage; larger responder state must live in a
     * transaction record, not the closure.
     */
    using Respond = InlineFunction<void(PimPacket), 24>;

    virtual void handle(PimPacket pkt, Respond respond) = 0;
};

} // namespace pei

#endif // PEISIM_MEM_PIM_IFACE_HH
