/**
 * @file
 * Ideal main memory backend: every block access completes after a
 * fixed latency with infinite bandwidth, and PIM operations reach
 * their unit after a (smaller) fixed latency.  Useful as an upper
 * bound ("what if memory were free?") and as a fast substrate for
 * differential testing — architectural results must match the timed
 * backends exactly while every queueing effect disappears.
 */

#ifndef PEISIM_MEM_IDEAL_HH
#define PEISIM_MEM_IDEAL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addr_map.hh"
#include "mem/backend.hh"
#include "mem/pim_iface.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_queue.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/** Knobs of the ideal backend. */
struct IdealMemConfig
{
    double latency_ns = 50.0;    ///< flat block access latency
    double pim_latency_ns = 10.0; ///< one-way PIM dispatch latency
    unsigned pim_units = 16;     ///< PIM sites (power of 2)
    unsigned banks_per_unit = 16;   ///< address-map geometry only
    std::uint64_t row_bytes = 8192; ///< address-map geometry only
};

class IdealBackend;

/** Fixed-latency DRAM port of one ideal PIM unit. */
class IdealPort : public MemPort
{
  public:
    IdealPort(IdealBackend &owner, unsigned unit)
        : owner(owner), unit(unit)
    {}

    void accessBlock(Addr paddr, bool is_write, Callback cb) override;

    unsigned globalId() const override { return unit; }

  private:
    IdealBackend &owner;
    unsigned unit;
};

/**
 * The ideal backend: no queues, no links, no banks.  PIM capability
 * is retained (one unit per address-map "vault") so locality-aware
 * dispatch remains exercisable on top of flat timing.
 */
class IdealBackend : public MemoryBackend
{
  public:
    using Callback = Continuation;

    /**
     * The ideal backend has no internal queueing worth
     * parallelizing: it reports zero memPartitions() and runs
     * entirely on the host shard even under --shards=N.
     */
    IdealBackend(ShardedQueue &sq, const IdealMemConfig &cfg,
                 StatRegistry &stats, std::uint64_t phys_bytes = 0);

    const char *kind() const override { return "ideal"; }

    void readBlock(Addr paddr, Callback cb) override;
    void writeBlock(Addr paddr, Callback cb = nullptr) override;

    bool supportsPim() const override { return true; }
    unsigned pimUnits() const override
    {
        return static_cast<unsigned>(ports.size());
    }
    MemPort &pimUnitPort(unsigned unit) override { return *ports[unit]; }
    void attachPimHandler(unsigned unit, PimHandler *handler) override;
    void sendPim(PimPacket pkt, PimHandler::Respond cb) override;

    const AddrMap &addrMap() const override { return map; }

    EventQueue &pimUnitQueue(unsigned) override { return eq; }

    std::uint64_t memReads() const override { return stat_reads.value(); }
    std::uint64_t memWrites() const override
    {
        return stat_writes.value();
    }

  private:
    friend class IdealPort;

    struct PimTxn
    {
        PimPacket pkt; ///< request in flight; reused for the response
        PimHandler::Respond cb;
    };

    void pimArrived(std::uint32_t txn, unsigned unit);
    void pimRespond(std::uint32_t txn);

    EventQueue &eq;
    IdealMemConfig cfg;
    AddrMap map;
    Ticks t_access;
    Ticks t_pim;
    std::vector<std::unique_ptr<IdealPort>> ports;
    std::vector<PimHandler *> pim_handlers;
    SlotPool<PimTxn> pim_txns;

    Counter stat_reads;
    Counter stat_writes;
    Counter stat_pim_ops;
};

} // namespace pei

#endif // PEISIM_MEM_IDEAL_HH
