/**
 * @file
 * HMC main memory: cubes of vaults behind a packetized off-chip
 * interconnect (net/interconnect.hh) with separate request and
 * response channels.  The default chain topology is the paper's
 * Table 2 daisy chain (8 HMCs, 80 GB/s full-duplex); ring and mesh
 * route packets over a real multi-hop cube network.
 *
 * Link cost model follows the paper's footnote 7: a memory read
 * consumes 16 B of request and 80 B of response bandwidth; a write
 * consumes 80 B of request bandwidth.  PIM operations consume
 * 16 B + input operands (request) and 16 B + output operands
 * (response).
 */

#ifndef PEISIM_MEM_HMC_HH
#define PEISIM_MEM_HMC_HH

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addr_map.hh"
#include "mem/backend.hh"
#include "mem/dram.hh"
#include "mem/pim_iface.hh"
#include "net/interconnect.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_queue.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/** Off-chip interconnect configuration. */
struct HmcLinkConfig
{
    double gbps = 40.0;      ///< per-direction bandwidth
    double latency_ns = 2.0; ///< propagation latency per direction
    double hop_ns = 1.0;     ///< extra latency per daisy-chain hop
    unsigned flit_bytes = 16;
};

/** Main memory geometry. */
struct HmcConfig
{
    unsigned num_cubes = 8;
    unsigned vaults_per_cube = 16;
    /** How the cubes are wired to the host (net/topology.hh); chain
     *  is the paper's daisy chain and the byte-identical default. */
    Topology topology = Topology::Chain;
    DramConfig dram;
    HmcLinkConfig link;
};

/**
 * Exponential-moving-average flit counter used by balanced dispatch
 * (paper §7.4): accumulates flits and is halved every 10 µs.  Decay
 * is applied lazily to keep the event queue clean.
 */
class EmaCounter
{
  public:
    explicit EmaCounter(Ticks half_period = 40000) // 10 us at 4 GHz
        : half_period(half_period)
    {}

    void
    add(std::uint64_t n, Tick now)
    {
        decayTo(now);
        value_ += static_cast<double>(n);
    }

    double
    value(Tick now)
    {
        decayTo(now);
        return value_;
    }

  private:
    void
    decayTo(Tick now)
    {
        if (now <= last)
            return;
        const std::uint64_t periods = (now - last) / half_period;
        last += periods * half_period;
        if (periods == 0)
            return;
        // Closed-form halving: value * 2^-periods.  Doubles underflow
        // to zero well before 2^-2048, so any gap past that many
        // half-periods clamps straight to zero in O(1).
        if (periods >= 2048)
            value_ = 0.0;
        else
            value_ = std::ldexp(value_, -static_cast<int>(periods));
        if (value_ <= 1e-12)
            value_ = 0.0;
    }

    Ticks half_period;
    Tick last = 0;
    double value_ = 0.0;
};

/**
 * Host-side HMC controller: routes read/write/PIM packets over the
 * request link to the owning cube/vault and returns responses over
 * the response link.  Owns all vaults of all cubes (they are its PIM
 * units) and the address map decoding into them.
 *
 * Sharding: the controller itself (links, EMAs, transaction pools,
 * stats, histograms) lives on the host shard; each vault — and the
 * memory-side PCU attached to it — lives on the worker shard
 * sq.shardFor(globalVault) and is driven by that shard's EventQueue.
 * Request arrivals ride the link latency (>= the lookahead, so their
 * timing is exact); completions return to the host shard over the
 * zero-latency mailbox edge, clamped by at most one epoch window.
 * With a single shard every scheduleOn degenerates to the host queue
 * and completions are invoked inline, which is bit-identical to the
 * sequential engine.
 */
class HmcBackend : public MemoryBackend
{
  public:
    using Callback = Continuation;

    HmcBackend(ShardedQueue &sq, const HmcConfig &cfg, StatRegistry &stats,
               std::uint64_t phys_bytes = 0);

    const char *kind() const override { return "hmc"; }

    /** Fetch the block containing @p paddr; @p cb fires on arrival. */
    void readBlock(Addr paddr, Callback cb) override;

    /** Write back the block containing @p paddr; @p cb optional. */
    void writeBlock(Addr paddr, Callback cb = nullptr) override;

    /**
     * Dispatch a PIM operation to the vault owning its target block;
     * @p cb receives the completed packet (output operands filled).
     */
    void sendPim(PimPacket pkt, PimHandler::Respond cb) override;

    /**
     * Dispatch a coalesced same-vault PEI train: one compound request
     * packet (8 B train header + 4 B sub-header + input operands per
     * member) rides the request link, members execute at the vault
     * PCU individually, and the completions merge into one response
     * train (16 B header + 4 B sub-header + output operands per
     * output-bearing member) or a posted ack when no member carries
     * output.  Counted as n ops in hmc.pim_ops with n round trips, so
     * the existing conservation invariant covers trains too.
     */
    void sendPimTrain(PimPacket *pkts, unsigned n,
                      PimHandler::Respond *cbs) override;

    /** Register the memory-side PCU serving @p global_vault. */
    void attachPimHandler(unsigned global_vault,
                          PimHandler *handler) override;

    bool supportsPim() const override { return true; }
    unsigned pimUnits() const override { return totalVaults(); }
    MemPort &pimUnitPort(unsigned unit) override { return vault(unit); }

    const AddrMap &addrMap() const override { return map; }

    /** Memory partitions follow the topology's cube population:
     *  cubes x vaults_per_cube vaults, one shardable unit each. */
    unsigned memPartitions() const override { return totalVaults(); }

    /** Lookahead: the interconnect's shortest host-to-cube latency —
     *  every host-to-vault edge carries at least this much delay
     *  (each route starts with a host link charging it). */
    Ticks
    minCrossShardLatency() const override
    {
        return net.minHostLatency();
    }

    EventQueue &
    pimUnitQueue(unsigned unit) override
    {
        return sq.shard(sq.shardFor(unit));
    }

    Vault &vault(unsigned global_vault) { return *vaults[global_vault]; }
    unsigned totalVaults() const { return static_cast<unsigned>(vaults.size()); }

    std::uint64_t memReads() const override;
    std::uint64_t memWrites() const override;

    /** EMA of request-link flits (balanced dispatch input). */
    double emaRequestFlits() override { return ema_req.value(eq.now()); }

    /** EMA of response-link flits (balanced dispatch input). */
    double emaResponseFlits() override { return ema_res.value(eq.now()); }

    /** Raw per-direction off-chip byte counters (injected traffic,
     *  counted once per packet on every topology). */
    std::uint64_t requestBytes() const override { return net.requestBytes(); }
    std::uint64_t responseBytes() const override { return net.responseBytes(); }

    /** Raw per-direction off-chip flit counters (probe hooks). */
    std::uint64_t requestFlits() const override { return net.requestFlits(); }
    std::uint64_t responseFlits() const override { return net.responseFlits(); }

    /** The off-chip network (routing/link stats, scale-out probes). */
    const Interconnect &interconnect() const { return net; }

  private:
    /**
     * In-flight transaction records.  The continuation/packet state
     * that used to ride inside nested closures is parked here so the
     * per-stage events capture only `{this, handle}` (within
     * Continuation's inline budget) and the steady state allocates
     * nothing: slots recycle through the pools' freelists.
     */
    struct ReadTxn
    {
        Addr paddr;
        MemLoc loc;
        Tick issued;
        Callback cb;
    };

    struct WriteTxn
    {
        Addr paddr;
        MemLoc loc;
        Callback cb;
    };

    struct PimTxn
    {
        MemLoc loc;
        Tick issued;
        PimPacket pkt; ///< request in flight; reused for the response
        PimHandler::Respond cb;
    };

    struct TrainTxn
    {
        MemLoc loc;
        Tick issued;
        unsigned n = 0;
        unsigned remaining = 0;
        /** Own pool handle: member-completion closures carry only the
         *  stable slot pointer (the handle would pad them past the
         *  Respond inline budget) and read it back from here. */
        std::uint32_t self = 0;
        std::vector<PimPacket> pkts; ///< requests; reused for responses
        std::vector<PimHandler::Respond> cbs;
    };

    unsigned flitsOf(unsigned bytes) const;

    // Host-shard stage handlers (one per latency edge of the old
    // closure chain).  The arrival stages became vault-shard lambdas
    // capturing plain values — a cross-shard closure must not touch
    // the host-owned transaction pools' metadata, only carry the
    // 32-bit handle back (or read through a stable slot pointer).
    void readDone(std::uint32_t txn);
    void writeDone(std::uint32_t txn);
    void pimDone(std::uint32_t txn);
    void pimRespond(std::uint32_t txn);
    void trainMemberDone(std::uint32_t txn);
    void trainRespond(std::uint32_t txn);

    /**
     * Run @p fn on the host shard at the calling vault shard's
     * current tick — the completion edge.  Single-shard mode invokes
     * it inline (exactly the old synchronous call, bit-identical);
     * sharded mode posts a mailbox message, clamped at delivery.
     */
    template <typename Fn>
    void
    completeOnHost(Fn &&fn)
    {
        if (!sq.parallel()) {
            fn();
            return;
        }
        sq.post(0, Continuation(std::forward<Fn>(fn)));
    }

    ShardedQueue &sq;
    EventQueue &eq; ///< the host shard's queue (sq.host())
    HmcConfig cfg;
    AddrMap map;
    Interconnect net;
    EmaCounter ema_req;
    EmaCounter ema_res;
    std::vector<std::unique_ptr<Vault>> vaults;
    std::vector<PimHandler *> pim_handlers;
    SlotPool<ReadTxn> read_txns;
    SlotPool<WriteTxn> write_txns;
    SlotPool<PimTxn> pim_txns;
    SlotPool<TrainTxn> train_txns;

    Counter stat_reads;
    Counter stat_writes;
    Counter stat_pim_ops;
    Histogram hist_read_ticks;          ///< demand read round trip
    Histogram hist_pim_roundtrip_ticks; ///< PIM dispatch round trip
};

} // namespace pei

#endif // PEISIM_MEM_HMC_HH
