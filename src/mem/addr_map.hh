/**
 * @file
 * Physical-address decomposition for the HMC-based main memory.
 *
 * Cache blocks are interleaved across cubes, then vaults, then banks
 * (low-order interleaving), which spreads sequential traffic across
 * all vaults — the mapping HMC-style memories use to expose maximum
 * internal parallelism.  Bit layout of a physical address:
 *
 *   | row ... | bank | vault | cube | block offset (6 bits) |
 */

#ifndef PEISIM_MEM_ADDR_MAP_HH
#define PEISIM_MEM_ADDR_MAP_HH

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace pei
{

/** Location of one cache block inside the memory system. */
struct MemLoc
{
    unsigned cube;       ///< HMC index in the daisy chain
    unsigned vault;      ///< vault within the cube
    unsigned bank;       ///< bank within the vault
    std::uint64_t row;   ///< DRAM row within the bank
    unsigned globalVault; ///< cube * vaults_per_cube + vault
};

/** Decodes physical block addresses into memory locations. */
class AddrMap
{
  public:
    /**
     * @p phys_bytes bounds the decodable address space: decode()
     * range-checks the row field against it in debug builds.  0
     * leaves decoding unbounded (legacy behavior; standalone uses).
     */
    AddrMap(unsigned num_cubes, unsigned vaults_per_cube,
            unsigned banks_per_vault, std::uint64_t row_bytes,
            std::uint64_t phys_bytes = 0)
        : num_cubes(num_cubes), vaults_per_cube(vaults_per_cube),
          banks_per_vault(banks_per_vault),
          cube_bits(ceilLog2(num_cubes)),
          vault_bits(ceilLog2(vaults_per_cube)),
          bank_bits(ceilLog2(banks_per_vault)),
          row_block_bits(ceilLog2(row_bytes / block_size))
    {
        fatal_if(!isPowerOf2(num_cubes) || !isPowerOf2(vaults_per_cube) ||
                     !isPowerOf2(banks_per_vault),
                 "memory geometry must be powers of two");
        fatal_if(row_bytes < block_size || !isPowerOf2(row_bytes),
                 "row size must be a power-of-two multiple of block size");
        if (phys_bytes > 0) {
            // Rows that fit below phys_bytes given the interleave:
            // every row spans one row's worth of blocks in each
            // (cube, vault, bank) combination.
            const unsigned shift = block_shift + cube_bits + vault_bits +
                                   bank_bits + row_block_bits;
            row_limit = phys_bytes >> shift;
            if (row_limit == 0)
                row_limit = 1; // capacity below one full row stripe
        }
    }

    /** Decode @p paddr (any byte address; block granularity). */
    MemLoc
    decode(Addr paddr) const
    {
        const Addr blk = paddr >> block_shift;
        unsigned lo = 0;
        const auto cube = static_cast<unsigned>(bits(blk, lo, cube_bits));
        lo += cube_bits;
        const auto vault = static_cast<unsigned>(bits(blk, lo, vault_bits));
        lo += vault_bits;
        const auto bank = static_cast<unsigned>(bits(blk, lo, bank_bits));
        lo += bank_bits;
        // Row index: remaining bits above the interleave fields,
        // grouped so that row_block_bits consecutive blocks (after
        // interleave) share a DRAM row.
        const std::uint64_t row = blk >> (lo + row_block_bits);
#ifndef NDEBUG
        // Construction asserts the geometry, but nothing bounds the
        // row: an out-of-range physical address would silently decode
        // to a phantom row past the end of memory.  Debug builds trap
        // it at the decode seam (the earliest common point).
        panic_if(row_limit != 0 && row >= row_limit,
                 "physical address 0x%llx decodes past the end of memory "
                 "(row %llu, only %llu row(s) backed)",
                 static_cast<unsigned long long>(paddr),
                 static_cast<unsigned long long>(row),
                 static_cast<unsigned long long>(row_limit));
#endif
        return MemLoc{cube, vault, bank, row,
                      cube * vaults_per_cube + vault};
    }

    unsigned numCubes() const { return num_cubes; }
    unsigned vaultsPerCube() const { return vaults_per_cube; }
    unsigned banksPerVault() const { return banks_per_vault; }
    unsigned totalVaults() const { return num_cubes * vaults_per_cube; }

    /** Rows backed per bank (0 = unbounded; debug range check). */
    std::uint64_t rowLimit() const { return row_limit; }

  private:
    unsigned num_cubes;
    unsigned vaults_per_cube;
    unsigned banks_per_vault;
    unsigned cube_bits;
    unsigned vault_bits;
    unsigned bank_bits;
    unsigned row_block_bits;
    std::uint64_t row_limit = 0; ///< 0 = no bound given
};

} // namespace pei

#endif // PEISIM_MEM_ADDR_MAP_HH
