#include "vmem.hh"

#include <algorithm>

namespace pei
{

Addr
VirtualMemory::alloc(std::uint64_t bytes, std::uint64_t align)
{
    fatal_if(bytes == 0, "zero-byte allocation");
    align = std::max<std::uint64_t>(align, block_size);
    next_vaddr = (next_vaddr + align - 1) & ~(align - 1);
    const Addr base = next_vaddr;
    next_vaddr += bytes;

    // Map every page in [base, base + bytes).
    const Addr first_vpn = vpn(base);
    const Addr last_vpn = vpn(base + bytes - 1);
    for (Addr p = first_vpn; p <= last_vpn; ++p) {
        if (page_table.count(p))
            continue;
        fatal_if((next_frame + 1) * page_size > phys_limit,
                 "out of simulated physical memory (%llu bytes)",
                 static_cast<unsigned long long>(phys_limit));
        page_table.emplace(p, next_frame);
        frames.push_back(Frame{std::make_unique<std::byte[]>(page_size)});
        std::memset(frames.back().data.get(), 0, page_size);
        ++next_frame;
    }
    return base;
}

Addr
VirtualMemory::translate(Addr vaddr) const
{
    auto it = page_table.find(vpn(vaddr));
    fatal_if(it == page_table.end(),
             "access to unmapped virtual address 0x%llx",
             static_cast<unsigned long long>(vaddr));
    return (it->second << page_shift) | (vaddr & (page_size - 1));
}

const std::byte *
VirtualMemory::framePtr(Addr vaddr) const
{
    auto it = page_table.find(vpn(vaddr));
    fatal_if(it == page_table.end(),
             "access to unmapped virtual address 0x%llx",
             static_cast<unsigned long long>(vaddr));
    return frames[it->second].data.get() + (vaddr & (page_size - 1));
}

void *
VirtualMemory::hostPtr(Addr vaddr)
{
    return const_cast<std::byte *>(framePtr(vaddr));
}

const void *
VirtualMemory::hostPtr(Addr vaddr) const
{
    return framePtr(vaddr);
}

void
VirtualMemory::readBytes(Addr vaddr, void *dst, std::uint64_t size) const
{
    auto *out = static_cast<std::byte *>(dst);
    while (size > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(size, page_size - (vaddr & (page_size - 1)));
        std::memcpy(out, framePtr(vaddr), in_page);
        vaddr += in_page;
        out += in_page;
        size -= in_page;
    }
}

void
VirtualMemory::writeBytes(Addr vaddr, const void *src, std::uint64_t size)
{
    auto *in = static_cast<const std::byte *>(src);
    while (size > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(size, page_size - (vaddr & (page_size - 1)));
        std::memcpy(const_cast<std::byte *>(framePtr(vaddr)), in, in_page);
        vaddr += in_page;
        in += in_page;
        size -= in_page;
    }
}

Ticks
Tlb::access(Addr vaddr)
{
    const Addr page = VirtualMemory::vpn(vaddr);
    ++tick;
    auto it = lru.find(page);
    if (it != lru.end()) {
        it->second = tick;
        ++hit_count;
        return 0;
    }
    ++miss_count;
    if (lru.size() >= capacity) {
        auto victim = std::min_element(
            lru.begin(), lru.end(),
            [](const auto &a, const auto &b) { return a.second < b.second; });
        lru.erase(victim);
    }
    lru.emplace(page, tick);
    return walk_latency;
}

} // namespace pei
