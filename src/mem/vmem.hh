/**
 * @file
 * Virtual memory: page table, allocation, functional backing store,
 * and a small per-core TLB model.
 *
 * PEIs and normal instructions both operate on virtual addresses
 * (paper §3.2/§4.4); translation happens at the host core using its
 * TLB, so the PMU and all PCUs see physical addresses only.  Pages
 * are backed by real host memory so workloads execute functionally
 * and their outputs can be validated against reference code.
 */

#ifndef PEISIM_MEM_VMEM_HH
#define PEISIM_MEM_VMEM_HH

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pei
{

/** Page geometry: 4 KiB pages throughout. */
constexpr unsigned page_shift = 12;
constexpr std::uint64_t page_size = 1ULL << page_shift;

/**
 * Single-address-space virtual memory with demand-free eager mapping:
 * alloc() assigns virtual pages and immediately binds physical frames
 * (frames are assigned sequentially; fine-grained interleaving across
 * vaults happens in the physical address map).
 */
class VirtualMemory
{
  public:
    explicit VirtualMemory(std::uint64_t phys_bytes)
        : phys_limit(phys_bytes)
    {}

    /**
     * Allocate @p bytes of virtual memory aligned to @p align
     * (>= one cache block).  Returns the virtual base address.
     */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = block_size);

    /** Translate; fatal on unmapped access (simulated segfault). */
    Addr translate(Addr vaddr) const;

    /** Virtual page number of the page backing @p vaddr. */
    static Addr vpn(Addr vaddr) { return vaddr >> page_shift; }

    /** Host pointer backing @p vaddr; valid within its page. */
    void *hostPtr(Addr vaddr);
    const void *hostPtr(Addr vaddr) const;

    /** Functional read of a POD value at @p vaddr. */
    template <typename T>
    T
    read(Addr vaddr) const
    {
        T out;
        readBytes(vaddr, &out, sizeof(T));
        return out;
    }

    /** Functional write of a POD value at @p vaddr. */
    template <typename T>
    void
    write(Addr vaddr, const T &value)
    {
        writeBytes(vaddr, &value, sizeof(T));
    }

    /** Functional bulk read; may cross page boundaries. */
    void readBytes(Addr vaddr, void *dst, std::uint64_t size) const;

    /** Functional bulk write; may cross page boundaries. */
    void writeBytes(Addr vaddr, const void *src, std::uint64_t size);

    /**
     * Host pointer backing physical address @p paddr.  Memory-side
     * PCUs and caches operate on physical addresses only (paper
     * §4.4); accesses must stay within one page.
     */
    void *
    hostPtrPhys(Addr paddr)
    {
        const std::uint64_t pfn = paddr >> page_shift;
        fatal_if(pfn >= frames.size(),
                 "access to unmapped physical address 0x%llx",
                 static_cast<unsigned long long>(paddr));
        return frames[pfn].data.get() + (paddr & (page_size - 1));
    }

    /** Functional read of a POD value at physical @p paddr. */
    template <typename T>
    T
    readPhys(Addr paddr)
    {
        T out;
        std::memcpy(&out, hostPtrPhys(paddr), sizeof(T));
        return out;
    }

    /** Functional write of a POD value at physical @p paddr. */
    template <typename T>
    void
    writePhys(Addr paddr, const T &value)
    {
        std::memcpy(hostPtrPhys(paddr), &value, sizeof(T));
    }

    /** Bytes of virtual memory allocated so far. */
    std::uint64_t allocatedBytes() const { return next_vaddr - base_vaddr; }

    /** Number of mapped pages. */
    std::size_t mappedPages() const { return page_table.size(); }

  private:
    struct Frame
    {
        std::unique_ptr<std::byte[]> data;
    };

    const std::byte *framePtr(Addr vaddr) const;

    std::uint64_t phys_limit;
    // Start allocations away from 0 so that null-ish addresses fault.
    static constexpr Addr base_vaddr = 0x10000;
    Addr next_vaddr = base_vaddr;
    std::uint64_t next_frame = 0;
    std::unordered_map<Addr, std::uint64_t> page_table; // vpn -> pfn
    std::vector<Frame> frames;                          // pfn -> storage
};

/**
 * Per-core TLB: fully-associative, LRU, with a fixed page-walk
 * penalty on miss.  Returns the access latency contribution of
 * translation for a memory operation or PEI issue.
 */
class Tlb
{
  public:
    Tlb(unsigned entries, Ticks walk_latency)
        : capacity(entries), walk_latency(walk_latency)
    {}

    /**
     * Look up @p vaddr; updates LRU state and miss counters.
     * @return extra latency in ticks (0 on hit).
     */
    Ticks access(Addr vaddr);

    std::uint64_t hits() const { return hit_count; }
    std::uint64_t misses() const { return miss_count; }

  private:
    unsigned capacity;
    Ticks walk_latency;
    std::uint64_t hit_count = 0;
    std::uint64_t miss_count = 0;
    std::uint64_t tick = 0;
    std::unordered_map<Addr, std::uint64_t> lru; // vpn -> last use
};

} // namespace pei

#endif // PEISIM_MEM_VMEM_HH
