#include "ideal_mem.hh"

#include "common/logging.hh"

namespace pei
{

void
IdealPort::accessBlock(Addr paddr, bool is_write, Callback cb)
{
#ifndef NDEBUG
    (void)owner.map.decode(paddr); // bounds check only
#else
    (void)paddr;
#endif
    if (is_write)
        ++owner.stat_writes;
    else
        ++owner.stat_reads;
    if (cb)
        owner.eq.schedule(owner.t_access, std::move(cb));
}

IdealBackend::IdealBackend(ShardedQueue &sq, const IdealMemConfig &cfg,
                           StatRegistry &stats, std::uint64_t phys_bytes)
    : eq(sq.host()), cfg(cfg),
      map(1, cfg.pim_units, cfg.banks_per_unit, cfg.row_bytes, phys_bytes)
{
    t_access = nsToTicks(cfg.latency_ns);
    t_pim = nsToTicks(cfg.pim_latency_ns);
    ports.reserve(cfg.pim_units);
    for (unsigned u = 0; u < cfg.pim_units; ++u)
        ports.push_back(std::make_unique<IdealPort>(*this, u));
    pim_handlers.assign(cfg.pim_units, nullptr);

    stats.add("ideal.reads", &stat_reads);
    stats.add("ideal.writes", &stat_writes);
    stats.add("ideal.pim_ops", &stat_pim_ops);
}

void
IdealBackend::readBlock(Addr paddr, Callback cb)
{
#ifndef NDEBUG
    (void)map.decode(paddr); // bounds check only
#else
    (void)paddr;
#endif
    ++stat_reads;
    eq.schedule(t_access, std::move(cb));
}

void
IdealBackend::writeBlock(Addr paddr, Callback cb)
{
#ifndef NDEBUG
    (void)map.decode(paddr); // bounds check only
#else
    (void)paddr;
#endif
    ++stat_writes;
    if (cb)
        eq.schedule(t_access, std::move(cb));
}

void
IdealBackend::attachPimHandler(unsigned unit, PimHandler *handler)
{
    panic_if(unit >= pim_handlers.size(), "PIM unit index %u out of range",
             unit);
    pim_handlers[unit] = handler;
}

void
IdealBackend::sendPim(PimPacket pkt, PimHandler::Respond cb)
{
    ++stat_pim_ops;
    const MemLoc loc = map.decode(pkt.paddr);
    const unsigned unit = loc.globalVault;
    panic_if(pim_handlers[unit] == nullptr,
             "PIM operation sent to unit %u with no PCU attached", unit);
    const std::uint32_t txn =
        pim_txns.emplace(PimTxn{std::move(pkt), std::move(cb)});
    eq.schedule(t_pim, [this, txn, unit] { pimArrived(txn, unit); });
}

void
IdealBackend::pimArrived(std::uint32_t txn, unsigned unit)
{
    PimTxn &t = pim_txns[txn];
    pim_handlers[unit]->handle(std::move(t.pkt), [this, txn](PimPacket done) {
        pim_txns[txn].pkt = std::move(done); // park the response
        eq.schedule(t_pim, [this, txn] { pimRespond(txn); });
    });
}

void
IdealBackend::pimRespond(std::uint32_t txn)
{
    PimTxn &t = pim_txns[txn];
    PimHandler::Respond cb = std::move(t.cb);
    PimPacket done = std::move(t.pkt);
    pim_txns.erase(txn);
    cb(std::move(done));
}

} // namespace pei
