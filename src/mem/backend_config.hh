/**
 * @file
 * The aggregate configuration handed to memory-backend factories.
 *
 * Kept separate from mem/backend.hh so the interface header stays
 * free of concrete backend headers (hmc.hh includes backend.hh to
 * derive HmcBackend; this header may include them all).
 */

#ifndef PEISIM_MEM_BACKEND_CONFIG_HH
#define PEISIM_MEM_BACKEND_CONFIG_HH

#include <cstdint>

#include "mem/ddr.hh"
#include "mem/hmc.hh"
#include "mem/ideal_mem.hh"

namespace pei
{

/**
 * Every backend's knobs side by side; a factory reads only its own
 * section (plus phys_bytes, which bounds address decomposition for
 * the debug-build row range check).
 */
struct MemBackendConfig
{
    std::uint64_t phys_bytes = 0; ///< 0 = unbounded (no range check)
    HmcConfig hmc;
    DdrConfig ddr;
    IdealMemConfig ideal;
};

} // namespace pei

#endif // PEISIM_MEM_BACKEND_CONFIG_HH
