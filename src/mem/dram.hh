/**
 * @file
 * DRAM timing model for one HMC vault: per-bank row-buffer state,
 * FR-FCFS scheduling, and TSV data-bus serialization.
 *
 * Timing parameters follow Table 2 of the paper: tCL = tRCD = tRP =
 * 13.75 ns, 16 banks per vault, 64 TSVs per vault at 2 Gb/s
 * (16 GB/s of vertical bandwidth per vault).
 */

#ifndef PEISIM_MEM_DRAM_HH
#define PEISIM_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addr_map.hh"
#include "mem/backend.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"

namespace pei
{

/** Timing/geometry knobs of the per-vault DRAM model. */
struct DramConfig
{
    double tCL_ns = 13.75;  ///< column access latency
    double tRCD_ns = 13.75; ///< row activate latency
    double tRP_ns = 13.75;  ///< precharge latency
    std::uint64_t row_bytes = 8192; ///< row-buffer size per bank
    unsigned banks_per_vault = 16;
    /** Vertical (TSV) bandwidth per vault, GB/s. */
    double tsv_gbps = 16.0;
    /**
     * Record a per-vault request-queue-depth histogram
     * ("vaultN.queue_depth").  Off by default so stats-v2 records of
     * pre-existing configurations stay byte-identical; the DDR
     * backend's channels always record theirs.
     */
    bool queue_histogram = false;
};

/**
 * One vault: a vertical DRAM partition with its own controller on
 * the logic die.  Requests are scheduled FR-FCFS: among queued
 * requests whose bank is idle, row hits win; ties break by age.
 */
class Vault : public MemPort
{
  public:
    using Callback = Continuation;

    Vault(EventQueue &eq, const DramConfig &cfg, const AddrMap &map,
          unsigned global_id, StatRegistry &stats);

    /**
     * Timing access to the block containing @p paddr.  @p cb fires
     * when read data is available on the logic die / the write has
     * been committed to the row buffer.
     */
    void accessBlock(Addr paddr, bool is_write, Callback cb) override;

    /** Number of requests currently queued or in flight. */
    std::size_t pending() const { return queue.size(); }

    unsigned globalId() const override { return global_id; }

    std::uint64_t reads() const { return stat_reads.value(); }
    std::uint64_t writes() const { return stat_writes.value(); }
    std::uint64_t activates() const { return stat_activates.value(); }
    std::uint64_t rowHits() const { return stat_row_hits.value(); }

  private:
    struct Bank
    {
        std::int64_t open_row = -1;
        Tick free_at = 0;
    };

    struct Request
    {
        Addr paddr;
        bool is_write;
        std::uint64_t row;
        unsigned bank;
        std::uint64_t seq;
        Callback cb;
    };

    void trySchedule();
    void armRetry(Tick when);

    EventQueue &eq;
    DramConfig cfg;
    const AddrMap &map;
    unsigned global_id;

    Ticks t_cl, t_rcd, t_rp, t_burst;

    std::deque<Request> queue;
    std::vector<Bank> banks;
    Tick tsv_free_at = 0;
    std::uint64_t next_seq = 0;
    bool retry_armed = false;
    Tick retry_at = max_tick;

    Counter stat_reads;
    Counter stat_writes;
    Counter stat_activates;
    Counter stat_row_hits;
    Counter stat_tsv_bytes;
    Histogram hist_queue_depth; ///< registered iff cfg.queue_histogram
};

} // namespace pei

#endif // PEISIM_MEM_DRAM_HH
