#include "hmc.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pei
{

namespace
{

NetConfig
netConfigOf(const HmcConfig &cfg)
{
    NetConfig net;
    net.topology = cfg.topology;
    net.cubes = cfg.num_cubes;
    net.gbps = cfg.link.gbps;
    net.latency_ns = cfg.link.latency_ns;
    net.hop_ns = cfg.link.hop_ns;
    net.flit_bytes = cfg.link.flit_bytes;
    return net;
}

} // namespace

HmcBackend::HmcBackend(ShardedQueue &sq, const HmcConfig &cfg,
                       StatRegistry &stats, std::uint64_t phys_bytes)
    : sq(sq), eq(sq.host()), cfg(cfg),
      map(cfg.num_cubes, cfg.vaults_per_cube, cfg.dram.banks_per_vault,
          cfg.dram.row_bytes, phys_bytes),
      net(eq, netConfigOf(cfg), stats)
{
    const unsigned total = cfg.num_cubes * cfg.vaults_per_cube;
    vaults.reserve(total);
    // Each vault schedules against its own shard's queue: all of a
    // vault's bank timing, retries and stats stay single-threaded on
    // that shard (single-writer discipline per Counter).
    for (unsigned v = 0; v < total; ++v)
        vaults.push_back(std::make_unique<Vault>(
            sq.shard(sq.shardFor(v)), cfg.dram, map, v, stats));
    pim_handlers.assign(total, nullptr);

    stats.add("hmc.reads", &stat_reads);
    stats.add("hmc.writes", &stat_writes);
    stats.add("hmc.pim_ops", &stat_pim_ops);
    stats.add("hmc.read_ticks", &hist_read_ticks);
    stats.add("hmc.pim_roundtrip_ticks", &hist_pim_roundtrip_ticks);
    stats.addInvariant(
        "hmc.pim_ops == pim round trips",
        [this] {
            const std::uint64_t recorded =
                hist_pim_roundtrip_ticks.count();
            if (stat_pim_ops.value() == recorded)
                return std::string();
            return "pim_ops=" + std::to_string(stat_pim_ops.value()) +
                   " but " + std::to_string(recorded) +
                   " round trips timed (dispatched PIM op never "
                   "responded?)";
        });
}

unsigned
HmcBackend::flitsOf(unsigned bytes) const
{
    return (bytes + cfg.link.flit_bytes - 1) / cfg.link.flit_bytes;
}

void
HmcBackend::readBlock(Addr paddr, Callback cb)
{
    ++stat_reads;
    const MemLoc loc = map.decode(paddr);
    ema_req.add(flitsOf(16), eq.now());

    const Tick issued = eq.now();
    const Tick arrive = net.sendRequest(16, loc.cube);
    const std::uint32_t txn =
        read_txns.emplace(ReadTxn{paddr, loc, issued, std::move(cb)});
    // The arrival event runs on the vault's shard.  It captures plain
    // values (not slot references): a worker shard must never touch
    // the host-owned transaction pools, only carry the handle back.
    const unsigned gv = loc.globalVault;
    sq.scheduleOn(sq.shardFor(gv), arrive, [this, txn, gv, paddr] {
        vaults[gv]->accessBlock(paddr, false, [this, txn] {
            completeOnHost([this, txn] { readDone(txn); });
        });
    });
}

void
HmcBackend::readDone(std::uint32_t txn)
{
    ReadTxn &t = read_txns[txn];
    ema_res.add(flitsOf(16 + block_size), eq.now());
    const Tick back = net.sendResponse(16 + block_size, t.loc.cube);
    hist_read_ticks.record(back - t.issued);
    Callback cb = std::move(t.cb);
    read_txns.erase(txn);
    eq.scheduleAt(back, std::move(cb));
}

void
HmcBackend::writeBlock(Addr paddr, Callback cb)
{
    ++stat_writes;
    const MemLoc loc = map.decode(paddr);
    ema_req.add(flitsOf(16 + block_size), eq.now());

    const Tick arrive = net.sendRequest(16 + block_size, loc.cube);
    const std::uint32_t txn =
        write_txns.emplace(WriteTxn{paddr, loc, std::move(cb)});
    const unsigned gv = loc.globalVault;
    sq.scheduleOn(sq.shardFor(gv), arrive, [this, txn, gv, paddr] {
        vaults[gv]->accessBlock(paddr, true, [this, txn] {
            completeOnHost([this, txn] { writeDone(txn); });
        });
    });
}

void
HmcBackend::writeDone(std::uint32_t txn)
{
    // Writes are posted: completion is acknowledged without
    // consuming response bandwidth (footnote 7).
    Callback cb = std::move(write_txns[txn].cb);
    write_txns.erase(txn);
    if (cb)
        cb();
}

void
HmcBackend::attachPimHandler(unsigned global_vault, PimHandler *handler)
{
    panic_if(global_vault >= pim_handlers.size(),
             "vault index %u out of range", global_vault);
    pim_handlers[global_vault] = handler;
}

void
HmcBackend::sendPim(PimPacket pkt, PimHandler::Respond cb)
{
    ++stat_pim_ops;
    const MemLoc loc = map.decode(pkt.paddr);
    PimHandler *handler = pim_handlers[loc.globalVault];
    panic_if(handler == nullptr,
             "PIM operation sent to vault %u with no PCU attached",
             loc.globalVault);

    ema_req.add(flitsOf(pkt.requestBytes()), eq.now());
    const Tick issued = eq.now();
    const Tick arrive = net.sendRequest(pkt.requestBytes(), loc.cube);
    const std::uint32_t txn =
        pim_txns.emplace(PimTxn{loc, issued, std::move(pkt), std::move(cb)});
    // Capture the slot's stable address here, on the host: slots live
    // in fixed chunks, but resolving a handle walks the pool's chunk
    // table, which only the host shard may touch while it grows.
    PimTxn *p = &pim_txns[txn];
    const unsigned gv = loc.globalVault;
    sq.scheduleOn(sq.shardFor(gv), arrive, [this, txn, p, gv] {
        pim_handlers[gv]->handle(
            std::move(p->pkt), [this, txn, p](PimPacket done) {
                p->pkt = std::move(done); // park the response in the slot
                completeOnHost([this, txn] { pimDone(txn); });
            });
    });
}

void
HmcBackend::sendPimTrain(PimPacket *pkts, unsigned n,
                         PimHandler::Respond *cbs)
{
    panic_if(n == 0, "empty PIM train");
    if (n == 1) {
        // A window that drained with one PEI dispatches exactly like
        // an unbatched op (no header to amortize).
        sendPim(std::move(pkts[0]), std::move(cbs[0]));
        return;
    }

    stat_pim_ops += n;
    const MemLoc loc = map.decode(pkts[0].paddr);
    PimHandler *handler = pim_handlers[loc.globalVault];
    panic_if(handler == nullptr,
             "PIM train sent to vault %u with no PCU attached",
             loc.globalVault);

    // One compound train header, one 4-byte sub-header + input
    // operands per member — the per-op 8-byte headers collapse.
    unsigned bytes = 8;
    for (unsigned i = 0; i < n; ++i) {
        panic_if(map.decode(pkts[i].paddr).globalVault != loc.globalVault,
                 "PIM train mixes vaults (%u vs %u)",
                 map.decode(pkts[i].paddr).globalVault, loc.globalVault);
        bytes += 4 + pkts[i].input_size;
    }
    ema_req.add(flitsOf(bytes), eq.now());
    const Tick issued = eq.now();
    const Tick arrive = net.sendRequestTrain(bytes, n, loc.cube);

    const std::uint32_t txn =
        train_txns.emplace(TrainTxn{loc, issued, n, n, 0, {}, {}});
    // Stable slot address captured host-side (see sendPim).
    TrainTxn *p = &train_txns[txn];
    p->self = txn;
    p->pkts.reserve(n);
    p->cbs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        p->pkts.push_back(std::move(pkts[i]));
        p->cbs.push_back(std::move(cbs[i]));
    }
    const unsigned gv = loc.globalVault;
    sq.scheduleOn(sq.shardFor(gv), arrive, [this, p, gv] {
        for (unsigned i = 0; i < p->n; ++i) {
            pim_handlers[gv]->handle(
                std::move(p->pkts[i]), [this, p, i](PimPacket done) {
                    p->pkts[i] = std::move(done);
                    const std::uint32_t txn = p->self;
                    completeOnHost([this, txn] { trainMemberDone(txn); });
                });
        }
    });
}

void
HmcBackend::trainMemberDone(std::uint32_t txn)
{
    TrainTxn &t = train_txns[txn];
    panic_if(t.remaining == 0, "PIM train over-completed");
    if (--t.remaining > 0)
        return;

    // All members responded: merge the outputs into one response
    // train (or a posted ack when nothing carries output) and retire
    // every member at the train's arrival back at the host.
    unsigned bytes = 0;
    for (const PimPacket &pkt : t.pkts) {
        if (pkt.responseBytes() > 0)
            bytes += 4 + pkt.output_size;
    }
    Tick back;
    if (bytes > 0) {
        bytes += 16;
        ema_res.add(flitsOf(bytes), eq.now());
        back = net.sendResponseTrain(bytes, t.n, t.loc.cube);
    } else {
        back = eq.now() + net.ackLatency(t.loc.cube);
    }
    for (unsigned i = 0; i < t.n; ++i)
        hist_pim_roundtrip_ticks.record(back - t.issued);
    eq.scheduleAt(back, [this, txn] { trainRespond(txn); });
}

void
HmcBackend::trainRespond(std::uint32_t txn)
{
    TrainTxn &t = train_txns[txn];
    std::vector<PimPacket> pkts = std::move(t.pkts);
    std::vector<PimHandler::Respond> cbs = std::move(t.cbs);
    const unsigned n = t.n;
    train_txns.erase(txn);
    for (unsigned i = 0; i < n; ++i)
        cbs[i](std::move(pkts[i]));
}

void
HmcBackend::pimDone(std::uint32_t txn)
{
    PimTxn &t = pim_txns[txn];
    const unsigned bytes = t.pkt.responseBytes();
    Tick back;
    if (bytes > 0) {
        ema_res.add(flitsOf(bytes), eq.now());
        back = net.sendResponse(bytes, t.loc.cube);
    } else {
        // Posted ack: the response route's propagation + per-hop
        // latency, no link occupancy (acks aggregate into idle
        // flits).
        back = eq.now() + net.ackLatency(t.loc.cube);
    }
    hist_pim_roundtrip_ticks.record(back - t.issued);
    eq.scheduleAt(back, [this, txn] { pimRespond(txn); });
}

std::uint64_t
HmcBackend::memReads() const
{
    std::uint64_t n = 0;
    for (const auto &v : vaults)
        n += v->reads();
    return n;
}

std::uint64_t
HmcBackend::memWrites() const
{
    std::uint64_t n = 0;
    for (const auto &v : vaults)
        n += v->writes();
    return n;
}

void
HmcBackend::pimRespond(std::uint32_t txn)
{
    PimTxn &t = pim_txns[txn];
    PimHandler::Respond cb = std::move(t.cb);
    PimPacket done = std::move(t.pkt);
    pim_txns.erase(txn);
    cb(std::move(done));
}

} // namespace pei
