/**
 * @file
 * The memory-backend seam: every consumer of main memory — the cache
 * hierarchy (block fills/writebacks), the PMU (PIM-packet dispatch,
 * §7.4 balanced-dispatch link accounting), the memory-side PCUs
 * (per-unit DRAM ports), the driver metrics, the simfuzz probes and
 * the energy model — talks to this abstract interface, never to a
 * concrete memory model.
 *
 * Three backends implement it:
 *  - HmcBackend (mem/hmc.hh): the paper's Table 2 substrate — cubes
 *    of vaults behind daisy-chained packetized links;
 *  - DdrBackend (mem/ddr.hh): a DRAMsim3-inspired channel/rank/
 *    bank-group model (no PIM capability — PEIs degrade to host-side
 *    execution);
 *  - IdealBackend (mem/ideal_mem.hh): fixed latency, infinite
 *    bandwidth.
 *
 * Backends are constructed through a string-keyed factory registry
 * (createMemoryBackend), which is what `--mem-backend=hmc|ddr|ideal`
 * selects at every entry point.
 */

#ifndef PEISIM_MEM_BACKEND_HH
#define PEISIM_MEM_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addr_map.hh"
#include "mem/pim_iface.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"

namespace pei
{

class ShardedQueue;

/**
 * A timing port into one memory partition (an HMC vault, an ideal
 * slice): the interface a memory-side PCU uses to reach "its" DRAM
 * without knowing the backend's concrete vault/channel type.
 */
class MemPort
{
  public:
    using Callback = Continuation;

    virtual ~MemPort() = default;

    /**
     * Timing access to the block containing @p paddr.  @p cb fires
     * when read data is available at the port / the write has been
     * committed.
     */
    virtual void accessBlock(Addr paddr, bool is_write, Callback cb) = 0;

    /** System-wide index of this port's partition (stat naming). */
    virtual unsigned globalId() const = 0;
};

/**
 * Abstract main-memory backend.  Timing block access and address
 * decomposition are mandatory; PIM dispatch is a capability
 * (supportsPim) — on non-PIM backends the PMU degrades every PEI to
 * host-side execution; link/flit accounting defaults to zero for
 * backends without a packetized off-chip interface (the §7.4
 * balanced-dispatch inputs and the probes' conservation checks
 * degenerate safely at zero).
 */
class MemoryBackend
{
  public:
    using Callback = Continuation;

    virtual ~MemoryBackend() = default;

    /** Registry key this backend was created under ("hmc", ...). */
    virtual const char *kind() const = 0;

    // --- timing block access -------------------------------------

    /** Fetch the block containing @p paddr; @p cb fires on arrival. */
    virtual void readBlock(Addr paddr, Callback cb) = 0;

    /** Write back the block containing @p paddr; @p cb optional. */
    virtual void writeBlock(Addr paddr, Callback cb = nullptr) = 0;

    // --- PIM-packet dispatch (capability) ------------------------

    /** Can this backend execute PIM operations near memory? */
    virtual bool supportsPim() const = 0;

    /** Number of PIM execution sites (0 when !supportsPim()). */
    virtual unsigned pimUnits() const = 0;

    /** DRAM port of PIM unit @p unit (for its memory-side PCU). */
    virtual MemPort &pimUnitPort(unsigned unit) = 0;

    /** Register the memory-side PCU serving @p unit. */
    virtual void attachPimHandler(unsigned unit, PimHandler *handler) = 0;

    /**
     * Dispatch a PIM operation to the unit owning its target block;
     * @p cb receives the completed packet (output operands filled).
     */
    virtual void sendPim(PimPacket pkt, PimHandler::Respond cb) = 0;

    /**
     * Dispatch a coalesced same-unit train of @p n PIM operations
     * (PMU batching window).  cbs[i] receives packet i's completion.
     * The default degrades to n individual sendPim dispatches;
     * packetized backends override to share one request/response
     * packet per train (header flits amortized).
     */
    virtual void
    sendPimTrain(PimPacket *pkts, unsigned n, PimHandler::Respond *cbs)
    {
        for (unsigned i = 0; i < n; ++i)
            sendPim(std::move(pkts[i]), std::move(cbs[i]));
    }

    // --- address decomposition -----------------------------------

    virtual const AddrMap &addrMap() const = 0;

    // --- event-queue sharding (sim/sharded_queue.hh) -------------

    /**
     * Shardable memory partitions this backend maps onto worker
     * shards (HMC vaults, DDR channels).  0 means the backend runs
     * entirely on the host shard even under --shards=N (the ideal
     * backend: no internal queueing worth parallelizing).
     */
    virtual unsigned memPartitions() const { return 0; }

    /**
     * Minimum latency in ticks of any mailboxed host-to-partition
     * edge — the conservative lookahead the ShardedQueue runs with.
     * 0 degenerates to single-tick epochs (correct, slow).
     */
    virtual Ticks minCrossShardLatency() const { return 0; }

    /**
     * Event queue on which PIM unit @p unit executes: the PMU
     * constructs that unit's memory-side PCU against this queue so
     * PCU state lives on the unit's shard.  Only meaningful when
     * supportsPim().
     */
    virtual EventQueue &pimUnitQueue(unsigned unit) = 0;

    // --- link/flit accounting (§7.4 balanced dispatch + probes) ---

    /** EMA of request-link flits (balanced dispatch input). */
    virtual double emaRequestFlits() { return 0.0; }

    /** EMA of response-link flits (balanced dispatch input). */
    virtual double emaResponseFlits() { return 0.0; }

    /** Raw per-direction off-chip flit counters (probe hooks). */
    virtual std::uint64_t requestFlits() const { return 0; }
    virtual std::uint64_t responseFlits() const { return 0; }

    /** Raw per-direction off-chip byte counters. */
    virtual std::uint64_t requestBytes() const { return 0; }
    virtual std::uint64_t responseBytes() const { return 0; }

    std::uint64_t offChipBytes() const
    {
        return requestBytes() + responseBytes();
    }

    // --- stats / energy hooks ------------------------------------

    /** Completed block reads at the memory arrays (all ports). */
    virtual std::uint64_t memReads() const = 0;

    /** Committed block writes at the memory arrays (all ports). */
    virtual std::uint64_t memWrites() const = 0;
};

// --- string-keyed factory registry -------------------------------

/** Aggregate of every backend's config (mem/backend_config.hh). */
struct MemBackendConfig;

using MemBackendFactory = std::unique_ptr<MemoryBackend> (*)(
    ShardedQueue &sq, const MemBackendConfig &cfg, StatRegistry &stats);

/**
 * Register @p factory under @p name (extension hook; the built-in
 * backends self-register on first createMemoryBackend call).
 * Re-registering a name replaces the previous factory.
 */
void registerMemoryBackend(const std::string &name,
                           MemBackendFactory factory);

/** Sorted names of every registered backend (incl. built-ins). */
std::vector<std::string> memoryBackendNames();

/**
 * Construct the backend registered under @p name; fatal on an
 * unknown name (the error lists the registered backends).  The
 * backend schedules host-side stages on sq.host() and maps its
 * partitions onto the worker shards via sq.shardFor(); with a
 * single-shard queue this is exactly the old sequential wiring.
 */
std::unique_ptr<MemoryBackend> createMemoryBackend(
    const std::string &name, ShardedQueue &sq, const MemBackendConfig &cfg,
    StatRegistry &stats);

} // namespace pei

#endif // PEISIM_MEM_BACKEND_HH
