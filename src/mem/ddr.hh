/**
 * @file
 * Conventional DDR4-style main memory backend: a few channels of
 * ranked, bank-grouped DRAM behind per-channel FR-FCFS controllers
 * (modelled after the structure of DRAMsim3-class simulators).
 *
 * Unlike the HMC backend there is no logic die, so the backend
 * reports no PIM capability: the PMU degrades every PEI to host-side
 * execution, which is exactly the paper's "Host-Only" substrate on
 * commodity memory.  Channel timing honours tCL/tRCD/tRP plus the
 * inter-command constraints a flat vault model can ignore: tRAS
 * before precharge, tRRD_S/tRRD_L between activates, the rolling
 * four-activate tFAW window, and periodic tREFI/tRFC refresh.
 */

#ifndef PEISIM_MEM_DDR_HH
#define PEISIM_MEM_DDR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addr_map.hh"
#include "mem/backend.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_queue.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/** Timing/geometry knobs of the DDR backend (DDR4-2400-flavoured). */
struct DdrConfig
{
    unsigned channels = 4;        ///< independent channels (power of 2)
    unsigned bank_groups = 4;     ///< bank groups per channel
    unsigned banks_per_group = 4; ///< banks per bank group
    std::uint64_t row_bytes = 8192;

    double tCL_ns = 13.75;   ///< column access latency
    double tRCD_ns = 13.75;  ///< row activate latency
    double tRP_ns = 13.75;   ///< precharge latency
    double tRAS_ns = 32.0;   ///< min row-open time before precharge
    double tRRD_S_ns = 3.3;  ///< activate-to-activate, other group
    double tRRD_L_ns = 4.9;  ///< activate-to-activate, same group
    double tFAW_ns = 25.0;   ///< rolling four-activate window
    double tREFI_ns = 7800.0; ///< refresh interval
    double tRFC_ns = 350.0;  ///< refresh cycle time (all banks busy)

    /** Per-channel data-bus bandwidth, GB/s (DDR4-2400 x64). */
    double chan_gbps = 19.2;

    /** Write-queue drain hysteresis: drain from high down to low. */
    unsigned write_drain_low = 8;
    unsigned write_drain_high = 24;
};

class DdrBackend;

/**
 * One DDR channel: split read/write queues in front of a FR-FCFS
 * scheduler with write-drain hysteresis — reads have priority until
 * the write queue reaches the high watermark, then writes drain down
 * to the low watermark (writes are also issued opportunistically
 * whenever no read is waiting).
 */
class DdrChannel : public MemPort
{
  public:
    using Callback = Continuation;

    DdrChannel(EventQueue &eq, const DdrConfig &cfg, const AddrMap &map,
               unsigned chan_id, StatRegistry &stats);

    void accessBlock(Addr paddr, bool is_write, Callback cb) override;

    unsigned globalId() const override { return chan_id; }

    std::uint64_t reads() const { return stat_reads.value(); }
    std::uint64_t writes() const { return stat_writes.value(); }

    /** Retry-event accounting (scheduler wakeup hygiene). */
    std::uint64_t retryArms() const { return stat_retry_arms.value(); }
    std::uint64_t retryFires() const { return stat_retry_fires.value(); }
    std::uint64_t retryStale() const { return stat_retry_stale.value(); }

  private:
    struct Bank
    {
        std::int64_t open_row = -1;
        Tick free_at = 0;
        Tick ras_ready_at = 0; ///< earliest precharge of the open row
    };

    struct Request
    {
        Addr paddr;
        bool is_write;
        std::uint64_t row;
        unsigned bank;
        Callback cb;
    };

    /**
     * Earliest tick @p r could issue given bank/activate windows.
     * On a row conflict the activate happens tRP after the returned
     * start tick (precharge first), so tRRD_S/tRRD_L/tFAW gate the
     * *projected activate tick*, not the start tick — issue() places
     * the activate at start + tRP with the same projection.
     */
    Tick earliestStart(const Request &r, Tick now) const;
    void advanceRefresh(Tick now);
    void issue(Request req, Tick now);
    void trySchedule();
    void armRetry(Tick when);

    unsigned groupOf(unsigned bank) const
    {
        return bank / cfg.banks_per_group;
    }

    EventQueue &eq;
    DdrConfig cfg;
    const AddrMap &map;
    unsigned chan_id;

    Ticks t_cl, t_rcd, t_rp, t_ras, t_rrd_s, t_rrd_l, t_faw, t_refi,
        t_rfc, t_burst;

    std::deque<Request> read_q;
    std::deque<Request> write_q;
    std::vector<Bank> banks;
    std::deque<Tick> act_window; ///< last <=4 activate ticks (tFAW)
    std::vector<Tick> group_last_act;
    Tick any_last_act = 0;
    Tick bus_free_at = 0;
    Tick next_refresh;
    bool draining = false;
    bool retry_armed = false;
    Tick retry_at = max_tick;

    /**
     * Re-arming the retry earlier than a pending one abandons the
     * later event in the queue; the generation counter lets the
     * abandoned event recognize it is stale and no-op instead of
     * waking the scheduler spuriously.
     */
    std::uint64_t retry_gen = 0;

    Counter stat_reads;
    Counter stat_writes;
    Counter stat_activates;
    Counter stat_row_hits;
    Counter stat_refreshes;
    Counter stat_retry_arms;
    Counter stat_retry_fires;
    Counter stat_retry_stale;
    Histogram hist_queue_depth; ///< always recorded (new stats field)
};

/**
 * The channel-interleaved backend: decodes block addresses onto
 * channels (reusing the low-order interleave of AddrMap with one
 * "cube" and channels in the vault field) and exposes the aggregate
 * stats the driver and energy model consume.
 */
class DdrBackend : public MemoryBackend
{
  public:
    using Callback = Continuation;

    /**
     * Sharding: the backend's pools/stats live on the host shard;
     * each channel lives on shard sq.shardFor(chan).  Host-to-channel
     * and channel-to-host edges are both zero-latency (accessBlock
     * used to be a synchronous call), so under --shards=N they ride
     * the clamped mailbox path: sharded DDR timing is approximate
     * within one epoch window (still deterministic), while a single
     * shard reproduces the sequential backend bit for bit.
     */
    DdrBackend(ShardedQueue &sq, const DdrConfig &cfg, StatRegistry &stats,
               std::uint64_t phys_bytes = 0);

    const char *kind() const override { return "ddr"; }

    void readBlock(Addr paddr, Callback cb) override;
    void writeBlock(Addr paddr, Callback cb = nullptr) override;

    bool supportsPim() const override { return false; }
    unsigned pimUnits() const override { return 0; }
    MemPort &pimUnitPort(unsigned unit) override;
    void attachPimHandler(unsigned unit, PimHandler *handler) override;
    void sendPim(PimPacket pkt, PimHandler::Respond cb) override;

    const AddrMap &addrMap() const override { return map; }

    unsigned memPartitions() const override { return cfg.channels; }

    /** Lookahead: one data burst — the shortest channel occupancy
     *  separating any two observable completions. */
    Ticks minCrossShardLatency() const override { return t_burst; }

    EventQueue &pimUnitQueue(unsigned unit) override;

    std::uint64_t memReads() const override;
    std::uint64_t memWrites() const override;

    DdrChannel &channel(unsigned c) { return *channels[c]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels.size());
    }

  private:
    struct ReadTxn
    {
        Tick issued;
        Callback cb;
    };

    struct WriteTxn
    {
        Callback cb; ///< parked host-side ack (parallel mode only)
    };

    /** Handle sentinel: posted write with no host-side ack. */
    static constexpr std::uint32_t no_write_ack = 0xffffffffu;

    void readDone(std::uint32_t txn);
    void writeDone(std::uint32_t txn);

    /** Run @p fn on the host shard (inline when single-shard). */
    template <typename Fn>
    void
    completeOnHost(Fn &&fn)
    {
        if (!sq.parallel()) {
            fn();
            return;
        }
        sq.post(0, Continuation(std::forward<Fn>(fn)));
    }

    ShardedQueue &sq;
    EventQueue &eq; ///< the host shard's queue (sq.host())
    DdrConfig cfg;
    AddrMap map;
    Ticks t_burst; ///< one block over a channel bus (lookahead)
    std::vector<std::unique_ptr<DdrChannel>> channels;
    SlotPool<ReadTxn> read_txns;
    SlotPool<WriteTxn> write_txns;

    Counter stat_reads;
    Counter stat_writes;
    Histogram hist_read_ticks; ///< demand read round trip
};

} // namespace pei

#endif // PEISIM_MEM_DDR_HH
