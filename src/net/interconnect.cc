#include "interconnect.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pei
{

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::Chain: return "chain";
      case Topology::Ring: return "ring";
      case Topology::Mesh: return "mesh";
    }
    return "?";
}

bool
parseTopology(const std::string &name, Topology &out)
{
    if (name == "chain") {
        out = Topology::Chain;
        return true;
    }
    if (name == "ring") {
        out = Topology::Ring;
        return true;
    }
    if (name == "mesh") {
        out = Topology::Mesh;
        return true;
    }
    return false;
}

std::vector<std::string>
topologyNames()
{
    return {"chain", "ring", "mesh"};
}

unsigned
meshCols(unsigned cubes)
{
    if (cubes <= 1)
        return 1;
    // Power-of-two cube counts split into the squarest cols >= rows
    // grid: 2 -> 2x1, 4 -> 2x2, 8 -> 4x2, 16 -> 4x4, ...
    return 1u << ((floorLog2(cubes) + 1) / 2);
}

NetLink::NetLink(const std::string &name, double bytes_per_tick,
                 StatRegistry &stats)
    : name_(name), bytes_per_tick(bytes_per_tick)
{
    stats.add(name + ".flits", &stat_flits);
    stats.add(name + ".bytes", &stat_bytes);
    stats.add(name + ".busy_ticks", &stat_busy);
}

Tick
NetLink::transmit(unsigned flits, unsigned wire_bytes, Tick earliest)
{
    const Tick start = std::max(earliest, free_at);
    const auto duration = static_cast<Ticks>(
        std::ceil(static_cast<double>(wire_bytes) / bytes_per_tick));
    free_at = start + duration;
    stat_flits += flits;
    stat_bytes += wire_bytes;
    stat_busy += duration;
    return free_at;
}

Interconnect::Interconnect(EventQueue &eq, const NetConfig &cfg,
                           StatRegistry &stats)
    : eq(eq), cfg(cfg), stats(stats)
{
    fatal_if(cfg.cubes == 0 || !isPowerOf2(cfg.cubes),
             "interconnect wants a power-of-two cube count, got %u",
             cfg.cubes);
    bytes_per_tick =
        cfg.gbps * 1e9 / static_cast<double>(ticks_per_second);
    prop_latency = nsToTicks(cfg.latency_ns);
    hop_latency = nsToTicks(cfg.hop_ns);

    req_routes.resize(cfg.cubes);
    res_routes.resize(cfg.cubes);
    switch (cfg.topology) {
      case Topology::Chain: buildChain(); break;
      case Topology::Ring: buildRing(); break;
      case Topology::Mesh: buildMesh(); break;
    }

    stats.add("net.req.flits", &stat_req_flits);
    stats.add("net.req.bytes", &stat_req_bytes);
    stats.add("net.res.flits", &stat_res_flits);
    stats.add("net.res.bytes", &stat_res_bytes);
    stats.add("net.req_hops", &stat_req_hops);
    stats.add("net.res_hops", &stat_res_hops);
    stats.add("net.trains.req", &stat_train_req);
    stats.add("net.trains.res", &stat_train_res);
    stats.add("net.trains.peis", &stat_train_peis);
    // Train conservation: a train carries at least two PEIs (window
    // singletons dispatch as plain packets), so the PEI total must
    // dominate the train count.
    stats.addInvariant(
        "net.trains.peis >= 2 * net.trains.req",
        [this] {
            if (stat_train_peis.value() >= 2 * stat_train_req.value())
                return std::string();
            return "train peis=" + std::to_string(stat_train_peis.value()) +
                   " < 2 * trains=" +
                   std::to_string(stat_train_req.value());
        });
    // Flit conservation: every flit a packet injects is charged to
    // exactly the links its static route crosses — a mismatch means a
    // route double-charged or skipped a link.
    stats.addInvariant(
        "net.per-link flits == routed link traversals",
        [this] {
            std::uint64_t link_flits = 0;
            for (const auto &l : links)
                link_flits += l->flits();
            if (link_flits == traversal_flits)
                return std::string();
            return "per-link flits=" + std::to_string(link_flits) +
                   " != routed traversals=" +
                   std::to_string(traversal_flits);
        });
}

unsigned
Interconnect::addLink(const std::string &name)
{
    links.push_back(
        std::make_unique<NetLink>(name, bytes_per_tick, stats));
    return static_cast<unsigned>(links.size() - 1);
}

void
Interconnect::buildChain()
{
    // The paper's daisy chain: one serialized channel per direction
    // spans every cube; a packet to/from cube c pays the propagation
    // latency plus c hop latencies (HmcLink-identical timing).
    const unsigned req = addLink("link0");
    const unsigned res = addLink("link1");
    for (unsigned c = 0; c < cfg.cubes; ++c) {
        req_routes[c].path = {{req, prop_latency + hop_latency * c}};
        req_routes[c].hops = c;
        res_routes[c].path = {{res, prop_latency + hop_latency * c}};
        res_routes[c].hops = c;
    }
}

void
Interconnect::buildRing()
{
    // Host attaches at cube 0 over a dedicated link pair; the cubes
    // form a bidirectional ring (one serialized channel per direction
    // per edge) routed shortest-direction, clockwise on ties.
    const unsigned C = cfg.cubes;
    const unsigned host_req = addLink("link0");
    const unsigned host_res = addLink("link1");
    std::vector<unsigned> cw(C), ccw(C);
    if (C > 1) {
        for (unsigned i = 0; i < C; ++i)
            cw[i] = addLink("link" + std::to_string(links.size()));
        for (unsigned i = 0; i < C; ++i)
            ccw[i] = addLink("link" + std::to_string(links.size()));
    }
    for (unsigned c = 0; c < C; ++c) {
        Route &req = req_routes[c];
        Route &res = res_routes[c];
        req.path = {{host_req, prop_latency}};
        const unsigned cw_dist = c;
        const unsigned ccw_dist = C - c;
        if (c == 0) {
            res.path = {{host_res, prop_latency}};
            continue;
        }
        if (cw_dist <= ccw_dist) {
            // Requests ride clockwise 0 -> c; responses retrace
            // counter-clockwise c -> 0.
            for (unsigned i = 0; i < cw_dist; ++i)
                req.path.push_back({cw[i], hop_latency});
            for (unsigned i = c; i > 0; --i)
                res.path.push_back({ccw[i], hop_latency});
            req.hops = res.hops = cw_dist;
        } else {
            // Counter-clockwise 0 -> C-1 -> ... -> c is shorter.
            unsigned at = 0;
            for (unsigned i = 0; i < ccw_dist; ++i) {
                req.path.push_back({ccw[at], hop_latency});
                at = (at + C - 1) % C;
            }
            at = c;
            for (unsigned i = 0; i < ccw_dist; ++i) {
                res.path.push_back({cw[at], hop_latency});
                at = (at + 1) % C;
            }
            res.path.push_back({host_res, prop_latency});
            req.hops = res.hops = ccw_dist;
            continue;
        }
        res.path.push_back({host_res, prop_latency});
    }
}

void
Interconnect::buildMesh()
{
    // cols x rows grid (cube c at row c/cols, col c%cols), host
    // attached at cube 0, XY dimension-order routing: requests move
    // east then south, responses west then north.  Each mesh edge is
    // two unidirectional serialized channels.
    const unsigned C = cfg.cubes;
    const unsigned cols = meshCols(C);
    const unsigned rows = C / cols;
    const unsigned host_req = addLink("link0");
    const unsigned host_res = addLink("link1");

    std::map<std::pair<unsigned, unsigned>, unsigned> edge;
    auto edgeLink = [&](unsigned from, unsigned to) {
        const auto key = std::make_pair(from, to);
        auto it = edge.find(key);
        if (it == edge.end()) {
            it = edge.emplace(key, addLink("link" +
                                           std::to_string(links.size())))
                     .first;
        }
        return it->second;
    };
    // Deterministic link numbering: enumerate each node's east, west,
    // south, north channels in node order.
    for (unsigned c = 0; c < C; ++c) {
        const unsigned row = c / cols, col = c % cols;
        if (col + 1 < cols) {
            edgeLink(c, c + 1);
            edgeLink(c + 1, c);
        }
        if (row + 1 < rows) {
            edgeLink(c, c + cols);
            edgeLink(c + cols, c);
        }
    }

    for (unsigned c = 0; c < C; ++c) {
        const unsigned row = c / cols, col = c % cols;
        Route &req = req_routes[c];
        Route &res = res_routes[c];
        req.path = {{host_req, prop_latency}};
        // East along row 0, then south down column `col`.
        for (unsigned x = 0; x < col; ++x)
            req.path.push_back({edgeLink(x, x + 1), hop_latency});
        for (unsigned y = 0; y < row; ++y)
            req.path.push_back(
                {edgeLink(y * cols + col, (y + 1) * cols + col),
                 hop_latency});
        // West along row `row`, then north up column 0.
        for (unsigned x = col; x > 0; --x)
            res.path.push_back(
                {edgeLink(row * cols + x, row * cols + x - 1),
                 hop_latency});
        for (unsigned y = row; y > 0; --y)
            res.path.push_back(
                {edgeLink(y * cols, (y - 1) * cols), hop_latency});
        res.path.push_back({host_res, prop_latency});
        req.hops = res.hops = col + row;
    }
}

Tick
Interconnect::send(const Route &route, unsigned bytes)
{
    // Store-and-forward: the packet fully serializes over each link
    // on its route, then pays that hop's exit latency before it can
    // enter the next link.
    const unsigned flits = flitsOf(bytes);
    const unsigned wire_bytes = flits * cfg.flit_bytes;
    Tick t = eq.now();
    for (const Hop &h : route.path)
        t = links[h.link]->transmit(flits, wire_bytes, t) + h.latency;
    traversal_flits +=
        static_cast<std::uint64_t>(flits) * route.path.size();
    return t;
}

Tick
Interconnect::sendRequest(unsigned bytes, unsigned cube)
{
    const Route &route = req_routes[cube];
    const unsigned flits = flitsOf(bytes);
    stat_req_flits += flits;
    stat_req_bytes += flits * cfg.flit_bytes;
    stat_req_hops += route.hops;
    return send(route, bytes);
}

Tick
Interconnect::sendResponse(unsigned bytes, unsigned cube)
{
    const Route &route = res_routes[cube];
    const unsigned flits = flitsOf(bytes);
    stat_res_flits += flits;
    stat_res_bytes += flits * cfg.flit_bytes;
    stat_res_hops += route.hops;
    return send(route, bytes);
}

Tick
Interconnect::sendRequestTrain(unsigned bytes, unsigned peis,
                               unsigned cube)
{
    ++stat_train_req;
    stat_train_peis += peis;
    return sendRequest(bytes, cube);
}

Tick
Interconnect::sendResponseTrain(unsigned bytes, unsigned peis,
                                unsigned cube)
{
    (void)peis;
    ++stat_train_res;
    return sendResponse(bytes, cube);
}

Ticks
Interconnect::ackLatency(unsigned cube) const
{
    return prop_latency + hop_latency * res_routes[cube].hops;
}

unsigned
Interconnect::hopCount(unsigned cube) const
{
    return req_routes[cube].hops;
}

unsigned
Interconnect::flitsOf(unsigned bytes) const
{
    return (bytes + cfg.flit_bytes - 1) / cfg.flit_bytes;
}

} // namespace pei
