/**
 * @file
 * Interconnect topologies for the multi-cube off-chip network.
 *
 * The paper's Table 2 system daisy-chains 8 HMCs behind one
 * full-duplex link pair; production-scale systems route packets over
 * ring or mesh cube networks instead (see the "Enabling the Adoption
 * of PIM" scalability discussion).  The topology only changes how
 * packets are routed and serialized — the memory geometry (cubes x
 * vaults) and the flit cost model are shared.
 */

#ifndef PEISIM_NET_TOPOLOGY_HH
#define PEISIM_NET_TOPOLOGY_HH

#include <string>
#include <vector>

namespace pei
{

enum class Topology
{
    Chain, ///< the paper's daisy chain: one serialized channel per
           ///< direction spanning all cubes (byte-identical default)
    Ring,  ///< bidirectional ring over the cubes, shortest-direction
           ///< routing, host attached at cube 0
    Mesh,  ///< 2D mesh, XY (dimension-order) routing, host at (0,0)
};

/** Registry key / display name of @p t ("chain" | "ring" | "mesh"). */
const char *topologyName(Topology t);

/** Parse a registry key; returns false on an unknown name. */
bool parseTopology(const std::string &name, Topology &out);

/** Every valid registry key, for flag validation messages. */
std::vector<std::string> topologyNames();

/**
 * Mesh columns for @p cubes (a power of two): the squarest layout
 * with cols >= rows, e.g. 8 -> 4x2, 4 -> 2x2, 2 -> 2x1, 16 -> 4x4.
 */
unsigned meshCols(unsigned cubes);

} // namespace pei

#endif // PEISIM_NET_TOPOLOGY_HH
