/**
 * @file
 * Topology-aware off-chip interconnect between the host and N memory
 * cubes.
 *
 * The network is built once from a static topology (net/topology.hh)
 * into per-destination routing tables; every packet walks its route
 * store-and-forward, serializing over each link it crosses.  A link
 * is a unidirectional serialized channel with `linkN.flits`,
 * `linkN.bytes` and `linkN.busy_ticks` counters (utilization =
 * busy_ticks / sim ticks), so asymmetric saturation of a routed
 * network is observable per hop.
 *
 * The chain topology reproduces the paper's daisy chain exactly: one
 * whole-chain channel per direction (link0 = requests, link1 =
 * responses), each destination charged the propagation latency plus
 * one hop latency per cube it sits down the chain — tick-for-tick the
 * old single-link HmcLink behavior.
 *
 * Injected-traffic counters (`net.req.*` / `net.res.*`) count each
 * packet once, independent of how many links it traverses, so
 * conservation probes over the backend's request/response totals stay
 * exact on every topology; `net.req_hops` / `net.res_hops` account
 * network hops per packet (coherence traffic rides read/write/PIM
 * packets and is therefore covered).
 */

#ifndef PEISIM_NET_INTERCONNECT_HH
#define PEISIM_NET_INTERCONNECT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"

namespace pei
{

/** Off-chip network configuration. */
struct NetConfig
{
    Topology topology = Topology::Chain;
    unsigned cubes = 1;
    double gbps = 40.0;       ///< per-link bandwidth, per direction
    double latency_ns = 2.0;  ///< host<->network propagation latency
    double hop_ns = 1.0;      ///< extra latency per network hop
    unsigned flit_bytes = 16;
};

/**
 * One unidirectional serialized channel.  transmit() occupies the
 * wire for wire_bytes/bandwidth starting no earlier than @p earliest
 * (and no earlier than the previous packet drains) and returns the
 * tick the last byte leaves.
 */
class NetLink
{
  public:
    NetLink(const std::string &name, double bytes_per_tick,
            StatRegistry &stats);

    Tick transmit(unsigned flits, unsigned wire_bytes, Tick earliest);

    const std::string &name() const { return name_; }
    std::uint64_t flits() const { return stat_flits.value(); }
    std::uint64_t bytes() const { return stat_bytes.value(); }
    std::uint64_t busyTicks() const { return stat_busy.value(); }

  private:
    std::string name_;
    double bytes_per_tick;
    Tick free_at = 0;

    Counter stat_flits;
    Counter stat_bytes;
    Counter stat_busy; ///< ticks the wire was occupied (utilization)
};

/** The host-to-cubes network: routing tables over NetLinks. */
class Interconnect
{
  public:
    Interconnect(EventQueue &eq, const NetConfig &cfg,
                 StatRegistry &stats);

    /** Send @p bytes host -> cube @p cube; returns arrival tick. */
    Tick sendRequest(unsigned bytes, unsigned cube);

    /** Send @p bytes cube @p cube -> host; returns arrival tick. */
    Tick sendResponse(unsigned bytes, unsigned cube);

    /**
     * Send a coalesced PEI train of @p peis operations in one
     * @p bytes-sized request packet (one compound header amortized
     * across the train).  Counted once in `net.req.*` like any other
     * packet, plus the `net.trains.*` family; returns arrival tick.
     */
    Tick sendRequestTrain(unsigned bytes, unsigned peis, unsigned cube);

    /** Response counterpart of sendRequestTrain. */
    Tick sendResponseTrain(unsigned bytes, unsigned peis, unsigned cube);

    /**
     * Latency of a posted (zero-payload) acknowledgement from
     * @p cube: the response route's propagation + per-hop latency
     * with no link occupancy (acks aggregate into idle flits).
     */
    Ticks ackLatency(unsigned cube) const;

    /** Network hops between the host port and @p cube. */
    unsigned hopCount(unsigned cube) const;

    /** Shortest host-to-cube latency: the lookahead lower bound. */
    Ticks minHostLatency() const { return prop_latency; }

    unsigned flitsOf(unsigned bytes) const;

    unsigned numLinks() const
    {
        return static_cast<unsigned>(links.size());
    }
    const NetLink &link(unsigned i) const { return *links[i]; }

    /** Injected traffic totals (once per packet, any topology). */
    std::uint64_t requestFlits() const { return stat_req_flits.value(); }
    std::uint64_t requestBytes() const { return stat_req_bytes.value(); }
    std::uint64_t responseFlits() const { return stat_res_flits.value(); }
    std::uint64_t responseBytes() const { return stat_res_bytes.value(); }

    /** PEI-train totals (each train is one injected packet). */
    std::uint64_t requestTrains() const
    {
        return stat_train_req.value();
    }
    std::uint64_t responseTrains() const
    {
        return stat_train_res.value();
    }
    std::uint64_t trainPeis() const { return stat_train_peis.value(); }

  private:
    /** One link traversal of a route, plus its exit latency. */
    struct Hop
    {
        unsigned link;
        Ticks latency;
    };

    /** Static route to (or from) one cube. */
    struct Route
    {
        std::vector<Hop> path;
        unsigned hops = 0; ///< network hops (chain: cubes passed)
    };

    void buildChain();
    void buildRing();
    void buildMesh();
    unsigned addLink(const std::string &name);

    Tick send(const Route &route, unsigned bytes);

    EventQueue &eq;
    NetConfig cfg;
    double bytes_per_tick;
    Ticks prop_latency;
    Ticks hop_latency;

    std::vector<std::unique_ptr<NetLink>> links;
    std::vector<Route> req_routes; ///< host -> cube, per cube
    std::vector<Route> res_routes; ///< cube -> host, per cube
    StatRegistry &stats;

    Counter stat_req_flits;
    Counter stat_req_bytes;
    Counter stat_res_flits;
    Counter stat_res_bytes;
    Counter stat_req_hops; ///< network hops, summed per packet
    Counter stat_res_hops;
    Counter stat_train_req;  ///< coalesced PEI request trains sent
    Counter stat_train_res;  ///< train response packets sent
    Counter stat_train_peis; ///< PEIs carried by request trains
    std::uint64_t traversal_flits = 0; ///< flits x links crossed
};

} // namespace pei

#endif // PEISIM_NET_INTERCONNECT_HH
