#include "stats.hh"

#include <sstream>

#include "logging.hh"

namespace pei
{

namespace
{

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

} // namespace

std::uint64_t
Histogram::approxPercentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < num_buckets; ++b) {
        seen += buckets_[b];
        if (seen > target)
            return bucketHigh(b) < max_ ? bucketHigh(b) : max_;
    }
    return max_;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    const double rank = p * static_cast<double>(count_ - 1);
    std::uint64_t before = 0;
    for (unsigned b = 0; b < num_buckets; ++b) {
        const std::uint64_t n = buckets_[b];
        if (n == 0)
            continue;
        if (static_cast<double>(before) + static_cast<double>(n) > rank) {
            const double lo = static_cast<double>(bucketLow(b));
            const double span =
                b == 0 ? 0.0
                       : static_cast<double>(bucketHigh(b)) + 1.0 - lo;
            double v = lo + span * ((rank - static_cast<double>(before)) /
                                    static_cast<double>(n));
            if (v > static_cast<double>(max_))
                v = static_cast<double>(max_);
            if (v < static_cast<double>(min_))
                v = static_cast<double>(min_);
            return v;
        }
        before += n;
    }
    return static_cast<double>(max_);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

void
StatRegistry::add(const std::string &name, Counter *counter)
{
    auto [it, inserted] = counters.emplace(name, counter);
    (void)it;
    panic_if(!inserted, "duplicate stat name '%s'", name.c_str());
}

void
StatRegistry::add(const std::string &name, Histogram *histogram)
{
    panic_if(counters.count(name) != 0, "histogram '%s' shadows a counter",
             name.c_str());
    auto [it, inserted] = histograms.emplace(name, histogram);
    (void)it;
    panic_if(!inserted, "duplicate histogram name '%s'", name.c_str());
}

void
StatRegistry::addInvariant(const std::string &name, InvariantFn check)
{
    invariants.emplace_back(name, std::move(check));
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second->value();
    }
    return sum;
}

std::uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters.find(name);
    fatal_if(it == counters.end(), "unknown stat '%s'", name.c_str());
    return it->second->value();
}

bool
StatRegistry::has(const std::string &name) const
{
    return counters.count(name) != 0;
}

const Histogram &
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms.find(name);
    fatal_if(it == histograms.end(), "unknown histogram '%s'", name.c_str());
    return *it->second;
}

bool
StatRegistry::hasHistogram(const std::string &name) const
{
    return histograms.count(name) != 0;
}

std::map<std::string, std::uint64_t>
StatRegistry::snapshot() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, counter] : counters)
        out.emplace(name, counter->value());
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, counter] : counters)
        counter->reset();
    for (auto &[name, histogram] : histograms)
        histogram->reset();
}

std::vector<std::string>
StatRegistry::audit() const
{
    std::vector<std::string> violations;
    for (const auto &[name, check] : invariants) {
        std::string msg = check();
        if (!msg.empty())
            violations.push_back(name + ": " + msg);
    }
    return violations;
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters) {
        if (counter->value() != 0)
            os << name << " = " << counter->value() << "\n";
    }
    for (const auto &[name, h] : histograms) {
        if (h->count() != 0) {
            os << name << " = {count " << h->count() << ", mean "
               << h->mean() << ", min " << h->min() << ", max "
               << h->max() << ", p99 " << h->approxPercentile(0.99)
               << "}\n";
        }
    }
    return os.str();
}

std::string
StatRegistry::countersJson() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, counter] : counters) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":" << counter->value();
    }
    os << "}";
    return os.str();
}

std::string
StatRegistry::histogramsJson() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, h] : histograms) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":{\"count\":" << h->count()
           << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
           << ",\"max\":" << h->max() << ",\"mean\":" << h->mean()
           << ",\"p50\":" << h->percentile(0.50)
           << ",\"p95\":" << h->percentile(0.95)
           << ",\"p99\":" << h->percentile(0.99)
           << ",\"buckets\":[";
        bool bfirst = true;
        for (unsigned b = 0; b < Histogram::num_buckets; ++b) {
            if (h->bucketCount(b) == 0)
                continue;
            if (!bfirst)
                os << ",";
            bfirst = false;
            os << "[" << Histogram::bucketLow(b) << ","
               << Histogram::bucketHigh(b) << "," << h->bucketCount(b)
               << "]";
        }
        os << "]}";
    }
    os << "}";
    return os.str();
}

std::string
StatRegistry::toJson() const
{
    return "{\"counters\":" + countersJson() +
           ",\"histograms\":" + histogramsJson() + "}";
}

} // namespace pei
