#include "stats.hh"

#include <sstream>

#include "logging.hh"

namespace pei
{

void
StatRegistry::add(const std::string &name, Counter *counter)
{
    auto [it, inserted] = counters.emplace(name, counter);
    (void)it;
    panic_if(!inserted, "duplicate stat name '%s'", name.c_str());
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second->value();
    }
    return sum;
}

std::uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters.find(name);
    fatal_if(it == counters.end(), "unknown stat '%s'", name.c_str());
    return it->second->value();
}

bool
StatRegistry::has(const std::string &name) const
{
    return counters.count(name) != 0;
}

std::map<std::string, std::uint64_t>
StatRegistry::snapshot() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, counter] : counters)
        out.emplace(name, counter->value());
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, counter] : counters)
        counter->reset();
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters) {
        if (counter->value() != 0)
            os << name << " = " << counter->value() << "\n";
    }
    return os.str();
}

} // namespace pei
