/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * synthesis.  xoshiro256** — fast, high quality, fully reproducible
 * across platforms (unlike std::mt19937 distributions, whose results
 * are implementation-defined for some distribution types).
 */

#ifndef PEISIM_COMMON_RNG_HH
#define PEISIM_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "logging.hh"

namespace pei
{

/** xoshiro256** 1.0 generator (Blackman & Vigna, public domain). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding to decorrelate nearby seeds.
        std::uint64_t z = seed;
        for (auto &word : state) {
            z += 0x9E3779B97F4A7C15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
            x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
            word = x ^ (x >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Rejection-free multiply-shift; bias is negligible for
        // simulation input generation (bound << 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/**
 * Zipf-distributed integer sampler over [0, n) with exponent @p s,
 * using a precomputed inverse-CDF table.  Used to synthesize skewed
 * (power-law-like) access patterns, e.g. hash-join key popularity.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s, std::uint64_t seed)
        : rng(seed), cdf(n)
    {
        fatal_if(n == 0, "ZipfSampler over empty domain");
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
            cdf[i] = sum;
        }
        for (auto &c : cdf)
            c /= sum;
    }

    /** Draw one sample. */
    std::size_t
    sample()
    {
        const double u = rng.uniform();
        // Binary search the CDF.
        std::size_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

  private:
    Rng rng;
    std::vector<double> cdf;
};

} // namespace pei

#endif // PEISIM_COMMON_RNG_HH
