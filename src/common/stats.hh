/**
 * @file
 * Statistics registry (stats-v2).
 *
 * Components own plain Counter and Histogram members (hot-path
 * updates are a single add / a bucket increment) and register them by
 * hierarchical dotted name with the System's StatRegistry at
 * construction time.  Benches snapshot the registry into a
 * name→value map to compare configurations, or export the whole
 * registry as JSON for machine-readable trajectories (BENCH_*.json).
 *
 * Naming convention: "<component>.<event>" for counters (e.g.
 * "l3.misses", "hmc0.vault3.dram_reads") and
 * "<component>.<quantity>_ticks" for latency histograms (e.g.
 * "pmu.pei_latency_ticks").
 *
 * The registry also holds *invariants*: named cross-checks over
 * related counters (e.g. "hits + misses == lookups") registered by
 * the components that own the counters and evaluated by audit() at
 * the end of a simulation.  Tests fail on any violation, which turns
 * silent double-count / dead-counter bugs into hard errors.
 */

#ifndef PEISIM_COMMON_STATS_HH
#define PEISIM_COMMON_STATS_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace pei
{

/** A 64-bit event counter with negligible increment overhead. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A log2-bucketed histogram of 64-bit samples.  record() is cheap
 * enough for simulator hot paths: one bit_width, one bucket
 * increment, a running sum and min/max.  Bucket b holds value 0 for
 * b == 0 and the range [2^(b-1), 2^b) for b >= 1.
 */
class Histogram
{
  public:
    static constexpr unsigned num_buckets = 65;

    Histogram() = default;

    void
    record(std::uint64_t v)
    {
        ++buckets_[std::bit_width(v)];
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }

    /** Smallest recorded sample (0 if empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /** Largest recorded sample (0 if empty). */
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Samples in bucket @p b (see class comment for ranges). */
    std::uint64_t bucketCount(unsigned b) const { return buckets_[b]; }

    /** Inclusive lower bound of bucket @p b. */
    static std::uint64_t
    bucketLow(unsigned b)
    {
        return b == 0 ? 0 : 1ULL << (b - 1);
    }

    /** Inclusive upper bound of bucket @p b. */
    static std::uint64_t
    bucketHigh(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b >= 64)
            return ~0ULL;
        return (1ULL << b) - 1;
    }

    /**
     * Upper bound of the bucket containing the @p p quantile
     * (p in [0, 1]); a coarse percentile good enough for dashboards.
     */
    std::uint64_t approxPercentile(double p) const;

    /**
     * Interpolated percentile (p in [0, 1], clamped).  Semantics:
     * the target is the fractional rank r = p * (count - 1) over the
     * samples in ascending order; the bucket holding rank r is found
     * by cumulative count, and the samples inside that log2 bucket
     * are assumed uniformly spread over [bucketLow(b),
     * bucketHigh(b) + 1), so the result is
     *     bucketLow(b) + span * (r - ranks_before) / bucket_count.
     * The result is clamped to [min(), max()], which makes the
     * estimate exact at p = 0 and p = 1 and prevents a sparse top
     * bucket from inflating the tail.  Returns 0.0 when empty.
     * With samples 1..8, percentile(0.5) == 4.5 and
     * percentile(0.95) == 7.65 (see StatsTest.PercentileInterpolates).
     */
    double percentile(double p) const;

    void reset();

  private:
    std::uint64_t buckets_[num_buckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/**
 * Registry of named counters, histograms, and invariants.  Names are
 * dotted paths, e.g. "l3.misses" or "hmc0.vault3.dram_reads".
 */
class StatRegistry
{
  public:
    /**
     * An invariant check: returns an empty string when the invariant
     * holds, or a human-readable violation message (with the actual
     * values) when it does not.
     */
    using InvariantFn = std::function<std::string()>;

    /** Register @p counter under @p name; the counter must outlive
     *  the registry.  Duplicate names are a simulator bug. */
    void add(const std::string &name, Counter *counter);

    /** Register @p histogram under @p name (same contract as add). */
    void add(const std::string &name, Histogram *histogram);

    /**
     * Register an end-of-simulation invariant over this registry's
     * stats (or the owning component's state); evaluated by audit().
     * The objects the check reads must outlive the registry.
     */
    void addInvariant(const std::string &name, InvariantFn check);

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumByPrefix(const std::string &prefix) const;

    /** Value of the counter registered as @p name (fatal if absent). */
    std::uint64_t get(const std::string &name) const;

    /** True if a counter is registered under @p name. */
    bool has(const std::string &name) const;

    /** The histogram registered as @p name (fatal if absent). */
    const Histogram &histogram(const std::string &name) const;

    /** True if a histogram is registered under @p name. */
    bool hasHistogram(const std::string &name) const;

    /** Snapshot every counter into a name→value map. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Reset all registered counters and histograms to zero. */
    void resetAll();

    /**
     * Evaluate every registered invariant; returns the violation
     * messages (empty vector = all invariants hold).
     */
    std::vector<std::string> audit() const;

    /** Human-readable dump, sorted by name, skipping zero counters. */
    std::string dump() const;

    /** JSON object of every counter: {"name": value, ...}. */
    std::string countersJson() const;

    /**
     * JSON object of every histogram:
     * {"name": {"count", "sum", "min", "max", "mean", "buckets":
     * [[lo, hi, n], ...nonzero buckets...]}, ...}.
     */
    std::string histogramsJson() const;

    /** {"counters": countersJson(), "histograms": histogramsJson()}. */
    std::string toJson() const;

  private:
    std::map<std::string, Counter *> counters;
    std::map<std::string, Histogram *> histograms;
    std::vector<std::pair<std::string, InvariantFn>> invariants;
};

} // namespace pei

#endif // PEISIM_COMMON_STATS_HH
