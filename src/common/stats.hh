/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own plain Counter members (hot-path increments are a
 * single add) and register them by hierarchical dotted name with the
 * System's StatRegistry at construction time.  Benches snapshot the
 * registry into a name→value map to compare configurations.
 */

#ifndef PEISIM_COMMON_STATS_HH
#define PEISIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pei
{

/** A 64-bit event counter with negligible increment overhead. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Registry of named counters.  Names are dotted paths, e.g.
 * "l3.misses" or "hmc0.vault3.dram_reads".
 */
class StatRegistry
{
  public:
    /** Register @p counter under @p name; the counter must outlive
     *  the registry.  Duplicate names are a simulator bug. */
    void add(const std::string &name, Counter *counter);

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumByPrefix(const std::string &prefix) const;

    /** Value of the counter registered as @p name (fatal if absent). */
    std::uint64_t get(const std::string &name) const;

    /** True if a counter is registered under @p name. */
    bool has(const std::string &name) const;

    /** Snapshot every counter into a name→value map. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Reset all registered counters to zero. */
    void resetAll();

    /** Human-readable dump, sorted by name, skipping zero counters. */
    std::string dump() const;

  private:
    std::map<std::string, Counter *> counters;
};

} // namespace pei

#endif // PEISIM_COMMON_STATS_HH
