/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef PEISIM_COMMON_LOGGING_HH
#define PEISIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pei
{

namespace detail
{

[[noreturn]] void terminate(const char *kind, const std::string &msg,
                            const char *file, int line, bool core_dump);

void message(const char *kind, const std::string &msg);

std::string formatv(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Abort the simulation because of an internal simulator bug: a
 * condition that should never happen regardless of user input.
 */
#define panic(...)                                                         \
    ::pei::detail::terminate("panic", ::pei::detail::formatv(__VA_ARGS__), \
                             __FILE__, __LINE__, true)

/**
 * Terminate the simulation because of a user error (bad configuration,
 * invalid arguments) that prevents the simulation from continuing.
 */
#define fatal(...)                                                         \
    ::pei::detail::terminate("fatal", ::pei::detail::formatv(__VA_ARGS__), \
                             __FILE__, __LINE__, false)

/** panic() if @p cond does not hold. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) [[unlikely]]                                             \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** fatal() if @p cond does not hold. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) [[unlikely]]                                             \
            fatal(__VA_ARGS__);                                            \
    } while (0)

/** Non-fatal warning about questionable but survivable behaviour. */
#define warn(...)                                                          \
    ::pei::detail::message("warn", ::pei::detail::formatv(__VA_ARGS__))

/** Informational status message. */
#define inform(...)                                                        \
    ::pei::detail::message("info", ::pei::detail::formatv(__VA_ARGS__))

} // namespace pei

#endif // PEISIM_COMMON_LOGGING_HH
