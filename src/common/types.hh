/**
 * @file
 * Fundamental scalar types and unit literals used across peisim.
 *
 * The global simulation tick equals one host-CPU cycle at 4 GHz
 * (0.25 ns).  All latencies in the codebase are expressed in ticks;
 * helpers below convert from nanoseconds and from cycles of other
 * clock domains.
 */

#ifndef PEISIM_COMMON_TYPES_HH
#define PEISIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace pei
{

/** Physical or virtual byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Global simulation time unit: one 4 GHz CPU cycle (0.25 ns). */
using Tick = std::uint64_t;

/** A duration measured in ticks. */
using Ticks = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / unscheduled. */
constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Last-level cache block size; the PEI single-cache-block unit. */
constexpr unsigned block_size = 64;
constexpr unsigned block_shift = 6;

/** Host CPU frequency that defines the tick. */
constexpr std::uint64_t ticks_per_second = 4'000'000'000ULL;

/** Convert nanoseconds to ticks (4 ticks per ns). */
constexpr Ticks
nsToTicks(double ns)
{
    return static_cast<Ticks>(ns * 4.0 + 0.5);
}

/** Convert cycles of a clock domain running at @p mhz to ticks. */
constexpr Ticks
cyclesToTicks(std::uint64_t cycles, std::uint64_t mhz)
{
    // ticks = cycles * (4000 MHz / mhz)
    return cycles * 4000ULL / mhz;
}

/** Byte-size literals. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Align @p addr down to its cache-block base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(block_size - 1);
}

/** Offset of @p addr within its cache block. */
constexpr unsigned
blockOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (block_size - 1));
}

/** True if [addr, addr + size) stays within one cache block. */
constexpr bool
fitsInBlock(Addr addr, unsigned size)
{
    return size > 0 && blockOffset(addr) + size <= block_size;
}

} // namespace pei

#endif // PEISIM_COMMON_TYPES_HH
