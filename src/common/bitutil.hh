/**
 * @file
 * Bit-manipulation helpers used by address mapping, the PIM directory
 * (XOR-folded indexing) and the locality monitor (folded partial tags).
 */

#ifndef PEISIM_COMMON_BITUTIL_HH
#define PEISIM_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "types.hh"

namespace pei
{

/** True if @p v is a nonzero power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2(v); v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    if (width >= 64)
        return v >> lo;
    return (v >> lo) & ((1ULL << width) - 1);
}

/**
 * Fold @p v down to @p width bits by XOR-ing successive @p width-bit
 * slices.  This is the hash the paper uses both to index the tag-less
 * PIM directory and to construct the locality monitor's 10-bit partial
 * tags; it spreads entropy from all address bits into the result.
 */
constexpr std::uint64_t
foldedXor(std::uint64_t v, unsigned width)
{
    std::uint64_t folded = 0;
    const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
    while (v != 0) {
        folded ^= v & mask;
        v >>= width;
    }
    return folded & mask;
}

} // namespace pei

#endif // PEISIM_COMMON_BITUTIL_HH
