#include "logging.hh"

#include <cstdarg>
#include <cstdio>

namespace pei
{
namespace detail
{

std::string
formatv(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

void
terminate(const char *kind, const std::string &msg, const char *file,
          int line, bool core_dump)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    if (core_dump)
        std::abort();
    std::exit(1);
}

void
message(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail
} // namespace pei
