#include "logging.hh"

#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace pei
{
namespace detail
{

namespace
{

/**
 * Serializes the stderr sink.  Simulations may run concurrently on
 * worker threads (src/driver), and while each fprintf call is atomic
 * per POSIX, the message/terminate paths issue multiple stdio calls;
 * the mutex keeps a message and its flush from interleaving with
 * another thread's output.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
formatv(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

void
terminate(const char *kind, const std::string &msg, const char *file,
          int line, bool core_dump)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    if (core_dump)
        std::abort();
    std::exit(1);
}

void
message(const char *kind, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail
} // namespace pei
