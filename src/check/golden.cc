#include "golden.hh"

#include <cstring>

namespace pei
{
namespace fuzz
{

namespace
{

template <typename T>
T
loadAt(const std::vector<std::uint8_t> &image, std::size_t off)
{
    T v;
    std::memcpy(&v, &image[off], sizeof(T));
    return v;
}

template <typename T>
void
storeAt(std::vector<std::uint8_t> &image, std::size_t off, T v)
{
    std::memcpy(&image[off], &v, sizeof(T));
}

/** Execute one PEI on the image; fills @p out for reader ops. */
void
executeGoldenPei(std::vector<std::uint8_t> &image, std::size_t block_base,
                 const FuzzOp &o, PeiOutput &out)
{
    std::uint8_t input[64] = {};
    fillInput(o.op, o.value, input);
    const std::size_t target = block_base + peiOffset(o);

    switch (o.op) {
      case PeiOpcode::Inc64:
        storeAt<std::uint64_t>(image, target,
                               loadAt<std::uint64_t>(image, target) + 1);
        break;
      case PeiOpcode::Min64: {
        std::uint64_t in;
        std::memcpy(&in, input, 8);
        if (in < loadAt<std::uint64_t>(image, target))
            storeAt<std::uint64_t>(image, target, in);
        break;
      }
      case PeiOpcode::FaddDouble: {
        double delta;
        std::memcpy(&delta, input, 8);
        storeAt<double>(image, target,
                        loadAt<double>(image, target) + delta);
        break;
      }
      case PeiOpcode::HashProbe: {
        // Bucket layout: 6 keys, a (possibly overflowing) count, and
        // the overflow-chain pointer, one cache block total.
        std::uint64_t key;
        std::memcpy(&key, input, 8);
        std::uint64_t count = loadAt<std::uint64_t>(image, block_base + 48);
        if (count > 6)
            count = 6;
        std::uint8_t match = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            if (loadAt<std::uint64_t>(image, block_base + 8 * i) == key) {
                match = 1;
                break;
            }
        }
        const std::uint64_t next =
            loadAt<std::uint64_t>(image, block_base + 56);
        std::memcpy(out.bytes.data(), &next, 8);
        out.bytes[8] = match;
        out.size = 9;
        break;
      }
      case PeiOpcode::HistBinIdx: {
        const std::uint8_t shift = input[0];
        for (unsigned i = 0; i < 16; ++i) {
            const auto word =
                loadAt<std::uint32_t>(image, block_base + 4 * i);
            out.bytes[i] =
                static_cast<std::uint8_t>((word >> shift) & 0xFF);
        }
        out.size = 16;
        break;
      }
      case PeiOpcode::EuclidDist: {
        float in[16];
        std::memcpy(in, input, sizeof(in));
        float sum = 0.0f;
        for (unsigned i = 0; i < 16; ++i) {
            const float d =
                loadAt<float>(image, block_base + 4 * i) - in[i];
            sum += d * d;
        }
        std::memcpy(out.bytes.data(), &sum, 4);
        out.size = 4;
        break;
      }
      case PeiOpcode::DotProduct: {
        double in[4];
        std::memcpy(in, input, sizeof(in));
        double sum = 0.0;
        for (unsigned i = 0; i < 4; ++i)
            sum += loadAt<double>(image, target + 8 * i) * in[i];
        std::memcpy(out.bytes.data(), &sum, 8);
        out.size = 8;
        break;
      }
      case PeiOpcode::Gather: {
        std::uint64_t stride, count;
        std::memcpy(&stride, input, 8);
        std::memcpy(&count, input + 8, 8);
        for (std::uint64_t i = 0; i < count; ++i) {
            const auto v =
                loadAt<std::uint64_t>(image, target + i * stride);
            std::memcpy(out.bytes.data() + 8 * i, &v, 8);
        }
        out.size = static_cast<unsigned>(count) * 8;
        break;
      }
      case PeiOpcode::Scatter: {
        std::uint64_t stride, count, addend;
        std::memcpy(&stride, input, 8);
        std::memcpy(&count, input + 8, 8);
        std::memcpy(&addend, input + 16, 8);
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::size_t a = target + i * stride;
            storeAt<std::uint64_t>(image, a,
                                   loadAt<std::uint64_t>(image, a) +
                                       addend);
        }
        break;
      }
      default:
        break;
    }
}

} // namespace

GoldenResult
runGolden(const FuzzProgram &p)
{
    GoldenResult g;
    g.image = p.init_image;
    g.outputs.resize(p.streams.size());

    for (std::size_t ti = 0; ti < p.streams.size(); ++ti) {
        for (const FuzzOp &o : p.streams[ti]) {
            const std::size_t block_base =
                static_cast<std::size_t>(o.block) * block_size;
            switch (o.kind) {
              case OpKind::Pei: {
                g.outputs[ti].emplace_back();
                executeGoldenPei(g.image, block_base, o,
                                 g.outputs[ti].back());
                break;
              }
              case OpKind::Store:
                storeAt<std::uint64_t>(g.image,
                                       block_base + storeOffset(o),
                                       o.value);
                break;
              case OpKind::Load:
              case OpKind::Pfence:
              case OpKind::Compute:
                break;
            }
        }
    }
    return g;
}

} // namespace fuzz
} // namespace pei
