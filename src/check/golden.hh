/**
 * @file
 * simfuzz sequential golden model: executes a generated program
 * architecturally (no timing, no caches, no PMU) against a flat byte
 * image of the footprint.
 *
 * The model deliberately reimplements the PEI semantics from the
 * ISA definition (paper Table 1) instead of calling
 * executePeiFunctional — sharing the simulator's implementation
 * would blind the differential check to functional bugs.
 *
 * Threads run one after another in thread order.  The generator
 * guarantees all cross-thread-visible effects commute (see
 * program.hh), so this one serialization is observably equal to
 * every legal interleaving, and both the final image and every
 * reader-PEI output can be compared byte-for-byte against any
 * simulated execution mode.
 */

#ifndef PEISIM_CHECK_GOLDEN_HH
#define PEISIM_CHECK_GOLDEN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "check/program.hh"

namespace pei
{
namespace fuzz
{

/** Output operand of one PEI (writers record size 0). */
struct PeiOutput
{
    std::array<std::uint8_t, 64> bytes{};
    unsigned size = 0;
};

struct GoldenResult
{
    /** Final bytes of the whole footprint. */
    std::vector<std::uint8_t> image;

    /**
     * Reader-PEI outputs, indexed [included-thread][k] where k is
     * the k-th OpKind::Pei op of that thread's (truncated) stream.
     */
    std::vector<std::vector<PeiOutput>> outputs;
};

/** Run @p p to completion on a copy of its initial image. */
GoldenResult runGolden(const FuzzProgram &p);

} // namespace fuzz
} // namespace pei

#endif // PEISIM_CHECK_GOLDEN_HH
