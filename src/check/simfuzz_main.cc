/**
 * @file
 * simfuzz: randomized differential testing of PEI execution.
 *
 * Runs N generated cases (see check/program.hh) in parallel on the
 * driver's WorkerPool; every case executes under all four execution
 * modes on a fuzzed SystemConfig with invariant probes armed and is
 * cross-checked against the sequential golden model.  Failing cases
 * are shrunk to a minimal (seed, prefix, thread-mask) reproducer and
 * printed as a ready-to-run `simfuzz --replay-...` command line.
 *
 *   simfuzz --cases 1000 --jobs 4            # the acceptance sweep
 *   simfuzz --inject-bug skip-unlock         # checker self-test
 *   simfuzz --replay-seed 0x1234 --replay-config 2
 *   simfuzz --replay-file repro.simfuzz
 *
 * All output on stdout is deterministic for a fixed master seed:
 * results are reported in submission order and shrinking is
 * sequential, so two runs with different --jobs produce identical
 * stdout (the live progress line lives on stderr).
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz_case.hh"
#include "driver/options.hh"
#include "driver/sweep.hh"

using namespace pei;
using namespace pei::fuzz;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --cases N            fuzz cases to run (default 200)\n"
        "  --master-seed S      master seed (default 12345)\n"
        "  --configs K          fuzzed configs in rotation (default 4)\n"
        "  --probe-every N      probe cadence in events (default 64)\n"
        "  --inject-bug B       checker self-test: skip-unlock |\n"
        "                       skip-back-inval | skip-conflict-check\n"
        "  --no-shrink          report failures without minimizing\n"
        "  --max-failures N     stop shrinking after N failures "
        "(default 4)\n"
        "  --failure-dir DIR    write reproducer files for failures\n"
        "  --mem-backend B      pin every case to one memory backend\n"
        "                       (default: fuzzed per config)\n"
        "  --coherence P        pin every case to one coherence policy\n"
        "                       (eager | lazy; default: fuzzed)\n"
        "  --shards N           event-queue shards per System\n"
        "                       (default 1 = sequential engine)\n"
        "  --topology T         pin every case to one interconnect\n"
        "                       (chain | ring | mesh; default: fuzzed)\n"
        "  --cubes N            pin the cube count (default: fuzzed)\n"
        "  --pmu-shards N       pin the PMU bank count (default: "
        "fuzzed)\n"
        "  --pei-batch N        pin the PMU batching window size\n"
        "                       (1 = per-op dispatch; default: fuzzed)\n"
        "  --queue-depth N      pin the vault-PCU issue-queue depth\n"
        "                       (0 = unqueued; default: fuzzed)\n"
        "  --replay-seed S      replay one case (with --replay-config,\n"
        "                       --replay-prefix, --replay-mask,\n"
        "                       --replay-backend, --replay-coherence,\n"
        "                       --replay-topology, --replay-cubes,\n"
        "                       --replay-pmu-shards, --replay-batch,\n"
        "                       --replay-queue-depth)\n"
        "  --replay-file FILE   replay a written reproducer\n"
        "  --jobs N / --timeout-s S / --no-progress  (sweep driver)\n",
        argv0);
}

/** --flag value / --flag=value accessor over argv. */
std::optional<std::string>
flagValue(int argc, char **argv, const char *name)
{
    const std::size_t len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return std::string(argv[i + 1]);
        if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
            return std::string(argv[i] + len + 1);
    }
    return std::nullopt;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    try {
        return std::stoull(s, nullptr, 0);
    } catch (const std::exception &) {
        std::fprintf(stderr, "simfuzz: bad %s value '%s'\n", what,
                     s.c_str());
        std::exit(2);
    }
}

/** Replay one case sequentially and report verbosely; returns rc. */
int
replayOne(const FuzzCaseId &id, const FuzzOptions &opt)
{
    std::printf("replaying seed=0x%llx config=%u",
                static_cast<unsigned long long>(id.seed), id.config);
    if (!id.backend.empty())
        std::printf(" backend=%s", id.backend.c_str());
    if (!id.coherence.empty())
        std::printf(" coherence=%s", id.coherence.c_str());
    if (!id.topology.empty())
        std::printf(" topology=%s", id.topology.c_str());
    if (id.cubes)
        std::printf(" cubes=%u", id.cubes);
    if (id.pmu_shards)
        std::printf(" pmu_shards=%u", id.pmu_shards);
    if (id.pei_batch)
        std::printf(" pei_batch=%u", id.pei_batch);
    if (id.queue_depth >= 0)
        std::printf(" queue_depth=%d", id.queue_depth);
    if (id.prefix != full_prefix)
        std::printf(" prefix=%zu", id.prefix);
    if (id.thread_mask != 0xffffffffu)
        std::printf(" mask=0x%x", id.thread_mask);
    if (opt.inject != InjectBug::None)
        std::printf(" inject=%s", injectBugName(opt.inject));
    std::printf("\n");

    const FuzzCaseResult r = runFuzzCase(id, opt, nullptr);
    if (r.ok()) {
        std::printf("PASS: %zu ops, all four modes clean\n",
                    r.total_ops);
        return 0;
    }
    for (const ModeFailure &f : r.failures)
        std::printf("FAIL [%s] %s\n", execModeName(f.mode),
                    f.what.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--help") || hasFlag(argc, argv, "-h")) {
        usage(argv[0]);
        return 0;
    }

    SweepOptions sopt = sweepOptionsFromArgs(argc, argv);

    FuzzOptions fopt;
    std::uint64_t cases = 200;
    std::size_t max_failures = 4;
    bool shrink = !hasFlag(argc, argv, "--no-shrink");
    std::string failure_dir;

    if (const auto v = flagValue(argc, argv, "--cases"))
        cases = parseU64(*v, "--cases");
    if (const auto v = flagValue(argc, argv, "--master-seed"))
        fopt.master_seed = parseU64(*v, "--master-seed");
    if (const auto v = flagValue(argc, argv, "--configs"))
        fopt.num_configs =
            static_cast<unsigned>(parseU64(*v, "--configs"));
    if (const auto v = flagValue(argc, argv, "--probe-every"))
        fopt.probe_every = parseU64(*v, "--probe-every");
    if (const auto v = flagValue(argc, argv, "--max-failures"))
        max_failures =
            static_cast<std::size_t>(parseU64(*v, "--max-failures"));
    if (const auto v = flagValue(argc, argv, "--failure-dir"))
        failure_dir = *v;
    if (const auto v = flagValue(argc, argv, "--mem-backend"))
        fopt.backend = *v;
    if (const auto v = flagValue(argc, argv, "--coherence"))
        fopt.coherence = *v;
    if (const auto v = flagValue(argc, argv, "--shards"))
        fopt.shards = static_cast<unsigned>(parseU64(*v, "--shards"));
    if (const auto v = flagValue(argc, argv, "--topology"))
        fopt.topology = *v;
    if (const auto v = flagValue(argc, argv, "--cubes"))
        fopt.cubes = static_cast<unsigned>(parseU64(*v, "--cubes"));
    if (const auto v = flagValue(argc, argv, "--pmu-shards"))
        fopt.pmu_shards =
            static_cast<unsigned>(parseU64(*v, "--pmu-shards"));
    if (const auto v = flagValue(argc, argv, "--pei-batch"))
        fopt.pei_batch =
            static_cast<unsigned>(parseU64(*v, "--pei-batch"));
    if (const auto v = flagValue(argc, argv, "--queue-depth"))
        fopt.queue_depth =
            static_cast<int>(parseU64(*v, "--queue-depth"));
    if (const auto v = flagValue(argc, argv, "--inject-bug")) {
        if (*v == "skip-unlock") {
            fopt.inject = InjectBug::SkipUnlock;
        } else if (*v == "skip-back-inval") {
            fopt.inject = InjectBug::SkipBackInval;
        } else if (*v == "skip-conflict-check") {
            fopt.inject = InjectBug::SkipConflictCheck;
        } else {
            std::fprintf(stderr, "simfuzz: unknown --inject-bug '%s'\n",
                         v->c_str());
            return 2;
        }
    }
    if (fopt.num_configs == 0) {
        std::fprintf(stderr, "simfuzz: --configs must be >= 1\n");
        return 2;
    }

    // Replay modes run one case sequentially and exit.
    if (const auto file = flagValue(argc, argv, "--replay-file")) {
        std::ifstream in(*file);
        if (!in) {
            std::fprintf(stderr, "simfuzz: cannot open '%s'\n",
                         file->c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        FuzzCaseId id;
        if (!parseReplayFile(text.str(), id, fopt)) {
            std::fprintf(stderr, "simfuzz: malformed replay file '%s'\n",
                         file->c_str());
            return 2;
        }
        return replayOne(id, fopt);
    }
    if (const auto seed = flagValue(argc, argv, "--replay-seed")) {
        FuzzCaseId id;
        id.seed = parseU64(*seed, "--replay-seed");
        if (const auto v = flagValue(argc, argv, "--replay-config"))
            id.config =
                static_cast<unsigned>(parseU64(*v, "--replay-config"));
        if (const auto v = flagValue(argc, argv, "--replay-prefix"))
            id.prefix = static_cast<std::size_t>(
                parseU64(*v, "--replay-prefix"));
        if (const auto v = flagValue(argc, argv, "--replay-mask"))
            id.thread_mask = static_cast<std::uint32_t>(
                parseU64(*v, "--replay-mask"));
        if (const auto v = flagValue(argc, argv, "--replay-backend"))
            id.backend = *v;
        if (const auto v = flagValue(argc, argv, "--replay-coherence"))
            id.coherence = *v;
        if (const auto v = flagValue(argc, argv, "--replay-topology"))
            id.topology = *v;
        if (const auto v = flagValue(argc, argv, "--replay-cubes"))
            id.cubes =
                static_cast<unsigned>(parseU64(*v, "--replay-cubes"));
        if (const auto v = flagValue(argc, argv, "--replay-pmu-shards"))
            id.pmu_shards = static_cast<unsigned>(
                parseU64(*v, "--replay-pmu-shards"));
        if (const auto v = flagValue(argc, argv, "--replay-batch"))
            id.pei_batch =
                static_cast<unsigned>(parseU64(*v, "--replay-batch"));
        if (const auto v =
                flagValue(argc, argv, "--replay-queue-depth"))
            id.queue_depth = static_cast<int>(
                parseU64(*v, "--replay-queue-depth"));
        return replayOne(id, fopt);
    }

    const std::string shards_note =
        fopt.shards > 1
            ? ", " + std::to_string(fopt.shards) + " shards"
            : "";
    // Pinning the default policy explicitly must not change stdout
    // (the CI byte-identity leg diffs `--coherence eager` against a
    // plain run), so the header notes only a non-default pin.
    const std::string coherence_note =
        !fopt.coherence.empty() && fopt.coherence != "eager"
            ? ", coherence " + fopt.coherence
            : "";
    // Same rule for the interconnect pins: pinning a default
    // explicitly (chain, 1 cube, 1 bank) must not change stdout.
    std::string net_note;
    if (!fopt.topology.empty() && fopt.topology != "chain")
        net_note += ", topology " + fopt.topology;
    if (fopt.cubes > 1)
        net_note += ", cubes " + std::to_string(fopt.cubes);
    if (fopt.pmu_shards > 1)
        net_note += ", pmu-shards " + std::to_string(fopt.pmu_shards);
    // Batching pins follow the same non-default-only rule: pinning
    // --pei-batch=1 or --queue-depth=0 explicitly (the per-op
    // defaults) must not change stdout either.
    if (fopt.pei_batch > 1)
        net_note += ", pei-batch " + std::to_string(fopt.pei_batch);
    if (fopt.queue_depth > 0)
        net_note += ", queue-depth " + std::to_string(fopt.queue_depth);
    std::printf("simfuzz: %llu case(s), %u fuzzed config(s), "
                "master seed %llu, probe every %llu "
                "event(s)%s%s%s%s%s%s%s\n",
                static_cast<unsigned long long>(cases),
                fopt.num_configs,
                static_cast<unsigned long long>(fopt.master_seed),
                static_cast<unsigned long long>(fopt.probe_every),
                fopt.inject != InjectBug::None ? ", inject " : "",
                fopt.inject != InjectBug::None
                    ? injectBugName(fopt.inject)
                    : "",
                fopt.backend.empty() ? "" : ", backend ",
                fopt.backend.c_str(), coherence_note.c_str(),
                net_note.c_str(), shards_note.c_str());

    Sweep sweep;
    std::vector<FuzzCaseResult> results(cases);
    for (std::uint64_t i = 0; i < cases; ++i) {
        const FuzzCaseId id{caseSeed(fopt.master_seed, i),
                            static_cast<unsigned>(i % fopt.num_configs),
                            full_prefix, 0xffffffffu};
        std::ostringstream label;
        label << "case" << i << "/seed0x" << std::hex << id.seed
              << std::dec << "/cfg" << id.config;
        sweep.add(label.str(), [id, fopt, i, &results](JobCtx &ctx) {
            FuzzCaseResult r = runFuzzCase(id, fopt, &ctx);
            const bool ok = r.ok();
            const std::string what = r.summary();
            results[ctx.index()] = std::move(r);
            (void)i;
            if (!ok)
                throw std::runtime_error(what);
        });
    }

    const SweepReport report = sweep.run(sopt);

    // Collect failures in submission order (deterministic stdout).
    struct Failure
    {
        FuzzCaseId id;
        std::string what;
    };
    std::vector<Failure> failures;
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const JobOutcome &out = report.outcomes[i];
        if (out.status == JobStatus::Ok ||
            out.status == JobStatus::Skipped) {
            continue;
        }
        if (!results[i].ok()) {
            failures.push_back({results[i].id, results[i].summary()});
        } else {
            // Timed out before the case result was recorded.
            const FuzzCaseId id{
                caseSeed(fopt.master_seed, i),
                static_cast<unsigned>(i % fopt.num_configs),
                full_prefix, 0xffffffffu};
            failures.push_back({id, out.label + ": " + out.error});
        }
    }

    for (const Failure &f : failures)
        std::printf("FAIL %s\n", f.what.c_str());

    // Shrink (sequentially, so output stays deterministic).
    std::size_t shrunk = 0;
    for (const Failure &f : failures) {
        if (shrunk >= max_failures) {
            std::printf("(%zu further failure(s) left unshrunk)\n",
                        failures.size() - shrunk);
            break;
        }
        ++shrunk;
        FuzzCaseId min_id = f.id;
        if (shrink) {
            const FuzzCaseResult m = shrinkCase(f.id, fopt);
            if (!m.ok()) {
                min_id = m.id;
                std::printf("minimized: %s\n", m.summary().c_str());
            } else {
                std::printf("minimized: did not reproduce "
                            "sequentially (flaky?)\n");
            }
        }
        std::printf("  replay: %s\n",
                    replayCommand(min_id, fopt).c_str());
        if (!failure_dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(failure_dir, ec);
            char name[64];
            std::snprintf(name, sizeof(name), "repro-%016llx.simfuzz",
                          static_cast<unsigned long long>(min_id.seed));
            const std::filesystem::path p =
                std::filesystem::path(failure_dir) / name;
            std::ofstream out(p);
            out << replayFileContents(min_id, fopt);
            std::printf("  reproducer written to %s\n",
                        p.string().c_str());
        }
    }

    std::printf("simfuzz: %zu ok, %zu failed, %zu timed out, "
                "%zu skipped (%.1fs)\n",
                report.ok, report.failed, report.timed_out,
                report.skipped, report.wall_seconds);
    if (fopt.inject != InjectBug::None) {
        const bool caught = !failures.empty();
        std::printf("inject-bug %s: %s\n", injectBugName(fopt.inject),
                    caught ? "DETECTED (checker works)"
                           : "NOT DETECTED (checker is blind!)");
        return caught ? 0 : 1;
    }
    return report.clean() ? 0 : 1;
}
