/**
 * @file
 * simfuzz mid-simulation invariant probes.
 *
 * installProbes() hooks a checker onto the System's event queue
 * (EventQueue::setBoundaryProbe) that re-verifies, every N executed
 * events, properties that must hold at *every* event boundary — not
 * just at quiesce:
 *
 *  - MESI inclusion and directory agreement (CacheHierarchy);
 *  - PIM-directory holder bookkeeping (writer exclusivity, grant
 *    accounting, no waiters behind a free entry);
 *  - operand-buffer occupancy within capacity for every host-side
 *    and memory-side PCU;
 *  - off-chip link flit/byte conservation: both directions are
 *    monotonically non-decreasing and every flit carries between one
 *    byte and the 16 B flit size;
 *  - offload coherence windows: while a memory-side *writer* PEI is
 *    between back-invalidation and retirement no cache level may
 *    hold its target block, and while a memory-side *reader* PEI is
 *    in that window no private cache may hold the block Modified.
 *
 * A violated probe throws FuzzViolation out of EventQueue::runOne,
 * abandoning the case at the exact boundary where the invariant
 * first broke.
 */

#ifndef PEISIM_CHECK_PROBES_HH
#define PEISIM_CHECK_PROBES_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/system.hh"

namespace pei
{
namespace fuzz
{

/** A divergence or invariant violation detected by the checker. */
class FuzzViolation : public std::runtime_error
{
  public:
    explicit FuzzViolation(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Install the probe set on @p sys, firing every @p every executed
 * events.  Call once per System, before driving its event loop.
 */
void installProbes(System &sys, std::uint64_t every);

/** Run the probe checks once, immediately (also used at quiesce). */
void checkProbesNow(System &sys);

} // namespace fuzz
} // namespace pei

#endif // PEISIM_CHECK_PROBES_HH
