#include "probes.hh"

#include <memory>

#include "cache/cache_array.hh"

namespace pei
{
namespace fuzz
{

namespace
{

/** High-water marks for the link-conservation (monotonicity) check. */
struct LinkWatermark
{
    std::uint64_t req_flits = 0;
    std::uint64_t req_bytes = 0;
    std::uint64_t res_flits = 0;
    std::uint64_t res_bytes = 0;
};

void
checkLinkDirection(const char *dir, std::uint64_t flits,
                   std::uint64_t bytes, std::uint64_t &last_flits,
                   std::uint64_t &last_bytes)
{
    if (flits < last_flits || bytes < last_bytes) {
        throw FuzzViolation(
            std::string("link conservation: ") + dir +
            " counters went backwards (flits " + std::to_string(flits) +
            " < " + std::to_string(last_flits) + " or bytes " +
            std::to_string(bytes) + " < " + std::to_string(last_bytes) +
            ")");
    }
    last_flits = flits;
    last_bytes = bytes;
    if (bytes > 16 * flits) {
        throw FuzzViolation(std::string("link conservation: ") + dir +
                            " carried " + std::to_string(bytes) +
                            " bytes in " + std::to_string(flits) +
                            " flits (> 16 B/flit)");
    }
    if (flits > bytes) {
        throw FuzzViolation(std::string("link conservation: ") + dir +
                            " used " + std::to_string(flits) +
                            " flits for only " + std::to_string(bytes) +
                            " bytes (empty flits)");
    }
}

void
checkOnce(System &sys, LinkWatermark *wm)
{
    // MESI inclusion + L3-directory agreement.
    const std::string cache_v = sys.caches().invariantViolation();
    if (!cache_v.empty())
        throw FuzzViolation("cache invariant: " + cache_v);

    // PIM-directory holder bookkeeping, every PMU bank.
    for (unsigned s = 0; s < sys.pmu().pmuShards(); ++s) {
        const std::string dir_v =
            sys.pmu().directoryBank(s).probeViolation();
        if (!dir_v.empty()) {
            throw FuzzViolation(
                sys.pmu().pmuShards() == 1
                    ? "pim directory: " + dir_v
                    : "pim directory bank " + std::to_string(s) +
                          ": " + dir_v);
        }
    }

    // Coherence-policy bookkeeping (batch tables, signature bounds).
    const std::string coh_v = sys.pmu().coherence().probeViolation();
    if (!coh_v.empty())
        throw FuzzViolation("coherence policy: " + coh_v);

    // Operand-buffer occupancy bounds.
    Pmu &pmu = sys.pmu();
    for (unsigned c = 0; c < pmu.numHostPcus(); ++c) {
        const Pcu &pcu = pmu.hostPcu(c);
        if (pcu.entriesInUse() > pcu.bufferCapacity()) {
            throw FuzzViolation(
                "host PCU " + std::to_string(c) + " occupancy " +
                std::to_string(pcu.entriesInUse()) + " exceeds capacity " +
                std::to_string(pcu.bufferCapacity()));
        }
    }
    for (unsigned v = 0; v < pmu.numMemPcus(); ++v) {
        const Pcu &pcu = pmu.memPcu(v);
        if (pcu.entriesInUse() > pcu.bufferCapacity()) {
            throw FuzzViolation(
                "mem PCU " + std::to_string(v) + " occupancy " +
                std::to_string(pcu.entriesInUse()) + " exceeds capacity " +
                std::to_string(pcu.bufferCapacity()));
        }
    }

    // Off-chip link flit/byte conservation.
    if (wm) {
        checkLinkDirection("request link", sys.mem().requestFlits(),
                           sys.mem().requestBytes(), wm->req_flits,
                           wm->req_bytes);
        checkLinkDirection("response link", sys.mem().responseFlits(),
                           sys.mem().responseBytes(), wm->res_flits,
                           wm->res_bytes);
    }

    // Offload coherence windows (Fig. 5 step ③): the target of an
    // offloaded writer PEI must stay uncached until it retires; the
    // target of an offloaded reader PEI may stay cached but clean.
    // Only eager coherence establishes these windows — a deferred
    // policy intentionally leaves stale copies cached until its
    // batch commits, so the window probes do not apply.
    if (pmu.coherence().deferred())
        return;
    for (const Addr block : pmu.memWriterBlocks()) {
        if (sys.caches().contains(block << block_shift)) {
            throw FuzzViolation(
                "stale copy: block of an in-flight memory-side writer "
                "PEI is still cached (back-invalidation skipped?)");
        }
    }
    for (const Addr block : pmu.memReaderBlocks()) {
        for (unsigned c = 0; c < sys.numCores(); ++c) {
            if (sys.caches().l1State(c, block << block_shift) ==
                    MesiState::Modified ||
                sys.caches().l2State(c, block << block_shift) ==
                    MesiState::Modified) {
                throw FuzzViolation(
                    "dirty copy: block of an in-flight memory-side "
                    "reader PEI is Modified in core " +
                    std::to_string(c) + " (back-writeback skipped?)");
            }
        }
    }
}

} // namespace

void
checkProbesNow(System &sys)
{
    checkOnce(sys, nullptr);
}

void
installProbes(System &sys, std::uint64_t every)
{
    auto wm = std::make_shared<LinkWatermark>();
    System *s = &sys;
    if (sys.shardedQueue().parallel()) {
        // A per-event boundary probe on the host queue would read
        // cross-shard state (mem-side PCUs, vault link counters)
        // while worker shards are mid-epoch.  Probe at the epoch
        // barrier instead: every shard is quiescent there, so the
        // same checks are safe (cadence becomes per-epoch; @p every
        // does not apply).
        sys.shardedQueue().setEpochProbe(
            [s, wm]() { checkOnce(*s, wm.get()); });
        return;
    }
    sys.eventQueue().setBoundaryProbe(
        [s, wm]() { checkOnce(*s, wm.get()); }, every);
}

} // namespace fuzz
} // namespace pei
