#include "fuzz_case.hh"

#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "check/golden.hh"
#include "check/probes.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "net/topology.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace fuzz
{

const char *
injectBugName(InjectBug b)
{
    switch (b) {
      case InjectBug::SkipUnlock:
        return "skip-unlock";
      case InjectBug::SkipBackInval:
        return "skip-back-inval";
      case InjectBug::SkipConflictCheck:
        return "skip-conflict-check";
      case InjectBug::None:
        break;
    }
    return "none";
}

std::uint64_t
caseSeed(std::uint64_t master_seed, std::uint64_t case_index)
{
    return mix64(master_seed ^ mix64(case_index + 1));
}

SystemConfig
fuzzConfig(unsigned config_index, std::uint64_t master_seed, ExecMode mode)
{
    SystemConfig cfg = SystemConfig::scaled(mode);

    // The draw sequence depends only on (master_seed, config_index),
    // so all four modes of a case run on identical machine geometry.
    Rng rng(mix64(master_seed ^ (0xC0F1EF1A5ULL + config_index)));

    const unsigned cores[] = {2, 4, 8};
    cfg.cores = cores[rng.below(3)];
    cfg.phys_bytes = 64ULL << 20;

    cfg.cache.l1_bytes = (rng.chance(0.5) ? 4 : 8) * 1024;
    cfg.cache.l2_bytes = (rng.chance(0.5) ? 16 : 32) * 1024;
    cfg.cache.l3_bytes = (rng.chance(0.5) ? 128 : 256) * 1024;

    cfg.hmc.num_cubes = 1;
    const unsigned vaults[] = {2, 4, 8};
    cfg.hmc.vaults_per_cube = vaults[rng.below(3)];

    const unsigned dir[] = {16, 64, 256, 2048};
    cfg.pim.directory_entries = dir[rng.below(4)];
    const unsigned bufs[] = {2, 4, 8};
    cfg.pim.pcu.operand_buffer_entries = bufs[rng.below(3)];

    cfg.core.window = rng.chance(0.5) ? 16 : 64;
    cfg.pim.balanced_dispatch = rng.chance(0.5);

    // Backend draw comes last so the earlier draw sequence (and thus
    // every pre-existing fuzzed geometry) is unchanged.  hmc appears
    // twice: it has the most machinery to exercise.
    static const char *const kinds[] = {"hmc", "ddr", "ideal", "hmc"};
    cfg.mem_backend = kinds[rng.below(4)];
    // The alternative backends mirror the drawn vault count so case
    // behavior is comparable across backends.
    cfg.ddr.channels = cfg.hmc.vaults_per_cube;
    cfg.ideal_mem.pim_units = cfg.hmc.vaults_per_cube;

    // Coherence draws come last for the same replay-stability
    // reason: every draw above (and thus every pre-existing fuzzed
    // geometry and backend) is unchanged.  Small signatures and
    // batches crank up speculation pressure (aliasing, frequent
    // commits) on the lazy policy; eager ignores them.
    static const char *const policies[] = {"eager", "lazy"};
    cfg.pim.coherence.policy = policies[rng.below(2)];
    cfg.pim.coherence.signature_bits = rng.chance(0.5) ? 64 : 256;
    cfg.pim.coherence.batch_peis = rng.chance(0.5) ? 4 : 16;

    // Interconnect and PMU-sharding draws appended after everything
    // else (same replay-stability rule as the backend and coherence
    // draws above).  Chain appears twice: it is the paper default and
    // the byte-identity baseline; cube counts stay small so the
    // golden cross-check stays fast.
    static const char *const topos[] = {"chain", "ring", "mesh",
                                        "chain"};
    const bool topo_ok =
        parseTopology(topos[rng.below(4)], cfg.hmc.topology);
    fatal_if(!topo_ok, "fuzzConfig drew an unknown topology");
    const unsigned cube_counts[] = {1, 2, 4};
    cfg.hmc.num_cubes = cube_counts[rng.below(3)];
    const unsigned bank_counts[] = {1, 2, 4};
    cfg.pim.pmu_shards = bank_counts[rng.below(3)];

    // Batched-dispatch draws appended last (same replay-stability
    // rule): PMU window size and vault-PCU issue-queue depth.
    // Window 1 / depth 0 keep the per-op dispatch path dominant in
    // the rotation; short window timeouts crank up flush pressure.
    const unsigned batches[] = {1, 4, 8};
    cfg.pim.pei_batch = batches[rng.below(3)];
    const unsigned depths[] = {0, 4, 8};
    cfg.pim.pcu.issue_queue_depth = depths[rng.below(3)];
    if (cfg.pim.pei_batch > 1)
        cfg.pim.batch_window_ticks = rng.chance(0.5) ? 64 : 256;
    return cfg;
}

namespace
{

std::string
hex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Interpret @p stream on the simulated machine (one coroutine). */
Task
interpretThread(Ctx &ctx, const std::vector<FuzzOp> &stream, Addr base,
                std::vector<PeiOutput> &rec)
{
    std::size_t pei_idx = 0;
    for (const FuzzOp &o : stream) {
        const Addr block_vaddr =
            base + static_cast<Addr>(o.block) * block_size;
        switch (o.kind) {
          case OpKind::Pei: {
            std::uint8_t input[max_operand_bytes] = {};
            const unsigned in_size = fillInput(o.op, o.value, input);
            const Addr target = block_vaddr + peiOffset(o);
            PeiOutput *slot = &rec[pei_idx++];
            if (o.async) {
                co_await ctx.peiAsyncCb(
                    o.op, target, input, in_size,
                    [slot](const PimPacket &pkt) {
                        std::memcpy(slot->bytes.data(), pkt.output.data(),
                                    pkt.output.size());
                        slot->size = pkt.output_size;
                    });
            } else {
                const PimPacket pkt =
                    co_await ctx.pei(o.op, target, input, in_size);
                std::memcpy(slot->bytes.data(), pkt.output.data(),
                            pkt.output.size());
                slot->size = pkt.output_size;
            }
            break;
          }
          case OpKind::Load: {
            const Addr a = block_vaddr + (o.value % 8) * 8;
            if (o.async)
                co_await ctx.loadAsync(a);
            else
                co_await ctx.load(a);
            break;
          }
          case OpKind::Store: {
            const Addr a = block_vaddr + storeOffset(o);
            ctx.fwrite<std::uint64_t>(a, o.value);
            if (o.async)
                co_await ctx.storeAsync(a);
            else
                co_await ctx.store(a);
            break;
          }
          case OpKind::Pfence:
            co_await ctx.pfence();
            break;
          case OpKind::Compute:
            co_await ctx.compute(o.value);
            break;
        }
    }
    co_await ctx.drain();
}

/**
 * Execute @p prog under @p mode and cross-check it against
 * @p golden.  Throws FuzzViolation on any divergence or invariant
 * violation, SimulationStopped on watchdog cancellation.
 */
void
runOneMode(const FuzzProgram &prog, const GoldenResult &golden,
           ExecMode mode, const FuzzCaseId &id, const FuzzOptions &opt,
           JobCtx *jctx)
{
    SystemConfig cfg = fuzzConfig(id.config, opt.master_seed, mode);
    if (!opt.backend.empty())
        cfg.mem_backend = opt.backend;
    if (!id.backend.empty())
        cfg.mem_backend = id.backend; // a pinned reproducer wins
    if (!opt.coherence.empty())
        cfg.pim.coherence.policy = opt.coherence;
    if (!id.coherence.empty())
        cfg.pim.coherence.policy = id.coherence;
    if (opt.inject == InjectBug::SkipConflictCheck)
        cfg.pim.coherence.policy = "lazy"; // the injection's target
    const auto applyTopology = [&cfg](const std::string &name) {
        const bool known = parseTopology(name, cfg.hmc.topology);
        fatal_if(!known, "simfuzz: unknown topology '%s'", name.c_str());
    };
    if (!opt.topology.empty())
        applyTopology(opt.topology);
    if (!id.topology.empty())
        applyTopology(id.topology); // a pinned reproducer wins
    if (opt.cubes)
        cfg.hmc.num_cubes = opt.cubes;
    if (id.cubes)
        cfg.hmc.num_cubes = id.cubes;
    if (opt.pmu_shards)
        cfg.pim.pmu_shards = opt.pmu_shards;
    if (id.pmu_shards)
        cfg.pim.pmu_shards = id.pmu_shards;
    if (opt.pei_batch)
        cfg.pim.pei_batch = opt.pei_batch;
    if (id.pei_batch)
        cfg.pim.pei_batch = id.pei_batch;
    if (opt.queue_depth >= 0) {
        cfg.pim.pcu.issue_queue_depth =
            static_cast<unsigned>(opt.queue_depth);
    }
    if (id.queue_depth >= 0) {
        cfg.pim.pcu.issue_queue_depth =
            static_cast<unsigned>(id.queue_depth);
    }
    cfg.shards = opt.shards;
    System sys(cfg);
    std::optional<WatchGuard> guard;
    if (jctx)
        guard.emplace(*jctx, sys.eventQueue());

    switch (opt.inject) {
      case InjectBug::SkipUnlock:
        // Every bank: the faulted case must trip whichever bank the
        // program's first released block happens to live in.
        for (unsigned s = 0; s < sys.pmu().pmuShards(); ++s)
            sys.pmu().directoryBank(s).injectSkipRelease(1);
        break;
      case InjectBug::SkipBackInval:
        sys.caches().injectSkipBackInvalidate(1);
        break;
      case InjectBug::SkipConflictCheck:
        sys.pmu().coherence().injectSkipConflictCheck(1);
        break;
      case InjectBug::None:
        break;
    }

    installProbes(sys, opt.probe_every);

    Runtime rt(sys);
    const std::uint64_t footprint = prog.init_image.size();
    const Addr base = rt.alloc(footprint);
    sys.memory().writeBytes(base, prog.init_image.data(), footprint);

    // Output slots are preallocated so async completion callbacks
    // hold stable addresses for the whole simulation.
    std::vector<std::vector<PeiOutput>> rec(prog.streams.size());
    for (std::size_t ti = 0; ti < prog.streams.size(); ++ti) {
        std::size_t peis = 0;
        for (const FuzzOp &o : prog.streams[ti])
            peis += o.kind == OpKind::Pei;
        rec[ti].resize(peis);
    }

    const unsigned nthreads =
        static_cast<unsigned>(prog.streams.size());
    if (nthreads > 0) {
        rt.spawnThreads(nthreads, [&](Ctx &ctx, unsigned t, unsigned) {
            return interpretThread(ctx, prog.streams[t], base, rec[t]);
        });
    }

    // Drive the loop by hand instead of Runtime::run(): a fuzz case
    // must report deadlock and livelock as FuzzViolations, not abort
    // the whole sweep via panic().
    EventQueue &eq = sys.eventQueue();
    ShardedQueue &sq = sys.shardedQueue();
    const std::uint64_t budget = 200000 + 4000 * prog.totalOps();
    if (sq.parallel()) {
        // Epoch-driven variant: runEpoch() == 0 means every shard
        // and mailbox is drained — or the host broke on a stop
        // request mid-epoch, so re-check the flag before calling it
        // a deadlock.  Worker-shard exceptions (panics, violations)
        // rethrow from runEpoch on this thread.
        while (!rt.allDone()) {
            if (sq.stopRequested())
                throw SimulationStopped();
            if (sq.executedCount() > budget) {
                throw FuzzViolation(
                    "event budget exceeded (" + std::to_string(budget) +
                    " events for " + std::to_string(prog.totalOps()) +
                    " ops): hang or livelock");
            }
            if (sq.runEpoch() == 0) {
                if (sq.stopRequested())
                    throw SimulationStopped();
                throw FuzzViolation(
                    "deadlock: unfinished thread(s) with every shard "
                    "drained");
            }
        }
        while (sq.runEpoch() != 0) {
            if (sq.stopRequested())
                throw SimulationStopped();
            if (sq.executedCount() > budget)
                throw FuzzViolation(
                    "event budget exceeded while settling");
        }
    } else {
        while (!rt.allDone()) {
            if (eq.stopRequested())
                throw SimulationStopped();
            if (eq.executedCount() > budget) {
                throw FuzzViolation(
                    "event budget exceeded (" + std::to_string(budget) +
                    " events for " + std::to_string(prog.totalOps()) +
                    " ops): hang or livelock");
            }
            if (!eq.runOne()) {
                throw FuzzViolation(
                    "deadlock: unfinished thread(s) with an empty event "
                    "queue");
            }
        }
        while (eq.runOne()) {
            if (eq.stopRequested())
                throw SimulationStopped();
            if (eq.executedCount() > budget)
                throw FuzzViolation(
                    "event budget exceeded while settling");
        }
    }

    // Quiesce-time invariants: probes once more, then the registered
    // stat invariants (PEI conservation, back-op conservation, ...).
    checkProbesNow(sys);
    const auto audit = sys.stats().audit();
    if (!audit.empty()) {
        std::string what = "stats audit:";
        for (const std::string &v : audit)
            what += " [" + v + "]";
        throw FuzzViolation(what);
    }

    // Mode sanity: fixed-placement modes must not use the other side.
    if (mode == ExecMode::HostOnly && sys.pmu().peisMem() != 0) {
        throw FuzzViolation("mode sanity: Host-Only executed " +
                            std::to_string(sys.pmu().peisMem()) +
                            " PEI(s) in memory");
    }
    // PIM-Only tolerates exactly the vault-spanning multi-block runs
    // the decision stage is required to force host-side.
    if (mode == ExecMode::PimOnly && sys.mem().supportsPim() &&
        sys.pmu().peisHost() != sys.pmu().peisSpanHost()) {
        throw FuzzViolation("mode sanity: PIM-Only executed " +
                            std::to_string(sys.pmu().peisHost()) +
                            " PEI(s) on the host, " +
                            std::to_string(sys.pmu().peisSpanHost()) +
                            " vault-spanning");
    }

    // Differential check 1: final footprint bytes.
    std::vector<std::uint8_t> got(footprint);
    sys.memory().readBytes(base, got.data(), footprint);
    for (std::uint64_t i = 0; i < footprint; ++i) {
        if (got[i] == golden.image[i])
            continue;
        throw FuzzViolation(
            "memory divergence at block " +
            std::to_string(i / block_size) + " offset " +
            std::to_string(i % block_size) + ": simulated " +
            hex(got[i]) + " != golden " + hex(golden.image[i]));
    }

    // Differential check 2: every reader-PEI output operand.
    for (std::size_t ti = 0; ti < rec.size(); ++ti) {
        for (std::size_t k = 0; k < rec[ti].size(); ++k) {
            const PeiOutput &sim = rec[ti][k];
            const PeiOutput &ref = golden.outputs[ti][k];
            if (sim.size == ref.size &&
                std::memcmp(sim.bytes.data(), ref.bytes.data(),
                            ref.size) == 0) {
                continue;
            }
            throw FuzzViolation(
                "output divergence: thread " + std::to_string(ti) +
                " PEI #" + std::to_string(k) + " returned " +
                std::to_string(sim.size) + " byte(s), golden expects " +
                std::to_string(ref.size) + " byte(s)" +
                (sim.size == ref.size ? " with different contents"
                                      : ""));
        }
    }
}

} // namespace

std::string
FuzzCaseResult::summary() const
{
    if (failures.empty())
        return "";
    std::ostringstream os;
    os << "case seed=" << hex(id.seed) << " config=" << id.config;
    if (!id.backend.empty())
        os << " backend=" << id.backend;
    if (!id.coherence.empty())
        os << " coherence=" << id.coherence;
    if (!id.topology.empty() && id.topology != "chain")
        os << " topology=" << id.topology;
    if (id.cubes > 1)
        os << " cubes=" << id.cubes;
    if (id.pmu_shards > 1)
        os << " pmu_shards=" << id.pmu_shards;
    if (id.pei_batch > 1)
        os << " pei_batch=" << id.pei_batch;
    if (id.queue_depth > 0)
        os << " queue_depth=" << id.queue_depth;
    if (id.prefix != full_prefix)
        os << " prefix=" << id.prefix;
    if (id.thread_mask != 0xffffffffu)
        os << " mask=" << hex(id.thread_mask);
    os << " (" << total_ops << " ops): [" << execModeName(failures[0].mode)
       << "] " << failures[0].what;
    if (failures.size() > 1)
        os << " (+" << failures.size() - 1 << " more mode(s))";
    return os.str();
}

FuzzCaseResult
runFuzzCase(const FuzzCaseId &id, const FuzzOptions &opt, JobCtx *ctx)
{
    FuzzCaseResult res;
    res.id = id;

    // Pin the effective backend into the result's identity so any
    // reproducer replays on the same backend regardless of future
    // changes to the drawing scheme.
    if (res.id.backend.empty()) {
        res.id.backend =
            !opt.backend.empty()
                ? opt.backend
                : fuzzConfig(id.config, opt.master_seed,
                             ExecMode::HostOnly)
                      .mem_backend;
    }
    // The coherence policy is pinned the same way (the conflict-check
    // injection targets lazy, so it forces the pin).
    if (res.id.coherence.empty()) {
        res.id.coherence =
            opt.inject == InjectBug::SkipConflictCheck ? "lazy"
            : !opt.coherence.empty()
                ? opt.coherence
                : fuzzConfig(id.config, opt.master_seed,
                             ExecMode::HostOnly)
                      .pim.coherence.policy;
    }
    // So are the interconnect topology, cube count, and PMU banks.
    {
        const SystemConfig drawn =
            fuzzConfig(id.config, opt.master_seed, ExecMode::HostOnly);
        if (res.id.topology.empty()) {
            res.id.topology = !opt.topology.empty()
                                  ? opt.topology
                                  : topologyName(drawn.hmc.topology);
        }
        if (!res.id.cubes)
            res.id.cubes = opt.cubes ? opt.cubes : drawn.hmc.num_cubes;
        if (!res.id.pmu_shards) {
            res.id.pmu_shards =
                opt.pmu_shards ? opt.pmu_shards : drawn.pim.pmu_shards;
        }
        if (!res.id.pei_batch) {
            res.id.pei_batch =
                opt.pei_batch ? opt.pei_batch : drawn.pim.pei_batch;
        }
        if (res.id.queue_depth < 0) {
            res.id.queue_depth =
                opt.queue_depth >= 0
                    ? opt.queue_depth
                    : static_cast<int>(drawn.pim.pcu.issue_queue_depth);
        }
    }

    const FuzzProgram prog =
        generateProgram(id.seed, id.prefix, id.thread_mask);
    res.total_ops = prog.totalOps();
    const GoldenResult golden = runGolden(prog);

    static constexpr ExecMode modes[] = {
        ExecMode::HostOnly,
        ExecMode::PimOnly,
        ExecMode::IdealHost,
        ExecMode::LocalityAware,
    };
    for (const ExecMode mode : modes) {
        try {
            runOneMode(prog, golden, mode, id, opt, ctx);
        } catch (const SimulationStopped &) {
            throw; // watchdog cancellation is the sweep's business
        } catch (const std::exception &e) {
            res.failures.push_back({mode, e.what()});
        }
    }
    return res;
}

namespace
{

/** Length of the longest (truncated) stream of @p id's program. */
std::size_t
longestStream(const FuzzCaseId &id)
{
    const FuzzProgram p =
        generateProgram(id.seed, id.prefix, id.thread_mask);
    std::size_t longest = 0;
    for (const auto &s : p.streams)
        longest = std::max(longest, s.size());
    return longest;
}

} // namespace

FuzzCaseResult
shrinkCase(const FuzzCaseId &failing, const FuzzOptions &opt,
           std::size_t max_trials)
{
    std::size_t trials = 0;
    const auto fails = [&](const FuzzCaseId &id, FuzzCaseResult &out) {
        ++trials;
        out = runFuzzCase(id, opt, nullptr);
        return !out.ok();
    };

    FuzzCaseId best = failing;
    FuzzCaseResult best_res;
    if (!fails(best, best_res))
        return best_res; // did not reproduce; caller inspects ok()

    bool progress = true;
    while (progress && trials < max_trials) {
        progress = false;

        // Phase 1: halve the per-thread prefix while still failing.
        while (trials < max_trials) {
            const std::size_t longest = longestStream(best);
            if (longest <= 1)
                break;
            FuzzCaseId trial = best;
            trial.prefix = longest / 2;
            FuzzCaseResult r;
            if (!fails(trial, r))
                break;
            best = trial;
            best_res = std::move(r);
            progress = true;
        }

        // Phase 2: drop whole threads while still failing.  Thread
        // streams are seeded independently, so clearing a mask bit
        // leaves every surviving stream byte-identical.
        const FuzzProgram cur =
            generateProgram(best.seed, best.prefix, best.thread_mask);
        for (const unsigned t : cur.thread_ids) {
            if (trials >= max_trials)
                break;
            FuzzCaseId trial = best;
            trial.thread_mask = best.thread_mask & ~(1u << t);
            FuzzCaseResult r;
            if (fails(trial, r)) {
                best = trial;
                best_res = std::move(r);
                progress = true;
            }
        }
    }
    return best_res;
}

std::string
replayFileContents(const FuzzCaseId &id, const FuzzOptions &opt)
{
    std::ostringstream os;
    os << "# simfuzz reproducer (replay with: simfuzz --replay-file "
          "<this file>)\n";
    os << "master_seed=" << opt.master_seed << "\n";
    os << "configs=" << opt.num_configs << "\n";
    os << "probe_every=" << opt.probe_every << "\n";
    os << "inject=" << injectBugName(opt.inject) << "\n";
    if (opt.shards > 1)
        os << "shards=" << opt.shards << "\n";
    os << "seed=" << hex(id.seed) << "\n";
    os << "config=" << id.config << "\n";
    if (id.prefix == full_prefix)
        os << "prefix=full\n";
    else
        os << "prefix=" << id.prefix << "\n";
    os << "thread_mask=" << hex(id.thread_mask) << "\n";
    if (!id.backend.empty())
        os << "backend=" << id.backend << "\n";
    if (!id.coherence.empty())
        os << "coherence=" << id.coherence << "\n";
    if (!id.topology.empty())
        os << "topology=" << id.topology << "\n";
    if (id.cubes)
        os << "cubes=" << id.cubes << "\n";
    if (id.pmu_shards)
        os << "pmu_shards=" << id.pmu_shards << "\n";
    if (id.pei_batch)
        os << "pei_batch=" << id.pei_batch << "\n";
    if (id.queue_depth >= 0)
        os << "queue_depth=" << id.queue_depth << "\n";
    return os.str();
}

bool
parseReplayFile(const std::string &text, FuzzCaseId &id, FuzzOptions &opt)
{
    std::istringstream is(text);
    std::string line;
    bool saw_seed = false;
    while (std::getline(is, line)) {
        const std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        const std::size_t eq = line.find('=', start);
        if (eq == std::string::npos)
            return false;
        const std::string key = line.substr(start, eq - start);
        const std::string value = line.substr(eq + 1);
        try {
            if (key == "master_seed") {
                opt.master_seed = std::stoull(value, nullptr, 0);
            } else if (key == "configs") {
                opt.num_configs =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else if (key == "probe_every") {
                opt.probe_every = std::stoull(value, nullptr, 0);
            } else if (key == "shards") {
                opt.shards =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else if (key == "inject") {
                if (value == "none")
                    opt.inject = InjectBug::None;
                else if (value == "skip-unlock")
                    opt.inject = InjectBug::SkipUnlock;
                else if (value == "skip-back-inval")
                    opt.inject = InjectBug::SkipBackInval;
                else if (value == "skip-conflict-check")
                    opt.inject = InjectBug::SkipConflictCheck;
                else
                    return false;
            } else if (key == "seed") {
                id.seed = std::stoull(value, nullptr, 0);
                saw_seed = true;
            } else if (key == "config") {
                id.config =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else if (key == "prefix") {
                id.prefix = value == "full"
                                ? full_prefix
                                : std::stoull(value, nullptr, 0);
            } else if (key == "thread_mask") {
                id.thread_mask = static_cast<std::uint32_t>(
                    std::stoul(value, nullptr, 0));
            } else if (key == "backend") {
                id.backend = value;
            } else if (key == "coherence") {
                id.coherence = value;
            } else if (key == "topology") {
                id.topology = value;
            } else if (key == "cubes") {
                id.cubes =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else if (key == "pmu_shards") {
                id.pmu_shards =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else if (key == "pei_batch") {
                id.pei_batch =
                    static_cast<unsigned>(std::stoul(value, nullptr, 0));
            } else if (key == "queue_depth") {
                id.queue_depth =
                    static_cast<int>(std::stol(value, nullptr, 0));
            } else {
                return false;
            }
        } catch (const std::exception &) {
            return false;
        }
    }
    return saw_seed;
}

std::string
replayCommand(const FuzzCaseId &id, const FuzzOptions &opt)
{
    std::ostringstream os;
    os << "simfuzz --replay-seed " << hex(id.seed) << " --replay-config "
       << id.config;
    if (id.prefix != full_prefix)
        os << " --replay-prefix " << id.prefix;
    if (id.thread_mask != 0xffffffffu)
        os << " --replay-mask " << hex(id.thread_mask);
    if (!id.backend.empty())
        os << " --replay-backend " << id.backend;
    if (!id.coherence.empty())
        os << " --replay-coherence " << id.coherence;
    if (!id.topology.empty())
        os << " --replay-topology " << id.topology;
    if (id.cubes)
        os << " --replay-cubes " << id.cubes;
    if (id.pmu_shards)
        os << " --replay-pmu-shards " << id.pmu_shards;
    if (id.pei_batch)
        os << " --replay-batch " << id.pei_batch;
    if (id.queue_depth >= 0)
        os << " --replay-queue-depth " << id.queue_depth;
    os << " --master-seed " << opt.master_seed << " --configs "
       << opt.num_configs;
    if (opt.inject != InjectBug::None)
        os << " --inject-bug " << injectBugName(opt.inject);
    if (opt.shards > 1)
        os << " --shards " << opt.shards;
    return os.str();
}

} // namespace fuzz
} // namespace pei
