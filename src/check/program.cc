#include "program.hh"

#include <algorithm>
#include <cstring>

#include "common/rng.hh"

namespace pei
{
namespace fuzz
{

namespace
{

/** Reader opcodes (never modify memory; target the RO region). */
const PeiOpcode reader_ops[] = {PeiOpcode::HashProbe, PeiOpcode::HistBinIdx,
                                PeiOpcode::EuclidDist,
                                PeiOpcode::DotProduct};

/** Commutative writer op classes a shared block can be tagged with. */
const PeiOpcode writer_classes[] = {PeiOpcode::Inc64, PeiOpcode::Min64,
                                    PeiOpcode::FaddDouble};

void
initBlock(std::uint8_t *block, PeiOpcode cls, Rng &rng)
{
    std::memset(block, 0, block_size);
    switch (cls) {
      case PeiOpcode::Inc64: {
        const std::uint64_t v = rng.below(1000);
        std::memcpy(block, &v, 8);
        break;
      }
      case PeiOpcode::Min64: {
        const std::uint64_t v = 500 + rng.below(1u << 20);
        std::memcpy(block, &v, 8);
        break;
      }
      case PeiOpcode::FaddDouble: {
        const double v =
            static_cast<double>(static_cast<std::int64_t>(rng.below(2001)) -
                                1000);
        std::memcpy(block, &v, 8);
        break;
      }
      default:
        break;
    }
}

} // namespace

unsigned
fillInput(PeiOpcode op, std::uint64_t value, std::uint8_t *out)
{
    switch (op) {
      case PeiOpcode::Inc64:
        return 0;
      case PeiOpcode::Min64: {
        // Varied magnitudes so some mins take effect and some don't.
        const std::uint64_t v = mix64(value) >> (value % 33);
        std::memcpy(out, &v, 8);
        return 8;
      }
      case PeiOpcode::FaddDouble: {
        // Integral-valued deltas: double addition is exact, hence
        // commutative, hence order-independent across threads.
        const double d = static_cast<double>(
            static_cast<std::int64_t>(mix64(value) % 2001) - 1000);
        std::memcpy(out, &d, 8);
        return 8;
      }
      case PeiOpcode::HashProbe: {
        // Small key space: probes hit initialized bucket keys often.
        const std::uint64_t key = mix64(value) % 16;
        std::memcpy(out, &key, 8);
        return 8;
      }
      case PeiOpcode::HistBinIdx: {
        out[0] = static_cast<std::uint8_t>(mix64(value) % 25);
        return 1;
      }
      case PeiOpcode::EuclidDist: {
        for (unsigned i = 0; i < 16; ++i) {
            const float f = static_cast<float>(
                static_cast<std::int64_t>(mix64(value + i) % 201) - 100);
            std::memcpy(out + 4 * i, &f, 4);
        }
        return 64;
      }
      case PeiOpcode::DotProduct: {
        for (unsigned i = 0; i < 4; ++i) {
            const double d = static_cast<double>(
                static_cast<std::int64_t>(mix64(value + i) % 201) - 100);
            std::memcpy(out + 8 * i, &d, 8);
        }
        return 32;
      }
      case PeiOpcode::Gather: {
        // Multi-block params are packed into the op's value at
        // generation time (bits 0..2 = count-1, bit 3 = in-block
        // 8 B stride vs block stride), so the decode needs no
        // program context.
        const GatherIn in{(value & 8) ? 8 : block_size,
                          (value & 7) + 1};
        std::memcpy(out, &in, sizeof(in));
        return sizeof(in);
      }
      case PeiOpcode::Scatter: {
        // Wrapping u64 addend: scatter-adds commute with each other
        // and with Inc64 increments, so any interleaving converges.
        const ScatterIn in{(value & 8) ? 8 : block_size,
                           (value & 7) + 1, mix64(value >> 4)};
        std::memcpy(out, &in, sizeof(in));
        return sizeof(in);
      }
      default:
        return 0;
    }
}

unsigned
peiOffset(const FuzzOp &o)
{
    // DotProduct touches 32 bytes, the only op whose target fits at
    // two distinct in-block positions; everything else targets the
    // block base (writers share the u64/double slot at offset 0).
    if (o.op == PeiOpcode::DotProduct && o.kind == OpKind::Pei)
        return (o.value & 1) ? 32 : 0;
    return 0;
}

unsigned
storeOffset(const FuzzOp &o)
{
    return static_cast<unsigned>((o.value >> 8) % 8) * 8;
}

FuzzProgram
generateProgram(std::uint64_t seed, std::size_t prefix,
                std::uint32_t thread_mask)
{
    FuzzProgram p;
    p.seed = seed;
    p.prefix = prefix;
    p.thread_mask = thread_mask;

    // Layout: derived from the seed alone, so prefix/mask replays
    // keep footprint addresses and the initial image byte-stable.
    Rng layout_rng(mix64(seed ^ 0x10ca11717e57ULL));
    p.threads_total = 1 + static_cast<unsigned>(layout_rng.below(16));
    p.contended = layout_rng.chance(0.5);
    p.ro_blocks = 1 + static_cast<std::uint32_t>(layout_rng.below(8));
    p.shared_blocks = 1 + static_cast<std::uint32_t>(layout_rng.below(8));
    p.priv_blocks_per_thread = 2;
    p.total_blocks = p.ro_blocks + p.shared_blocks +
                     p.threads_total * p.priv_blocks_per_thread;

    p.shared_class.resize(p.shared_blocks);
    for (auto &cls : p.shared_class)
        cls = writer_classes[layout_rng.below(3)];

    // Initial image: read-only blocks hold 8 small u64s apiece (valid
    // hash buckets with occasionally-overflowing counts, denormal
    // floats/doubles for the vector readers — never NaN); shared
    // writer blocks hold their class's accumulator at offset 0;
    // private blocks start zeroed.
    p.init_image.assign(
        static_cast<std::size_t>(p.total_blocks) * block_size, 0);
    for (std::uint32_t b = 0; b < p.ro_blocks; ++b) {
        for (unsigned i = 0; i < 8; ++i) {
            const std::uint64_t v = layout_rng.below(16);
            std::memcpy(&p.init_image[b * block_size + 8 * i], &v, 8);
        }
    }
    for (std::uint32_t s = 0; s < p.shared_blocks; ++s) {
        initBlock(&p.init_image[(p.ro_blocks + s) * block_size],
                  p.shared_class[s], layout_rng);
    }

    // Per-thread streams: each thread draws from its own generator,
    // so dropping a thread does not perturb the others' streams.
    for (unsigned t = 0; t < p.threads_total && t < 32; ++t) {
        if (!(thread_mask & (1u << t)))
            continue;
        p.thread_ids.push_back(t);
        Rng rng(mix64(seed ^ (0x7157ead5ULL + 0x9E3779B97F4A7C15ULL * t)));

        // Shared writer blocks this thread may target: all of them
        // when contended, a round-robin-owned subset when disjoint.
        std::vector<std::uint32_t> writable;
        for (std::uint32_t s = 0; s < p.shared_blocks; ++s) {
            if (p.contended || s % p.threads_total == t)
                writable.push_back(s);
        }

        const std::size_t len = 4 + rng.below(29);
        std::vector<FuzzOp> stream;
        stream.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            FuzzOp o;
            o.value = rng.next();
            o.async = rng.chance(0.5);
            const std::uint64_t r = rng.below(100);
            if (r < 45) {
                o.kind = OpKind::Pei;
                const bool writer = !writable.empty() && rng.chance(0.5);
                // Multi-block upgrades are decided from bits of the
                // already-drawn value — no extra rng draws, so every
                // other op of every existing seed is unchanged.  The
                // chosen count/stride are packed back into value
                // (bits 0..2 = count-1, bit 3 = in-block stride) for
                // fillInput to decode context-free.
                if (writer) {
                    const std::uint32_t s = writable[static_cast<
                        std::size_t>(rng.below(writable.size()))];
                    o.op = p.shared_class[s];
                    o.block = p.sharedBlockIndex(s);
                    // Scatter-add commutes only with Inc64-class
                    // writers, so only Inc64 targets are eligible; a
                    // block-strided run must stay inside consecutive
                    // Inc64-class blocks this thread may write.
                    if ((o.value >> 56) % 4 == 0 &&
                        p.shared_class[s] == PeiOpcode::Inc64) {
                        const bool in_block = (o.value >> 55) & 1;
                        std::uint64_t limit = max_pei_target_blocks;
                        if (!in_block) {
                            limit = 0;
                            for (std::uint32_t t = s;
                                 t < p.shared_blocks &&
                                 limit < max_pei_target_blocks &&
                                 p.shared_class[t] == PeiOpcode::Inc64 &&
                                 std::find(writable.begin(),
                                           writable.end(),
                                           t) != writable.end();
                                 ++t)
                            {
                                ++limit;
                            }
                        }
                        const std::uint64_t count =
                            1 + (o.value >> 40) % limit;
                        o.op = PeiOpcode::Scatter;
                        o.value = (o.value & ~std::uint64_t{0xf}) |
                                  (in_block ? 8 : 0) | (count - 1);
                    }
                } else {
                    o.op = reader_ops[rng.below(4)];
                    o.block =
                        static_cast<std::uint32_t>(rng.below(p.ro_blocks));
                    // Gather runs over read-only blocks: always safe,
                    // capped at the end of the RO region.
                    if ((o.value >> 56) % 4 == 1) {
                        const bool in_block = (o.value >> 55) & 1;
                        const std::uint64_t limit =
                            in_block ? max_pei_target_blocks
                                     : std::min<std::uint64_t>(
                                           max_pei_target_blocks,
                                           p.ro_blocks - o.block);
                        const std::uint64_t count =
                            1 + (o.value >> 40) % limit;
                        o.op = PeiOpcode::Gather;
                        o.value = (o.value & ~std::uint64_t{0xf}) |
                                  (in_block ? 8 : 0) | (count - 1);
                    }
                }
            } else if (r < 65) {
                o.kind = OpKind::Load;
                // Read-only region or an own private block — never a
                // shared writer block, whose cached state is governed
                // by the offloaded-writer probe.
                if (rng.chance(0.7)) {
                    o.block =
                        static_cast<std::uint32_t>(rng.below(p.ro_blocks));
                } else {
                    o.block = p.privBlockIndex(
                        t, static_cast<std::uint32_t>(
                               rng.below(p.priv_blocks_per_thread)));
                }
            } else if (r < 80) {
                o.kind = OpKind::Store;
                o.block = p.privBlockIndex(
                    t, static_cast<std::uint32_t>(
                           rng.below(p.priv_blocks_per_thread)));
            } else if (r < 88) {
                o.kind = OpKind::Pfence;
            } else {
                o.kind = OpKind::Compute;
                o.value = 1 + o.value % 300;
            }
            stream.push_back(o);
        }
        if (prefix < stream.size())
            stream.resize(prefix);
        p.streams.push_back(std::move(stream));
    }
    return p;
}

} // namespace fuzz
} // namespace pei
