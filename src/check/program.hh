/**
 * @file
 * simfuzz program generator: seeded random PEI/load/store/pfence
 * streams whose cross-thread-visible effects are *commutative by
 * construction*, so every legal serialization collapses to a single
 * observable outcome and a sequential golden model can check any
 * simulated interleaving exactly (see DESIGN.md, "Golden-model
 * methodology").
 *
 * The footprint is partitioned into three regions:
 *  - read-only blocks, targeted by reader PEIs (HashProbe,
 *    HistBinIdx, EuclidDist, DotProduct, multi-block Gather runs)
 *    and plain loads — never written, so reader outputs depend only
 *    on the initial image;
 *  - shared writer blocks, each tagged with exactly one commutative
 *    op class (Inc64, Min64, or exact integral FaddDouble) and only
 *    ever targeted by writer PEIs of that class; multi-block
 *    Scatter runs (wrapping u64 adds, which commute with Inc64)
 *    additionally target consecutive Inc64-class blocks;
 *  - private per-thread blocks, targeted by plain stores and loads
 *    of their owning thread only.
 *
 * Replay is (seed, prefix-length, thread-mask): the full program is
 * always regenerated from the seed, then each thread's stream is
 * truncated to the prefix and masked-out threads are dropped, so a
 * minimized case is byte-stable across machines.
 */

#ifndef PEISIM_CHECK_PROGRAM_HH
#define PEISIM_CHECK_PROGRAM_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hh"
#include "pim/pei_op.hh"

namespace pei
{
namespace fuzz
{

/** SplitMix64 finalizer: the deterministic value/seed scrambler. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** One step of a generated thread stream. */
enum class OpKind : std::uint8_t
{
    Pei,    ///< a PEI of FuzzOp::op targeting FuzzOp::block
    Load,   ///< plain timing load (read-only or own private block)
    Store,  ///< plain store to an own private block (fwrite + store)
    Pfence, ///< PIM memory fence
    Compute ///< computation burst (perturbs timing only)
};

struct FuzzOp
{
    OpKind kind = OpKind::Compute;
    PeiOpcode op = PeiOpcode::Inc64; ///< Pei only
    std::uint32_t block = 0; ///< footprint block index (Pei/Load/Store)
    std::uint64_t value = 0; ///< operand seed / store value / cycles
    bool async = false;      ///< async vs. blocking issue style

    bool operator==(const FuzzOp &) const = default;
};

/** Marker for "no truncation" (run every generated op). */
inline constexpr std::size_t full_prefix =
    std::numeric_limits<std::size_t>::max();

/** A complete generated program plus its footprint description. */
struct FuzzProgram
{
    std::uint64_t seed = 0;
    std::size_t prefix = full_prefix;
    std::uint32_t thread_mask = 0xffffffffu;

    unsigned threads_total = 0;       ///< generated (pre-mask) threads
    std::vector<unsigned> thread_ids; ///< included generator thread ids
    bool contended = false; ///< shared writer blocks open to all threads

    std::uint32_t ro_blocks = 0;
    std::uint32_t shared_blocks = 0;
    std::uint32_t priv_blocks_per_thread = 0;
    std::uint32_t total_blocks = 0;

    /** Op class of each shared writer block (Inc64/Min64/FaddDouble). */
    std::vector<PeiOpcode> shared_class;

    /** Initial bytes of the whole footprint (total_blocks blocks). */
    std::vector<std::uint8_t> init_image;

    /** Truncated streams, aligned with thread_ids. */
    std::vector<std::vector<FuzzOp>> streams;

    std::uint32_t sharedBlockIndex(std::uint32_t i) const
    {
        return ro_blocks + i;
    }

    std::uint32_t
    privBlockIndex(unsigned thread_id, std::uint32_t j) const
    {
        return ro_blocks + shared_blocks +
               thread_id * priv_blocks_per_thread + j;
    }

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &s : streams)
            n += s.size();
        return n;
    }
};

/**
 * Generate the program for @p seed, truncate every thread's stream
 * to @p prefix ops, and drop threads whose bit is clear in
 * @p thread_mask.  Layout and initial image depend only on the seed.
 */
FuzzProgram generateProgram(std::uint64_t seed,
                            std::size_t prefix = full_prefix,
                            std::uint32_t thread_mask = 0xffffffffu);

/**
 * Materialize the input operand of @p op from the op's value seed
 * into @p out (at least max_operand_bytes large); returns the
 * operand size.  Shared between the simulator-side interpreter and
 * the golden model so both feed byte-identical inputs.
 */
unsigned fillInput(PeiOpcode op, std::uint64_t value, std::uint8_t *out);

/** Byte offset of @p o's target within its block (0 except for
 *  DotProduct, which exercises both in-block positions). */
unsigned peiOffset(const FuzzOp &o);

/** Byte offset of a plain store within its private block. */
unsigned storeOffset(const FuzzOp &o);

} // namespace fuzz
} // namespace pei

#endif // PEISIM_CHECK_PROGRAM_HH
