/**
 * @file
 * simfuzz case runner: one *case* = one generated program executed
 * under all four execution modes (Host-Only / PIM-Only / Ideal-Host
 * / Locality-Aware) on one fuzzed SystemConfig, with mid-simulation
 * invariant probes armed, and cross-checked against the sequential
 * golden model (final footprint bytes + every reader-PEI output).
 *
 * Failures are shrunk deterministically: a minimized case is the
 * triple (seed, prefix-length, thread-mask) — never a mutated
 * stream — so the printed reproducer replays byte-stable anywhere.
 */

#ifndef PEISIM_CHECK_FUZZ_CASE_HH
#define PEISIM_CHECK_FUZZ_CASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/program.hh"
#include "driver/job.hh"
#include "runtime/system.hh"

namespace pei
{
namespace fuzz
{

/** Replayable identity of one fuzz case. */
struct FuzzCaseId
{
    std::uint64_t seed = 0;  ///< program seed
    unsigned config = 0;     ///< fuzzed-config index
    std::size_t prefix = full_prefix;
    std::uint32_t thread_mask = 0xffffffffu;
    /**
     * Memory backend the case ran on.  Empty = whatever fuzzConfig
     * draws for @ref config; runFuzzCase pins the effective choice
     * here so reproducers replay on the same backend even if the
     * drawing scheme changes later.
     */
    std::string backend;
    /**
     * Coherence policy the case ran under ("eager"/"lazy"); pinned
     * the same way as @ref backend for reproducer stability.
     */
    std::string coherence;
    /**
     * Interconnect topology the case ran on ("chain"/"ring"/"mesh");
     * pinned like @ref backend.  Empty = unpinned.
     */
    std::string topology;
    /** Memory cubes on the interconnect; 0 = unpinned. */
    unsigned cubes = 0;
    /** Address-partitioned PMU banks; 0 = unpinned. */
    unsigned pmu_shards = 0;
    /** PMU batching window size; 0 = unpinned (1 = per-op). */
    unsigned pei_batch = 0;
    /** Vault-PCU issue-queue depth; -1 = unpinned (0 = unqueued). */
    int queue_depth = -1;
};

/** Hidden fault injections validating the checker itself. */
enum class InjectBug
{
    None,
    SkipUnlock,    ///< PimDirectory skips its first release()
    SkipBackInval, ///< CacheHierarchy skips its first back-invalidation
    /** Lazy coherence skips its first commit's conflict check
     *  (forces the lazy policy on). */
    SkipConflictCheck,
};

const char *injectBugName(InjectBug b);

/** Checker-wide knobs shared by every case of a run. */
struct FuzzOptions
{
    std::uint64_t master_seed = 12345;
    unsigned num_configs = 4;     ///< fuzzed SystemConfigs in rotation
    std::uint64_t probe_every = 64; ///< probe cadence in events
    InjectBug inject = InjectBug::None;
    /** Force every case onto one backend; empty = fuzzed per config. */
    std::string backend;
    /** Force one coherence policy; empty = fuzzed per config. */
    std::string coherence;
    /** Force one topology; empty = fuzzed per config. */
    std::string topology;
    /** Force a cube count; 0 = fuzzed per config. */
    unsigned cubes = 0;
    /** Force a PMU bank count; 0 = fuzzed per config. */
    unsigned pmu_shards = 0;
    /** Force a PMU batching window size; 0 = fuzzed per config. */
    unsigned pei_batch = 0;
    /** Force a vault-PCU queue depth; -1 = fuzzed per config. */
    int queue_depth = -1;
    /**
     * Event-queue shards per simulated System (`--shards`).  1 = the
     * sequential engine; N > 1 runs every mode of every case on the
     * sharded engine, making the whole differential suite a
     * sharded-vs-golden equivalence check (architectural results are
     * interleaving-independent by generator construction).
     */
    unsigned shards = 1;
};

/** One mode's divergence/violation. */
struct ModeFailure
{
    ExecMode mode = ExecMode::HostOnly;
    std::string what;
};

struct FuzzCaseResult
{
    FuzzCaseId id;
    std::size_t total_ops = 0; ///< ops across included threads
    std::vector<ModeFailure> failures;

    bool ok() const { return failures.empty(); }

    /** One-line description of the first failure (empty when ok). */
    std::string summary() const;
};

/** Program seed of case @p case_index under @p master_seed. */
std::uint64_t caseSeed(std::uint64_t master_seed,
                       std::uint64_t case_index);

/**
 * The @p config_index-th fuzzed SystemConfig: SystemConfig::scaled
 * shrunk for speed, with cores, cache geometry, vault count,
 * directory size, operand-buffer entries, issue window, balanced
 * dispatch, and memory backend perturbed within legal ranges,
 * deterministically from @p master_seed.
 */
SystemConfig fuzzConfig(unsigned config_index, std::uint64_t master_seed,
                        ExecMode mode);

/**
 * Run one case under all four modes.  Divergences and invariant
 * violations are collected per mode in the result; SimulationStopped
 * (watchdog cancellation via @p ctx) propagates.  @p ctx may be null
 * (shrink trials rely on the deterministic event budget instead).
 */
FuzzCaseResult runFuzzCase(const FuzzCaseId &id, const FuzzOptions &opt,
                           JobCtx *ctx = nullptr);

/**
 * Minimize @p failing: repeatedly halve the prefix and drop threads
 * while the case still fails, to a fixpoint (bounded by
 * @p max_trials re-runs).  Returns the result of the smallest still-
 * failing case.
 */
FuzzCaseResult shrinkCase(const FuzzCaseId &failing,
                          const FuzzOptions &opt,
                          std::size_t max_trials = 64);

/** Serialize a reproducer (parse with parseReplayFile). */
std::string replayFileContents(const FuzzCaseId &id,
                               const FuzzOptions &opt);

/**
 * Parse @p text (key=value lines, '#' comments) into @p id/@p opt.
 * Returns false on malformed input.
 */
bool parseReplayFile(const std::string &text, FuzzCaseId &id,
                     FuzzOptions &opt);

/** The `simfuzz --replay-...` invocation reproducing @p id. */
std::string replayCommand(const FuzzCaseId &id, const FuzzOptions &opt);

} // namespace fuzz
} // namespace pei

#endif // PEISIM_CHECK_FUZZ_CASE_HH
