/**
 * @file
 * stats-v2 run records: a machine-readable JSON summary of one
 * simulation run ({config, counters, histograms, sim_ticks,
 * wall_seconds, events_per_sec}).  Every bench and example binary
 * accepts `--stats-json <path>` and dumps its records there.
 */

#ifndef PEISIM_RUNTIME_REPORT_HH
#define PEISIM_RUNTIME_REPORT_HH

#include <string>
#include <vector>

#include "runtime/system.hh"

namespace pei
{

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** The "config" object of a run record. */
std::string systemConfigJson(const SystemConfig &cfg);

/**
 * One run record for @p sys after a completed run:
 * {label, config, sim_ticks, events, wall_seconds, events_per_sec,
 *  counters, histograms}.
 */
std::string runRecordJson(System &sys, double wall_seconds,
                          const std::string &label);

/**
 * Extract the `--stats-json <path>` (or `--stats-json=<path>`)
 * argument; returns "" when absent.
 */
std::string statsJsonPathFromArgs(int argc, char **argv);

/** Write @p json to @p path verbatim (fatal on I/O failure). */
void writeStatsJson(const std::string &path, const std::string &json);

/**
 * Wrap @p records into the top-level stats-v2 document
 * {"tool": tool, "records": [...]} and write it to @p path.
 */
void writeRunRecords(const std::string &path, const std::string &tool,
                     const std::vector<std::string> &records);

/**
 * As above, but additionally emits a "failures" array (records built
 * with failureRecordJson) so aborted or timed-out sweep jobs remain
 * visible in the exported document.
 */
void writeRunRecords(const std::string &path, const std::string &tool,
                     const std::vector<std::string> &records,
                     const std::vector<std::string> &failures);

/**
 * As above, but additionally splices @p extra_members — a
 * comma-separated sequence of `"key":value` JSON members, e.g.
 * `"input_cache":{"hits":3,...}` — into the top-level document after
 * the "failures" array.  Pass "" for no extra members.
 */
void writeRunRecords(const std::string &path, const std::string &tool,
                     const std::vector<std::string> &records,
                     const std::vector<std::string> &failures,
                     const std::string &extra_members);

} // namespace pei

#endif // PEISIM_RUNTIME_REPORT_HH
