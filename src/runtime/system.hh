/**
 * @file
 * The System facade: wires every subsystem (cores, TLBs, caches,
 * the selected main-memory backend, PMU, PCUs) into one simulated
 * machine.
 *
 * This is the primary entry point of the library together with
 * Runtime/Ctx (runtime/context.hh):
 *
 * @code
 *   pei::System sys(pei::SystemConfig::scaled(pei::ExecMode::LocalityAware));
 *   pei::Runtime rt(sys);
 *   pei::Addr counters = rt.allocArray<std::uint64_t>(1 << 20);
 *   rt.spawnThreads(16, [&](pei::Ctx &ctx, unsigned tid, unsigned n)
 *                       -> pei::Task {
 *       for (std::uint64_t i = tid; i < (1 << 20); i += n)
 *           co_await ctx.peiAsync(pei::PeiOpcode::Inc64,
 *                                 counters + 8 * i, nullptr, 0);
 *       co_await ctx.drain();
 *   });
 *   rt.run();
 * @endcode
 */

#ifndef PEISIM_RUNTIME_SYSTEM_HH
#define PEISIM_RUNTIME_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "mem/addr_map.hh"
#include "mem/backend.hh"
#include "mem/backend_config.hh"
#include "mem/vmem.hh"
#include "pim/pmu.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_queue.hh"

namespace pei
{

/** Whole-machine configuration. */
struct SystemConfig
{
    unsigned cores = 16;
    std::uint64_t phys_bytes = 32ULL << 30;

    /**
     * Main-memory backend: a key of the memory-backend factory
     * registry ("hmc" | "ddr" | "ideal"; mem/backend.hh).  Only the
     * selected backend's config below is consulted.
     */
    std::string mem_backend = "hmc";

    /**
     * Event-queue shards (sim/sharded_queue.hh): 1 runs the classic
     * sequential engine (bit-identical to the pre-sharding
     * simulator); N > 1 adds N-1 worker shards the backend's memory
     * partitions are distributed over, synchronized conservatively at
     * epoch barriers with the backend's minCrossShardLatency() as
     * lookahead.
     */
    unsigned shards = 1;

    /**
     * Extra slack added to each epoch's horizon beyond the
     * conservative lookahead.  0 keeps cross-shard timing as tight
     * as the lookahead allows; larger windows batch more events per
     * barrier (faster) at the cost of clamping zero-latency
     * completion edges by up to the window.
     */
    Ticks shard_window = 0;

    CoreConfig core;
    CacheConfig cache;
    HmcConfig hmc;
    DdrConfig ddr;
    IdealMemConfig ideal_mem;
    PimConfig pim;

    /** The paper's Table 2 baseline (16 cores, 16 MB L3, 8 HMCs). */
    static SystemConfig paperBaseline(
        ExecMode mode = ExecMode::LocalityAware);

    /**
     * A proportionally scaled configuration for fast benchmarking:
     * same structure, smaller caches (2 MB L3) and one HMC, so every
     * experiment preserves its working-set/cache ratio while running
     * in seconds.
     */
    static SystemConfig scaled(ExecMode mode = ExecMode::LocalityAware);
};

/** A complete simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /** The host shard's queue (the only queue when shards == 1). */
    EventQueue &eventQueue() { return squeue.host(); }

    /** The sharded engine driving all queues (runtime/epoch loop). */
    ShardedQueue &shardedQueue() { return squeue; }
    VirtualMemory &memory() { return vm; }
    const AddrMap &addrMap() const { return mem_->addrMap(); }
    MemoryBackend &mem() { return *mem_; }
    CacheHierarchy &caches() { return *hierarchy; }
    Pmu &pmu() { return *pmu_; }
    Core &core(unsigned i) { return *cores[i]; }
    unsigned numCores() const { return static_cast<unsigned>(cores.size()); }
    StatRegistry &stats() { return stats_; }
    const SystemConfig &config() const { return cfg; }

    /** Current simulated time (host shard). */
    Tick now() const { return squeue.host().now(); }

  private:
    SystemConfig cfg;
    StatRegistry stats_;
    ShardedQueue squeue;
    VirtualMemory vm;
    std::unique_ptr<MemoryBackend> mem_;
    std::unique_ptr<CacheHierarchy> hierarchy;
    std::vector<std::unique_ptr<Core>> cores;
    std::unique_ptr<Pmu> pmu_;
};

} // namespace pei

#endif // PEISIM_RUNTIME_SYSTEM_HH
