/**
 * @file
 * Ctx: the per-thread execution context workload kernels use.
 *
 * Kernels are C++20 coroutines (returning Task) that interleave:
 *  - functional accesses (fread/fwrite) touching backing memory
 *    immediately with no simulated cost, and
 *  - timing operations (co_await ctx.load/store/pei/...) that drive
 *    the simulated machine.
 *
 * Two issue styles mirror how an out-of-order core overlaps work:
 *  - blocking ops (load/loadValue/pei) suspend until completion —
 *    use them for true data dependences (pointer chasing);
 *  - async ops (loadAsync/storeAsync/peiAsync) suspend only until an
 *    issue-window slot is free, letting independent operations
 *    overlap exactly like an OoO window does.  drain() awaits all of
 *    the thread's outstanding async operations.
 *
 * pfence() implements the paper's PIM memory fence: it completes
 * once every writer PEI issued before it (from any core) retires.
 */

#ifndef PEISIM_RUNTIME_CONTEXT_HH
#define PEISIM_RUNTIME_CONTEXT_HH

#include <coroutine>
#include <cstring>

#include "runtime/system.hh"
#include "sim/task.hh"

namespace pei
{

class Ctx;

namespace detail
{

/** Awaiter for blocking loads/stores. */
class MemOpAwaiter
{
  public:
    MemOpAwaiter(Ctx &ctx, Addr vaddr, bool is_write)
        : ctx(ctx), vaddr(vaddr), is_write(is_write)
    {}

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}

  protected:
    Ctx &ctx;
    Addr vaddr;
    bool is_write;
};

/** Awaiter for blocking loads that yields the loaded value. */
template <typename T>
class LoadValueAwaiter : public MemOpAwaiter
{
  public:
    LoadValueAwaiter(Ctx &ctx, Addr vaddr) : MemOpAwaiter(ctx, vaddr, false)
    {}

    T await_resume();
};

/** Awaiter for async ops: resumes once a window slot is obtained. */
class AsyncMemOpAwaiter
{
  public:
    AsyncMemOpAwaiter(Ctx &ctx, Addr vaddr, bool is_write)
        : ctx(ctx), vaddr(vaddr), is_write(is_write)
    {}

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume();

  private:
    Ctx &ctx;
    Addr vaddr;
    bool is_write;
};

/** Awaiter for blocking PEIs; yields the completed packet. */
class PeiAwaiter
{
  public:
    PeiAwaiter(Ctx &ctx, PeiOpcode op, Addr vaddr, const void *input,
               unsigned input_size)
        : ctx(ctx), op(op), vaddr(vaddr), input_size(input_size)
    {
        if (input_size > 0)
            std::memcpy(input_buf, input, input_size);
    }

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    PimPacket await_resume() { return result; }

  private:
    Ctx &ctx;
    PeiOpcode op;
    Addr vaddr;
    unsigned input_size;
    std::uint8_t input_buf[max_operand_bytes] = {};
    PimPacket result;
};

/**
 * Awaiter for async PEIs: resumes once a window slot is obtained.
 * An optional completion callback observes the finished packet
 * (e.g. to accumulate PEI outputs host-side, as HG/SC/SVM do).
 */
class AsyncPeiAwaiter
{
  public:
    /**
     * 32 bytes of inline capture: the completion forwarder the issue
     * path builds is `{Ctx *, CompletionFn}`, which must fit the
     * PMU's 48-byte DoneFn budget (8 + 40 = 48 exactly).
     */
    using CompletionFn = InlineFunction<void(const PimPacket &), 32>;

    AsyncPeiAwaiter(Ctx &ctx, PeiOpcode op, Addr vaddr, const void *input,
                    unsigned input_size, CompletionFn on_complete = nullptr)
        : ctx(ctx), op(op), vaddr(vaddr), input_size(input_size),
          on_complete(std::move(on_complete))
    {
        if (input_size > 0)
            std::memcpy(input_buf, input, input_size);
    }

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume();

  private:
    Ctx &ctx;
    PeiOpcode op;
    Addr vaddr;
    unsigned input_size;
    std::uint8_t input_buf[max_operand_bytes] = {};
    CompletionFn on_complete;
};

/**
 * Awaiter for streaming loads: touches a block only the first time
 * the stream enters it (sequential array scans issue one timing load
 * per 64 B block, the access pattern hardware prefetchers and OoO
 * cores overlap trivially).
 */
class StreamLoadAwaiter
{
  public:
    StreamLoadAwaiter(Ctx &ctx, Addr vaddr, Addr &last_block)
        : ctx(ctx), vaddr(vaddr), last_block(last_block)
    {}

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume();

  private:
    Ctx &ctx;
    Addr vaddr;
    Addr &last_block;
    bool skip = false;
};

/** Awaiter for drain(): resumes when the window is empty. */
class DrainAwaiter
{
  public:
    explicit DrainAwaiter(Ctx &ctx) : ctx(ctx) {}

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}

  private:
    Ctx &ctx;
};

/** Awaiter for pfence(). */
class PfenceAwaiter
{
  public:
    explicit PfenceAwaiter(Ctx &ctx) : ctx(ctx) {}

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}

  private:
    Ctx &ctx;
};

} // namespace detail

/** Per-thread execution context bound to one core. */
class Ctx
{
  public:
    Ctx(System &sys, unsigned core_id) : sys_(sys), core_id(core_id) {}

    System &sys() { return sys_; }
    Core &core() { return sys_.core(core_id); }
    unsigned coreId() const { return core_id; }

    // ---- functional (no simulated time) ----

    /** Functional read of a POD value. */
    template <typename T>
    T
    fread(Addr vaddr) const
    {
        return sys_.memory().read<T>(vaddr);
    }

    /** Functional write of a POD value. */
    template <typename T>
    void
    fwrite(Addr vaddr, const T &value)
    {
        sys_.memory().write<T>(vaddr, value);
    }

    // ---- timing operations ----

    /** Blocking load (no value). */
    detail::MemOpAwaiter load(Addr vaddr) { return {*this, vaddr, false}; }

    /** Blocking load returning the value at completion time. */
    template <typename T>
    detail::LoadValueAwaiter<T>
    loadValue(Addr vaddr)
    {
        return {*this, vaddr};
    }

    /** Blocking store (functional data via fwrite). */
    detail::MemOpAwaiter store(Addr vaddr) { return {*this, vaddr, true}; }

    /** Async load: returns once issued; completion frees the slot. */
    detail::AsyncMemOpAwaiter loadAsync(Addr vaddr)
    {
        return {*this, vaddr, false};
    }

    /** Async store. */
    detail::AsyncMemOpAwaiter storeAsync(Addr vaddr)
    {
        return {*this, vaddr, true};
    }

    /** Cursor state for streamLoad(). */
    struct StreamCursor
    {
        Addr last_block = invalid_addr;
    };

    /**
     * Streaming async load: issues a timing load only when @p vaddr
     * enters a block the cursor has not touched yet.
     */
    detail::StreamLoadAwaiter
    streamLoad(Addr vaddr, StreamCursor &cursor)
    {
        return {*this, vaddr, cursor.last_block};
    }

    /** Blocking PEI; returns the completed packet (with outputs). */
    detail::PeiAwaiter
    pei(PeiOpcode op, Addr vaddr, const void *input, unsigned input_size)
    {
        return {*this, op, vaddr, input, input_size};
    }

    /** Async PEI (fire-and-forget; outputs discarded). */
    detail::AsyncPeiAwaiter
    peiAsync(PeiOpcode op, Addr vaddr, const void *input = nullptr,
             unsigned input_size = 0)
    {
        return {*this, op, vaddr, input, input_size};
    }

    /** Async PEI whose completed packet is handed to @p fn. */
    detail::AsyncPeiAwaiter
    peiAsyncCb(PeiOpcode op, Addr vaddr, const void *input,
               unsigned input_size,
               detail::AsyncPeiAwaiter::CompletionFn fn)
    {
        return {*this, op, vaddr, input, input_size, std::move(fn)};
    }

    // Typed PEI conveniences matching Table 1.

    /** 8-byte atomic increment of the counter at @p vaddr. */
    detail::AsyncPeiAwaiter inc64(Addr vaddr)
    {
        return peiAsync(PeiOpcode::Inc64, vaddr);
    }

    /** 8-byte atomic min: *vaddr = min(*vaddr, @p value). */
    detail::AsyncPeiAwaiter
    min64(Addr vaddr, std::uint64_t value)
    {
        return peiAsync(PeiOpcode::Min64, vaddr, &value, sizeof(value));
    }

    /** Atomic double add: *vaddr += @p delta. */
    detail::AsyncPeiAwaiter
    fadd(Addr vaddr, double delta)
    {
        return peiAsync(PeiOpcode::FaddDouble, vaddr, &delta,
                        sizeof(delta));
    }

    /** Model a computation burst of @p cycles core cycles. */
    DelayAwaiter compute(std::uint64_t cycles)
    {
        return {sys_.eventQueue(), cycles};
    }

    /** Wait for all of this thread's async operations to retire. */
    detail::DrainAwaiter drain() { return detail::DrainAwaiter{*this}; }

    /** PIM memory fence (paper §3.2). */
    detail::PfenceAwaiter pfence() { return detail::PfenceAwaiter{*this}; }

  private:
    friend class detail::MemOpAwaiter;
    friend class detail::AsyncMemOpAwaiter;
    friend class detail::StreamLoadAwaiter;
    friend class detail::PeiAwaiter;
    friend class detail::AsyncPeiAwaiter;
    friend class detail::DrainAwaiter;
    friend class detail::PfenceAwaiter;

    /**
     * Issue a translated timing access; @p done on completion.
     * Templated on the callback's concrete type so the TLB-defer
     * closure wraps the raw (small) lambda, not a full-width
     * Continuation — which could never fit inside another one.
     */
    template <typename Done>
    void
    issueAccess(Addr vaddr, bool is_write, Done done)
    {
        Core &c = core();
        if (is_write)
            c.countStore();
        else
            c.countLoad();
        const Ticks tlb_lat = c.translateLatency(vaddr);
        const Addr paddr = sys_.memory().translate(vaddr);
        if (tlb_lat == 0) {
            sys_.caches().access(core_id, paddr, is_write, std::move(done));
            return;
        }
        sys_.eventQueue().schedule(
            tlb_lat, [this, paddr, is_write, done = std::move(done)]() mutable {
                sys_.caches().access(core_id, paddr, is_write,
                                     std::move(done));
            });
    }

    /** Issue a translated PEI; @p done receives the completion. */
    void
    issuePei(PeiOpcode op, Addr vaddr, const void *input,
             unsigned input_size, Pmu::DoneFn done)
    {
        Core &c = core();
        c.countPei();
        const Ticks tlb_lat = c.translateLatency(vaddr);
        const Addr paddr = sys_.memory().translate(vaddr);
        // Register with the PMU immediately (pfence sees the PEI in
        // issue order); the TLB-miss penalty defers the pipeline.
        sys_.pmu().executePei(core_id, op, paddr, input, input_size,
                              std::move(done), tlb_lat);
    }

    System &sys_;
    unsigned core_id;
};

namespace detail
{

inline void
MemOpAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ctx.core().acquireSlot([this, h] {
        ctx.issueAccess(vaddr, is_write, [this, h] {
            ctx.core().releaseSlot();
            resumeLive(h);
        });
    });
}

template <typename T>
T
LoadValueAwaiter<T>::await_resume()
{
    // Value observed at completion time.
    return ctx.fread<T>(vaddr);
}

inline bool
AsyncMemOpAwaiter::await_ready()
{
    if (ctx.core().windowFull())
        return false;
    ctx.core().acquireSlot([] {});
    return true;
}

inline void
AsyncMemOpAwaiter::await_suspend(std::coroutine_handle<> h)
{
    // Resumed (asynchronously) once a slot frees up; the slot is
    // handed over inside releaseSlot().
    ctx.core().acquireSlot([h] { resumeLive(h); });
}

inline void
AsyncMemOpAwaiter::await_resume()
{
    // Slot held; issue the operation, completion frees the slot.
    Ctx *c = &ctx;
    c->issueAccess(vaddr, is_write, [c] { c->core().releaseSlot(); });
}

inline void
PeiAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ctx.core().acquireSlot([this, h] {
        ctx.issuePei(op, vaddr, input_buf, input_size,
                     [this, h](const PimPacket &pkt) {
                         result = pkt;
                         ctx.core().releaseSlot();
                         resumeLive(h);
                     });
    });
}

inline bool
AsyncPeiAwaiter::await_ready()
{
    if (ctx.core().windowFull())
        return false;
    ctx.core().acquireSlot([] {});
    return true;
}

inline void
AsyncPeiAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ctx.core().acquireSlot([h] { resumeLive(h); });
}

inline void
AsyncPeiAwaiter::await_resume()
{
    Ctx *c = &ctx;
    c->issuePei(op, vaddr, input_buf, input_size,
                [c, fn = std::move(on_complete)](const PimPacket &pkt) mutable {
                    if (fn)
                        fn(pkt);
                    c->core().releaseSlot();
                });
}

inline bool
StreamLoadAwaiter::await_ready()
{
    const Addr blk = vaddr >> block_shift;
    if (last_block == blk) {
        skip = true;
        return true; // already streamed through this block
    }
    last_block = blk;
    if (ctx.core().windowFull())
        return false;
    ctx.core().acquireSlot([] {});
    return true;
}

inline void
StreamLoadAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ctx.core().acquireSlot([h] { resumeLive(h); });
}

inline void
StreamLoadAwaiter::await_resume()
{
    if (skip)
        return;
    Ctx *c = &ctx;
    c->issueAccess(vaddr, false, [c] { c->core().releaseSlot(); });
}

inline bool
DrainAwaiter::await_ready()
{
    return ctx.core().inFlight() == 0;
}

inline void
DrainAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ctx.core().waitForDrain([h] { resumeLive(h); });
}

inline void
PfenceAwaiter::await_suspend(std::coroutine_handle<> h)
{
    // pfence blocks the issuing core; its own async PEIs must have
    // entered the PEI pipeline, which issue-order guarantees, and
    // the PMU-side tracking covers them from issue to retirement.
    ctx.sys().pmu().pfence([h] { resumeLive(h); });
}

} // namespace detail

} // namespace pei

#endif // PEISIM_RUNTIME_CONTEXT_HH
