/**
 * @file
 * Synchronization primitives for simulated threads.
 *
 * Barrier supports the phase-parallel structure of the paper's
 * workloads (level-synchronous BFS, PageRank iterations, ...):
 * every party co_awaits arrive(); the last arrival releases all.
 */

#ifndef PEISIM_RUNTIME_SYNC_HH
#define PEISIM_RUNTIME_SYNC_HH

#include <coroutine>
#include <vector>

#include "common/logging.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace pei
{

/** Reusable coroutine barrier for a fixed number of parties. */
class Barrier
{
  public:
    Barrier(EventQueue &eq, unsigned parties) : eq(eq), parties(parties)
    {
        fatal_if(parties == 0, "barrier with zero parties");
    }

    class Awaiter
    {
      public:
        explicit Awaiter(Barrier &b) : barrier(b) {}

        /** The last arriver releases everyone and does not suspend. */
        bool await_ready() { return barrier.doArrive(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            barrier.waiters.push_back(h);
        }

        void await_resume() {}

      private:
        Barrier &barrier;
    };

    /** co_await barrier.arrive() — returns when all parties arrived. */
    Awaiter arrive() { return Awaiter{*this}; }

  private:
    friend class Awaiter;

    /** @return true when this arrival completes the barrier. */
    bool
    doArrive()
    {
        ++count;
        panic_if(count > parties, "barrier overflow");
        if (count < parties)
            return false;
        count = 0;
        auto released = std::move(waiters);
        waiters.clear();
        for (auto h : released)
            eq.schedule(0, Continuation([h] { resumeLive(h); }));
        return true;
    }

    EventQueue &eq;
    unsigned parties;
    unsigned count = 0;
    std::vector<std::coroutine_handle<>> waiters;
};

} // namespace pei

#endif // PEISIM_RUNTIME_SYNC_HH
