#include "system.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pei
{

SystemConfig
SystemConfig::paperBaseline(ExecMode mode)
{
    SystemConfig cfg;
    cfg.cores = 16;
    cfg.phys_bytes = 32ULL << 30;

    // Table 2: private 32 KB L1-D (8-way), private 256 KB L2 (8-way),
    // shared 16 MB L3 (16-way), 16/64 MSHRs.
    cfg.cache.l1_bytes = 32 << 10;
    cfg.cache.l1_ways = 8;
    cfg.cache.l2_bytes = 256 << 10;
    cfg.cache.l2_ways = 8;
    cfg.cache.l3_bytes = 16 << 20;
    cfg.cache.l3_ways = 16;
    cfg.cache.core_mshrs = 16;
    cfg.cache.l3_mshrs = 64;

    // 8 HMCs of 16 vaults each, 80 GB/s full-duplex daisy chain,
    // FR-FCFS with tCL = tRCD = tRP = 13.75 ns, 16 banks/vault,
    // 64 TSVs/vault at 2 Gb/s.
    cfg.hmc.num_cubes = 8;
    cfg.hmc.vaults_per_cube = 16;
    cfg.hmc.link.gbps = 40.0;
    cfg.hmc.dram.banks_per_vault = 16;
    cfg.hmc.dram.tsv_gbps = 16.0;

    cfg.pim.mode = mode;
    cfg.pim.directory_entries = 2048;
    cfg.pim.directory_latency = 2;
    cfg.pim.monitor_latency = 3;
    cfg.pim.pcu.operand_buffer_entries = 4;
    cfg.pim.pcu.issue_width = 1;
    return cfg;
}

SystemConfig
SystemConfig::scaled(ExecMode mode)
{
    SystemConfig cfg = paperBaseline(mode);
    // Same structure at 1/16 scale: inputs shrink with the caches,
    // so each experiment keeps its working-set/capacity ratio.
    cfg.phys_bytes = 2ULL << 30;
    cfg.cache.l1_bytes = 16 << 10;
    cfg.cache.l2_bytes = 64 << 10;
    cfg.cache.l3_bytes = 1 << 20;
    cfg.hmc.num_cubes = 1;
    // Preserve the paper's internal:external bandwidth ratio: the
    // full system has 128 vaults x 16 GB/s = 2048 GB/s of vertical
    // bandwidth behind an 80 GB/s full-duplex chain (25.6:1).  One
    // cube has 256 GB/s internally, so the scaled chain carries
    // 5 GB/s per direction.  This — not raw capacity — is the
    // regime that makes simple PIM operations pay off (§2.1).
    cfg.hmc.link.gbps = 5.0;
    // The alternative backends scale alongside: two DDR channels and
    // one ideal PIM unit per HMC vault keep comparisons meaningful.
    cfg.ddr.channels = 2;
    cfg.ideal_mem.pim_units = cfg.hmc.vaults_per_cube;
    cfg.pim.directory_entries = 2048;
    return cfg;
}

System::System(const SystemConfig &cfg_in)
    : cfg(cfg_in), squeue(cfg.shards), vm(cfg.phys_bytes)
{
    EventQueue &eq = squeue.host();
    MemBackendConfig mem_cfg;
    mem_cfg.phys_bytes = cfg.phys_bytes;
    mem_cfg.hmc = cfg.hmc;
    mem_cfg.ddr = cfg.ddr;
    mem_cfg.ideal = cfg.ideal_mem;
    mem_ = createMemoryBackend(cfg.mem_backend, squeue, mem_cfg, stats_);
    // The backend knows the shortest mailboxed host-to-partition
    // latency; that is the conservative lookahead every epoch runs
    // with.  A backend with no shardable partitions leaves it at 0
    // (single-tick epochs — correct, and never hit when shards==1).
    squeue.setLookahead(mem_->minCrossShardLatency());
    squeue.setWindow(cfg.shard_window);
    hierarchy = std::make_unique<CacheHierarchy>(eq, cfg.cache, cfg.cores,
                                                 *mem_, stats_);
    cores.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c)
        cores.push_back(std::make_unique<Core>(eq, cfg.core, c, stats_));

    const unsigned l3_sets = static_cast<unsigned>(
        cfg.cache.l3_bytes / block_size / cfg.cache.l3_ways);
    pmu_ = std::make_unique<Pmu>(eq, cfg.pim, cfg.cores, l3_sets,
                                 cfg.cache.l3_ways, *hierarchy, *mem_, vm,
                                 stats_);
}

} // namespace pei
