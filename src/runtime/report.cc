#include "report.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace pei
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
systemConfigJson(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << "{\"mode\":\"" << jsonEscape(execModeName(cfg.pim.mode)) << "\""
       << ",\"cores\":" << cfg.cores
       << ",\"phys_bytes\":" << cfg.phys_bytes
       << ",\"l1_bytes\":" << cfg.cache.l1_bytes
       << ",\"l2_bytes\":" << cfg.cache.l2_bytes
       << ",\"l3_bytes\":" << cfg.cache.l3_bytes;
    // stats-v2 "mem.backend" field: only emitted off the default so
    // records of pre-existing hmc configurations stay byte-identical.
    if (cfg.mem_backend != "hmc")
        os << ",\"mem_backend\":\"" << jsonEscape(cfg.mem_backend) << "\"";
    // Same rule for the interconnect topology and PMU sharding: the
    // defaults (chain, 1 bank) predate the fields, so emitting them
    // only off-default keeps earlier records byte-identical.
    if (cfg.hmc.topology != Topology::Chain) {
        os << ",\"topology\":\"" << topologyName(cfg.hmc.topology)
           << "\"";
    }
    if (cfg.pim.pmu_shards > 1)
        os << ",\"pmu_shards\":" << cfg.pim.pmu_shards;
    os << ",\"hmc_cubes\":" << cfg.hmc.num_cubes
       << ",\"vaults_per_cube\":" << cfg.hmc.vaults_per_cube
       << ",\"directory_entries\":" << cfg.pim.directory_entries
       << ",\"operand_buffer_entries\":"
       << cfg.pim.pcu.operand_buffer_entries
       << ",\"balanced_dispatch\":"
       << (cfg.pim.balanced_dispatch ? "true" : "false") << "}";
    return os.str();
}

std::string
runRecordJson(System &sys, double wall_seconds, const std::string &label)
{
    const std::uint64_t events = sys.eventQueue().executedCount();
    const double eps =
        wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                           : 0.0;
    std::ostringstream os;
    os << "{\"label\":\"" << jsonEscape(label) << "\""
       << ",\"config\":" << systemConfigJson(sys.config())
       << ",\"sim_ticks\":" << sys.now()
       << ",\"events\":" << events
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"events_per_sec\":" << eps
       << ",\"counters\":" << sys.stats().countersJson()
       << ",\"histograms\":" << sys.stats().histogramsJson() << "}";
    return os.str();
}

std::string
statsJsonPathFromArgs(int argc, char **argv)
{
    static const char flag[] = "--stats-json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            fatal_if(i + 1 >= argc, "--stats-json needs a path argument");
            return argv[i + 1];
        }
        if (std::strncmp(argv[i], flag, sizeof(flag) - 1) == 0 &&
            argv[i][sizeof(flag) - 1] == '=') {
            return argv[i] + sizeof(flag);
        }
    }
    return "";
}

void
writeStatsJson(const std::string &path, const std::string &json)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open %s for writing", path.c_str());
    out << json << "\n";
    fatal_if(!out, "write to %s failed", path.c_str());
}

void
writeRunRecords(const std::string &path, const std::string &tool,
                const std::vector<std::string> &records)
{
    std::ostringstream os;
    os << "{\"tool\":\"" << jsonEscape(tool) << "\",\"records\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (i)
            os << ",";
        os << records[i];
    }
    os << "]}";
    writeStatsJson(path, os.str());
}

void
writeRunRecords(const std::string &path, const std::string &tool,
                const std::vector<std::string> &records,
                const std::vector<std::string> &failures)
{
    writeRunRecords(path, tool, records, failures, "");
}

void
writeRunRecords(const std::string &path, const std::string &tool,
                const std::vector<std::string> &records,
                const std::vector<std::string> &failures,
                const std::string &extra_members)
{
    std::ostringstream os;
    os << "{\"tool\":\"" << jsonEscape(tool) << "\",\"records\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (i)
            os << ",";
        os << records[i];
    }
    os << "],\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (i)
            os << ",";
        os << failures[i];
    }
    os << "]";
    if (!extra_members.empty())
        os << "," << extra_members;
    os << "}";
    writeStatsJson(path, os.str());
}

} // namespace pei
