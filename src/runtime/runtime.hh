/**
 * @file
 * Runtime: spawns workload threads (coroutines bound to cores) and
 * drives the event loop until they complete.
 */

#ifndef PEISIM_RUNTIME_RUNTIME_HH
#define PEISIM_RUNTIME_RUNTIME_HH

#include <memory>
#include <vector>

#include "runtime/context.hh"
#include "runtime/system.hh"
#include "sim/task.hh"

namespace pei
{

/** Thread-spawning and simulation-driving facade. */
class Runtime
{
  public:
    explicit Runtime(System &sys) : sys(sys) {}

    /** The simulated machine this runtime drives. */
    System &system() { return sys; }

    /** Allocate @p bytes of simulated memory. */
    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = block_size)
    {
        return sys.memory().alloc(bytes, align);
    }

    /** Allocate an array of @p count PODs; returns its base vaddr. */
    template <typename T>
    Addr
    allocArray(std::uint64_t count, std::uint64_t align = block_size)
    {
        return alloc(count * sizeof(T), align);
    }

    /** Spawn a kernel coroutine bound to @p core. */
    template <typename Fn>
    void
    spawn(unsigned core, Fn &&fn)
    {
        fatal_if(core >= sys.numCores(), "spawn on bad core %u", core);
        ctxs.push_back(std::make_unique<Ctx>(sys, core));
        tasks.push_back(fn(*ctxs.back()));
        tasks.back().countFinish(finished);
    }

    /**
     * Spawn @p nthreads kernels on cores [base, base + nthreads),
     * invoking fn(ctx, tid, nthreads).
     */
    template <typename Fn>
    void
    spawnThreads(unsigned nthreads, Fn &&fn, unsigned base = 0)
    {
        for (unsigned t = 0; t < nthreads; ++t) {
            const unsigned core = (base + t) % sys.numCores();
            ctxs.push_back(std::make_unique<Ctx>(sys, core));
            tasks.push_back(fn(*ctxs.back(), t, nthreads));
            tasks.back().countFinish(finished);
        }
    }

    /**
     * Drive the event loop until every spawned task finishes, then
     * settle remaining events.  Panics on deadlock (empty queue with
     * unfinished tasks).  Throws SimulationStopped if another host
     * thread calls eventQueue().requestStop() (sweep-driver timeout
     * cancellation); the System must be discarded afterwards.
     * @return simulated ticks elapsed during this run.
     */
    Tick
    run()
    {
        if (sys.shardedQueue().parallel())
            return runSharded();
        const Tick start = sys.now();
        EventQueue &eq = sys.eventQueue();
        std::uint64_t n = 0;
        while (!allDone()) {
            // Completion is a counter (O(1)); the cross-thread stop
            // flag is polled on the EventQueue's cadence so the hot
            // loop does one atomic load per 1024 events, not per
            // event, while cancellation latency stays bounded.
            if ((n & (EventQueue::stop_check_interval - 1)) == 0 &&
                eq.stopRequested())
                throw SimulationStopped();
            panic_if(!eq.runOne(),
                     "simulation deadlock: %zu unfinished task(s) with an "
                     "empty event queue",
                     unfinishedCount());
            ++n;
        }
        // Settle trailing events (posted writes, releases, ...).
        while (eq.runOne()) {}
        tasks.clear();
        ctxs.clear();
        finished = 0;
        return sys.now() - start;
    }

    /** True once all spawned tasks have completed (O(1)). */
    bool allDone() const { return finished == tasks.size(); }

  private:
    /**
     * Epoch-driven variant of run() for --shards > 1: each
     * runEpoch() advances every shard to a conservatively safe
     * horizon and drains the cross-shard mailboxes at the barrier.
     * runEpoch() == 0 means either every queue and mailbox is empty
     * (deadlock if tasks remain) or the host shard broke on a stop
     * request mid-epoch — the stop flag is re-checked before the
     * deadlock panic so cancellation propagates as SimulationStopped
     * exactly like the sequential loop.
     */
    Tick
    runSharded()
    {
        const Tick start = sys.now();
        ShardedQueue &sq = sys.shardedQueue();
        while (!allDone()) {
            if (sq.stopRequested())
                throw SimulationStopped();
            if (sq.runEpoch() == 0) {
                if (sq.stopRequested())
                    throw SimulationStopped();
                panic_if(!allDone(),
                         "simulation deadlock: %zu unfinished task(s) "
                         "with every shard drained",
                         unfinishedCount());
            }
        }
        // Settle trailing events (posted writes, releases, ...).
        while (sq.runEpoch() != 0) {
            if (sq.stopRequested())
                throw SimulationStopped();
        }
        tasks.clear();
        ctxs.clear();
        finished = 0;
        return sys.now() - start;
    }

    std::size_t
    unfinishedCount() const
    {
        std::size_t n = 0;
        for (const auto &t : tasks)
            n += !t.done();
        return n;
    }

    System &sys;
    std::vector<std::unique_ptr<Ctx>> ctxs;
    std::vector<Task> tasks;
    std::uint64_t finished = 0; ///< tasks completed (see countFinish)
};

} // namespace pei

#endif // PEISIM_RUNTIME_RUNTIME_HH
