/**
 * @file
 * Runtime: spawns workload threads (coroutines bound to cores) and
 * drives the event loop until they complete.
 */

#ifndef PEISIM_RUNTIME_RUNTIME_HH
#define PEISIM_RUNTIME_RUNTIME_HH

#include <functional>
#include <memory>
#include <vector>

#include "runtime/context.hh"
#include "runtime/system.hh"
#include "sim/task.hh"

namespace pei
{

/** Thread-spawning and simulation-driving facade. */
class Runtime
{
  public:
    explicit Runtime(System &sys) : sys(sys) {}

    /** The simulated machine this runtime drives. */
    System &system() { return sys; }

    /** Allocate @p bytes of simulated memory. */
    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = block_size)
    {
        return sys.memory().alloc(bytes, align);
    }

    /** Allocate an array of @p count PODs; returns its base vaddr. */
    template <typename T>
    Addr
    allocArray(std::uint64_t count, std::uint64_t align = block_size)
    {
        return alloc(count * sizeof(T), align);
    }

    /** Spawn a kernel coroutine bound to @p core. */
    template <typename Fn>
    void
    spawn(unsigned core, Fn &&fn)
    {
        fatal_if(core >= sys.numCores(), "spawn on bad core %u", core);
        ctxs.push_back(std::make_unique<Ctx>(sys, core));
        tasks.push_back(fn(*ctxs.back()));
    }

    /**
     * Spawn @p nthreads kernels on cores [base, base + nthreads),
     * invoking fn(ctx, tid, nthreads).
     */
    template <typename Fn>
    void
    spawnThreads(unsigned nthreads, Fn &&fn, unsigned base = 0)
    {
        for (unsigned t = 0; t < nthreads; ++t) {
            const unsigned core = (base + t) % sys.numCores();
            ctxs.push_back(std::make_unique<Ctx>(sys, core));
            tasks.push_back(fn(*ctxs.back(), t, nthreads));
        }
    }

    /**
     * Drive the event loop until every spawned task finishes, then
     * settle remaining events.  Panics on deadlock (empty queue with
     * unfinished tasks).  Throws SimulationStopped if another host
     * thread calls eventQueue().requestStop() (sweep-driver timeout
     * cancellation); the System must be discarded afterwards.
     * @return simulated ticks elapsed during this run.
     */
    Tick
    run()
    {
        const Tick start = sys.now();
        EventQueue &eq = sys.eventQueue();
        while (!allDone()) {
            if (eq.stopRequested())
                throw SimulationStopped();
            panic_if(!eq.runOne(),
                     "simulation deadlock: %zu unfinished task(s) with an "
                     "empty event queue",
                     unfinishedCount());
        }
        // Settle trailing events (posted writes, releases, ...).
        while (eq.runOne()) {}
        tasks.clear();
        ctxs.clear();
        return sys.now() - start;
    }

    /** True once all spawned tasks have completed. */
    bool
    allDone() const
    {
        for (const auto &t : tasks) {
            if (!t.done())
                return false;
        }
        return true;
    }

  private:
    std::size_t
    unfinishedCount() const
    {
        std::size_t n = 0;
        for (const auto &t : tasks)
            n += !t.done();
        return n;
    }

    System &sys;
    std::vector<std::unique_ptr<Ctx>> ctxs;
    std::vector<Task> tasks;
};

} // namespace pei

#endif // PEISIM_RUNTIME_RUNTIME_HH
