/**
 * @file
 * Three-level inclusive cache hierarchy with MESI coherence.
 *
 * Geometry follows Table 2 of the paper: private L1 (32 KB) and L2
 * (256 KB) per core, a shared 16 MB L3 reached over a crossbar, MSHRs
 * at the core side and the L3, and an inclusive policy throughout
 * (L1 ⊆ L2 ⊆ L3).  Coherence is maintained by an L3-side directory
 * (per-line sharer vector + owner) orchestrated centrally; state
 * changes are applied atomically at event execution time while
 * latency is charged to the requester, which preserves MESI
 * invariants without a full distributed message protocol.
 *
 * The PEI hooks the PMU needs are first-class citizens here:
 *  - backInvalidate(): flush + invalidate every cached copy of one
 *    block before a *writer* PEI is offloaded to memory;
 *  - backWriteback(): force dirty copies back to main memory (copies
 *    stay cached, clean) before a *reader* PEI is offloaded;
 *  - an L3-access listener that feeds the PMU's locality monitor.
 */

#ifndef PEISIM_CACHE_HIERARCHY_HH
#define PEISIM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/** Cache hierarchy configuration (defaults = paper Table 2). */
struct CacheConfig
{
    std::uint64_t l1_bytes = 32 * 1024;
    unsigned l1_ways = 8;
    std::uint64_t l2_bytes = 256 * 1024;
    unsigned l2_ways = 8;
    std::uint64_t l3_bytes = 16 * 1024 * 1024;
    unsigned l3_ways = 16;

    Ticks l1_latency = 4;   ///< L1 hit latency (cycles)
    Ticks l2_latency = 12;  ///< additional L2 latency
    Ticks l3_latency = 27;  ///< additional L3 (bank) latency
    Ticks xbar_latency = 8; ///< crossbar one-way latency

    unsigned core_mshrs = 16; ///< per-core outstanding misses
    unsigned l3_mshrs = 64;   ///< outstanding DRAM fetches
};

/**
 * The coherent cache hierarchy for all cores, backed by HMC main
 * memory.  All methods are callback-based; callbacks fire on the
 * owning EventQueue when the simulated operation completes.
 */
class CacheHierarchy
{
  public:
    using Callback = Continuation;
    /** PMU locality-monitor hook; 16 bytes fits its `{Pmu *}` closure. */
    using L3Listener = InlineFunction<void(Addr), 16>;

    CacheHierarchy(EventQueue &eq, const CacheConfig &cfg, unsigned cores,
                   MemoryBackend &mem, StatRegistry &stats);

    /**
     * Timing access from @p core (a demand load/store or a host-side
     * PCU access, which shares the core's L1 per paper §4.3).
     * @p cb fires when the access completes.
     */
    void access(unsigned core, Addr paddr, bool is_write, Callback cb);

    /**
     * Flush and invalidate every cached copy of @p paddr's block,
     * writing dirty data back to main memory (writer-PEI offload).
     */
    void backInvalidate(Addr paddr, Callback cb);

    /**
     * Force dirty copies of @p paddr's block back to main memory;
     * cached copies remain (clean) (reader-PEI offload).
     */
    void backWriteback(Addr paddr, Callback cb);

    /** Register the PMU hook invoked on every L3 access. */
    void setL3AccessListener(L3Listener fn) { l3_listener = std::move(fn); }

    /** True if any cache level holds @p paddr's block (test hook). */
    bool contains(Addr paddr);

    /**
     * True if any cached copy of @p paddr's block is dirty (L3 line
     * or a private copy under it).  Pure query: no state, stat, or
     * LRU change — coherence policies use it to price the writeback
     * data a back-inval/back-writeback would move off-chip.
     */
    bool dirtyIn(Addr paddr);

    /**
     * Visit every block resident anywhere in the hierarchy as
     * `fn(Addr block, bool dirty)`, where dirty covers the L3 line
     * and every private copy under it (the hierarchy is inclusive,
     * so the L3 enumerates all cached blocks).  Pure query — the
     * commit-scan hook for deferred coherence policies, which
     * intersect it against their speculative signatures.
     */
    template <typename Fn>
    void
    forEachCachedBlock(Fn &&fn)
    {
        l3.forEachValid([&](const CacheLine &line) {
            bool dirty = line.dirty;
            for (unsigned c = 0; c < privs.size() && !dirty; ++c) {
                if (!(line.sharers & (1u << c)))
                    continue;
                CacheLine *l1 = privs[c].l1.find(line.block);
                if (l1 && l1->dirty) {
                    dirty = true;
                    break;
                }
                CacheLine *l2 = privs[c].l2.find(line.block);
                if (l2 && l2->dirty)
                    dirty = true;
            }
            fn(line.block, dirty);
        });
    }

    /** True if the L3 holds the block (test hook). */
    bool l3Contains(Addr paddr);

    /** Private-cache MESI state for (core, block) (test hook). */
    MesiState l1State(unsigned core, Addr paddr);
    MesiState l2State(unsigned core, Addr paddr);

    /** Verify inclusion and directory invariants; panics on breach. */
    void checkInvariants();

    /**
     * Non-panicking variant of checkInvariants() for mid-simulation
     * probes (simfuzz): returns a description of the first violated
     * inclusion/directory invariant, or an empty string when clean.
     */
    std::string invariantViolation();

    /**
     * Fault injection for checker self-validation (simfuzz
     * --inject-bug skip-back-inval): the @p nth back-invalidation
     * (1-based) completes without cleaning any cached copy and
     * without counting, so a correct checker must flag the run via
     * the PMU's offload/back-invalidation conservation audit or the
     * stale-copy probe.  0 disables.
     */
    void injectSkipBackInvalidate(std::uint64_t nth)
    {
        inject_skip_back_inval = nth;
    }

    unsigned numCores() const { return static_cast<unsigned>(privs.size()); }

  private:
    struct PrivateCaches
    {
        CacheArray l1;
        CacheArray l2;

        PrivateCaches(const CacheConfig &cfg)
            : l1(cfg.l1_bytes, cfg.l1_ways), l2(cfg.l2_bytes, cfg.l2_ways)
        {}
    };

    /** Outstanding-miss bookkeeping for one block. */
    struct Mshr
    {
        std::vector<Callback> waiters;
    };

    /**
     * One in-flight demand access past the L1 lookup.  The
     * requester's callback is parked here (pooled, slab storage) so
     * that every L2/L3/DRAM pipeline event captures only
     * `{this, handle}` — keeping the miss path inside Continuation's
     * inline-capture budget.
     */
    struct PendingAccess
    {
        unsigned core;
        Addr paddr;
        bool is_write;
        Callback cb;
    };

    /** A back-invalidation/-writeback parked behind an L3 MSHR. */
    struct BackOp
    {
        Addr paddr;
        Callback cb;
    };

    // --- internal operations (state changes are instantaneous) ---

    /** Re-dispatch a parked access (MSHR coalesce/stall retry). */
    void retryAccess(std::uint32_t req);

    /** The L2 lookup stage of access @p req (after L1 latency). */
    void missL2(std::uint32_t req);

    /** Handle the L3/directory stage of access @p req. */
    void accessL3(std::uint32_t req);

    /** DRAM fetch for access @p req landed; fill and wake waiters. */
    void l3FetchDone(std::uint32_t req);

    /** Release @p req's core MSHR, signal it, wake waiters. */
    void completeCoreMiss(std::uint32_t req);

    /** Re-dispatch a back-invalidation parked behind an L3 MSHR. */
    void retryBackInvalidate(std::uint32_t op);

    /** Re-dispatch a back-writeback parked behind an L3 MSHR. */
    void retryBackWriteback(std::uint32_t op);

    /** Fill the private L1+L2 of @p core with @p block in @p state. */
    void fillPrivate(unsigned core, Addr block, MesiState state);

    /** Evict @p core's copies of @p block; returns true if dirty. */
    bool invalidatePrivate(unsigned core, Addr block);

    /** Write @p core's dirty copy of @p block into the L3 (clean
     *  downgrade); returns true if data was dirty. */
    bool downgradePrivate(unsigned core, Addr block);

    /** Insert @p block into the L3, evicting as needed. */
    CacheLine &insertL3(Addr block);

    /** Retry requests stalled on core-MSHR exhaustion for @p core. */
    void drainCoreStalled(unsigned core);

    /** Retry a bounded number of L3-MSHR-stalled requests. */
    void drainL3Stalled();

    EventQueue &eq;
    CacheConfig cfg;
    MemoryBackend &mem;

    std::vector<PrivateCaches> privs;
    CacheArray l3;

    /** Per-core MSHRs: block -> waiters (includes the L1/L2 level). */
    std::vector<std::unordered_map<Addr, Mshr>> core_mshrs;

    /** L3 MSHRs: block -> waiters for in-flight DRAM fetches. */
    std::unordered_map<Addr, Mshr> l3_mshrs;

    /** Requests stalled on core-MSHR exhaustion, per core. */
    std::vector<std::deque<Callback>> core_stalled;

    /** Requests stalled on L3-MSHR exhaustion. */
    std::deque<Callback> l3_stalled;

    /** Parked in-flight demand accesses (handle-addressed). */
    SlotPool<PendingAccess> accesses;

    /** Parked back-invalidations/-writebacks awaiting an L3 MSHR. */
    SlotPool<BackOp> back_ops;

    L3Listener l3_listener;

    std::uint64_t inject_skip_back_inval = 0; ///< 0 = no injection
    std::uint64_t back_inval_calls = 0; ///< performed back-invalidations

    Counter stat_l1_hits;
    Counter stat_l1_misses;
    Counter stat_l2_hits;
    Counter stat_l2_misses;
    Counter stat_l3_hits;
    Counter stat_l3_misses;
    Counter stat_l1_accesses;
    Counter stat_l2_accesses;
    Counter stat_l3_accesses;
    Counter stat_l3_coalesced; ///< L3 accesses folded into an MSHR
    Counter stat_xbar_msgs;
    Counter stat_writebacks_l3;   ///< dirty private data merged into L3
    Counter stat_writebacks_mem;  ///< dirty L3 victims written to DRAM
    Counter stat_invalidations;   ///< remote private copies invalidated
    Counter stat_back_inval;      ///< PMU back-invalidations
    Counter stat_back_wb;         ///< PMU back-writebacks
};

} // namespace pei

#endif // PEISIM_CACHE_HIERARCHY_HH
