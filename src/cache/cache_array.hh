/**
 * @file
 * Set-associative cache tag array with LRU replacement and the
 * directory metadata needed by the shared L3 (sharer vector, owner).
 *
 * The array tracks tags and coherence state only; functional data
 * lives in the backing store (VirtualMemory), which is the standard
 * decoupled functional/timing split for this class of simulator.
 */

#ifndef PEISIM_CACHE_CACHE_ARRAY_HH
#define PEISIM_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace pei
{

/** MESI stable states for private-cache lines. */
enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Returns a short name for a MESI state (for logs/tests). */
inline const char *
mesiName(MesiState s)
{
    switch (s) {
      case MesiState::Invalid: return "I";
      case MesiState::Shared: return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified: return "M";
    }
    return "?";
}

/** One cache line's metadata. */
struct CacheLine
{
    Addr block = invalid_addr; ///< full block address (paddr >> 6)
    bool valid = false;
    bool dirty = false;
    MesiState state = MesiState::Invalid; ///< private caches only
    std::uint64_t last_use = 0;

    // Directory fields (shared L3 only).
    std::uint32_t sharers = 0; ///< bitmask of cores with a copy
    std::int8_t owner = -1;    ///< core holding E/M, or -1
};

/**
 * A set-associative array of CacheLine indexed by block address.
 * Block addresses are full physical addresses shifted by block_shift.
 */
class CacheArray
{
  public:
    CacheArray(std::uint64_t capacity_bytes, unsigned ways)
        : ways(ways),
          sets(static_cast<unsigned>(capacity_bytes / block_size / ways)),
          lines(static_cast<std::size_t>(sets) * ways)
    {
        fatal_if(ways == 0 || sets == 0 || !isPowerOf2(sets),
                 "bad cache geometry: %llu bytes, %u ways",
                 static_cast<unsigned long long>(capacity_bytes), ways);
    }

    unsigned numSets() const { return sets; }
    unsigned numWays() const { return ways; }

    /** Set index of @p block (a block address). */
    unsigned
    setIndex(Addr block) const
    {
        return static_cast<unsigned>(block & (sets - 1));
    }

    /** Find a valid line holding @p block, or nullptr. */
    CacheLine *
    find(Addr block)
    {
        CacheLine *base = &lines[static_cast<std::size_t>(setIndex(block)) * ways];
        for (unsigned w = 0; w < ways; ++w) {
            if (base[w].valid && base[w].block == block)
                return &base[w];
        }
        return nullptr;
    }

    /** Promote @p line to most-recently-used. */
    void
    touch(CacheLine &line)
    {
        line.last_use = ++use_clock;
    }

    /**
     * Choose a victim way in @p block's set: an invalid line if any,
     * else the LRU line.  The caller handles eviction of a valid
     * victim before reusing it.
     */
    CacheLine &
    victim(Addr block)
    {
        CacheLine *base = &lines[static_cast<std::size_t>(setIndex(block)) * ways];
        CacheLine *lru = &base[0];
        for (unsigned w = 0; w < ways; ++w) {
            if (!base[w].valid)
                return base[w];
            if (base[w].last_use < lru->last_use)
                lru = &base[w];
        }
        return *lru;
    }

    /** Reset @p line to hold @p block (valid, clean, no directory). */
    void
    fill(CacheLine &line, Addr block, MesiState state)
    {
        line.block = block;
        line.valid = true;
        line.dirty = false;
        line.state = state;
        line.sharers = 0;
        line.owner = -1;
        touch(line);
    }

    /** Invalidate @p line. */
    void
    invalidate(CacheLine &line)
    {
        line.valid = false;
        line.dirty = false;
        line.state = MesiState::Invalid;
        line.sharers = 0;
        line.owner = -1;
        line.block = invalid_addr;
    }

    /** Count of valid lines (test/debug helper; O(capacity)). */
    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const auto &l : lines)
            n += l.valid;
        return n;
    }

    /** Invoke @p fn on every valid line (test/debug helper). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &l : lines) {
            if (l.valid)
                fn(l);
        }
    }

  private:
    unsigned ways;
    unsigned sets;
    std::vector<CacheLine> lines;
    std::uint64_t use_clock = 0;
};

} // namespace pei

#endif // PEISIM_CACHE_CACHE_ARRAY_HH
