#include "hierarchy.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace pei
{

namespace
{

bool
hasWritePerm(MesiState s)
{
    return s == MesiState::Exclusive || s == MesiState::Modified;
}

} // namespace

CacheHierarchy::CacheHierarchy(EventQueue &eq, const CacheConfig &cfg,
                               unsigned cores, MemoryBackend &mem,
                               StatRegistry &stats)
    : eq(eq), cfg(cfg), mem(mem), l3(cfg.l3_bytes, cfg.l3_ways),
      core_mshrs(cores), core_stalled(cores)
{
    fatal_if(cores == 0 || cores > 32, "unsupported core count %u", cores);
    privs.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        privs.emplace_back(cfg);

    stats.add("cache.l1_hits", &stat_l1_hits);
    stats.add("cache.l1_misses", &stat_l1_misses);
    stats.add("cache.l2_hits", &stat_l2_hits);
    stats.add("cache.l2_misses", &stat_l2_misses);
    stats.add("cache.l3_hits", &stat_l3_hits);
    stats.add("cache.l3_misses", &stat_l3_misses);
    stats.add("cache.l1_accesses", &stat_l1_accesses);
    stats.add("cache.l2_accesses", &stat_l2_accesses);
    stats.add("cache.l3_accesses", &stat_l3_accesses);
    stats.add("cache.xbar_msgs", &stat_xbar_msgs);
    stats.add("cache.writebacks_l3", &stat_writebacks_l3);
    stats.add("cache.writebacks_mem", &stat_writebacks_mem);
    stats.add("cache.invalidations", &stat_invalidations);
    stats.add("cache.back_invalidations", &stat_back_inval);
    stats.add("cache.back_writebacks", &stat_back_wb);

    auto level_invariant = [&stats](const char *level, Counter *hits,
                                    Counter *misses, Counter *accesses) {
        stats.addInvariant(
            std::string("cache.") + level + " hits + misses == accesses",
            [hits, misses, accesses] {
                const std::uint64_t parts =
                    hits->value() + misses->value();
                if (parts == accesses->value())
                    return std::string();
                return "hits=" + std::to_string(hits->value()) +
                       " + misses=" + std::to_string(misses->value()) +
                       " != accesses=" +
                       std::to_string(accesses->value());
            });
    };
    level_invariant("l1", &stat_l1_hits, &stat_l1_misses,
                    &stat_l1_accesses);
    level_invariant("l2", &stat_l2_hits, &stat_l2_misses,
                    &stat_l2_accesses);
    // L3 accesses that coalesce onto an in-flight DRAM fetch are
    // neither hits nor misses; they retry (and get classified) when
    // the fetch lands.
    stats.add("cache.l3_mshr_coalesced", &stat_l3_coalesced);
    stats.addInvariant(
        "cache.l3 hits + misses + mshr_coalesced == accesses",
        [this] {
            const std::uint64_t parts = stat_l3_hits.value() +
                                        stat_l3_misses.value() +
                                        stat_l3_coalesced.value();
            if (parts == stat_l3_accesses.value())
                return std::string();
            return "hits=" + std::to_string(stat_l3_hits.value()) +
                   " + misses=" + std::to_string(stat_l3_misses.value()) +
                   " + coalesced=" +
                   std::to_string(stat_l3_coalesced.value()) +
                   " != accesses=" +
                   std::to_string(stat_l3_accesses.value());
        });
}

void
CacheHierarchy::access(unsigned core, Addr paddr, bool is_write, Callback cb)
{
    panic_if(core >= privs.size(), "access from bad core %u", core);
    const Addr block = paddr >> block_shift;

    ++stat_l1_accesses;
    CacheLine *l1line = privs[core].l1.find(block);
    if (l1line && (!is_write || hasWritePerm(l1line->state))) {
        ++stat_l1_hits;
        privs[core].l1.touch(*l1line);
        if (is_write) {
            l1line->state = MesiState::Modified;
            l1line->dirty = true;
        }
        eq.schedule(cfg.l1_latency, std::move(cb));
        return;
    }
    ++stat_l1_misses;

    // The miss path parks the requester's callback in a pooled
    // record; every downstream event captures only {this, handle}.
    const std::uint32_t req =
        accesses.emplace(PendingAccess{core, paddr, is_write, std::move(cb)});

    // Core-side MSHRs cover the private L1/L2 miss path: coalesce
    // same-block requests; stall when out of entries.
    auto &mshrs = core_mshrs[core];
    if (auto it = mshrs.find(block); it != mshrs.end()) {
        it->second.waiters.push_back(
            Callback([this, req] { retryAccess(req); }));
        return;
    }
    if (mshrs.size() >= cfg.core_mshrs) {
        core_stalled[core].push_back(
            Callback([this, req] { retryAccess(req); }));
        return;
    }
    mshrs.emplace(block, Mshr{});

    // L2 stage after the L1 lookup latency.
    eq.schedule(cfg.l1_latency, [this, req] { missL2(req); });
}

void
CacheHierarchy::retryAccess(std::uint32_t req)
{
    PendingAccess r = std::move(accesses[req]);
    accesses.erase(req);
    access(r.core, r.paddr, r.is_write, std::move(r.cb));
}

void
CacheHierarchy::completeCoreMiss(std::uint32_t req)
{
    // Release the MSHR, wake coalesced waiters and any globally
    // stalled requests, then signal the requester.
    const unsigned core = accesses[req].core;
    const Addr block = accesses[req].paddr >> block_shift;
    auto &table = core_mshrs[core];
    auto it = table.find(block);
    panic_if(it == table.end(), "MSHR vanished for block 0x%llx",
             static_cast<unsigned long long>(block));
    auto waiters = std::move(it->second.waiters);
    table.erase(it);
    Callback cb = std::move(accesses[req].cb);
    accesses.erase(req);
    cb();
    for (auto &w : waiters)
        w();
    drainCoreStalled(core);
}

void
CacheHierarchy::missL2(std::uint32_t req)
{
    const PendingAccess &r = accesses[req];
    const unsigned core = r.core;
    const bool is_write = r.is_write;
    const Addr blk = r.paddr >> block_shift;
    ++stat_l2_accesses;
    CacheLine *l2line = privs[core].l2.find(blk);
    if (l2line && (!is_write || hasWritePerm(l2line->state))) {
        ++stat_l2_hits;
        privs[core].l2.touch(*l2line);
        MesiState st = l2line->state;
        if (is_write)
            st = MesiState::Modified;
        fillPrivate(core, blk, st);
        if (is_write) {
            CacheLine *nl1 = privs[core].l1.find(blk);
            nl1->dirty = true;
            l2line->state = MesiState::Modified;
        }
        eq.schedule(cfg.l2_latency, [this, req] { completeCoreMiss(req); });
        return;
    }
    ++stat_l2_misses;
    ++stat_xbar_msgs;
    eq.schedule(cfg.l2_latency + cfg.xbar_latency,
                [this, req] { accessL3(req); });
}

void
CacheHierarchy::accessL3(std::uint32_t req)
{
    const unsigned core = accesses[req].core;
    const bool is_write = accesses[req].is_write;
    const Addr block = accesses[req].paddr >> block_shift;
    ++stat_l3_accesses;
    if (l3_listener)
        l3_listener(block);

    // Serialize against an in-flight DRAM fetch of the same block.
    if (auto it = l3_mshrs.find(block); it != l3_mshrs.end()) {
        ++stat_l3_coalesced;
        it->second.waiters.push_back(
            Callback([this, req] { accessL3(req); }));
        return;
    }

    CacheLine *line = l3.find(block);
    if (line) {
        ++stat_l3_hits;
        l3.touch(*line);
        Ticks lat = cfg.l3_latency + cfg.xbar_latency;

        if (is_write) {
            // Invalidate all remote private copies; gain ownership.
            bool remote = false;
            for (unsigned c = 0; c < privs.size(); ++c) {
                if (c == core || !(line->sharers & (1u << c)))
                    continue;
                remote = true;
                ++stat_invalidations;
                if (invalidatePrivate(c, block))
                    line->dirty = true;
            }
            if (remote)
                lat += 2 * cfg.xbar_latency;
            line->sharers = 1u << core;
            line->owner = static_cast<std::int8_t>(core);
            fillPrivate(core, block, MesiState::Modified);
            CacheLine *nl1 = privs[core].l1.find(block);
            nl1->dirty = true;
        } else {
            // A remote modified/exclusive owner downgrades to shared.
            if (line->owner >= 0 &&
                static_cast<unsigned>(line->owner) != core) {
                if (downgradePrivate(static_cast<unsigned>(line->owner),
                                     block)) {
                    line->dirty = true;
                    ++stat_writebacks_l3;
                }
                lat += 2 * cfg.xbar_latency;
                line->owner = -1;
            }
            line->sharers |= 1u << core;
            MesiState st = MesiState::Shared;
            if (line->sharers == (1u << core) && line->owner < 0) {
                st = MesiState::Exclusive;
                line->owner = static_cast<std::int8_t>(core);
            } else if (line->owner == static_cast<std::int8_t>(core)) {
                st = MesiState::Exclusive;
            }
            fillPrivate(core, block, st);
        }
        eq.schedule(lat, [this, req] { completeCoreMiss(req); });
        return;
    }

    ++stat_l3_misses;
    if (l3_mshrs.size() >= cfg.l3_mshrs) {
        l3_stalled.push_back(Callback([this, req] { accessL3(req); }));
        return;
    }
    l3_mshrs.emplace(block, Mshr{});

    mem.readBlock(accesses[req].paddr, [this, req] { l3FetchDone(req); });
}

void
CacheHierarchy::l3FetchDone(std::uint32_t req)
{
    const unsigned core = accesses[req].core;
    const bool is_write = accesses[req].is_write;
    const Addr block = accesses[req].paddr >> block_shift;

    CacheLine &nl = insertL3(block);
    nl.sharers = 1u << core;
    nl.owner = static_cast<std::int8_t>(core);
    fillPrivate(core, block,
                is_write ? MesiState::Modified : MesiState::Exclusive);
    if (is_write) {
        CacheLine *nl1 = privs[core].l1.find(block);
        nl1->dirty = true;
    }
    eq.schedule(cfg.l3_latency + cfg.xbar_latency,
                [this, req] { completeCoreMiss(req); });

    auto it = l3_mshrs.find(block);
    auto waiters = std::move(it->second.waiters);
    l3_mshrs.erase(it);
    for (auto &w : waiters)
        w();
    drainL3Stalled();
}

void
CacheHierarchy::fillPrivate(unsigned core, Addr block, MesiState state)
{
    auto &pc = privs[core];

    // L2 first (inclusion: L1 ⊆ L2).
    CacheLine *l2line = pc.l2.find(block);
    if (!l2line) {
        CacheLine &v = pc.l2.victim(block);
        if (v.valid) {
            const Addr vblock = v.block;
            // Inclusive: purge the L1 copy, merging dirtiness down.
            CacheLine *vl1 = pc.l1.find(vblock);
            bool vdirty = v.dirty;
            if (vl1) {
                vdirty |= vl1->dirty;
                pc.l1.invalidate(*vl1);
            }
            // Merge into the L3 line (present by inclusion).
            CacheLine *vl3 = l3.find(vblock);
            panic_if(!vl3, "L2 victim 0x%llx missing from inclusive L3",
                     static_cast<unsigned long long>(vblock));
            if (vdirty) {
                vl3->dirty = true;
                ++stat_writebacks_l3;
            }
            vl3->sharers &= ~(1u << core);
            if (vl3->owner == static_cast<std::int8_t>(core))
                vl3->owner = -1;
        }
        pc.l2.fill(v, block, state);
        l2line = &v;
    } else {
        l2line->state = state;
        pc.l2.touch(*l2line);
    }

    // Then L1.
    CacheLine *l1line = pc.l1.find(block);
    if (!l1line) {
        CacheLine &v = pc.l1.victim(block);
        if (v.valid && v.dirty) {
            // Merge dirty data into the L2 copy (present by inclusion).
            CacheLine *vl2 = pc.l2.find(v.block);
            panic_if(!vl2, "L1 victim 0x%llx missing from inclusive L2",
                     static_cast<unsigned long long>(v.block));
            vl2->dirty = true;
        }
        pc.l1.fill(v, block, state);
    } else {
        l1line->state = state;
        pc.l1.touch(*l1line);
    }
}

bool
CacheHierarchy::invalidatePrivate(unsigned core, Addr block)
{
    auto &pc = privs[core];
    bool dirty = false;
    if (CacheLine *l1line = pc.l1.find(block)) {
        dirty |= l1line->dirty;
        pc.l1.invalidate(*l1line);
    }
    if (CacheLine *l2line = pc.l2.find(block)) {
        dirty |= l2line->dirty;
        pc.l2.invalidate(*l2line);
    }
    return dirty;
}

bool
CacheHierarchy::downgradePrivate(unsigned core, Addr block)
{
    auto &pc = privs[core];
    bool was_dirty = false;
    if (CacheLine *l1line = pc.l1.find(block)) {
        was_dirty |= l1line->dirty;
        l1line->dirty = false;
        l1line->state = MesiState::Shared;
    }
    if (CacheLine *l2line = pc.l2.find(block)) {
        was_dirty |= l2line->dirty;
        l2line->dirty = false;
        l2line->state = MesiState::Shared;
    }
    return was_dirty;
}

CacheLine &
CacheHierarchy::insertL3(Addr block)
{
    CacheLine &v = l3.victim(block);
    if (v.valid) {
        const Addr vblock = v.block;
        bool dirty = v.dirty;
        // Inclusive policy: back-invalidate every private copy.
        for (unsigned c = 0; c < privs.size(); ++c) {
            if (v.sharers & (1u << c))
                dirty |= invalidatePrivate(c, vblock);
        }
        if (dirty) {
            ++stat_writebacks_mem;
            mem.writeBlock(vblock << block_shift);
        }
    }
    l3.fill(v, block, MesiState::Invalid);
    return v;
}

void
CacheHierarchy::backInvalidate(Addr paddr, Callback cb)
{
    const Addr block = paddr >> block_shift;

    if (auto it = l3_mshrs.find(block); it != l3_mshrs.end()) {
        const std::uint32_t op =
            back_ops.emplace(BackOp{paddr, std::move(cb)});
        it->second.waiters.push_back(
            Callback([this, op] { retryBackInvalidate(op); }));
        return;
    }

    // Counted only when performed (an MSHR collision above retries
    // without double-counting), so one writer-PEI offload is exactly
    // one back-invalidation — the conservation audit depends on it.
    ++back_inval_calls;
    if (back_inval_calls == inject_skip_back_inval) {
        // Fault injection: report completion without cleaning any
        // copy (checker self-test).
        eq.schedule(cfg.l3_latency, std::move(cb));
        return;
    }
    ++stat_back_inval;

    // Inclusion guarantees private copies exist only under an L3
    // line, whose sharer vector bounds the invalidation fan-out.
    bool dirty = false;
    if (CacheLine *line = l3.find(block)) {
        for (unsigned c = 0; c < privs.size(); ++c) {
            if (line->sharers & (1u << c))
                dirty |= invalidatePrivate(c, block);
        }
        dirty |= line->dirty;
        l3.invalidate(*line);
    }
    if (dirty) {
        ++stat_writebacks_mem;
        mem.writeBlock(paddr);
    }
    eq.schedule(cfg.l3_latency, std::move(cb));
}

void
CacheHierarchy::backWriteback(Addr paddr, Callback cb)
{
    const Addr block = paddr >> block_shift;

    if (auto it = l3_mshrs.find(block); it != l3_mshrs.end()) {
        const std::uint32_t op =
            back_ops.emplace(BackOp{paddr, std::move(cb)});
        it->second.waiters.push_back(
            Callback([this, op] { retryBackWriteback(op); }));
        return;
    }

    // Counted only when performed, mirroring backInvalidate: one
    // reader-PEI offload is exactly one back-writeback.
    ++stat_back_wb;

    CacheLine *line = l3.find(block);
    bool mem_write = false;
    if (line) {
        for (unsigned c = 0; c < privs.size(); ++c) {
            if ((line->sharers & (1u << c)) &&
                downgradePrivate(c, block)) {
                line->dirty = true;
                ++stat_writebacks_l3;
            }
        }
    }
    if (line) {
        line->owner = -1;
        if (line->dirty) {
            line->dirty = false;
            mem_write = true;
            ++stat_writebacks_mem;
            mem.writeBlock(paddr);
        }
    }
    (void)mem_write;
    eq.schedule(cfg.l3_latency, std::move(cb));
}

void
CacheHierarchy::retryBackInvalidate(std::uint32_t op)
{
    BackOp b = std::move(back_ops[op]);
    back_ops.erase(op);
    backInvalidate(b.paddr, std::move(b.cb));
}

void
CacheHierarchy::retryBackWriteback(std::uint32_t op)
{
    BackOp b = std::move(back_ops[op]);
    back_ops.erase(op);
    backWriteback(b.paddr, std::move(b.cb));
}

bool
CacheHierarchy::contains(Addr paddr)
{
    const Addr block = paddr >> block_shift;
    if (l3.find(block))
        return true;
    for (auto &pc : privs) {
        if (pc.l1.find(block) || pc.l2.find(block))
            return true;
    }
    return false;
}

bool
CacheHierarchy::dirtyIn(Addr paddr)
{
    const Addr block = paddr >> block_shift;
    // Inclusion: private copies exist only under an L3 line, so its
    // sharer vector bounds the scan.
    CacheLine *line = l3.find(block);
    if (!line)
        return false;
    if (line->dirty)
        return true;
    for (unsigned c = 0; c < privs.size(); ++c) {
        if (!(line->sharers & (1u << c)))
            continue;
        CacheLine *l1 = privs[c].l1.find(block);
        if (l1 && l1->dirty)
            return true;
        CacheLine *l2 = privs[c].l2.find(block);
        if (l2 && l2->dirty)
            return true;
    }
    return false;
}

bool
CacheHierarchy::l3Contains(Addr paddr)
{
    return l3.find(paddr >> block_shift) != nullptr;
}

MesiState
CacheHierarchy::l1State(unsigned core, Addr paddr)
{
    CacheLine *line = privs[core].l1.find(paddr >> block_shift);
    return line ? line->state : MesiState::Invalid;
}

MesiState
CacheHierarchy::l2State(unsigned core, Addr paddr)
{
    CacheLine *line = privs[core].l2.find(paddr >> block_shift);
    return line ? line->state : MesiState::Invalid;
}

void
CacheHierarchy::drainCoreStalled(unsigned core)
{
    // Retry while MSHR capacity remains.  Each retried request
    // either completes, coalesces onto an in-flight miss, or takes a
    // free MSHR — it never re-stalls while capacity remains, so the
    // loop strictly shrinks the queue (no quadratic retry storm).
    auto &queue = core_stalled[core];
    while (!queue.empty() && core_mshrs[core].size() < cfg.core_mshrs) {
        Callback fn = std::move(queue.front());
        queue.pop_front();
        fn();
    }
}

void
CacheHierarchy::drainL3Stalled()
{
    // Same shrinking-queue argument as drainCoreStalled: retried
    // requests hit, coalesce, or claim a free MSHR; none re-stall
    // while capacity remains.
    while (!l3_stalled.empty() && l3_mshrs.size() < cfg.l3_mshrs) {
        Callback fn = std::move(l3_stalled.front());
        l3_stalled.pop_front();
        fn();
    }
}

std::string
CacheHierarchy::invariantViolation()
{
    std::string violation;
    auto record = [&violation](std::string v) {
        if (violation.empty())
            violation = std::move(v);
    };
    auto blockStr = [](Addr block) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(block));
        return std::string(buf);
    };

    for (unsigned c = 0; c < privs.size(); ++c) {
        auto &pc = privs[c];
        const std::string who = "core " + std::to_string(c);

        // L1 ⊆ L2 with compatible states.
        pc.l1.forEachValid([&](const CacheLine &l1line) {
            if (!pc.l2.find(l1line.block)) {
                record(who + ": L1 block " + blockStr(l1line.block) +
                       " not in L2");
            }
        });

        // L2 ⊆ L3 with directory agreement.
        pc.l2.forEachValid([&](const CacheLine &l2line) {
            CacheLine *l3line = l3.find(l2line.block);
            if (!l3line) {
                record(who + ": L2 block " + blockStr(l2line.block) +
                       " not in L3");
                return;
            }
            if (!(l3line->sharers & (1u << c))) {
                record(who + " not in sharer set of " +
                       blockStr(l2line.block));
            }
            if ((l2line.state == MesiState::Exclusive ||
                 l2line.state == MesiState::Modified) &&
                l3line->owner != static_cast<std::int8_t>(c)) {
                record(who + " holds " + mesiName(l2line.state) + " on " +
                       blockStr(l2line.block) + " but L3 owner is " +
                       std::to_string(static_cast<int>(l3line->owner)));
            }
        });
    }

    // Directory sharer bits only reference cores that hold the block.
    l3.forEachValid([&](const CacheLine &l3line) {
        for (unsigned c = 0; c < privs.size(); ++c) {
            if (!(l3line.sharers & (1u << c)))
                continue;
            if (!privs[c].l2.find(l3line.block)) {
                record("stale sharer bit: core " + std::to_string(c) +
                       " on block " + blockStr(l3line.block));
            }
        }
    });

    return violation;
}

void
CacheHierarchy::checkInvariants()
{
    const std::string violation = invariantViolation();
    panic_if(!violation.empty(), "%s", violation.c_str());
}

} // namespace pei
