#include "energy_model.hh"

#include "common/types.hh"

namespace pei
{

EnergyBreakdown
computeEnergy(const StatRegistry &stats, const EnergyParams &p)
{
    EnergyBreakdown e;

    const double l1 = static_cast<double>(stats.get("cache.l1_accesses"));
    const double l2 = static_cast<double>(stats.get("cache.l2_accesses"));
    const double l3 = static_cast<double>(stats.get("cache.l3_accesses"));
    const double xbar = static_cast<double>(stats.get("cache.xbar_msgs"));
    e.caches = l1 * p.l1_access_pj + l2 * p.l2_access_pj +
               l3 * p.l3_access_pj + xbar * p.xbar_msg_pj;

    const auto snap = stats.snapshot();
    const auto endsWith = [](const std::string &name, const char *sfx) {
        const std::size_t n = std::char_traits<char>::length(sfx);
        return name.size() >= n &&
               name.compare(name.size() - n, n, sfx) == 0;
    };
    double acts = 0.0, reads = 0.0, writes = 0.0, tsv_bytes = 0.0;
    double host_ops = 0.0, mem_ops = 0.0;
    double flits = 0.0, dir_ops = 0.0, mon_ops = 0.0;
    for (const auto &[name, value] : snap) {
        const auto v = static_cast<double>(value);
        // DRAM arrays live behind "vaultN." (hmc backend) or
        // "chanN." (ddr backend) stat prefixes; only vaults move
        // data over TSVs.
        if (name.rfind("vault", 0) == 0 || name.rfind("chan", 0) == 0) {
            if (name.find(".activates") != std::string::npos)
                acts += v;
            else if (name.find(".reads") != std::string::npos)
                reads += v;
            else if (name.find(".writes") != std::string::npos)
                writes += v;
            else if (name.find(".tsv_bytes") != std::string::npos)
                tsv_bytes += v;
        } else if (name.rfind("host_pcu", 0) == 0 &&
                   name.find(".executed") != std::string::npos) {
            host_ops += v;
        } else if (name.rfind("mem_pcu", 0) == 0 &&
                   name.find(".executed") != std::string::npos) {
            mem_ops += v;
        } else if (name.rfind("link", 0) == 0 &&
                   endsWith(name, ".flits")) {
            // Every physical interconnect link registers
            // "link<N>.flits"; summing the prefix family charges each
            // hop a flit traversed, however many links the topology
            // has.  (The injected "net.req/res.flits" counters count
            // packets once and are deliberately excluded.)
            flits += v;
        } else if (name.find("pim_dir.") != std::string::npos &&
                   endsWith(name, ".acquires")) {
            // "pim_dir.acquires" unsharded, "pmuN.pim_dir.acquires"
            // per bank — one array access per acquire either way.
            dir_ops += v;
        } else if (name.find("loc_mon.") != std::string::npos &&
                   endsWith(name, ".lookups")) {
            // Every PEI lookup reads the monitor array exactly once
            // (hit, miss, and ignored hit alike).
            mon_ops += v;
        }
    }
    e.dram = acts * p.dram_activate_pj +
             (reads + writes) * p.dram_access_pj;
    e.tsv = tsv_bytes / block_size * p.tsv_per_block_pj;

    // Only the hmc backend has packetized off-chip links; the other
    // backends fold bus energy into their per-access costs.
    e.offchip = flits * p.link_flit_pj;

    e.pcu = host_ops * p.host_pcu_op_pj + mem_ops * p.mem_pcu_op_pj;

    e.pmu = dir_ops * p.pim_dir_access_pj + mon_ops * p.loc_mon_access_pj;

    return e;
}

} // namespace pei
