#include "energy_model.hh"

#include "common/types.hh"

namespace pei
{

EnergyBreakdown
computeEnergy(const StatRegistry &stats, const EnergyParams &p)
{
    EnergyBreakdown e;

    const double l1 = static_cast<double>(stats.get("cache.l1_accesses"));
    const double l2 = static_cast<double>(stats.get("cache.l2_accesses"));
    const double l3 = static_cast<double>(stats.get("cache.l3_accesses"));
    const double xbar = static_cast<double>(stats.get("cache.xbar_msgs"));
    e.caches = l1 * p.l1_access_pj + l2 * p.l2_access_pj +
               l3 * p.l3_access_pj + xbar * p.xbar_msg_pj;

    const auto snap = stats.snapshot();
    double acts = 0.0, reads = 0.0, writes = 0.0, tsv_bytes = 0.0;
    double host_ops = 0.0, mem_ops = 0.0;
    for (const auto &[name, value] : snap) {
        const auto v = static_cast<double>(value);
        // DRAM arrays live behind "vaultN." (hmc backend) or
        // "chanN." (ddr backend) stat prefixes; only vaults move
        // data over TSVs.
        if (name.rfind("vault", 0) == 0 || name.rfind("chan", 0) == 0) {
            if (name.find(".activates") != std::string::npos)
                acts += v;
            else if (name.find(".reads") != std::string::npos)
                reads += v;
            else if (name.find(".writes") != std::string::npos)
                writes += v;
            else if (name.find(".tsv_bytes") != std::string::npos)
                tsv_bytes += v;
        } else if (name.rfind("host_pcu", 0) == 0 &&
                   name.find(".executed") != std::string::npos) {
            host_ops += v;
        } else if (name.rfind("mem_pcu", 0) == 0 &&
                   name.find(".executed") != std::string::npos) {
            mem_ops += v;
        }
    }
    e.dram = acts * p.dram_activate_pj +
             (reads + writes) * p.dram_access_pj;
    e.tsv = tsv_bytes / block_size * p.tsv_per_block_pj;

    // Only the hmc backend has packetized off-chip links; the other
    // backends fold bus energy into their per-access costs.
    const double flits =
        (stats.has("link.req.flits")
             ? static_cast<double>(stats.get("link.req.flits"))
             : 0.0) +
        (stats.has("link.res.flits")
             ? static_cast<double>(stats.get("link.res.flits"))
             : 0.0);
    e.offchip = flits * p.link_flit_pj;

    e.pcu = host_ops * p.host_pcu_op_pj + mem_ops * p.mem_pcu_op_pj;

    const double dir_ops =
        static_cast<double>(stats.get("pim_dir.acquires"));
    // Every PEI lookup reads the monitor array exactly once (hit,
    // miss, and ignored hit alike).
    const double mon_ops =
        static_cast<double>(stats.get("loc_mon.lookups"));
    e.pmu = dir_ops * p.pim_dir_access_pj + mon_ops * p.loc_mon_access_pj;

    return e;
}

} // namespace pei
