/**
 * @file
 * Per-event energy model of the memory hierarchy (paper §7.7).
 *
 * The paper uses CACTI 6.5 (caches, PMU structures), CACTI-3DD
 * (3D-stacked DRAM), McPAT (DRAM controllers), a prior-work link
 * energy model, and synthesized RTL (PCUs).  None of those tools is
 * available offline, so this model charges a fixed energy per
 * component event with constants chosen to preserve the ratios that
 * drive Fig. 12: DRAM array access ≫ off-chip flit ≫ L3 access ≫
 * L2/L1 access ≫ TSV hop ≫ PCU op ≫ PMU lookup.  Absolute joules are
 * not meaningful; normalized comparisons between configurations are.
 */

#ifndef PEISIM_ENERGY_ENERGY_MODEL_HH
#define PEISIM_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "common/stats.hh"

namespace pei
{

/** Per-event energy constants in picojoules. */
struct EnergyParams
{
    double l1_access_pj = 10.0;
    double l2_access_pj = 30.0;
    double l3_access_pj = 120.0;
    double xbar_msg_pj = 60.0;

    double dram_activate_pj = 1800.0;
    double dram_access_pj = 1100.0; ///< column access, one block
    double tsv_per_block_pj = 40.0; ///< vertical transfer of 64 B

    double link_flit_pj = 620.0; ///< off-chip SerDes, 16 B flit

    double host_pcu_op_pj = 25.0;
    double mem_pcu_op_pj = 18.0; ///< slower clock, smaller drivers
    double pim_dir_access_pj = 6.0;
    double loc_mon_access_pj = 12.0;
};

/** Energy totals by component, in picojoules. */
struct EnergyBreakdown
{
    double caches = 0.0;   ///< L1 + L2 + L3 + crossbar
    double dram = 0.0;     ///< activates + column accesses
    double tsv = 0.0;      ///< vertical transfers
    double offchip = 0.0;  ///< request + response link flits
    double pcu = 0.0;      ///< host- and memory-side PCU ops
    double pmu = 0.0;      ///< PIM directory + locality monitor

    double
    total() const
    {
        return caches + dram + tsv + offchip + pcu + pmu;
    }
};

/** Compute the memory-hierarchy energy of a finished simulation. */
EnergyBreakdown computeEnergy(const StatRegistry &stats,
                              const EnergyParams &params = {});

} // namespace pei

#endif // PEISIM_ENERGY_ENERGY_MODEL_HH
