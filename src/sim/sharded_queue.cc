#include "sharded_queue.hh"

#include <algorithm>

namespace pei
{

namespace
{

/**
 * Identity of the shard the current OS thread is executing: set by
 * worker threads at startup and by the coordinator around its own
 * shard-0 section, consulted by scheduleOn()/post() to pick the
 * right mailbox row.  A thread that never entered an epoch of this
 * queue (e.g. a sweep worker constructing a fresh System) reads as
 * shard 0, which is correct: outside epochs only the coordinating
 * thread touches the queue.
 */
thread_local const ShardedQueue *tls_owner = nullptr;
thread_local unsigned tls_shard = 0;

void
relaxWait(unsigned &spins)
{
    // Spin briefly (cheap when a peer is about to flip the flag on
    // another core), then yield: on oversubscribed hosts — fewer
    // cores than shards — the waiting thread must surrender its
    // timeslice or every barrier costs a full scheduling quantum.
    if (++spins > 128) {
        std::this_thread::yield();
        spins = 0;
    }
}

} // namespace

ShardedQueue::ShardedQueue(unsigned nshards)
{
    const unsigned n = std::max(1u, nshards);
    queues.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues.push_back(std::make_unique<EventQueue>());
    boxes.resize(static_cast<std::size_t>(n) * n);
    shard_errors.assign(n, nullptr);
    shard_clamped.assign(n, 0);
}

ShardedQueue::~ShardedQueue()
{
    if (!workers.empty()) {
        shutdown.store(true, std::memory_order_relaxed);
        epoch_go.fetch_add(1, std::memory_order_release);
        for (std::thread &t : workers)
            t.join();
    }
}

void
ShardedQueue::scheduleOn(unsigned dst, Tick when, Continuation fn)
{
    const unsigned src = (tls_owner == this) ? tls_shard : 0;
    if (dst == src || !parallel()) {
        // Same shard (and all of single-shard mode): a plain
        // scheduleAt keeps the sequential (tick, seq) order — this is
        // what makes --shards=1 bit-identical to the old engine.
        queues[dst]->scheduleAt(when, std::move(fn));
        return;
    }
    MsgBuf &buf = outbox(src, dst, write_parity);
    buf.min_when = std::min(buf.min_when, when);
    buf.msgs.push_back(Msg{when, std::move(fn)});
}

void
ShardedQueue::post(unsigned dst, Continuation fn)
{
    const unsigned src = (tls_owner == this) ? tls_shard : 0;
    scheduleOn(dst, queues[src]->now(), std::move(fn));
}

void
ShardedQueue::drainInbox(unsigned shard, unsigned parity)
{
    EventQueue &q = *queues[shard];
    const unsigned n = numShards();
    // Fixed drain order — src 0..S-1, FIFO within each pair — so the
    // (tick, seq) keys assigned at delivery depend only on simulation
    // state, never on thread scheduling.
    for (unsigned src = 0; src < n; ++src) {
        MsgBuf &buf = boxes[src * n + shard].bufs[parity];
        if (buf.msgs.empty())
            continue;
        for (Msg &m : buf.msgs) {
            Tick when = m.when;
            if (when < q.now()) {
                // The destination already advanced past the message's
                // tick (a sub-lookahead edge, or horizon slack):
                // clamp forward.  Deterministic — q.now() here is a
                // pure function of the event history.
                when = q.now();
                ++shard_clamped[shard];
            }
            q.scheduleAt(when, std::move(m.fn));
        }
        buf.msgs.clear();
        buf.min_when = max_tick;
    }
}

void
ShardedQueue::runShard(unsigned shard)
{
    try {
        drainInbox(shard, drain_parity_pub);
        queues[shard]->run(horizon_pub);
    } catch (...) {
        // Park the error; the coordinator rethrows after the barrier
        // (a worker that unwound past the barrier would deadlock it).
        shard_errors[shard] = std::current_exception();
    }
}

void
ShardedQueue::workerMain(unsigned shard)
{
    tls_owner = this;
    tls_shard = shard;
    std::uint64_t next_epoch = 1;
    unsigned spins = 0;
    while (true) {
        while (epoch_go.load(std::memory_order_acquire) < next_epoch) {
            if (shutdown.load(std::memory_order_relaxed))
                return;
            relaxWait(spins);
        }
        if (shutdown.load(std::memory_order_relaxed))
            return;
        runShard(shard);
        done_count.fetch_add(1, std::memory_order_release);
        ++next_epoch;
    }
}

void
ShardedQueue::startWorkers()
{
    if (!workers.empty())
        return;
    workers.reserve(numShards() - 1);
    for (unsigned s = 1; s < numShards(); ++s)
        workers.emplace_back([this, s] { workerMain(s); });
}

std::uint64_t
ShardedQueue::runEpoch()
{
    const unsigned n = numShards();
    tls_owner = this;
    tls_shard = 0;

    // Earliest pending work anywhere: queued events plus messages
    // written since the last drain (still in bufs[write_parity]).
    Tick m = max_tick;
    for (const auto &q : queues)
        m = std::min(m, q->nextEventTick());
    for (const Mailbox &box : boxes)
        m = std::min(m, box.bufs[write_parity].min_when);
    if (m == max_tick)
        return 0;

    // horizon = m + lookahead - 1: an event at tick t <= horizon can
    // only reach another shard at t + lookahead > horizon, so no
    // message sent this epoch is needed this epoch.  The window adds
    // deliberate slack on top (see setWindow).
    const Ticks slack = (lookahead_ > 0 ? lookahead_ - 1 : 0) + window_;
    horizon_pub = (m > max_tick - slack) ? max_tick : m + slack;
    drain_parity_pub = write_parity;
    write_parity ^= 1;

    const std::uint64_t before = executedCount();

    if (n == 1) {
        drainInbox(0, drain_parity_pub);
        queues[0]->run(horizon_pub);
    } else {
        startWorkers();
        epoch_go.fetch_add(1, std::memory_order_release);
        runShard(0);
        unsigned spins = 0;
        while (done_count.load(std::memory_order_acquire) != n - 1)
            relaxWait(spins);
        done_count.store(0, std::memory_order_relaxed);
    }

    ++epochs_;
    std::exception_ptr err = nullptr;
    for (unsigned s = 0; s < n; ++s) {
        if (shard_errors[s] && !err)
            err = shard_errors[s]; // lowest shard wins, deterministic
        shard_errors[s] = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
    if (epoch_probe)
        epoch_probe();
    return executedCount() - before;
}

std::uint64_t
ShardedQueue::executedCount() const
{
    std::uint64_t total = 0;
    for (const auto &q : queues)
        total += q->executedCount();
    return total;
}

std::uint64_t
ShardedQueue::clampedCount() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : shard_clamped)
        total += c;
    return total;
}

} // namespace pei
