/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single global-ordered queue of (tick, callback) events.  Events
 * scheduled for the same tick execute in scheduling order (FIFO),
 * which keeps simulations fully deterministic.
 *
 * Storage layout: the binary heap holds 24-byte EventRef PODs
 * (tick, seq, slot) while the continuations themselves live in a
 * SlotPool slab arena addressed by slot.  Heap sift operations move
 * only PODs, arena slots are recycled through a freelist, and the
 * callables are allocation-free InlineFunctions — so a steady-state
 * schedule/execute cycle touches the heap allocator exactly zero
 * times.  Ordering is unaffected: the (tick, seq) key is identical
 * to the pre-arena implementation, which can be re-enabled with the
 * PEISIM_REFERENCE_QUEUE CMake option for differential testing (it
 * stores each continuation inside its heap node, the seed layout).
 */

#ifndef PEISIM_SIM_EVENT_QUEUE_HH
#define PEISIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional> // stdfunction-allowed: cold boundary-probe hook only
#include <stdexcept>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/continuation.hh"
#include "sim/slot_pool.hh"

namespace pei
{

/**
 * Callback type for the event-boundary probe (invariant checkers).
 * Probes are cold (installed rarely, fire every N events) and may
 * capture arbitrarily large checker state, so they stay type-erased
 * on the heap rather than paying Continuation's inline budget.
 */
using EventFn = std::function<void()>; // stdfunction-allowed: probe hook

/**
 * Thrown by the simulation-driving loops (Runtime::run) when a
 * cross-thread stop request arrives via EventQueue::requestStop —
 * e.g. the sweep driver cancelling a job that exceeded its
 * wall-clock timeout.  The simulation is abandoned at an event
 * boundary; its System must be discarded, not resumed.
 */
class SimulationStopped : public std::runtime_error
{
  public:
    SimulationStopped()
        : std::runtime_error("simulation stopped by external request")
    {}
};

/**
 * The event queue that drives a simulation.  One instance per
 * simulated System; all components schedule against it.
 */
class EventQueue
{
  public:
    /**
     * Cadence (in events) of the relaxed-atomic stopRequested() check
     * inside run() and the other driving loops.  Checking every event
     * taxed the hot loop for a knob that only sweep-driver timeouts
     * ever pull; checking every 1024 events bounds cancellation
     * latency to a still-instant ~microsecond while keeping the load
     * off the per-event path.  Must be a power of two.
     */
    static constexpr std::uint64_t stop_check_interval = 1024;

    /** Current simulation time. */
    Tick now() const { return cur_tick; }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    schedule(Ticks delay, Continuation fn)
    {
        scheduleAt(cur_tick + delay, std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when (>= now). */
    void
    scheduleAt(Tick when, Continuation fn)
    {
        panic_if(when < cur_tick,
                 "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(cur_tick));
#ifdef PEISIM_REFERENCE_QUEUE
        events.push_back(Event{when, next_seq++, std::move(fn)});
#else
        const std::uint32_t slot = arena.emplace(std::move(fn));
        events.push_back(Event{when, next_seq++, slot});
#endif
        std::push_heap(events.begin(), events.end(), Later{});
    }

    /** True if no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    /** Tick of the next pending event (max_tick if empty). */
    Tick
    nextEventTick() const
    {
        return events.empty() ? max_tick : events.front().when;
    }

    /**
     * Pop and execute the next event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (events.empty())
            return false;
        // pop_heap moves the front event to the back, where it can be
        // moved from without casting away constness.  The callback
        // may schedule new events, so extract it fully first.
        std::pop_heap(events.begin(), events.end(), Later{});
#ifdef PEISIM_REFERENCE_QUEUE
        Event ev = std::move(events.back());
        events.pop_back();
        cur_tick = ev.when;
        ev.fn();
#else
        const Event ev = events.back();
        events.pop_back();
        cur_tick = ev.when;
        Continuation fn = std::move(arena[ev.slot]);
        arena.erase(ev.slot);
        fn();
#endif
        ++executed_count;
        if (probe && executed_count % probe_every == 0)
            probe();
        return true;
    }

    /**
     * Install @p fn as the event-boundary probe: it runs after every
     * @p every-th executed event, at a point where all component
     * state is settled (no event is mid-flight).  Invariant checkers
     * (simfuzz) hook here; a throwing probe propagates out of
     * runOne()/run(), abandoning the simulation at the boundary.
     * Pass a null fn to uninstall.
     */
    void
    setBoundaryProbe(EventFn fn, std::uint64_t every = 1)
    {
        probe = std::move(fn);
        probe_every = every ? every : 1;
    }

    /** Why run() returned (exposed so raw-loop callers can tell a
     *  drain from an external cancellation; see RunOutcome). */
    enum class RunBreak : std::uint8_t
    {
        Drained, ///< queue empty
        Limit,   ///< next event lies past the tick limit
        Stopped, ///< requestStop() observed at a check boundary
    };

    /**
     * Result of run(): how many events executed and why the loop
     * broke.  A stop request used to be indistinguishable from a
     * normal drain here, so raw-loop callers (bench warmup loops,
     * golden-model drivers) silently swallowed cancellations that
     * Runtime::run turns into SimulationStopped; they can now call
     * throwIfStopped() to propagate consistently.
     */
    struct RunOutcome
    {
        std::uint64_t executed = 0;
        RunBreak why = RunBreak::Drained;

        bool stopped() const { return why == RunBreak::Stopped; }

        /** Propagate an external stop the way Runtime::run does. */
        void
        throwIfStopped() const
        {
            if (stopped())
                throw SimulationStopped();
        }
    };

    /**
     * Run until the queue drains, time would pass @p limit, or a
     * stop is requested (checked every stop_check_interval events).
     * @return events executed plus the break reason.
     */
    RunOutcome
    run(Tick limit = max_tick)
    {
        RunOutcome out;
        while (!events.empty() && events.front().when <= limit) {
            if ((out.executed & (stop_check_interval - 1)) == 0 &&
                stopRequested()) {
                out.why = RunBreak::Stopped;
                return out;
            }
            runOne();
            ++out.executed;
        }
        out.why = events.empty() ? RunBreak::Drained : RunBreak::Limit;
        return out;
    }

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_count; }

    /**
     * High-water continuation-arena size in slots (live + freelist);
     * 0 under PEISIM_REFERENCE_QUEUE.  Exposes pool sizing to the
     * hot-path benchmarks and pool-growth tests.
     */
    std::uint32_t
    arenaCapacity() const
    {
#ifdef PEISIM_REFERENCE_QUEUE
        return 0;
#else
        return arena.capacity();
#endif
    }

    /**
     * Ask the loop driving this queue to stop at the next
     * stop-check boundary.  The only EventQueue operation that is
     * safe to call from a different host thread than the one running
     * the simulation; everything else is single-threaded.
     */
    void
    requestStop()
    {
        stop_requested_.store(true, std::memory_order_relaxed);
    }

    /** True once requestStop was called (sticky until cleared). */
    bool
    stopRequested() const
    {
        return stop_requested_.load(std::memory_order_relaxed);
    }

    /** Re-arm the queue after a handled stop (tests, reuse). */
    void
    clearStopRequest()
    {
        stop_requested_.store(false, std::memory_order_relaxed);
    }

  private:
#ifdef PEISIM_REFERENCE_QUEUE
    /** Seed layout: the continuation rides inside its heap node. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Continuation fn;
    };
#else
    /** POD heap node; the continuation lives in the slab arena. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };
#endif

    /** Heap comparator: the earliest (tick, seq) event sits at the
     *  front of the std::*_heap-maintained vector. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Event> events; ///< binary heap ordered by Later
#ifndef PEISIM_REFERENCE_QUEUE
    SlotPool<Continuation> arena; ///< pending-event continuations
#endif
    Tick cur_tick = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed_count = 0;
    std::atomic<bool> stop_requested_{false};
    EventFn probe;                 ///< event-boundary invariant probe
    std::uint64_t probe_every = 1; ///< probe cadence in events
};

} // namespace pei

#endif // PEISIM_SIM_EVENT_QUEUE_HH
