/**
 * @file
 * Chunked slab pool with freelist reuse and stable 32-bit handles.
 *
 * The event queue and the transaction-record pools (HMC reads/writes,
 * PEI pipelines, memory-side PCU operations) allocate one record per
 * in-flight operation on the hottest paths of the simulator.  A
 * SlotPool turns each of those allocations into a freelist pop:
 * storage grows in fixed-size chunks that are never moved or freed
 * until the pool is destroyed, so element addresses are stable and a
 * steady-state schedule/execute cycle performs zero heap allocations.
 *
 * Handles are 32-bit indices (chunk number × chunk size + offset),
 * cheap enough to capture in a stage lambda alongside `this` while
 * staying far under Continuation's inline-capture budget.
 */

#ifndef PEISIM_SIM_SLOT_POOL_HH
#define PEISIM_SIM_SLOT_POOL_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace pei
{

template <typename T, unsigned ChunkSizeLog2 = 8>
class SlotPool
{
  public:
    using Handle = std::uint32_t;
    static constexpr Handle npos = ~Handle{0};
    static constexpr std::uint32_t chunk_size = 1u << ChunkSizeLog2;
    static_assert(ChunkSizeLog2 >= 6 && ChunkSizeLog2 < 32,
                  "chunk must cover at least one 64-bit liveness word");

    SlotPool() = default;
    SlotPool(const SlotPool &) = delete;
    SlotPool &operator=(const SlotPool &) = delete;

    ~SlotPool()
    {
        // Live slots at teardown are normal when a simulation is
        // cancelled (timeout, fault injection) with operations still
        // in flight; destroy them like any owning container would.
        if (live_ == 0)
            return;
        for (Handle h = 0; h < bump; ++h) {
            if (liveBit(h))
                reinterpret_cast<T *>(slot(h).storage)->~T();
        }
    }

    /** Construct a T in a free slot; returns its handle. */
    template <typename... CtorArgs>
    Handle
    emplace(CtorArgs &&...args)
    {
        Handle h;
        if (free_head != npos) {
            h = free_head;
            Slot &s = slot(h);
            free_head = s.next_free;
            ::new (static_cast<void *>(s.storage))
                T(std::forward<CtorArgs>(args)...);
        } else {
            if (bump == limit) {
                chunks.push_back(std::make_unique<Slot[]>(chunk_size));
                live_bits.resize(live_bits.size() + chunk_size / 64, 0);
                limit += chunk_size;
            }
            h = bump++;
            ::new (static_cast<void *>(slot(h).storage))
                T(std::forward<CtorArgs>(args)...);
        }
        live_bits[h >> 6] |= std::uint64_t{1} << (h & 63);
        ++live_;
        return h;
    }

    /** The element behind @p h (must be live). */
    T &
    operator[](Handle h)
    {
#ifndef NDEBUG
        panic_if(!liveBit(h), "SlotPool access to dead handle %u", h);
#endif
        return *reinterpret_cast<T *>(slot(h).storage);
    }

    /** Destroy the element behind @p h and recycle its slot. */
    void
    erase(Handle h)
    {
#ifndef NDEBUG
        panic_if(!liveBit(h), "SlotPool erase of dead handle %u", h);
#endif
        Slot &s = slot(h);
        reinterpret_cast<T *>(s.storage)->~T();
        live_bits[h >> 6] &= ~(std::uint64_t{1} << (h & 63));
        s.next_free = free_head;
        free_head = h;
        --live_;
    }

    /** Number of live elements. */
    std::uint64_t liveCount() const { return live_; }

    /** High-water slot count (allocated storage, in elements). */
    std::uint32_t capacity() const { return limit; }

  private:
    union Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        Handle next_free;
    };

    Slot &
    slot(Handle h)
    {
        return chunks[h >> ChunkSizeLog2][h & (chunk_size - 1)];
    }

    bool
    liveBit(Handle h) const
    {
        return (live_bits[h >> 6] >> (h & 63)) & 1;
    }

    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<std::uint64_t> live_bits; ///< one bit per slot
    Handle free_head = npos;
    std::uint32_t bump = 0;  ///< next never-used slot
    std::uint32_t limit = 0; ///< total slots across chunks
    std::uint64_t live_ = 0;
};

} // namespace pei

#endif // PEISIM_SIM_SLOT_POOL_HH
