/**
 * @file
 * C++20 coroutine plumbing for workload threads.
 *
 * Workload kernels are written as coroutines returning Task; they
 * suspend on simulated-memory awaitables (loads, stores, PEIs,
 * fences, compute delays) and are resumed by event-queue callbacks
 * when the simulated operation completes.  Tasks are eager (start
 * running on creation) and support co_await-ing sub-tasks via
 * continuation chaining.
 */

#ifndef PEISIM_SIM_TASK_HH
#define PEISIM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

#include "event_queue.hh"

namespace pei
{

/**
 * Eager, fire-on-create coroutine task.  The owner must keep the Task
 * object alive until done() (the frame is destroyed by ~Task).
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type
    {
        std::coroutine_handle<> continuation;
        bool finished = false;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_never initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                h.promise().finished = true;
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;
    explicit Task(Handle h) : handle(h) {}

    Task(Task &&other) noexcept : handle(std::exchange(other.handle, {})) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle = std::exchange(other.handle, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True once the coroutine ran to completion. */
    bool done() const { return !handle || handle.promise().finished; }

    // Awaitable interface: co_await task waits for its completion.
    bool await_ready() const { return done(); }

    void
    await_suspend(std::coroutine_handle<> cont)
    {
        handle.promise().continuation = cont;
    }

    void await_resume() {}

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = {};
        }
    }

    Handle handle;
};

/** Awaitable that resumes the coroutine @p delay ticks later. */
class DelayAwaiter
{
  public:
    DelayAwaiter(EventQueue &eq, Ticks delay) : eq(eq), delay(delay) {}

    bool await_ready() const { return delay == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq.schedule(delay, [h] { h.resume(); });
    }

    void await_resume() {}

  private:
    EventQueue &eq;
    Ticks delay;
};

/**
 * Awaitable completed by an external callback.  The issuing code
 * captures completion() and invokes it (typically from an event-queue
 * callback) when the simulated operation finishes; a value of type T
 * is handed to the awaiting coroutine.
 *
 * The shared state lives on the coroutine frame via the awaiter, so
 * the callback must fire before the awaiting coroutine is destroyed.
 */
template <typename T>
class ValueAwaiter
{
  public:
    struct State
    {
        bool ready = false;
        T value{};
        std::coroutine_handle<> waiter;
    };

    explicit ValueAwaiter(State &state) : state(state) {}

    bool await_ready() const { return state.ready; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        state.waiter = h;
    }

    T await_resume() { return std::move(state.value); }

  private:
    State &state;
};

} // namespace pei

#endif // PEISIM_SIM_TASK_HH
