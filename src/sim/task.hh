/**
 * @file
 * C++20 coroutine plumbing for workload threads.
 *
 * Workload kernels are written as coroutines returning Task; they
 * suspend on simulated-memory awaitables (loads, stores, PEIs,
 * fences, compute delays) and are resumed by event-queue callbacks
 * when the simulated operation completes.  Tasks are eager (start
 * running on creation) and support co_await-ing sub-tasks via
 * continuation chaining.
 */

#ifndef PEISIM_SIM_TASK_HH
#define PEISIM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

#ifndef NDEBUG
#include <unordered_set>
#endif

#include "event_queue.hh"

namespace pei
{

#ifndef NDEBUG
namespace detail
{

/**
 * Debug-build registry of live Task coroutine frames.  Frames are
 * registered at creation and removed when the promise is destroyed;
 * resumeLive() consults it to catch the classic discrete-event bug
 * of a scheduled resumption outliving its coroutine.
 */
inline std::unordered_set<void *> &
liveFrames()
{
    static thread_local std::unordered_set<void *> frames;
    return frames;
}

} // namespace detail
#endif

/**
 * Resume @p h, asserting (debug builds) that the frame is a live
 * Task frame — i.e. it was created by a Task coroutine and has not
 * been destroyed.  All scheduled resumptions route through here so a
 * dangling event can never silently resume freed memory.
 */
inline void
resumeLive(std::coroutine_handle<> h)
{
#ifndef NDEBUG
    panic_if(detail::liveFrames().count(h.address()) == 0,
             "resuming a destroyed (or non-Task) coroutine frame %p",
             h.address());
#endif
    h.resume();
}

/**
 * Eager, fire-on-create coroutine task.  The owner must keep the Task
 * object alive until done() (the frame is destroyed by ~Task).
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type
    {
        std::coroutine_handle<> continuation;
        bool finished = false;
        /** Incremented on completion if set (Runtime's O(1) allDone). */
        std::uint64_t *finish_counter = nullptr;

        Task
        get_return_object()
        {
#ifndef NDEBUG
            detail::liveFrames().insert(
                Handle::from_promise(*this).address());
#endif
            return Task(Handle::from_promise(*this));
        }

#ifndef NDEBUG
        ~promise_type()
        {
            detail::liveFrames().erase(Handle::from_promise(*this).address());
        }
#endif

        std::suspend_never initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                h.promise().finished = true;
                if (auto *counter = h.promise().finish_counter)
                    ++*counter;
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;
    explicit Task(Handle h) : handle(h) {}

    Task(Task &&other) noexcept : handle(std::exchange(other.handle, {})) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle = std::exchange(other.handle, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True once the coroutine ran to completion. */
    bool done() const { return !handle || handle.promise().finished; }

    /**
     * Arrange for @p counter to be incremented when this task
     * finishes (immediately if it already has).  Lets owners of many
     * tasks answer "are all done?" in O(1) instead of scanning.  The
     * counter must outlive the coroutine frame.
     */
    void
    countFinish(std::uint64_t &counter)
    {
        if (done())
            ++counter;
        else
            handle.promise().finish_counter = &counter;
    }

    // Awaitable interface: co_await task waits for its completion.
    bool await_ready() const { return done(); }

    void
    await_suspend(std::coroutine_handle<> cont)
    {
        handle.promise().continuation = cont;
    }

    void await_resume() {}

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = {};
        }
    }

    Handle handle;
};

/** Awaitable that resumes the coroutine @p delay ticks later. */
class DelayAwaiter
{
  public:
    DelayAwaiter(EventQueue &eq, Ticks delay) : eq(eq), delay(delay) {}

    bool await_ready() const { return delay == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq.schedule(delay, Continuation([h] { resumeLive(h); }));
    }

    void await_resume() {}

  private:
    EventQueue &eq;
    Ticks delay;
};

/**
 * Awaitable completed by an external callback.  The issuing code
 * captures completion() and invokes it (typically from an event-queue
 * callback) when the simulated operation finishes; a value of type T
 * is handed to the awaiting coroutine.
 *
 * The shared state lives on the coroutine frame via the awaiter, so
 * the callback must fire before the awaiting coroutine is destroyed.
 */
template <typename T>
class ValueAwaiter
{
  public:
    struct State
    {
        bool ready = false;
        T value{};
        std::coroutine_handle<> waiter;
    };

    explicit ValueAwaiter(State &state) : state(state) {}

    bool await_ready() const { return state.ready; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        state.waiter = h;
    }

    T await_resume() { return std::move(state.value); }

  private:
    State &state;
};

} // namespace pei

#endif // PEISIM_SIM_TASK_HH
