/**
 * @file
 * Fixed-capacity inline-storage callables for the scheduling hot path.
 *
 * Every latency edge in the simulator is expressed as a callback
 * handed to the EventQueue or parked in a component (MSHR waiter
 * lists, directory lock queues, transaction records).  With
 * std::function, nearly all of those closures exceed the 16-byte
 * small-object buffer of libstdc++ and heap-allocate — once per
 * event, millions of times per run.  InlineFunction replaces that
 * with a caller-chosen inline capture budget enforced at compile
 * time: a closure either fits in the inline storage or the build
 * fails, so the hot path can never silently regress into malloc.
 *
 * Design rules that follow from the fixed capacity:
 *  - A lambda can never capture a callable of the same capacity
 *    (it would not fit inside itself).  Continuations are therefore
 *    *parked* in component-owned records (MSHR entries, transaction
 *    slots) and stage lambdas capture only `{this, handle}`-sized
 *    state.
 *  - InlineFunction is move-only; moving relocates the closure into
 *    the destination buffer and leaves the source null.
 */

#ifndef PEISIM_SIM_CONTINUATION_HH
#define PEISIM_SIM_CONTINUATION_HH

#include <cstddef>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace pei
{

template <typename Signature, std::size_t Capacity>
class InlineFunction;

/**
 * Move-only type-erased callable with @p Capacity bytes of inline
 * storage and no heap fallback.  Construction from a closure larger
 * than the budget is a compile error (static_assert), as is a
 * closure whose move constructor may throw or whose alignment
 * exceeds pointer alignment.
 */
template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    static constexpr std::size_t capacity = Capacity;

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename Fn = std::remove_cvref_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<Fn, InlineFunction> &&
                  std::is_invocable_r_v<R, Fn &, Args...>>>
    InlineFunction(F &&f)
    {
        static_assert(sizeof(Fn) <= Capacity,
                      "closure exceeds this InlineFunction's inline-capture "
                      "budget: shrink the captures or park the state in a "
                      "component-owned record and capture its handle");
        static_assert(alignof(Fn) <= alignof(void *),
                      "closure is over-aligned for inline storage");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "closure must be nothrow-move-constructible so queue "
                      "and pool relocation cannot throw");
        ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
        ops = &OpsFor<Fn>::table;
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const noexcept { return ops != nullptr; }

    R
    operator()(Args... args)
    {
        panic_if(!ops, "invoking a null InlineFunction");
        return ops->invoke(storage, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct src's closure into dst, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    struct OpsFor
    {
        static R
        invoke(void *s, Args &&...args)
        {
            return (*static_cast<Fn *>(s))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *dst, void *src) noexcept
        {
            Fn *from = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        }

        static void destroy(void *s) noexcept { static_cast<Fn *>(s)->~Fn(); }

        static constexpr Ops table{&invoke, &relocate, &destroy};
    };

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (other.ops) {
            other.ops->relocate(storage, other.storage);
            ops = std::exchange(other.ops, nullptr);
        }
    }

    alignas(void *) unsigned char storage[Capacity];
    const Ops *ops = nullptr;
};

/**
 * The simulator-wide scheduling callback: every EventQueue event and
 * every component-parked completion (MSHR waiter, lock grant, vault
 * completion, drain/pfence wakeup) is one of these.  The 48-byte
 * budget fits every stage closure in the codebase — typically
 * `{this, slot-handle}` or `{this, core, paddr, is_write}` — with
 * room for one nested small callable (e.g. a `[this, h]` coroutine
 * resumption forwarded through a transaction record).
 */
using Continuation = InlineFunction<void(), 48>;

} // namespace pei

#endif // PEISIM_SIM_CONTINUATION_HH
