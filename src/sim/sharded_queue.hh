/**
 * @file
 * Sharded event queues with conservative synchronization.
 *
 * A ShardedQueue partitions one simulation across several EventQueues
 * ("shards"), each driven by its own worker thread: shard 0 runs the
 * host side (cores, caches, PMU, off-chip links), shards 1..S-1 run
 * the memory partitions (HMC vaults / DDR channels) the backend maps
 * onto them via shardFor().  This is classic conservative parallel
 * discrete-event simulation: all shards advance in lock-step epochs,
 * each epoch running every event up to a shared horizon
 *
 *     horizon = min(next pending tick anywhere) + lookahead - 1
 *
 * where the lookahead is the minimum latency of any host-to-partition
 * edge (the off-chip link propagation time, declared by the memory
 * backend).  Events separated by at least the lookahead can never
 * affect each other inside one epoch, so shards need no finer-grained
 * synchronization than the epoch barrier.
 *
 * Cross-shard schedules go through per-(src,dst) mailboxes: plain
 * double-buffered vectors, written lock-free by exactly one producer
 * shard and drained by the destination at the next epoch entry (the
 * barrier provides the happens-before edge).  Delivery clamps a
 * message's tick to the destination's current time, which keeps every
 * delivery causally legal and — because horizons, drain order, and
 * clamp targets depend only on simulation state — bit-deterministic
 * across runs regardless of thread scheduling.  Edges with a real
 * latency of at least the lookahead are never clamped, so their
 * timing is exact; zero-latency return edges (vault completion back
 * to the host controller) are delayed by at most one epoch window,
 * which perturbs timing but never architectural results.
 *
 * With one shard there are no threads, no mailboxes and no epochs:
 * scheduleOn() degenerates to EventQueue::scheduleAt on the single
 * queue, so single-shard runs stay bit-identical to the sequential
 * engine and remain the golden reference (like PEISIM_REFERENCE_QUEUE
 * for the slab arena).
 */

#ifndef PEISIM_SIM_SHARDED_QUEUE_HH
#define PEISIM_SIM_SHARDED_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional> // stdfunction-allowed: cold epoch-probe hook only
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"

namespace pei
{

class ShardedQueue
{
  public:
    /** Probe hook run on the coordinating thread between epochs,
     *  when every shard is quiescent (no event mid-flight anywhere).
     *  Cold path; may capture large checker state. */
    // stdfunction-allowed: cold inter-epoch hook, off the event path
    using EpochProbe = std::function<void()>;

    explicit ShardedQueue(unsigned nshards = 1);
    ~ShardedQueue();

    ShardedQueue(const ShardedQueue &) = delete;
    ShardedQueue &operator=(const ShardedQueue &) = delete;

    unsigned
    numShards() const
    {
        return static_cast<unsigned>(queues.size());
    }

    /** True when more than one shard exists (worker threads, epochs). */
    bool parallel() const { return numShards() > 1; }

    EventQueue &shard(unsigned i) { return *queues[i]; }

    /** The host-side shard (cores/caches/PMU always live here). */
    EventQueue &host() { return *queues[0]; }
    const EventQueue &host() const { return *queues[0]; }

    /**
     * Shard that runs memory partition @p partition (an HMC global
     * vault, a DDR channel).  Partitions round-robin over the worker
     * shards 1..S-1; with one shard everything maps to shard 0.
     */
    unsigned
    shardFor(unsigned partition) const
    {
        const unsigned n = numShards();
        if (n <= 1)
            return 0;
        return 1 + partition % (n - 1);
    }

    /**
     * Conservative lookahead in ticks: the minimum latency of any
     * mailboxed cross-shard edge, declared by the memory backend
     * (HmcBackend: link propagation; DdrBackend: one burst).  Set
     * once before the first runEpoch().
     */
    void setLookahead(Ticks l) { lookahead_ = l; }
    Ticks lookahead() const { return lookahead_; }

    /**
     * Extra horizon slack beyond the lookahead.  Larger windows batch
     * more events per epoch (amortizing the barriers) at the cost of
     * clamping cross-shard deliveries by up to the window; timing
     * becomes approximate within the window, architectural results
     * are unaffected.  0 (default) keeps the pure-lookahead horizon.
     */
    void setWindow(Ticks w) { window_ = w; }
    Ticks window() const { return window_; }

    /**
     * Schedule @p fn at absolute tick @p when on shard @p dst.  Same
     * shard (or single-shard mode): a plain scheduleAt, preserving
     * the sequential event order exactly.  Cross-shard: appended to
     * the (src,dst) mailbox and delivered at the next epoch entry,
     * clamped to the destination's current tick if it has already
     * advanced past @p when.  Callable from any shard thread during
     * an epoch and from the coordinating thread between epochs.
     */
    void scheduleOn(unsigned dst, Tick when, Continuation fn);

    /**
     * Schedule @p fn on shard @p dst at the calling shard's current
     * tick — the zero-latency completion edge (e.g. vault responses
     * re-entering the host-side controller).  Subject to clamping.
     */
    void post(unsigned dst, Continuation fn);

    /**
     * Run one epoch: drain every mailbox written during the previous
     * epoch, then run all shards up to the shared horizon and barrier.
     * @return total events executed across all shards this epoch;
     * 0 if and only if no events or messages were pending anywhere
     * (a fully drained simulation), unless a stop was requested.
     * Exceptions thrown on any shard (panics, probe violations) are
     * captured and rethrown here, lowest shard index first.
     */
    std::uint64_t runEpoch();

    /** Total events executed across all shards since construction. */
    std::uint64_t executedCount() const;

    /** Epochs completed (1 per runEpoch that found work). */
    std::uint64_t epochCount() const { return epochs_; }

    /** Cross-shard deliveries clamped forward to the destination's
     *  current tick (0 when every edge honours the lookahead). */
    std::uint64_t clampedCount() const;

    /** Install the between-epochs probe (nullptr uninstalls). */
    void setEpochProbe(EpochProbe fn) { epoch_probe = std::move(fn); }

    /** Forwarders to the host shard's cross-thread stop flag. */
    void requestStop() { host().requestStop(); }
    bool stopRequested() const { return host().stopRequested(); }
    void clearStopRequest() { host().clearStopRequest(); }

  private:
    /** One cross-shard message: an absolute tick and a continuation. */
    struct Msg
    {
        Tick when;
        Continuation fn;
    };

    /**
     * Double-buffered (src,dst) mailbox.  The producer shard appends
     * to bufs[write_parity] during an epoch; the destination drains
     * the other buffer at the next epoch entry.  min_when feeds the
     * horizon computation so pending messages count as pending work.
     */
    struct MsgBuf
    {
        std::vector<Msg> msgs;
        Tick min_when = max_tick;
    };

    struct Mailbox
    {
        MsgBuf bufs[2];
    };

    MsgBuf &
    outbox(unsigned src, unsigned dst, unsigned parity)
    {
        return boxes[src * numShards() + dst].bufs[parity];
    }

    void startWorkers();
    void workerMain(unsigned shard);
    void drainInbox(unsigned shard, unsigned parity);
    void runShard(unsigned shard);

    std::vector<std::unique_ptr<EventQueue>> queues;
    std::vector<Mailbox> boxes; ///< S*S mailboxes, row-major by src

    Ticks lookahead_ = 0;
    Ticks window_ = 0;
    std::uint64_t epochs_ = 0;
    unsigned write_parity = 0; ///< coordinator-owned, flipped per epoch

    // Epoch parameters, published by the coordinator before the
    // release increment of epoch_go and read by workers after their
    // acquire load — plain fields are safe under that protocol.
    Tick horizon_pub = 0;
    unsigned drain_parity_pub = 0;

    std::atomic<std::uint64_t> epoch_go{0};
    std::atomic<unsigned> done_count{0};
    std::atomic<bool> shutdown{false};

    std::vector<std::thread> workers;      ///< shards 1..S-1, lazy
    std::vector<std::exception_ptr> shard_errors;
    std::vector<std::uint64_t> shard_clamped; ///< per-shard clamp count

    EpochProbe epoch_probe; ///< runs quiescent, coordinator thread
};

} // namespace pei

#endif // PEISIM_SIM_SHARDED_QUEUE_HH
