/**
 * @file
 * Unit tests for the energy model: component attribution, ratio
 * sanity (DRAM ≫ SRAM per event), and end-to-end properties
 * (PIM-Only on cache-resident data costs more DRAM energy than
 * host-side execution — the Fig. 12 small-input effect).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "energy/energy_model.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

TEST(EnergyModel, ZeroStatsZeroEnergy)
{
    StatRegistry stats;
    Counter dummy;
    stats.add("cache.l1_accesses", &dummy);
    Counter c2, c3, c4, c5, c6, c7;
    stats.add("cache.l2_accesses", &c2);
    stats.add("cache.l3_accesses", &c3);
    stats.add("cache.xbar_msgs", &c4);
    stats.add("link.req.flits", &c5);
    stats.add("link.res.flits", &c6);
    stats.add("pim_dir.acquires", &c7);
    Counter c8;
    stats.add("loc_mon.lookups", &c8);
    EXPECT_DOUBLE_EQ(computeEnergy(stats).total(), 0.0);
}

TEST(EnergyModel, AttributesComponentsIndependently)
{
    StatRegistry stats;
    Counter l1, l2, l3, xbar, req, res, dir, lookups;
    stats.add("cache.l1_accesses", &l1);
    stats.add("cache.l2_accesses", &l2);
    stats.add("cache.l3_accesses", &l3);
    stats.add("cache.xbar_msgs", &xbar);
    stats.add("link.req.flits", &req);
    stats.add("link.res.flits", &res);
    stats.add("pim_dir.acquires", &dir);
    stats.add("loc_mon.lookups", &lookups);
    Counter va, vr, vw, vt;
    stats.add("vault0.activates", &va);
    stats.add("vault0.reads", &vr);
    stats.add("vault0.writes", &vw);
    stats.add("vault0.tsv_bytes", &vt);

    l1 += 100;
    EnergyParams p;
    EXPECT_DOUBLE_EQ(computeEnergy(stats, p).caches,
                     100 * p.l1_access_pj);
    va += 10;
    vr += 20;
    vw += 5;
    const EnergyBreakdown e = computeEnergy(stats, p);
    EXPECT_DOUBLE_EQ(e.dram,
                     10 * p.dram_activate_pj + 25 * p.dram_access_pj);
    vt += 640; // 10 blocks
    EXPECT_DOUBLE_EQ(computeEnergy(stats, p).tsv,
                     10 * p.tsv_per_block_pj);
    req += 3;
    res += 4;
    EXPECT_DOUBLE_EQ(computeEnergy(stats, p).offchip,
                     7 * p.link_flit_pj);
}

TEST(EnergyModel, SumsEveryLinkAndPmuBank)
{
    // Topology-aware runs register one "link<N>.*" family per
    // physical link and sharded PMUs one "pmuN.*" family per bank;
    // the model must charge all of them, and only them.
    StatRegistry stats;
    Counter c1, c2, c3, c4;
    stats.add("cache.l1_accesses", &c1);
    stats.add("cache.l2_accesses", &c2);
    stats.add("cache.l3_accesses", &c3);
    stats.add("cache.xbar_msgs", &c4);
    Counter l0, l1, l2, d0, d1, m0, m1;
    stats.add("link0.flits", &l0);
    stats.add("link1.flits", &l1);
    stats.add("link2.flits", &l2);
    stats.add("pmu0.pim_dir.acquires", &d0);
    stats.add("pmu1.pim_dir.acquires", &d1);
    stats.add("pmu0.loc_mon.lookups", &m0);
    stats.add("pmu1.loc_mon.lookups", &m1);
    // Decoys: the injected per-packet counters, link occupancy, and
    // the non-charged members of the PMU families must stay free.
    Counter net_req, busy, rel, hits;
    stats.add("net.req.flits", &net_req);
    stats.add("link0.busy_ticks", &busy);
    stats.add("pmu0.pim_dir.releases", &rel);
    stats.add("pmu0.loc_mon.hits", &hits);

    l0 += 3;
    l1 += 4;
    l2 += 5;
    d0 += 7;
    d1 += 11;
    m0 += 13;
    m1 += 17;
    net_req += 100;
    busy += 999;
    rel += 21;
    hits += 23;

    EnergyParams p;
    const EnergyBreakdown e = computeEnergy(stats, p);
    EXPECT_DOUBLE_EQ(e.offchip, 12 * p.link_flit_pj);
    EXPECT_DOUBLE_EQ(e.pmu, 18 * p.pim_dir_access_pj +
                                30 * p.loc_mon_access_pj);
}

TEST(EnergyModel, DefaultRatiosAreSane)
{
    // The Fig. 12 story requires DRAM access ≫ off-chip flit ≫ L3
    // ≫ L2 ≫ L1 ≫ TSV hop ≫ PCU op ≫ PMU lookup per event.
    EnergyParams p;
    EXPECT_GT(p.dram_activate_pj, p.link_flit_pj);
    EXPECT_GT(p.dram_access_pj, p.link_flit_pj);
    EXPECT_GT(p.link_flit_pj, p.l3_access_pj);
    EXPECT_GT(p.l3_access_pj, p.l2_access_pj);
    EXPECT_GT(p.l2_access_pj, p.l1_access_pj);
    EXPECT_GT(p.l1_access_pj, p.pim_dir_access_pj);
    EXPECT_GT(p.host_pcu_op_pj, p.pim_dir_access_pj);
}

TEST(EnergyModel, PimOnlyOnCacheResidentDataCostsMoreDram)
{
    // Fig. 12, small inputs: PIM-Only always accesses DRAM, so its
    // DRAM energy dwarfs host-side execution's.
    auto run = [](ExecMode mode) {
        SystemConfig cfg = SystemConfig::scaled(mode);
        cfg.cores = 4;
        cfg.phys_bytes = 64ULL << 20;
        cfg.hmc.vaults_per_cube = 4;
        System sys(cfg);
        Runtime rt(sys);
        const Addr a = rt.allocArray<std::uint64_t>(1 << 10); // 8 KB
        rt.spawnThreads(4, [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
            Rng rng(tid);
            for (int i = 0; i < 2000; ++i)
                co_await ctx.inc64(a + 8 * rng.below(1 << 10));
            co_await ctx.drain();
        });
        rt.run();
        return computeEnergy(sys.stats());
    };
    const EnergyBreakdown host = run(ExecMode::HostOnly);
    const EnergyBreakdown pim = run(ExecMode::PimOnly);
    EXPECT_GT(pim.dram, 5.0 * host.dram);
    EXPECT_GT(pim.offchip, host.offchip);
    EXPECT_LT(host.total(), pim.total());
}

TEST(EnergyModel, MemPcuShareIsSmall)
{
    // §7.7: memory-side PCUs contribute ~1.4% of HMC energy.
    SystemConfig cfg = SystemConfig::scaled(ExecMode::PimOnly);
    cfg.cores = 4;
    cfg.phys_bytes = 64ULL << 20;
    cfg.hmc.vaults_per_cube = 4;
    System sys(cfg);
    Runtime rt(sys);
    const Addr a = rt.allocArray<std::uint64_t>(1 << 16);
    rt.spawnThreads(4, [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
        Rng rng(tid);
        for (int i = 0; i < 3000; ++i)
            co_await ctx.inc64(a + 8 * rng.below(1 << 16));
        co_await ctx.drain();
    });
    rt.run();
    const EnergyBreakdown e = computeEnergy(sys.stats());
    const double hmc_energy = e.dram + e.tsv + e.offchip + e.pcu;
    EXPECT_LT(e.pcu / hmc_energy, 0.05);
}

} // namespace
} // namespace pei
