/**
 * @file
 * End-to-end smoke tests of the full stack: System + Runtime + Ctx
 * coroutines driving loads, stores, and PEIs through the caches,
 * PMU, and HMC under every execution mode.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fixture.hh"
#include "runtime/runtime.hh"
#include "runtime/sync.hh"

namespace pei
{
namespace
{

using fixture::tinyConfig;

class RuntimeSmoke : public ::testing::TestWithParam<ExecMode>
{
};

TEST_P(RuntimeSmoke, LoadStoreRoundTrip)
{
    System sys(tinyConfig(GetParam()));
    Runtime rt(sys);
    const Addr arr = rt.allocArray<std::uint64_t>(1024);

    rt.spawn(0, [&](Ctx &ctx) -> Task {
        for (std::uint64_t i = 0; i < 1024; ++i) {
            ctx.fwrite<std::uint64_t>(arr + 8 * i, i * i);
            co_await ctx.store(arr + 8 * i);
        }
        for (std::uint64_t i = 0; i < 1024; ++i) {
            const auto v =
                co_await ctx.loadValue<std::uint64_t>(arr + 8 * i);
            EXPECT_EQ(v, i * i);
        }
    });
    const Tick elapsed = rt.run();
    EXPECT_GT(elapsed, 0u);
}

TEST_P(RuntimeSmoke, PeiIncrementAtomicAcrossCores)
{
    System sys(tinyConfig(GetParam()));
    Runtime rt(sys);
    // One heavily contended counter plus distinct counters.
    const Addr hot = rt.allocArray<std::uint64_t>(1);
    const Addr cold = rt.allocArray<std::uint64_t>(64);

    constexpr unsigned threads = 4;
    constexpr unsigned per_thread = 500;
    rt.spawnThreads(threads, [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
        for (unsigned i = 0; i < per_thread; ++i) {
            co_await ctx.inc64(hot);
            co_await ctx.inc64(cold + 8 * ((tid * per_thread + i) % 64));
        }
        co_await ctx.drain();
    });
    rt.run();

    EXPECT_EQ(sys.memory().read<std::uint64_t>(hot),
              std::uint64_t{threads} * per_thread);
    std::uint64_t cold_sum = 0;
    for (unsigned i = 0; i < 64; ++i)
        cold_sum += sys.memory().read<std::uint64_t>(cold + 8 * i);
    EXPECT_EQ(cold_sum, std::uint64_t{threads} * per_thread);
}

TEST_P(RuntimeSmoke, PeiMinAndFadd)
{
    System sys(tinyConfig(GetParam()));
    Runtime rt(sys);
    const Addr mins = rt.allocArray<std::uint64_t>(16);
    const Addr acc = rt.allocArray<double>(1);
    for (unsigned i = 0; i < 16; ++i)
        sys.memory().write<std::uint64_t>(mins + 8 * i, ~0ULL);

    rt.spawnThreads(4, [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
        for (unsigned i = 0; i < 16; ++i)
            co_await ctx.min64(mins + 8 * i, 100 + tid * 10 + i);
        for (unsigned i = 0; i < 100; ++i)
            co_await ctx.fadd(acc, 0.5);
        co_await ctx.drain();
    });
    rt.run();

    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(sys.memory().read<std::uint64_t>(mins + 8 * i), 100 + i);
    EXPECT_DOUBLE_EQ(sys.memory().read<double>(acc), 4 * 100 * 0.5);
}

TEST_P(RuntimeSmoke, PfenceOrdersPeisBeforeNormalReads)
{
    System sys(tinyConfig(GetParam()));
    Runtime rt(sys);
    const Addr counters = rt.allocArray<std::uint64_t>(256);
    Barrier barrier(sys.eventQueue(), 4);
    bool checked = false;

    rt.spawnThreads(4, [&](Ctx &ctx, unsigned tid, unsigned n) -> Task {
        for (unsigned i = tid; i < 256; i += n)
            for (unsigned k = 0; k < 8; ++k)
                co_await ctx.inc64(counters + 8 * i);
        co_await ctx.pfence();
        co_await barrier.arrive();
        if (tid == 0) {
            // After the fence every increment must be visible.
            for (unsigned i = 0; i < 256; ++i)
                EXPECT_EQ(ctx.fread<std::uint64_t>(counters + 8 * i), 8u);
            checked = true;
        }
        co_await ctx.drain();
    });
    rt.run();
    EXPECT_TRUE(checked);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RuntimeSmoke,
    ::testing::Values(ExecMode::HostOnly, ExecMode::PimOnly,
                      ExecMode::IdealHost, ExecMode::LocalityAware),
    [](const ::testing::TestParamInfo<ExecMode> &info) {
        return fixture::execModeTestName(info.param);
    });

TEST(RuntimeSmoke2, CacheInvariantsHoldAfterMixedTraffic)
{
    System sys(tinyConfig(ExecMode::LocalityAware));
    Runtime rt(sys);
    const Addr arr = rt.allocArray<std::uint64_t>(4096);
    Rng rng(5);
    std::vector<std::pair<Addr, bool>> plan;
    for (int i = 0; i < 4000; ++i)
        plan.emplace_back(arr + 8 * rng.below(4096), rng.chance(0.3));

    rt.spawnThreads(4, [&](Ctx &ctx, unsigned tid, unsigned n) -> Task {
        for (std::size_t i = tid; i < plan.size(); i += n) {
            if (plan[i].second)
                co_await ctx.storeAsync(plan[i].first);
            else
                co_await ctx.loadAsync(plan[i].first);
        }
        co_await ctx.drain();
    });
    rt.run();
    sys.caches().checkInvariants();
}

TEST(RuntimeSmoke2, HashProbeReturnsMatchAndNext)
{
    System sys(tinyConfig(ExecMode::LocalityAware));
    Runtime rt(sys);
    const Addr b0 = rt.alloc(sizeof(HashBucket), block_size);
    const Addr b1 = rt.alloc(sizeof(HashBucket), block_size);

    HashBucket bucket0{};
    bucket0.keys[0] = 111;
    bucket0.keys[1] = 222;
    bucket0.count = 2;
    bucket0.next = b1;
    sys.memory().write(b0, bucket0);
    HashBucket bucket1{};
    bucket1.keys[0] = 333;
    bucket1.count = 1;
    bucket1.next = 0;
    sys.memory().write(b1, bucket1);

    bool done = false;
    rt.spawn(0, [&](Ctx &ctx) -> Task {
        HashProbeIn in{333};
        // Probe chain: miss in bucket0, follow next, hit in bucket1.
        PimPacket r0 = co_await ctx.pei(PeiOpcode::HashProbe, b0, &in,
                                        sizeof(in));
        EXPECT_EQ(r0.output[8], 0);
        std::uint64_t next;
        std::memcpy(&next, r0.output.data(), 8);
        EXPECT_EQ(next, b1);
        PimPacket r1 = co_await ctx.pei(PeiOpcode::HashProbe, next, &in,
                                        sizeof(in));
        EXPECT_EQ(r1.output[8], 1);
        done = true;
    });
    rt.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace pei
