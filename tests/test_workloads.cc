/**
 * @file
 * Integration tests: every §5 workload runs on the simulated machine
 * and its output is validated against the host-side reference
 * implementation, under multiple execution modes.  These are the
 * strongest end-to-end checks in the suite: they exercise kernels,
 * PEI atomicity, coherence (back-invalidation/writeback), pfence,
 * the locality monitor, and the DRAM/link models together.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "workloads/analytics.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/ml.hh"
#include "workloads/workload.hh"

namespace pei
{
namespace
{

using fixture::workloadConfig;

struct Case
{
    WorkloadKind kind;
    ExecMode mode;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return std::string(kindName(info.param.kind)) + "_" +
           fixture::execModeTestName(info.param.mode);
}

class WorkloadValidation : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadValidation, ProducesReferenceOutput)
{
    const Case c = GetParam();
    System sys(workloadConfig(c.mode));
    Runtime rt(sys);

    // Mini inputs: full algorithmic structure, fast to simulate.
    std::unique_ptr<Workload> w;
    switch (c.kind) {
      case WorkloadKind::ATF:
        w = std::make_unique<AtfWorkload>(1024, 8192, 7);
        break;
      case WorkloadKind::BFS:
        w = std::make_unique<BfsWorkload>(1024, 8192, 7);
        break;
      case WorkloadKind::PR:
        w = std::make_unique<PageRankWorkload>(1024, 8192, 7, 2);
        break;
      case WorkloadKind::SP:
        w = std::make_unique<SsspWorkload>(1024, 8192, 7);
        break;
      case WorkloadKind::WCC:
        w = std::make_unique<WccWorkload>(1024, 4096, 7);
        break;
      case WorkloadKind::HJ:
        w = std::make_unique<HashJoinWorkload>(2048, 8192, 7);
        break;
      case WorkloadKind::HG:
        w = std::make_unique<HistogramWorkload>(1u << 14, 7);
        break;
      case WorkloadKind::RP:
        w = std::make_unique<RadixPartitionWorkload>(1u << 14, 7, 2);
        break;
      case WorkloadKind::SC:
        w = std::make_unique<StreamclusterWorkload>(256, 32, 4, 7);
        break;
      case WorkloadKind::SVM:
        w = std::make_unique<SvmWorkload>(16, 512, 7);
        break;
    }

    w->setup(rt);
    w->spawn(rt, sys.numCores());
    const Tick elapsed = rt.run();
    EXPECT_GT(elapsed, 0u);
    EXPECT_GT(w->peiCount(), 0u);

    std::string msg;
    EXPECT_TRUE(w->validate(sys, msg)) << msg;
    sys.caches().checkInvariants();
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (WorkloadKind kind : allWorkloadKinds()) {
        for (ExecMode mode :
             {ExecMode::HostOnly, ExecMode::PimOnly,
              ExecMode::LocalityAware}) {
            cases.push_back({kind, mode});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadValidation,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(WorkloadFactory, MakesEveryKindAndSize)
{
    for (WorkloadKind kind : allWorkloadKinds()) {
        for (InputSize size :
             {InputSize::Small, InputSize::Medium, InputSize::Large}) {
            auto w = makeWorkload(kind, size);
            ASSERT_NE(w, nullptr);
            EXPECT_STREQ(w->name(), kindName(kind));
        }
    }
}

TEST(GraphGen, RmatIsPowerLawSkewed)
{
    EdgeList el = genRmat(4096, 32768, 11);
    ASSERT_EQ(el.edges.size(), 32768u);
    std::vector<std::uint64_t> deg(4096, 0);
    for (auto &[s, d] : el.edges) {
        (void)d;
        ++deg[s];
    }
    std::sort(deg.rbegin(), deg.rend());
    std::uint64_t top = 0;
    for (int i = 0; i < 41; ++i) // top 1% of vertices
        top += deg[i];
    // Power-law graphs concentrate a large edge share in few hubs.
    EXPECT_GT(top, el.edges.size() / 5);
}

TEST(GraphGen, UniformIsNotSkewed)
{
    EdgeList el = genUniform(4096, 32768, 11);
    std::vector<std::uint64_t> deg(4096, 0);
    for (auto &[s, d] : el.edges) {
        (void)d;
        ++deg[s];
    }
    std::sort(deg.rbegin(), deg.rend());
    std::uint64_t top = 0;
    for (int i = 0; i < 41; ++i)
        top += deg[i];
    EXPECT_LT(top, el.edges.size() / 10);
}

TEST(GraphGen, CsrMatchesEdgeList)
{
    SystemConfig cfg = workloadConfig(ExecMode::LocalityAware);
    System sys(cfg);
    Runtime rt(sys);
    EdgeList el = genRmat(512, 4096, 3);
    CsrGraph g(rt, el);
    EXPECT_EQ(g.numVertices(), 512u);
    EXPECT_EQ(g.numEdges(), 4096u);
    // Every edge appears exactly once in the CSR.
    std::uint64_t count = 0;
    for (std::uint64_t v = 0; v < g.numVertices(); ++v) {
        for (std::uint64_t e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
            ++count;
            EXPECT_LT(g.colIdx()[e], 512u);
        }
    }
    EXPECT_EQ(count, 4096u);
    // Simulated-memory copy agrees with the host copy.
    for (std::uint64_t v = 0; v <= g.numVertices(); v += 37)
        EXPECT_EQ(sys.memory().read<std::uint64_t>(g.rowPtrAddr(v)),
                  g.rowPtr()[v]);
    for (std::uint64_t e = 0; e < g.numEdges(); e += 97)
        EXPECT_EQ(sys.memory().read<std::uint64_t>(g.colIdxAddr(e)),
                  g.colIdx()[e]);
}

TEST(GraphGen, FigureGraphsAreAscendingAndNine)
{
    const auto &specs = figureGraphs();
    ASSERT_EQ(specs.size(), 9u);
    for (std::size_t i = 1; i < specs.size(); ++i)
        EXPECT_GT(specs[i].vertices, specs[i - 1].vertices);
}

} // namespace
} // namespace pei
