/**
 * @file
 * Directed tests for the topology-aware interconnect (src/net/) and
 * the address-partitioned (sharded) PMU.
 *
 * The interconnect suite pins hand-computed hop counts and arrival
 * ticks at the default timing (40 GB/s per link = 10 B/tick,
 * 2 ns = 8-tick propagation, 1 ns = 4-tick hop) so any routing or
 * serialization change shows up as an exact-tick diff.  The sharding
 * suite checks that bank-partitioned PMUs preserve the architectural
 * results and aggregate counters of the single shared PMU.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "net/interconnect.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

NetConfig
netConfig(Topology t, unsigned cubes)
{
    NetConfig cfg;
    cfg.topology = t;
    cfg.cubes = cubes;
    return cfg; // defaults: 40 GB/s, 2 ns prop, 1 ns hop, 16 B flits
}

// ------------------------------------------------------------- chain

TEST(Interconnect, ChainMatchesDaisyChainFormula)
{
    // 16 B request from t=0: 2 ticks of serialization (16 B at
    // 10 B/tick), 8 ticks of propagation, 4 ticks per cube passed.
    for (unsigned c = 0; c < 8; ++c) {
        EventQueue eq;
        StatRegistry stats;
        Interconnect net(eq, netConfig(Topology::Chain, 8), stats);
        EXPECT_EQ(net.sendRequest(16, c), 2u + 8u + 4u * c);
        EXPECT_EQ(net.hopCount(c), c);
    }
}

TEST(Interconnect, ChainResponseSerializesWholePacket)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Chain, 8), stats);
    // 80 B response = 5 flits = 8 ticks on the wire, then 8 ticks of
    // propagation from cube 0.
    EXPECT_EQ(net.sendResponse(80, 0), 8u + 8u);
    EXPECT_EQ(net.responseFlits(), 5u);
    EXPECT_EQ(net.responseBytes(), 80u);
}

TEST(Interconnect, ChainBackpressureSerializesSharedLink)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Chain, 8), stats);
    // Two 80 B requests at t=0: the second waits for the first to
    // drain the request channel (8 ticks), then pays its own 8.
    EXPECT_EQ(net.sendRequest(80, 0), 8u + 8u);
    EXPECT_EQ(net.sendRequest(80, 0), 16u + 8u);
    // The channel was busy 16 ticks total.
    EXPECT_EQ(net.link(0).busyTicks(), 16u);
    EXPECT_EQ(net.link(0).flits(), 10u);
}

// -------------------------------------------------------------- ring

TEST(Interconnect, RingRoutesShortestDirection)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Ring, 8), stats);
    // min(c, 8-c), clockwise on the tie at c=4.
    const unsigned expect[] = {0, 1, 2, 3, 4, 3, 2, 1};
    for (unsigned c = 0; c < 8; ++c)
        EXPECT_EQ(net.hopCount(c), expect[c]) << "cube " << c;
    // Host link pair + 8 clockwise + 8 counter-clockwise edges.
    EXPECT_EQ(net.numLinks(), 18u);
}

TEST(Interconnect, RingArrivalHandComputed)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Ring, 4), stats);
    // 16 B request to cube 2 (2 clockwise hops), store-and-forward:
    //   host link: 2 serialize + 8 prop   -> 10
    //   edge 0->1: 2 serialize + 4 hop    -> 16
    //   edge 1->2: 2 serialize + 4 hop    -> 22
    EXPECT_EQ(net.sendRequest(16, 2), 22u);
    // A posted ack from cube 2 skips serialization: 8 + 2*4.
    EXPECT_EQ(net.ackLatency(2), 16u);
}

// -------------------------------------------------------------- mesh

TEST(Interconnect, MeshXyRoutingHopCounts)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Mesh, 8), stats);
    // 8 cubes = 4x2 grid; hops = col + row under XY routing.
    const unsigned expect[] = {0, 1, 2, 3, 1, 2, 3, 4};
    for (unsigned c = 0; c < 8; ++c)
        EXPECT_EQ(net.hopCount(c), expect[c]) << "cube " << c;
    // Host pair + 2*(3*2 horizontal + 4*1 vertical) directed edges.
    EXPECT_EQ(net.numLinks(), 22u);
}

TEST(Interconnect, MeshColsPins)
{
    EXPECT_EQ(meshCols(1), 1u);
    EXPECT_EQ(meshCols(2), 2u);
    EXPECT_EQ(meshCols(4), 2u);
    EXPECT_EQ(meshCols(8), 4u);
    EXPECT_EQ(meshCols(16), 4u);
}

TEST(Interconnect, MeshArrivalHandComputed)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Mesh, 4), stats);
    // 2x2 grid, 16 B request to cube 3 (east then south, 2 hops):
    // 10 (host) + 6 (edge 0->1) + 6 (edge 1->3) = 22.
    EXPECT_EQ(net.sendRequest(16, 3), 22u);
}

// --------------------------------------------- counters / invariants

TEST(Interconnect, InjectedCountersCountPacketsOnce)
{
    EventQueue eq;
    StatRegistry stats;
    Interconnect net(eq, netConfig(Topology::Mesh, 4), stats);
    net.sendRequest(16, 3); // crosses 3 links (host + 2 mesh edges)
    EXPECT_EQ(net.requestFlits(), 1u);
    EXPECT_EQ(stats.get("net.req.flits"), 1u);
    EXPECT_EQ(stats.get("net.req_hops"), 2u);
    std::uint64_t per_link = 0;
    for (unsigned i = 0; i < net.numLinks(); ++i)
        per_link += net.link(i).flits();
    EXPECT_EQ(per_link, 3u);
    // The per-link-vs-traversal conservation invariant holds.
    EXPECT_TRUE(stats.audit().empty());
}

// --------------------------------------------------- PMU sharding

struct ShardOutcome
{
    std::vector<std::uint64_t> array;
    std::uint64_t peis = 0;
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t lookups = 0;
};

/**
 * A deterministic PEI-heavy workload (random inc64 bursts with a
 * pfence between bursts) on @p pmu_shards PMU banks and @p shards
 * event-queue shards; returns the architectural result plus the
 * cross-bank counter totals.
 */
ShardOutcome
runSharded(unsigned pmu_shards, unsigned shards)
{
    SystemConfig cfg = SystemConfig::scaled(ExecMode::LocalityAware);
    cfg.cores = 4;
    cfg.phys_bytes = 64ULL << 20;
    cfg.hmc.vaults_per_cube = 4;
    cfg.pim.pmu_shards = pmu_shards;
    cfg.shards = shards;
    System sys(cfg);
    Runtime rt(sys);
    const unsigned n = 1 << 10;
    const Addr a = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(4, [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
        Rng rng(tid + 1);
        for (int burst = 0; burst < 4; ++burst) {
            for (int i = 0; i < 400; ++i)
                co_await ctx.inc64(a + 8 * rng.below(n));
            co_await ctx.pfence();
        }
        co_await ctx.drain();
    });
    rt.run();

    EXPECT_TRUE(sys.stats().audit().empty())
        << "stats audit failed at pmu_shards=" << pmu_shards
        << " shards=" << shards;

    ShardOutcome out;
    out.array.resize(n);
    sys.memory().readBytes(a, out.array.data(), 8ULL * n);
    out.peis = sys.pmu().peisHost() + sys.pmu().peisMem();
    EXPECT_EQ(sys.pmu().pmuShards(), pmu_shards);
    for (unsigned s = 0; s < sys.pmu().pmuShards(); ++s) {
        out.acquires += sys.pmu().directoryBank(s).acquires();
        out.releases += sys.pmu().directoryBank(s).releases();
        out.lookups += sys.pmu().monitorBank(s).lookups();
    }
    return out;
}

TEST(PmuSharding, BanksPreserveArchitecturalResults)
{
    const ShardOutcome base = runSharded(1, 1);
    EXPECT_EQ(base.peis, 4u * 4u * 400u);
    EXPECT_EQ(base.acquires, base.releases);
    for (const unsigned banks : {2u, 4u}) {
        const ShardOutcome sharded = runSharded(banks, 1);
        EXPECT_EQ(sharded.array, base.array) << banks << " banks";
        EXPECT_EQ(sharded.peis, base.peis) << banks << " banks";
        // Partitioning moves lookups/acquires between banks but must
        // not create or drop any.
        EXPECT_EQ(sharded.acquires, base.acquires) << banks << " banks";
        EXPECT_EQ(sharded.releases, base.releases) << banks << " banks";
        EXPECT_EQ(sharded.lookups, base.lookups) << banks << " banks";
    }
}

TEST(PmuSharding, BanksComposeWithShardedEngine)
{
    const ShardOutcome base = runSharded(1, 1);
    const ShardOutcome sharded = runSharded(4, 4);
    EXPECT_EQ(sharded.array, base.array);
    EXPECT_EQ(sharded.peis, base.peis);
    EXPECT_EQ(sharded.acquires, sharded.releases);
}

TEST(PmuSharding, ShardedStatsUseBankPrefixes)
{
    SystemConfig cfg = SystemConfig::scaled(ExecMode::LocalityAware);
    cfg.cores = 2;
    cfg.phys_bytes = 64ULL << 20;
    cfg.pim.pmu_shards = 2;
    System sys(cfg);
    EXPECT_TRUE(sys.stats().has("pmu0.pim_dir.acquires"));
    EXPECT_TRUE(sys.stats().has("pmu1.loc_mon.lookups"));
    EXPECT_FALSE(sys.stats().has("pim_dir.acquires"));

    SystemConfig one = SystemConfig::scaled(ExecMode::LocalityAware);
    one.cores = 2;
    one.phys_bytes = 64ULL << 20;
    System legacy(one);
    EXPECT_TRUE(legacy.stats().has("pim_dir.acquires"));
    EXPECT_FALSE(legacy.stats().has("pmu0.pim_dir.acquires"));
}

} // namespace
} // namespace pei
