/**
 * @file
 * Serving-layer tests: traffic-generator statistics and determinism,
 * bounded multi-tenant queue policies (FIFO order, weighted-fair
 * shares, shed-on-overflow), and end-to-end Server runs — identical
 * request traces and summaries across repeat runs and `--shards`
 * values, plus shed/conservation accounting and closed-loop
 * completion.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fixture.hh"
#include "runtime/runtime.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "serve/traffic.hh"
#include "workloads/input_cache.hh"

namespace pei
{
namespace
{

TrafficConfig
openCfg(double rate, std::uint64_t requests = 2048)
{
    TrafficConfig cfg;
    cfg.mode = TrafficMode::OpenPoisson;
    cfg.offered_per_mtick = rate;
    cfg.requests = requests;
    cfg.seed = 11;
    cfg.kind_domain[0] = 1024;
    cfg.kind_domain[1] = 512;
    cfg.kind_domain[2] = 128;
    return cfg;
}

/** Mean and squared coefficient of variation of the inter-arrivals. */
void
interarrivalStats(const TrafficPlan &plan, double &mean, double &cv2)
{
    std::vector<double> gaps;
    Tick prev = 0;
    for (const Request &r : plan.requests) {
        gaps.push_back(static_cast<double>(r.arrival_tick - prev));
        prev = r.arrival_tick;
    }
    double sum = 0.0;
    for (double g : gaps)
        sum += g;
    mean = sum / static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps)
        var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    cv2 = var / (mean * mean);
}

TEST(Traffic, PoissonMeanInterarrivalMatchesRate)
{
    // 100 arrivals per Mtick -> mean gap 10'000 ticks.  4096 samples
    // put the sample mean within a few percent of the target; the
    // fixed seed makes the bound exact-repeatable, not flaky.
    const auto plan = planTraffic(openCfg(100.0, 4096), {TenantTraffic{}});
    ASSERT_EQ(plan.requests.size(), 4096u);
    double mean = 0.0, cv2 = 0.0;
    interarrivalStats(plan, mean, cv2);
    EXPECT_NEAR(mean, 10'000.0, 500.0);
    // Exponential gaps: CV^2 ~ 1.
    EXPECT_NEAR(cv2, 1.0, 0.15);
}

TEST(Traffic, PoissonArrivalsStrictlyIncrease)
{
    const auto plan = planTraffic(openCfg(400.0), {TenantTraffic{}});
    Tick prev = 0;
    for (const Request &r : plan.requests) {
        EXPECT_GT(r.arrival_tick, prev);
        prev = r.arrival_tick;
    }
}

TEST(Traffic, PlanIsDeterministic)
{
    const std::vector<TenantTraffic> tenants{TenantTraffic{},
                                             TenantTraffic{}};
    const auto a = planTraffic(openCfg(200.0), tenants);
    const auto b = planTraffic(openCfg(200.0), tenants);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrival_tick, b.requests[i].arrival_tick);
        EXPECT_EQ(a.requests[i].tenant, b.requests[i].tenant);
        EXPECT_EQ(a.requests[i].kind, b.requests[i].kind);
        EXPECT_EQ(a.requests[i].param, b.requests[i].param);
    }
}

TEST(Traffic, BurstyIsBurstierThanPoisson)
{
    TrafficConfig cfg = openCfg(200.0, 4096);
    double mean_p = 0.0, cv2_p = 0.0;
    interarrivalStats(planTraffic(cfg, {TenantTraffic{}}), mean_p, cv2_p);

    cfg.mode = TrafficMode::OpenBursty;
    double mean_b = 0.0, cv2_b = 0.0;
    interarrivalStats(planTraffic(cfg, {TenantTraffic{}}), mean_b, cv2_b);

    // The MMPP-2 keeps the long-run rate in the same ballpark but
    // concentrates arrivals into high-rate phases: the inter-arrival
    // CV^2 must be clearly super-Poisson.
    EXPECT_GT(cv2_b, 2.0 * cv2_p);
    EXPECT_NEAR(mean_b, mean_p, 0.5 * mean_p);
}

TEST(Traffic, ClosedLoopPlanShape)
{
    TrafficConfig cfg = openCfg(100.0);
    cfg.mode = TrafficMode::ClosedLoop;
    cfg.clients = 4;
    cfg.requests_per_client = 8;
    const std::vector<TenantTraffic> tenants{TenantTraffic{},
                                             TenantTraffic{}};
    const auto plan = planTraffic(cfg, tenants);
    ASSERT_EQ(plan.requests.size(), 32u);
    ASSERT_EQ(plan.clients.size(), 4u);
    for (unsigned c = 0; c < 4; ++c) {
        ASSERT_EQ(plan.clients[c].size(), 8u);
        for (const ClientStep &s : plan.clients[c]) {
            EXPECT_GE(s.think, 1u);
            // Clients stay on one tenant (round-robin assignment).
            EXPECT_EQ(plan.requests[s.request].tenant, c % 2);
        }
    }
}

// ---------------------------------------------------------- queues

std::vector<Request>
makeRequests(unsigned n, unsigned tenants)
{
    std::vector<Request> rs(n);
    for (unsigned i = 0; i < n; ++i) {
        rs[i].id = i;
        rs[i].tenant = i % tenants;
        rs[i].enqueue_tick = i; // arrival order == id order
    }
    return rs;
}

TEST(TenantQueues, FifoPopsGlobalArrivalOrder)
{
    const std::vector<TenantTraffic> tenants{TenantTraffic{},
                                             TenantTraffic{}};
    TenantQueues q(tenants, SchedPolicy::Fifo);
    auto rs = makeRequests(10, 2);
    for (auto &r : rs)
        ASSERT_TRUE(q.push(&r));
    for (unsigned i = 0; i < 10; ++i) {
        Request *r = q.pop();
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->id, i);
    }
    EXPECT_EQ(q.pop(), nullptr);
}

TEST(TenantQueues, ShedsAtCap)
{
    TenantTraffic t;
    t.queue_cap = 2;
    TenantQueues q({t}, SchedPolicy::Fifo);
    auto rs = makeRequests(3, 1);
    EXPECT_TRUE(q.push(&rs[0]));
    EXPECT_TRUE(q.push(&rs[1]));
    EXPECT_FALSE(q.push(&rs[2])); // over cap: shed
    EXPECT_EQ(q.queued(), 2u);
    q.pop();
    EXPECT_TRUE(q.push(&rs[2])); // room again after a pop
}

TEST(TenantQueues, WeightedFairHonoursWeights)
{
    // Tenant 0 at weight 3, tenant 1 at weight 1, both permanently
    // backlogged: admissions must interleave ~3:1, not alternate.
    TenantTraffic t0, t1;
    t0.weight = 3.0;
    t1.weight = 1.0;
    t0.queue_cap = t1.queue_cap = 64;
    TenantQueues q({t0, t1}, SchedPolicy::WeightedFair);
    std::vector<Request> rs(64);
    for (unsigned i = 0; i < 64; ++i) {
        rs[i].id = i;
        rs[i].tenant = i % 2;
        rs[i].enqueue_tick = 0;
        ASSERT_TRUE(q.push(&rs[i]));
    }
    unsigned from0 = 0;
    for (unsigned i = 0; i < 32; ++i) {
        Request *r = q.pop();
        ASSERT_NE(r, nullptr);
        from0 += r->tenant == 0;
    }
    // 3:1 over 32 admissions -> 24 from tenant 0 (±1 for phasing).
    EXPECT_GE(from0, 23u);
    EXPECT_LE(from0, 25u);
}

// ------------------------------------------------------- end to end

ServeConfig
serveCfg(TrafficMode mode, double rate, std::uint64_t requests)
{
    ServeConfig scfg;
    scfg.state.table_rows = 512;
    scfg.state.probe_universe = 1024;
    scfg.state.probes_per_request = 4;
    scfg.state.vertices = 256;
    scfg.state.edges = 2048;
    scfg.state.points = 256;
    scfg.state.queries = 64;
    scfg.state.knn_window = 16;
    scfg.tenants.clear();
    TenantTraffic t0, t1;
    t0.weight = 3.0;
    t0.arrival_share = 0.65;
    t1.weight = 1.0;
    t1.arrival_share = 0.35;
    scfg.tenants = {t0, t1};
    scfg.workers = 4;
    scfg.batch_max = 2;
    scfg.traffic.mode = mode;
    scfg.traffic.offered_per_mtick = rate;
    scfg.traffic.requests = requests;
    scfg.traffic.seed = 5;
    return scfg;
}

struct ServeRun
{
    std::string trace;
    std::string summary_json;
    ServingSummary summary;
};

ServeRun
runServe(const ServeConfig &scfg, unsigned shards = 1)
{
    SystemConfig cfg = fixture::smallConfig();
    cfg.shards = shards;
    System sys(cfg);
    Runtime rt(sys);
    Server server(sys, scfg);
    server.setup(rt);
    server.start(rt);
    rt.run();

    std::string msg;
    EXPECT_TRUE(server.validate(sys, msg)) << msg;
    EXPECT_TRUE(sys.stats().audit().empty());

    ServeRun out;
    out.trace = server.requestTrace();
    out.summary_json = server.summaryJson();
    out.summary = server.summary();
    return out;
}

TEST(Server, OpenLoopCompletesAndConserves)
{
    const ServeRun r =
        runServe(serveCfg(TrafficMode::OpenPoisson, 200.0, 128));
    EXPECT_EQ(r.summary.arrivals, 128u);
    EXPECT_EQ(r.summary.arrivals, r.summary.accepted + r.summary.shed);
    EXPECT_EQ(r.summary.completed, r.summary.accepted);
    EXPECT_GT(r.summary.completed, 0u);
    EXPECT_GE(r.summary.p99, r.summary.p50);
    ASSERT_EQ(r.summary.tenants.size(), 2u);
    for (const TenantSummary &t : r.summary.tenants)
        EXPECT_GT(t.completed, 0u);
}

TEST(Server, RepeatRunsAreBitIdentical)
{
    const ServeConfig scfg = serveCfg(TrafficMode::OpenPoisson, 400.0, 96);
    const ServeRun a = runServe(scfg);
    const ServeRun b = runServe(scfg);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.summary_json, b.summary_json);
}

TEST(Server, ShardsOneMatchesSequentialAndShardsFourIsStable)
{
    const ServeConfig scfg = serveCfg(TrafficMode::OpenPoisson, 400.0, 96);
    // shards == 1 runs the classic sequential engine: byte-identical.
    const ServeRun seq = runServe(scfg, 1);
    const ServeRun s1 = runServe(scfg, 1);
    EXPECT_EQ(seq.trace, s1.trace);
    EXPECT_EQ(seq.summary_json, s1.summary_json);

    // shards == 4 may clamp cross-shard timing, but must be
    // deterministic run to run and serve the same request population.
    const ServeRun s4a = runServe(scfg, 4);
    const ServeRun s4b = runServe(scfg, 4);
    EXPECT_EQ(s4a.trace, s4b.trace);
    EXPECT_EQ(s4a.summary_json, s4b.summary_json);
    EXPECT_EQ(s4a.summary.arrivals, seq.summary.arrivals);
    EXPECT_EQ(s4a.summary.completed, seq.summary.completed);
    EXPECT_EQ(s4a.summary.shed, seq.summary.shed);
}

TEST(Server, OverloadShedsAndStaysBounded)
{
    ServeConfig scfg = serveCfg(TrafficMode::OpenPoisson, 20'000.0, 192);
    for (TenantTraffic &t : scfg.tenants)
        t.queue_cap = 4;
    const ServeRun r = runServe(scfg);
    EXPECT_GT(r.summary.shed, 0u);
    EXPECT_EQ(r.summary.arrivals, r.summary.accepted + r.summary.shed);
    EXPECT_EQ(r.summary.completed, r.summary.accepted);
    EXPECT_LT(r.summary.achieved_per_mtick, r.summary.offered_per_mtick);
}

TEST(Server, ClosedLoopCompletesEveryClientRequest)
{
    ServeConfig scfg = serveCfg(TrafficMode::ClosedLoop, 100.0, 0);
    scfg.traffic.clients = 4;
    scfg.traffic.requests_per_client = 8;
    scfg.traffic.think_mean_ticks = 2'000;
    const ServeRun r = runServe(scfg);
    EXPECT_EQ(r.summary.arrivals, 32u);
    EXPECT_EQ(r.summary.completed, 32u);
    EXPECT_EQ(r.summary.shed, 0u);
}

TEST(Server, BurstyOpenLoopValidates)
{
    const ServeRun r =
        runServe(serveCfg(TrafficMode::OpenBursty, 300.0, 128));
    EXPECT_EQ(r.summary.arrivals, 128u);
    EXPECT_EQ(r.summary.completed, r.summary.accepted);
}

TEST(Server, FifoAndWfqServeSamePopulation)
{
    ServeConfig scfg = serveCfg(TrafficMode::OpenPoisson, 2'000.0, 128);
    scfg.policy = SchedPolicy::Fifo;
    const ServeRun fifo = runServe(scfg);
    scfg.policy = SchedPolicy::WeightedFair;
    const ServeRun wfq = runServe(scfg);
    EXPECT_EQ(fifo.summary.arrivals, wfq.summary.arrivals);
    EXPECT_EQ(fifo.summary.completed + fifo.summary.shed,
              wfq.summary.completed + wfq.summary.shed);
}

} // namespace
} // namespace pei
