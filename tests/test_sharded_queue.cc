/**
 * @file
 * Unit tests for the sharded event-queue engine: single-shard
 * bit-identity against the sequential EventQueue, exact cross-shard
 * timing for edges that honour the lookahead, deterministic clamped
 * delivery for zero-latency edges, epoch/drain semantics, stop
 * propagation, the between-epochs probe, and worker-exception
 * rethrow on the coordinator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hh"
#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_queue.hh"

namespace pei
{
namespace
{

void
driveToDrain(ShardedQueue &sq)
{
    while (sq.runEpoch() != 0) {}
}

/**
 * Deterministic event cascade (same rules as the EventQueue oracle
 * test): each event logs its id and spawns children with fixed
 * arithmetic, mixing same-tick bursts with short delays.
 */
void
cascade(EventQueue &q, std::vector<std::uint64_t> &log, std::uint64_t id,
        int depth)
{
    q.schedule(id % 5, [&q, &log, id, depth] {
        log.push_back(id);
        if (depth < 3 && id % 3 == 0)
            cascade(q, log, id * 7 + 1, depth + 1);
        if (depth < 3 && id % 4 == 1)
            cascade(q, log, id * 11 + 2, depth + 1);
    });
}

TEST(ShardedQueue, SingleShardMatchesSequentialEngine)
{
    // --shards=1 is the golden reference: the epoch driver must
    // execute the exact event sequence the plain engine does.
    ShardedQueue sq(1);
    EXPECT_FALSE(sq.parallel());
    EXPECT_EQ(sq.numShards(), 1u);
    EXPECT_EQ(sq.shardFor(13), 0u);

    EventQueue ref;
    std::vector<std::uint64_t> sharded_log, ref_log;
    for (std::uint64_t id = 1; id < 200; ++id) {
        cascade(sq.host(), sharded_log, id, 0);
        cascade(ref, ref_log, id, 0);
    }
    driveToDrain(sq);
    ref.run();

    EXPECT_EQ(sharded_log, ref_log);
    EXPECT_EQ(sq.host().now(), ref.now());
    EXPECT_EQ(sq.executedCount(), ref.executedCount());
    EXPECT_EQ(sq.clampedCount(), 0u);
}

TEST(ShardedQueue, ShardForRoundRobinsOverWorkerShards)
{
    ShardedQueue sq(4);
    EXPECT_TRUE(sq.parallel());
    EXPECT_EQ(sq.numShards(), 4u);
    // Shard 0 is reserved for the host; partitions cycle over 1..3.
    EXPECT_EQ(sq.shardFor(0), 1u);
    EXPECT_EQ(sq.shardFor(1), 2u);
    EXPECT_EQ(sq.shardFor(2), 3u);
    EXPECT_EQ(sq.shardFor(3), 1u);
    EXPECT_EQ(sq.shardFor(5), 3u);
}

/**
 * Host <-> shard-1 ping-pong with every hop exactly one lookahead
 * long.  Each side records its queue's tick on arrival; single-writer
 * per vector (host_ticks on shard 0, mem_ticks on shard 1), and the
 * alternation across epoch barriers orders the hops_left accesses.
 */
struct PingPong
{
    ShardedQueue *sq;
    std::vector<Tick> host_ticks;
    std::vector<Tick> mem_ticks;
    int hops_left;
    Ticks latency;
};

void pongFromMem(PingPong *p);

void
pingFromHost(PingPong *p)
{
    EventQueue &host = p->sq->host();
    p->host_ticks.push_back(host.now());
    if (p->hops_left == 0)
        return;
    --p->hops_left;
    p->sq->scheduleOn(1, host.now() + p->latency,
                      Continuation([p] { pongFromMem(p); }));
}

void
pongFromMem(PingPong *p)
{
    EventQueue &mem = p->sq->shard(1);
    p->mem_ticks.push_back(mem.now());
    if (p->hops_left == 0)
        return;
    --p->hops_left;
    p->sq->scheduleOn(0, mem.now() + p->latency,
                      Continuation([p] { pingFromHost(p); }));
}

TEST(ShardedQueue, CrossShardEdgesAtLookaheadAreExact)
{
    ShardedQueue sq(2);
    sq.setLookahead(16);
    PingPong p{&sq, {}, {}, 8, 16};
    sq.scheduleOn(0, 0, Continuation([&p] { pingFromHost(&p); }));
    driveToDrain(sq);

    // Edges with delay >= lookahead never clamp: arrival ticks are
    // exactly what the sequential simulation would produce.
    EXPECT_EQ(p.host_ticks, (std::vector<Tick>{0, 32, 64, 96, 128}));
    EXPECT_EQ(p.mem_ticks, (std::vector<Tick>{16, 48, 80, 112}));
    EXPECT_EQ(sq.clampedCount(), 0u);
}

/**
 * Request/response relay over two worker shards with zero-latency
 * responses (post), run under a wide horizon window so clamping
 * actually happens.  Shard s writes only mem_log[s]; the host writes
 * host_arrivals.
 */
struct Relay
{
    ShardedQueue *sq;
    std::vector<Tick> mem_log[3];
    std::vector<Tick> host_arrivals;
};

void
memHop(Relay *r, unsigned s)
{
    r->mem_log[s].push_back(r->sq->shard(s).now());
    r->sq->post(0, Continuation([r] {
                    r->host_arrivals.push_back(r->sq->host().now());
                }));
}

struct RelayTrace
{
    std::vector<Tick> mem1, mem2, host;
    std::uint64_t clamped = 0;
    std::uint64_t executed = 0;
    Tick end = 0;
};

RelayTrace
relayRun()
{
    ShardedQueue sq(3);
    sq.setLookahead(8);
    sq.setWindow(32); // deliberate slack: forces clamped deliveries
    Relay r{&sq, {}, {}};
    for (unsigned i = 0; i < 96; ++i) {
        const unsigned s = sq.shardFor(i % 2); // shard 1 or 2
        sq.scheduleOn(s, 8 + i * 3,
                      Continuation([&r, s] { memHop(&r, s); }));
    }
    driveToDrain(sq);
    return RelayTrace{r.mem_log[1], r.mem_log[2], r.host_arrivals,
                      sq.clampedCount(), sq.executedCount(),
                      sq.host().now()};
}

TEST(ShardedQueue, ClampedDeliveryIsDeterministicAcrossRuns)
{
    const RelayTrace a = relayRun();
    const RelayTrace b = relayRun();

    // Horizons, drain order, and clamp targets depend only on
    // simulation state — two runs must agree event for event no
    // matter how the OS schedules the worker threads.
    EXPECT_EQ(a.mem1, b.mem1);
    EXPECT_EQ(a.mem2, b.mem2);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.clamped, b.clamped);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.end, b.end);

    // Architectural completeness: every request produced exactly one
    // response, delivered in host tick order.
    EXPECT_EQ(a.mem1.size() + a.mem2.size(), 96u);
    EXPECT_EQ(a.host.size(), 96u);
    EXPECT_TRUE(std::is_sorted(a.host.begin(), a.host.end()));
}

TEST(ShardedQueue, RunEpochReturnsZeroOnlyWhenDrained)
{
    ShardedQueue sq(2);
    EXPECT_EQ(sq.runEpoch(), 0u);

    int fired = 0;
    sq.scheduleOn(1, 5, Continuation([&fired] { ++fired; }));
    std::uint64_t total = 0, rc = 0;
    while ((rc = sq.runEpoch()) != 0)
        total += rc;
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(total, 1u);
    EXPECT_EQ(sq.executedCount(), 1u);
    EXPECT_GE(sq.epochCount(), 1u);
    EXPECT_EQ(sq.runEpoch(), 0u);
}

TEST(ShardedQueue, StopRequestHaltsHostBetweenEpochs)
{
    ShardedQueue sq(2);
    int fired = 0;
    for (Tick t = 1; t <= 50; ++t)
        sq.host().scheduleAt(t, Continuation([&fired] { ++fired; }));

    sq.requestStop();
    // The host shard refuses to run while stopped and no other shard
    // has work, so the epoch executes nothing: runEpoch() == 0 with
    // events still pending is the caller's cue to check the flag.
    EXPECT_EQ(sq.runEpoch(), 0u);
    EXPECT_TRUE(sq.stopRequested());
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(sq.host().empty());

    sq.clearStopRequest();
    driveToDrain(sq);
    EXPECT_EQ(fired, 50);
}

TEST(ShardedQueue, EpochProbeRunsOncePerEpoch)
{
    ShardedQueue sq(2);
    std::uint64_t probes = 0;
    sq.setEpochProbe([&probes] { ++probes; });
    for (Tick t = 1; t <= 5; ++t)
        sq.scheduleOn(1, t, Continuation([] {}));
    driveToDrain(sq);
    EXPECT_EQ(sq.executedCount(), 5u);
    EXPECT_EQ(probes, sq.epochCount());
    EXPECT_GE(probes, 1u);
}

TEST(ShardedQueue, WorkerExceptionsRethrowOnCoordinator)
{
    ShardedQueue sq(3);
    sq.scheduleOn(1, 5, Continuation([] {
                    throw std::runtime_error("vault blew up");
                }));
    EXPECT_THROW(driveToDrain(sq), std::runtime_error);
}

} // namespace
} // namespace pei
