/**
 * @file
 * Tests of the experiment-sweep driver: JobQueue semantics,
 * WorkerPool submission-order aggregation, per-job failure isolation
 * and timeouts, input-cache sharing, and the headline guarantee —
 * stats-v2 records are byte-identical (modulo wall-clock fields)
 * regardless of how many workers execute the sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <regex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "driver/job_queue.hh"
#include "driver/sim_job.hh"
#include "driver/sweep.hh"
#include "driver/worker_pool.hh"
#include "runtime/runtime.hh"
#include "workloads/input_cache.hh"

namespace pei
{
namespace
{

TEST(JobQueue, FifoSingleThread)
{
    JobQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    q.close();
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));       // closed and drained
    EXPECT_FALSE(q.push(99));     // closed
}

TEST(JobQueue, PushBlocksWhenFull)
{
    JobQueue<int> q(2);
    EXPECT_TRUE(q.push(0));
    EXPECT_TRUE(q.push(1));

    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        q.push(2);  // blocks until a slot frees up
        third_pushed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(third_pushed.load());

    int v = -1;
    EXPECT_TRUE(q.pop(v));
    producer.join();
    EXPECT_TRUE(third_pushed.load());
}

TEST(JobQueue, ManyProducersManyConsumers)
{
    constexpr int per_producer = 200;
    JobQueue<int> q(4);
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < per_producer; ++i)
                q.push(p * per_producer + i);
        });
    }
    std::mutex seen_mutex;
    std::set<int> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            int v;
            while (q.pop(v)) {
                std::lock_guard<std::mutex> lock(seen_mutex);
                EXPECT_TRUE(seen.insert(v).second);  // delivered once
            }
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(seen.size(), 3u * per_producer);
}

TEST(WorkerPool, OutcomesInSubmissionOrder)
{
    // Earlier jobs sleep longer, so with several workers they finish
    // out of order — outcomes must still come back by submission.
    std::vector<Job> jobs;
    for (int i = 0; i < 8; ++i) {
        jobs.push_back(Job{
            "job" + std::to_string(i), [i](JobCtx &ctx) {
                EXPECT_EQ(ctx.index(), static_cast<std::size_t>(i));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5 * (8 - i)));
            }});
    }
    WorkerPool pool(4, 0.0);
    const auto outcomes = pool.run(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].label, "job" + std::to_string(i));
        EXPECT_EQ(outcomes[i].status, JobStatus::Ok);
    }
}

TEST(WorkerPool, FailureIsolation)
{
    std::vector<Job> jobs;
    jobs.push_back(Job{"good0", [](JobCtx &) {}});
    jobs.push_back(Job{"bad", [](JobCtx &) {
                           throw std::runtime_error("boom");
                       }});
    jobs.push_back(Job{"good1", [](JobCtx &) {}});
    jobs.push_back(Job{"skipped", nullptr});

    WorkerPool pool(2, 0.0);
    const auto outcomes = pool.run(jobs);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(outcomes[0].status, JobStatus::Ok);
    EXPECT_EQ(outcomes[1].status, JobStatus::Failed);
    EXPECT_NE(outcomes[1].error.find("boom"), std::string::npos);
    EXPECT_EQ(outcomes[2].status, JobStatus::Ok);
    EXPECT_EQ(outcomes[3].status, JobStatus::Skipped);
}

SystemConfig
tinyConfig(ExecMode mode)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    cfg.cores = 4;
    cfg.phys_bytes = 64ULL << 20;
    cfg.cache.l1_bytes = 4 << 10;
    cfg.cache.l2_bytes = 16 << 10;
    cfg.cache.l3_bytes = 256 << 10;
    cfg.hmc.num_cubes = 1;
    cfg.hmc.vaults_per_cube = 4;
    return cfg;
}

TEST(WorkerPool, TimeoutCancelsEndlessSimulation)
{
    std::vector<Job> jobs;
    jobs.push_back(Job{"endless", [](JobCtx &ctx) {
        System sys(tinyConfig(ExecMode::HostOnly));
        Runtime rt(sys);
        rt.spawn(0, [](Ctx &c) -> Task {
            for (;;)
                co_await c.compute(1000);
        });
        WatchGuard watch(ctx, sys.eventQueue());
        rt.run();  // never returns normally; watchdog stops it
    }});
    jobs.push_back(Job{"finite", [](JobCtx &) {}});

    const auto t0 = std::chrono::steady_clock::now();
    WorkerPool pool(2, 0.2);
    const auto outcomes = pool.run(jobs);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, JobStatus::TimedOut);
    EXPECT_EQ(outcomes[1].status, JobStatus::Ok);
    EXPECT_LT(elapsed, 30.0);  // far below "endless"
}

TEST(Sweep, FilterSkipsNonMatchingJobs)
{
    Sweep sweep;
    std::atomic<int> ran{0};
    sweep.add("ATF/small", [&](JobCtx &) { ++ran; });
    sweep.add("PR/small", [&](JobCtx &) { ++ran; });
    sweep.add("PR/large", [&](JobCtx &) { ++ran; });

    SweepOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.filter = "PR/";
    const SweepReport report = sweep.run(opts);
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(report.ok, 2u);
    EXPECT_EQ(report.skipped, 1u);
    EXPECT_EQ(report.outcomes[0].status, JobStatus::Skipped);
    EXPECT_TRUE(report.clean());
}

TEST(InputCache, SharesOneInstancePerKey)
{
    clearInputCache();
    std::atomic<int> builds{0};
    const auto build = [&builds] {
        ++builds;
        return std::vector<int>{1, 2, 3};
    };
    const std::vector<int> *first = nullptr;
    std::vector<std::thread> threads;
    std::mutex first_mutex;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            const std::vector<int> &v =
                cachedInput<std::vector<int>>("test/shared", build);
            std::lock_guard<std::mutex> lock(first_mutex);
            if (!first)
                first = &v;
            EXPECT_EQ(first, &v);  // same instance for every caller
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(builds.load(), 1);
    const InputCacheCounters c = inputCacheCounters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 3u);
    EXPECT_EQ(c.entries, 1u);
    clearInputCache();
}

TEST(InputCache, CountersRegisterInStatRegistry)
{
    clearInputCache();
    StatRegistry reg;
    registerInputCacheStats(reg);
    EXPECT_TRUE(reg.has("input_cache.hits"));
    EXPECT_TRUE(reg.has("input_cache.misses"));

    cachedInput<int>("test/reg", [] { return 7; });
    cachedInput<int>("test/reg", [] { return 7; });
    EXPECT_EQ(reg.get("input_cache.misses"), 1u);
    EXPECT_EQ(reg.get("input_cache.hits"), 1u);

    const std::string json = reg.countersJson();
    EXPECT_NE(json.find("\"input_cache.hits\":1"), std::string::npos);
    EXPECT_NE(json.find("\"input_cache.misses\":1"), std::string::npos);
    clearInputCache();
}

/** Strip the host-timing fields that legitimately vary run to run. */
std::string
stripWallClock(const std::string &record)
{
    static const std::regex wall(
        "\"(wall_seconds|events_per_sec)\":[-+0-9.eE]+");
    return std::regex_replace(record, wall, "\"$1\":X");
}

TEST(Sweep, RecordsIdenticalAcrossWorkerCounts)
{
    const auto runSweep = [](unsigned workers) {
        clearInputCache();
        std::vector<SimJob> sims;
        for (ExecMode mode :
             {ExecMode::HostOnly, ExecMode::PimOnly,
              ExecMode::LocalityAware}) {
            SimJob sim;
            sim.label = std::string("PR/small/") + execModeName(mode);
            sim.factory = [] {
                return makeWorkload(WorkloadKind::PR, InputSize::Small);
            };
            sim.mode = mode;
            sim.tweak = [](SystemConfig &cfg) {
                cfg.cores = 4;
                cfg.hmc.vaults_per_cube = 4;
            };
            sim.threads = 4;
            sims.push_back(std::move(sim));
        }

        std::vector<RunResult> results(sims.size());
        Sweep sweep;
        for (std::size_t i = 0; i < sims.size(); ++i) {
            sweep.add(sims[i].label, [&, i](JobCtx &ctx) {
                results[i] = runSimJob(sims[i], ctx);
            });
        }
        SweepOptions opts;
        opts.jobs = workers;
        opts.progress = false;
        const SweepReport report = sweep.run(opts);
        EXPECT_TRUE(report.clean());

        std::vector<std::string> records;
        for (const RunResult &r : results) {
            EXPECT_TRUE(r.ok());
            records.push_back(stripWallClock(r.stats_record));
        }
        return records;
    };

    const auto serial = runSweep(1);
    const auto parallel = runSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "record " << i;
}

} // namespace
} // namespace pei
