/**
 * @file
 * simfuzz test suite (ctest label: fuzz).
 *
 * Unit tests pin down the program generator's contracts — replay
 * determinism, prefix/mask shrinking identities, and the footprint
 * discipline that makes the sequential golden model sound — and a
 * deterministic ~100-case smoke runs the full differential checker.
 * The self-tests prove the checker has teeth: each hidden injected
 * bug must be caught quickly and shrink to a tiny reproducer.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "check/fuzz_case.hh"
#include "check/golden.hh"
#include "check/program.hh"

namespace pei
{
namespace
{

using namespace fuzz;

TEST(FuzzProgram, RegenerationIsDeterministic)
{
    for (const std::uint64_t seed : {1ULL, 42ULL, 0xABCDEFULL}) {
        const FuzzProgram a = generateProgram(seed);
        const FuzzProgram b = generateProgram(seed);
        EXPECT_EQ(a.threads_total, b.threads_total);
        EXPECT_EQ(a.init_image, b.init_image);
        EXPECT_EQ(a.shared_class, b.shared_class);
        ASSERT_EQ(a.streams.size(), b.streams.size());
        for (std::size_t i = 0; i < a.streams.size(); ++i)
            EXPECT_EQ(a.streams[i], b.streams[i]);
    }
}

TEST(FuzzProgram, PrefixTruncatesEveryStreamInPlace)
{
    const std::uint64_t seed = 77;
    const FuzzProgram full = generateProgram(seed);
    const FuzzProgram cut = generateProgram(seed, 3);
    EXPECT_EQ(cut.init_image, full.init_image);
    ASSERT_EQ(cut.streams.size(), full.streams.size());
    for (std::size_t i = 0; i < cut.streams.size(); ++i) {
        const std::size_t want =
            std::min<std::size_t>(3, full.streams[i].size());
        ASSERT_EQ(cut.streams[i].size(), want);
        for (std::size_t k = 0; k < want; ++k)
            EXPECT_EQ(cut.streams[i][k], full.streams[i][k]);
    }
}

TEST(FuzzProgram, MaskDropsThreadsWithoutPerturbingSurvivors)
{
    const std::uint64_t seed = 99;
    const FuzzProgram full = generateProgram(seed);
    ASSERT_GE(full.threads_total, 1u);
    const std::uint32_t mask = 0b10101;
    const FuzzProgram masked = generateProgram(seed, full_prefix, mask);
    ASSERT_EQ(masked.thread_ids.size(), masked.streams.size());
    for (std::size_t k = 0; k < masked.thread_ids.size(); ++k) {
        const unsigned id = masked.thread_ids[k];
        EXPECT_TRUE(mask & (1u << id));
        // Streams are seeded per generator-thread id, so survivors
        // are byte-identical to their unmasked counterparts.
        EXPECT_EQ(masked.streams[k], full.streams[id]);
    }
    // The footprint layout never depends on the mask.
    EXPECT_EQ(masked.init_image, full.init_image);
    EXPECT_EQ(masked.total_blocks, full.total_blocks);
}

TEST(FuzzProgram, FootprintDisciplineMakesGoldenSound)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const FuzzProgram p = generateProgram(seed);
        for (std::size_t ti = 0; ti < p.streams.size(); ++ti) {
            const unsigned tid = p.thread_ids[ti];
            const std::uint32_t priv_lo = p.privBlockIndex(tid, 0);
            const std::uint32_t priv_hi =
                priv_lo + p.priv_blocks_per_thread;
            for (const FuzzOp &o : p.streams[ti]) {
                switch (o.kind) {
                  case OpKind::Pei:
                    if (o.op == PeiOpcode::Scatter) {
                        // Scatter-adds commute only with Inc64
                        // increments: every element block of the
                        // strided run must be an Inc64-class shared
                        // block (an in-block run touches only its
                        // start block).
                        std::uint8_t in[max_operand_bytes] = {};
                        ASSERT_EQ(fillInput(o.op, o.value, in), 24u);
                        std::uint64_t stride, count;
                        std::memcpy(&stride, in, 8);
                        std::memcpy(&count, in + 8, 8);
                        ASSERT_GE(count, 1u);
                        ASSERT_LE(count, 8u);
                        EXPECT_TRUE(stride == 8 || stride == block_size);
                        const std::uint64_t span =
                            stride == block_size ? count : 1;
                        ASSERT_GE(o.block, p.ro_blocks);
                        ASSERT_LE(o.block + span,
                                  p.ro_blocks + p.shared_blocks);
                        for (std::uint64_t i = 0; i < span; ++i) {
                            EXPECT_EQ(PeiOpcode::Inc64,
                                      p.shared_class[o.block -
                                                     p.ro_blocks + i]);
                        }
                    } else if (o.op == PeiOpcode::Gather) {
                        // Gather runs stay inside the read-only
                        // region, so outputs depend only on the
                        // initial image.
                        std::uint8_t in[max_operand_bytes] = {};
                        ASSERT_EQ(fillInput(o.op, o.value, in), 16u);
                        std::uint64_t stride, count;
                        std::memcpy(&stride, in, 8);
                        std::memcpy(&count, in + 8, 8);
                        ASSERT_GE(count, 1u);
                        ASSERT_LE(count, 8u);
                        EXPECT_TRUE(stride == 8 || stride == block_size);
                        const std::uint64_t span =
                            stride == block_size ? count : 1;
                        EXPECT_LE(o.block + span, p.ro_blocks);
                    } else if (peiOpInfo(o.op).writes) {
                        // Writers hit shared blocks of their class
                        // only — all interleavings commute.
                        ASSERT_GE(o.block, p.ro_blocks);
                        ASSERT_LT(o.block,
                                  p.ro_blocks + p.shared_blocks);
                        EXPECT_EQ(o.op,
                                  p.shared_class[o.block - p.ro_blocks]);
                    } else {
                        // Readers only ever see the initial image.
                        EXPECT_LT(o.block, p.ro_blocks);
                    }
                    break;
                  case OpKind::Load:
                    EXPECT_TRUE(o.block < p.ro_blocks ||
                                (o.block >= priv_lo &&
                                 o.block < priv_hi));
                    break;
                  case OpKind::Store:
                    EXPECT_GE(o.block, priv_lo);
                    EXPECT_LT(o.block, priv_hi);
                    break;
                  case OpKind::Pfence:
                  case OpKind::Compute:
                    break;
                }
            }
        }
    }
}

TEST(FuzzGolden, IsDeterministic)
{
    const FuzzProgram p = generateProgram(1234);
    const GoldenResult a = runGolden(p);
    const GoldenResult b = runGolden(p);
    EXPECT_EQ(a.image, b.image);
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (std::size_t ti = 0; ti < a.outputs.size(); ++ti) {
        ASSERT_EQ(a.outputs[ti].size(), b.outputs[ti].size());
        for (std::size_t k = 0; k < a.outputs[ti].size(); ++k) {
            EXPECT_EQ(a.outputs[ti][k].size, b.outputs[ti][k].size);
            EXPECT_EQ(a.outputs[ti][k].bytes, b.outputs[ti][k].bytes);
        }
    }
}

TEST(FuzzReplay, FileRoundTrips)
{
    FuzzCaseId id;
    id.seed = 0xDEADBEEFCAFEULL;
    id.config = 2;
    id.prefix = 7;
    id.thread_mask = 0x15;
    id.backend = "ddr";
    id.coherence = "lazy";
    id.topology = "mesh";
    id.cubes = 8;
    id.pmu_shards = 4;
    FuzzOptions opt;
    opt.master_seed = 999;
    opt.num_configs = 5;
    opt.probe_every = 32;
    opt.inject = InjectBug::SkipUnlock;

    FuzzCaseId id2;
    FuzzOptions opt2;
    ASSERT_TRUE(parseReplayFile(replayFileContents(id, opt), id2, opt2));
    EXPECT_EQ(id2.seed, id.seed);
    EXPECT_EQ(id2.config, id.config);
    EXPECT_EQ(id2.prefix, id.prefix);
    EXPECT_EQ(id2.thread_mask, id.thread_mask);
    EXPECT_EQ(id2.backend, id.backend);
    EXPECT_EQ(id2.coherence, id.coherence);
    EXPECT_EQ(id2.topology, id.topology);
    EXPECT_EQ(id2.cubes, id.cubes);
    EXPECT_EQ(id2.pmu_shards, id.pmu_shards);
    EXPECT_EQ(opt2.master_seed, opt.master_seed);
    EXPECT_EQ(opt2.num_configs, opt.num_configs);
    EXPECT_EQ(opt2.probe_every, opt.probe_every);
    EXPECT_EQ(opt2.inject, opt.inject);

    EXPECT_FALSE(parseReplayFile("no key-values here", id2, opt2));
    EXPECT_FALSE(parseReplayFile("config=1\n", id2, opt2)); // no seed
}

// The deterministic smoke: 100 cases x 4 fuzzed configs x 4 modes,
// differential + probes, all clean.  Fixed master seed, so this is
// byte-for-byte the same work on every run.
TEST(FuzzSmoke, HundredCasesAcrossConfigsAndModesAreClean)
{
    FuzzOptions opt; // master seed 12345, 4 configs
    for (std::uint64_t i = 0; i < 100; ++i) {
        FuzzCaseId id;
        id.seed = caseSeed(opt.master_seed, i);
        id.config = static_cast<unsigned>(i % opt.num_configs);
        const FuzzCaseResult r = runFuzzCase(id, opt, nullptr);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
}

/**
 * Checker self-test: with @p bug injected, some case among the first
 * 200 must fail, and shrinking must reduce it to <= @p max_ops ops.
 */
void
expectInjectionCaughtAndShrunk(InjectBug bug, unsigned max_ops = 32)
{
    FuzzOptions opt;
    opt.inject = bug;
    for (std::uint64_t i = 0; i < 200; ++i) {
        FuzzCaseId id;
        id.seed = caseSeed(opt.master_seed, i);
        id.config = static_cast<unsigned>(i % opt.num_configs);
        const FuzzCaseResult r = runFuzzCase(id, opt, nullptr);
        if (r.ok())
            continue;
        const FuzzCaseResult min = shrinkCase(id, opt);
        ASSERT_FALSE(min.ok())
            << "failure did not reproduce while shrinking";
        EXPECT_LE(min.total_ops, max_ops) << min.summary();
        SUCCEED() << "caught by case " << i << ": " << min.summary();
        return;
    }
    FAIL() << "injected bug '" << injectBugName(bug)
           << "' survived 200 cases undetected";
}

TEST(FuzzSelfTest, CatchesSkippedDirectoryUnlock)
{
    expectInjectionCaughtAndShrunk(InjectBug::SkipUnlock);
}

TEST(FuzzSelfTest, CatchesSkippedBackInvalidation)
{
    expectInjectionCaughtAndShrunk(InjectBug::SkipBackInval);
}

// The conflict-check injection forces the lazy policy on (the bug
// lives in its commit path) and elides every signature intersection
// from the first commit onward; the exact shadow sets keep counting
// true conflicts, so any case whose kernel batch races a host store
// breaks `coh.conflicts >= coh.exact_conflicts` at audit time and
// shrinks to a minimal conflicting program.
TEST(FuzzSelfTest, CatchesSkippedConflictCheck)
{
    // The first failing case draws a multi-cube geometry whose racing
    // batch needs a longer host/kernel overlap to conflict, so the
    // minimal reproducer is larger than the single-cube injections'.
    expectInjectionCaughtAndShrunk(InjectBug::SkipConflictCheck, 64);
}

// The smoke above fuzzes the policy per config; this leg pins every
// case to lazy so the deferred machinery sees the full op set even
// if the config draws would have favored eager.
TEST(FuzzSmoke, FortyCasesAllLazyAreClean)
{
    FuzzOptions opt;
    opt.coherence = "lazy";
    for (std::uint64_t i = 0; i < 40; ++i) {
        FuzzCaseId id;
        id.seed = caseSeed(opt.master_seed, i);
        id.config = static_cast<unsigned>(i % opt.num_configs);
        const FuzzCaseResult r = runFuzzCase(id, opt, nullptr);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
}

} // namespace
} // namespace pei
