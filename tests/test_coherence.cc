/**
 * @file
 * CoherencePolicy seam tests (ctest label: tier1).
 *
 * Directed scenarios for the LazyPIM-style speculative policy —
 * clean commit, a true write conflict forcing exactly one rollback,
 * a signature false positive (aliasing bits) forcing a spurious
 * rollback with architectural results still golden-clean — plus the
 * policy-conditional invariant audits and an eager-vs-lazy
 * differential sweep over the full simfuzz op set.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/fuzz_case.hh"
#include "coherence/policy.hh"
#include "coherence/signature.hh"
#include "fixture.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

// ------------------------------------------------- BlockSignature

TEST(BlockSignature, NeverForgetsAnInsertedBlock)
{
    BlockSignature sig(256);
    for (Addr b = 0; b < 500; b += 7)
        sig.add(b);
    for (Addr b = 0; b < 500; b += 7)
        EXPECT_TRUE(sig.mayContain(b)) << "block " << b;
}

TEST(BlockSignature, PopcountTracksInsertionsAndClearResets)
{
    BlockSignature sig(256);
    EXPECT_EQ(sig.popcount(), 0u);
    sig.add(1);
    const unsigned one = sig.popcount();
    EXPECT_GE(one, 1u);
    EXPECT_LE(one, 2u); // k = 2 probes, possibly aliasing
    for (Addr b = 0; b < 64; ++b)
        sig.add(b);
    EXPECT_LE(sig.popcount(), 128u);
    sig.clear();
    EXPECT_EQ(sig.popcount(), 0u);
    EXPECT_FALSE(sig.mayContain(1));
}

TEST(BlockSignature, ProbesExposeDeterministicAliasing)
{
    // 8-bit signatures have at most 64 ordered probe pairs, so among
    // 65 blocks two must alias (pigeonhole): adding one makes the
    // other a false positive.  probes() is the hook directed tests
    // use to construct such pairs deterministically.
    bool found = false;
    for (Addr a = 0; a < 65 && !found; ++a) {
        for (Addr b = a + 1; b < 65 && !found; ++b) {
            if (BlockSignature::probes(a, 8) !=
                BlockSignature::probes(b, 8)) {
                continue;
            }
            BlockSignature sig(8);
            sig.add(a);
            EXPECT_TRUE(sig.mayContain(b));
            found = true;
        }
    }
    EXPECT_TRUE(found) << "no aliasing pair among 65 blocks";
}

// ------------------------------------------------- policy registry

TEST(CoherenceRegistry, BuiltinsAreRegistered)
{
    const auto names = coherencePolicyNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "eager"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "lazy"),
              names.end());
}

// ------------------------------------------------- directed scenarios

SystemConfig
lazyConfig(unsigned sig_bits = 256)
{
    SystemConfig cfg = fixture::smallConfig(ExecMode::PimOnly);
    cfg.pim.coherence.policy = "lazy";
    cfg.pim.coherence.signature_bits = sig_bits;
    return cfg;
}

std::uint64_t
stat(System &sys, const char *name)
{
    return sys.stats().get(name);
}

/** N writer PEIs on disjoint, host-untouched blocks: no conflict. */
Task
cleanKernel(Ctx &ctx, Addr base, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        co_await ctx.pei(PeiOpcode::Inc64,
                         base + static_cast<Addr>(i) * block_size,
                         nullptr, 0);
    }
    co_await ctx.drain();
}

TEST(LazyCoherence, CleanCommitNoConflictNoRollback)
{
    System sys(lazyConfig());
    Runtime rt(sys);
    const unsigned n = 40;
    const Addr base = rt.alloc(n * block_size);
    for (unsigned i = 0; i < n; ++i)
        sys.memory().write<std::uint64_t>(base + i * block_size, 7);

    rt.spawn(0, [&](Ctx &ctx) { return cleanKernel(ctx, base, n); });
    rt.run();

    for (unsigned i = 0; i < n; ++i) {
        EXPECT_EQ(sys.memory().read<std::uint64_t>(base + i * block_size),
                  8u);
    }
    EXPECT_EQ(stat(sys, "pmu.peis_mem"), n);
    EXPECT_GE(stat(sys, "coh.commits"), 1u);
    EXPECT_EQ(stat(sys, "coh.commits"), stat(sys, "coh.batches"));
    EXPECT_EQ(stat(sys, "coh.conflicts"), 0u);
    EXPECT_EQ(stat(sys, "coh.rollbacks"), 0u);
    // Lazy elided every per-offload action: the eager conservation
    // pair (writers == back-invalidations) would be violated here,
    // which is exactly why it is registered policy-conditionally.
    EXPECT_EQ(stat(sys, "cache.back_invalidations"), 0u);
    EXPECT_GT(stat(sys, "pmu.peis_mem_writers"), 0u);
    EXPECT_TRUE(sys.stats().audit().empty());
}

/** Dirty the target block host-side, then offload a writer PEI to
 *  it: the commit scan must find the true conflict. */
Task
conflictKernel(Ctx &ctx, Addr target)
{
    // fwrite + timing store: the block is Modified in this core's L1
    // when the PEI batch later commits.
    ctx.fwrite<std::uint64_t>(target + 8, 99);
    co_await ctx.store(target + 8);
    co_await ctx.pei(PeiOpcode::Inc64, target, nullptr, 0);
    co_await ctx.drain();
}

TEST(LazyCoherence, TrueWriteConflictRollsBackExactlyOnce)
{
    System sys(lazyConfig());
    Runtime rt(sys);
    const Addr target = rt.alloc(block_size);
    sys.memory().write<std::uint64_t>(target, 5);

    rt.spawn(0, [&](Ctx &ctx) { return conflictKernel(ctx, target); });
    rt.run();

    // Architectural results are exact despite the rollback:
    // functional execution happened exactly once.
    EXPECT_EQ(sys.memory().read<std::uint64_t>(target), 6u);
    EXPECT_EQ(sys.memory().read<std::uint64_t>(target + 8), 99u);

    EXPECT_EQ(stat(sys, "coh.commits"), 1u);
    EXPECT_GE(stat(sys, "coh.conflicts"), 1u);
    EXPECT_GE(stat(sys, "coh.exact_conflicts"), 1u);
    EXPECT_EQ(stat(sys, "coh.rollbacks"), 1u);
    EXPECT_GE(stat(sys, "coh.reexec_peis"), 1u);
    EXPECT_TRUE(sys.stats().audit().empty());
}

TEST(LazyCoherence, SkippedConflictCheckBreaksTheExactAudit)
{
    System sys(lazyConfig());
    sys.pmu().coherence().injectSkipConflictCheck(1);
    Runtime rt(sys);
    const Addr target = rt.alloc(block_size);
    sys.memory().write<std::uint64_t>(target, 5);

    rt.spawn(0, [&](Ctx &ctx) { return conflictKernel(ctx, target); });
    rt.run();

    // The exact shadow sets saw the true conflict; the (skipped)
    // signature check reported none — the Bloom no-false-negative
    // audit must flag it.
    EXPECT_EQ(stat(sys, "coh.conflicts"), 0u);
    EXPECT_GE(stat(sys, "coh.exact_conflicts"), 1u);
    const auto audit = sys.stats().audit();
    ASSERT_FALSE(audit.empty());
    bool mentions_exact = false;
    for (const std::string &v : audit)
        mentions_exact |= v.find("exact_conflicts") != std::string::npos;
    EXPECT_TRUE(mentions_exact);
}

/** Store to an innocent block whose 8-bit probes alias the PEI
 *  target's: the commit scan sees a false positive. */
Task
aliasKernel(Ctx &ctx, Addr pei_target, Addr dirty_alias)
{
    ctx.fwrite<std::uint64_t>(dirty_alias, 42);
    co_await ctx.store(dirty_alias);
    co_await ctx.pei(PeiOpcode::Inc64, pei_target, nullptr, 0);
    co_await ctx.drain();
}

TEST(LazyCoherence, SignatureFalsePositiveForcesSpuriousRollback)
{
    System sys(lazyConfig(/*sig_bits=*/8));
    Runtime rt(sys);

    // Find two blocks whose *physical* block numbers share both
    // 8-bit probe positions (≤ 64 ordered pairs, so 65+ candidate
    // blocks must contain an aliasing pair).
    const unsigned candidates = 128;
    const Addr base = rt.alloc(candidates * block_size);
    Addr pei_target = 0, dirty_alias = 0;
    bool found = false;
    for (unsigned i = 0; i < candidates && !found; ++i) {
        const Addr pi =
            sys.memory().translate(base + i * block_size) >> block_shift;
        for (unsigned j = i + 1; j < candidates && !found; ++j) {
            const Addr pj =
                sys.memory().translate(base + j * block_size) >>
                block_shift;
            if (BlockSignature::probes(pi, 8) !=
                BlockSignature::probes(pj, 8)) {
                continue;
            }
            pei_target = base + i * block_size;
            dirty_alias = base + j * block_size;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    sys.memory().write<std::uint64_t>(pei_target, 10);

    rt.spawn(0, [&](Ctx &ctx) {
        return aliasKernel(ctx, pei_target, dirty_alias);
    });
    rt.run();

    // The rollback was spurious: results are still golden-clean.
    EXPECT_EQ(sys.memory().read<std::uint64_t>(pei_target), 11u);
    EXPECT_EQ(sys.memory().read<std::uint64_t>(dirty_alias), 42u);

    EXPECT_GE(stat(sys, "coh.sig_false_positives"), 1u);
    EXPECT_GE(stat(sys, "coh.conflicts"), 1u);
    EXPECT_GE(stat(sys, "coh.rollbacks"), 1u);
    EXPECT_EQ(stat(sys, "coh.exact_conflicts"), 0u);
    EXPECT_TRUE(sys.stats().audit().empty());
}

// ---------------------------------------- eager invariants still bite

TEST(EagerCoherence, SkippedBackInvalidationBreaksTheAudit)
{
    // The eager conservation pair must stay armed under the default
    // policy even though it is now registered conditionally.
    SystemConfig cfg = fixture::smallConfig(ExecMode::PimOnly);
    ASSERT_EQ(cfg.pim.coherence.policy, "eager");
    System sys(cfg);
    sys.caches().injectSkipBackInvalidate(1);
    Runtime rt(sys);
    const Addr target = rt.alloc(block_size);
    sys.memory().write<std::uint64_t>(target, 0);

    rt.spawn(0, [&](Ctx &ctx) { return cleanKernel(ctx, target, 1); });
    rt.run();

    EXPECT_FALSE(sys.stats().audit().empty());
}

// ------------------------------------- differential: eager == lazy

// The full simfuzz op set (every PEI opcode, loads/stores/fences,
// async issue) run differentially against the golden model under
// both policies: the lazy policy is strictly a timing/traffic model,
// so architectural results must match for every seed.
TEST(CoherenceDifferential, EagerAndLazyProduceIdenticalResults)
{
    for (const char *policy : {"eager", "lazy"}) {
        fuzz::FuzzOptions opt;
        opt.coherence = policy;
        for (std::uint64_t i = 0; i < 12; ++i) {
            fuzz::FuzzCaseId id;
            id.seed = fuzz::caseSeed(opt.master_seed, i);
            id.config = static_cast<unsigned>(i % opt.num_configs);
            const fuzz::FuzzCaseResult r =
                fuzz::runFuzzCase(id, opt, nullptr);
            EXPECT_TRUE(r.ok()) << policy << ": " << r.summary();
        }
    }
}

} // namespace
} // namespace pei
