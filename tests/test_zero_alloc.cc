/**
 * @file
 * Counting-allocator tests proving the event & continuation plumbing
 * is allocation-free in steady state.
 *
 * This executable replaces global operator new/delete with counting
 * wrappers and measures allocation deltas across event-boundary
 * windows:
 *
 *  - a bare EventQueue schedule/run storm must perform exactly zero
 *    heap allocations once the slab arena has grown to its working
 *    size;
 *  - a Host-only, L1-resident blocking-PEI segment through the full
 *    stack (core window -> TLB -> PMU -> directory -> PCU -> cache
 *    hierarchy -> coroutine resume) must also reach exact zero per
 *    steady-state window, because every per-operation record lives
 *    in a SlotPool and every callback is an inline Continuation;
 *  - a miss-heavy locality-aware segment (the fig06-small regime)
 *    is bounded loosely instead: DRAM vault request deques and MSHR
 *    map nodes still allocate per miss by design, but the rate must
 *    stay far below one allocation per event.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hh"
#include "runtime/runtime.hh"
#include "sim/event_queue.hh"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) -
                                      1) &
                                         ~(static_cast<std::size_t>(align) -
                                           1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace pei
{
namespace
{

TEST(ZeroAlloc, EventQueueSteadyStateAllocatesNothing)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    auto burst = [&] {
        for (int i = 0; i < 256; ++i)
            eq.schedule(static_cast<Ticks>(i % 7), [&sink] { ++sink; });
        eq.run();
    };
    // Warm up: grow the slab arena and the heap vector to their
    // steady working size.
    for (int w = 0; w < 64; ++w)
        burst();

    const std::uint64_t before = allocCount();
    for (int w = 0; w < 4096; ++w) // ~1M events
        burst();
    EXPECT_EQ(allocCount() - before, 0u)
        << "bare schedule/run cycles must reuse arena slots";
    EXPECT_EQ(sink, (64u + 4096u) * 256u);
}

/**
 * Free-function kernel (not a capturing lambda coroutine, whose
 * frame would dangle once the lambda object dies): a long stream of
 * blocking Inc64 PEIs over an array small enough to stay L1-resident,
 * so the whole pipeline runs at full depth with no cache misses.
 */
Task
l1ResidentStorm(Ctx &ctx, Addr array, std::uint64_t n, int ops)
{
    Rng rng(42);
    for (int i = 0; i < ops; ++i) {
        co_await ctx.pei(PeiOpcode::Inc64, array + 8 * rng.below(n),
                         nullptr, 0);
    }
    co_await ctx.pfence();
    co_await ctx.drain();
}

TEST(ZeroAlloc, HostOnlyL1ResidentPeiPipelineIsAllocationFree)
{
    SystemConfig cfg = SystemConfig::scaled(ExecMode::HostOnly);
    cfg.cores = 1;
    cfg.phys_bytes = 64ULL << 20;
    cfg.hmc.num_cubes = 1;
    cfg.hmc.vaults_per_cube = 4;
    System sys(cfg);
    Runtime rt(sys);

    // 2 KB working set inside a 16 KB L1: after the first touch of
    // each block, every access hits L1.
    constexpr std::uint64_t n = 256;
    const Addr array = rt.allocArray<std::uint64_t>(n);

    std::vector<std::uint64_t> marks;
    marks.reserve(4096);
    constexpr std::uint64_t window = 8192;
    sys.eventQueue().setBoundaryProbe(
        [&marks] { marks.push_back(allocCount()); }, window);

    rt.spawn(0, [&](Ctx &ctx) {
        return l1ResidentStorm(ctx, array, n, 60000);
    });
    rt.run();

    ASSERT_GE(marks.size(), 24u) << "segment too short to have windows";
    // Skip the warm-up half (cold caches, pools and per-entry vectors
    // still growing) and the trailing windows (pfence/drain/teardown
    // edge); every steady-state window must be allocation-free.
    const std::size_t lo = marks.size() / 2;
    const std::size_t hi = marks.size() - 2;
    for (std::size_t i = lo; i < hi; ++i) {
        EXPECT_EQ(marks[i + 1] - marks[i], 0u)
            << "window " << i << " of " << marks.size()
            << " allocated on the steady-state PEI path";
    }
}

/** Miss-heavy kernel: async PEIs striding far beyond every cache. */
Task
missHeavyStorm(Ctx &ctx, Addr array, std::uint64_t n, unsigned tid,
               int ops)
{
    Rng rng(1000 + tid);
    for (int i = 0; i < ops; ++i)
        co_await ctx.inc64(array + 8 * rng.below(n));
    co_await ctx.pfence();
    co_await ctx.drain();
}

TEST(ZeroAlloc, MissHeavySegmentStaysFarBelowOneAllocPerEvent)
{
    // The fig06-small regime: a locality-aware machine with a working
    // set far past L3, so PEIs split between host execution (cache
    // misses -> MSHR map nodes) and memory-side offload (vault
    // request deques).  Those residual containers allocate per miss
    // by design; the refactor's claim here is a rate bound, not
    // exact zero.
    SystemConfig cfg = SystemConfig::scaled(ExecMode::LocalityAware);
    cfg.cores = 4;
    cfg.phys_bytes = 256ULL << 20;
    cfg.cache.l3_bytes = 256 << 10;
    cfg.hmc.vaults_per_cube = 4;
    System sys(cfg);
    Runtime rt(sys);

    constexpr std::uint64_t n = 1 << 18; // 2 MB >> 256 KB L3
    const Addr array = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(cfg.cores,
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        return missHeavyStorm(ctx, array, n, tid, 20000);
                    });

    const std::uint64_t allocs_before = allocCount();
    const std::uint64_t events_before = sys.eventQueue().executedCount();
    rt.run();
    const double allocs =
        static_cast<double>(allocCount() - allocs_before);
    const double events = static_cast<double>(
        sys.eventQueue().executedCount() - events_before);
    ASSERT_GT(events, 100000.0);
    EXPECT_LT(allocs / events, 0.2)
        << allocs << " allocations over " << events << " events";
}

} // namespace
} // namespace pei
