/**
 * @file
 * Unit tests for the coroutine Barrier used by the phase-parallel
 * workload kernels (level-synchronous BFS, PageRank iterations...).
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/sync.hh"
#include "sim/task.hh"

namespace pei
{
namespace
{

Task
phases(EventQueue &eq, Barrier &barrier, unsigned tid, Ticks delay,
       std::vector<unsigned> &log, unsigned rounds)
{
    for (unsigned r = 0; r < rounds; ++r) {
        // Stagger arrivals so ordering bugs would surface.
        co_await DelayAwaiter(eq, delay * (tid + 1));
        log.push_back(r);
        co_await barrier.arrive();
    }
}

TEST(Barrier, AllPartiesReachEachRoundTogether)
{
    EventQueue eq;
    constexpr unsigned parties = 4, rounds = 5;
    Barrier barrier(eq, parties);
    std::vector<unsigned> log;
    std::vector<Task> tasks;
    for (unsigned t = 0; t < parties; ++t)
        tasks.push_back(phases(eq, barrier, t, 3 + t, log, rounds));
    eq.run();
    for (const auto &task : tasks)
        EXPECT_TRUE(task.done());
    // The log must be rounds of `parties` identical entries: no
    // thread enters round r+1 before all finished round r.
    ASSERT_EQ(log.size(), std::size_t{parties} * rounds);
    for (unsigned r = 0; r < rounds; ++r)
        for (unsigned p = 0; p < parties; ++p)
            EXPECT_EQ(log[r * parties + p], r);
}

TEST(Barrier, SinglePartyNeverBlocks)
{
    EventQueue eq;
    Barrier barrier(eq, 1);
    bool done = false;
    auto coro = [](EventQueue &, Barrier &b, bool &flag) -> Task {
        for (int i = 0; i < 10; ++i)
            co_await b.arrive();
        flag = true;
    };
    Task t = coro(eq, barrier, done);
    eq.run();
    EXPECT_TRUE(done);
}

TEST(Barrier, LastArriverDoesNotSuspend)
{
    EventQueue eq;
    Barrier barrier(eq, 2);
    std::vector<int> order;
    auto first = [](Barrier &b, std::vector<int> &log) -> Task {
        co_await b.arrive();
        log.push_back(1);
    };
    auto second = [](Barrier &b, std::vector<int> &log) -> Task {
        co_await b.arrive(); // completes the barrier: runs through
        log.push_back(2);
    };
    Task t1 = first(barrier, order);
    EXPECT_TRUE(order.empty()); // first party is parked
    Task t2 = second(barrier, order);
    // The completing party continued synchronously...
    ASSERT_FALSE(order.empty());
    EXPECT_EQ(order[0], 2);
    eq.run();
    // ...and the parked one resumed from the event queue.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 1);
}

TEST(Barrier, ReusableAcrossManyGenerations)
{
    EventQueue eq;
    constexpr unsigned parties = 8;
    Barrier barrier(eq, parties);
    unsigned total = 0;
    std::vector<Task> tasks;
    for (unsigned t = 0; t < parties; ++t) {
        auto coro = [](EventQueue &eq, Barrier &b, unsigned tid,
                       unsigned &count) -> Task {
            for (int r = 0; r < 100; ++r) {
                co_await DelayAwaiter(eq, (tid * 7 + r) % 5);
                co_await b.arrive();
                ++count;
            }
        };
        tasks.push_back(coro(eq, barrier, t, total));
    }
    eq.run();
    EXPECT_EQ(total, parties * 100);
}

} // namespace
} // namespace pei
