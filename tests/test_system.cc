/**
 * @file
 * System-level property tests: determinism, configuration sweeps
 * (geometry / PCU / directory), PMU mode behaviour, balanced
 * dispatch, and regression cases for subtle orderings (pfence vs.
 * TLB-deferred PEIs).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fixture.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

using fixture::smallConfig;

/** Runs a fixed random PEI/load/store mix; returns final tick. */
Tick
runMix(const SystemConfig &cfg, std::uint64_t seed,
       std::uint64_t *sum_out = nullptr)
{
    System sys(cfg);
    Runtime rt(sys);
    const std::uint64_t n = 1 << 12;
    const Addr arr = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&, seed](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(seed * 97 + tid);
                        for (int i = 0; i < 2000; ++i) {
                            const Addr a = arr + 8 * rng.below(n);
                            if (rng.chance(0.5))
                                co_await ctx.inc64(a);
                            else if (rng.chance(0.5))
                                co_await ctx.loadAsync(a);
                            else
                                co_await ctx.storeAsync(a);
                        }
                        co_await ctx.pfence();
                        co_await ctx.drain();
                    });
    const Tick t = rt.run();
    // stats-v2 audit: every run must end with consistent accounting
    // (directory balance, PEI conservation, cache hit/miss totals).
    for (const auto &v : sys.stats().audit())
        ADD_FAILURE() << "stats audit: " << v;
    if (sum_out) {
        *sum_out = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            *sum_out += sys.memory().read<std::uint64_t>(arr + 8 * i);
    }
    return t;
}

TEST(SystemProperties, PeiLatencyHistogramsAndRunRecord)
{
    System sys(smallConfig(ExecMode::LocalityAware));
    Runtime rt(sys);
    const std::uint64_t n = 1 << 10;
    const Addr arr = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(tid + 1);
                        for (int i = 0; i < 500; ++i)
                            co_await ctx.inc64(arr + 8 * rng.below(n));
                        co_await ctx.drain();
                    });
    rt.run();

    StatRegistry &st = sys.stats();
    ASSERT_TRUE(st.hasHistogram("pmu.pei_latency_ticks"));
    ASSERT_TRUE(st.hasHistogram("pmu.pei_latency_host_ticks"));
    ASSERT_TRUE(st.hasHistogram("pmu.pei_latency_mem_ticks"));
    ASSERT_TRUE(st.hasHistogram("pmu.dir_wait_ticks"));

    // Every issued PEI contributes exactly one end-to-end sample,
    // split disjointly by execution location.
    const Histogram &all = st.histogram("pmu.pei_latency_ticks");
    EXPECT_EQ(all.count(), st.get("pmu.peis_issued"));
    EXPECT_EQ(st.histogram("pmu.pei_latency_host_ticks").count() +
                  st.histogram("pmu.pei_latency_mem_ticks").count(),
              all.count());
    EXPECT_GT(all.count(), 0u);
    EXPECT_GT(all.mean(), 0.0);
    EXPECT_TRUE(st.audit().empty());

    // The exported run record carries the full stats-v2 shape.
    const std::string rec = runRecordJson(sys, 0.5, "test_system/mix");
    for (const char *field :
         {"\"label\"", "\"config\"", "\"sim_ticks\"", "\"events\"",
          "\"wall_seconds\"", "\"events_per_sec\"", "\"counters\"",
          "\"histograms\"", "\"pmu.pei_latency_ticks\"",
          "\"pmu.pei_latency_host_ticks\"",
          "\"pmu.pei_latency_mem_ticks\""})
        EXPECT_NE(rec.find(field), std::string::npos) << field;
}

TEST(SystemProperties, FullyDeterministic)
{
    for (ExecMode mode : {ExecMode::HostOnly, ExecMode::PimOnly,
                          ExecMode::LocalityAware}) {
        const Tick a = runMix(smallConfig(mode), 5);
        const Tick b = runMix(smallConfig(mode), 5);
        EXPECT_EQ(a, b) << execModeName(mode);
    }
}

TEST(SystemProperties, DifferentSeedsStillSumExactly)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        std::uint64_t sum = 0;
        runMix(smallConfig(ExecMode::LocalityAware), seed, &sum);
        // Roughly half the 4 x 2000 ops are increments — and the
        // directory makes every one of them exact.
        EXPECT_GT(sum, 2000u);
        EXPECT_LT(sum, 8000u);
    }
}

class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(GeometrySweep, AtomicityHoldsAcrossMemoryGeometries)
{
    const auto [cubes, vaults] = GetParam();
    SystemConfig cfg = smallConfig(ExecMode::LocalityAware);
    cfg.hmc.num_cubes = cubes;
    cfg.hmc.vaults_per_cube = vaults;

    System sys(cfg);
    Runtime rt(sys);
    const Addr hot = rt.allocArray<std::uint64_t>(4);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        for (int i = 0; i < 300; ++i)
                            co_await ctx.inc64(hot + 8 * (tid % 4));
                        co_await ctx.drain();
                    });
    rt.run();
    std::uint64_t total = 0;
    for (int i = 0; i < 4; ++i)
        total += sys.memory().read<std::uint64_t>(hot + 8 * i);
    EXPECT_EQ(total, 300u * sys.numCores());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeometrySweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u),
                                            ::testing::Values(1u, 2u,
                                                              8u)));

class PcuSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PcuSweep, OperandBufferSizePreservesCorrectness)
{
    SystemConfig cfg = smallConfig(ExecMode::PimOnly);
    cfg.pim.pcu.operand_buffer_entries = GetParam();
    std::uint64_t sum = 0;
    runMix(cfg, 7, &sum);
    SystemConfig cfg2 = smallConfig(ExecMode::PimOnly);
    cfg2.pim.pcu.operand_buffer_entries = 4;
    std::uint64_t ref = 0;
    runMix(cfg2, 7, &ref);
    EXPECT_EQ(sum, ref); // functional results independent of buffering
}

TEST_P(PcuSweep, MoreEntriesNeverSlowDown)
{
    SystemConfig small_buf = smallConfig(ExecMode::PimOnly);
    small_buf.pim.pcu.operand_buffer_entries = 1;
    SystemConfig big_buf = smallConfig(ExecMode::PimOnly);
    big_buf.pim.pcu.operand_buffer_entries = GetParam();
    if (GetParam() > 1) {
        EXPECT_LE(runMix(big_buf, 9), runMix(small_buf, 9));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PcuSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(SystemProperties, DirectorySizeDoesNotAffectResults)
{
    for (unsigned entries : {64u, 2048u, 0u /* ideal */}) {
        SystemConfig cfg = smallConfig(ExecMode::LocalityAware);
        cfg.pim.directory_entries = entries;
        std::uint64_t sum = 0;
        runMix(cfg, 11, &sum);
        std::uint64_t ref = 0;
        runMix(smallConfig(ExecMode::LocalityAware), 11, &ref);
        EXPECT_EQ(sum, ref) << entries;
    }
}

TEST(SystemProperties, ModesDifferInPlacementNotResults)
{
    std::uint64_t host_sum = 0, pim_sum = 0, la_sum = 0;
    runMix(smallConfig(ExecMode::HostOnly), 13, &host_sum);
    runMix(smallConfig(ExecMode::PimOnly), 13, &pim_sum);
    runMix(smallConfig(ExecMode::LocalityAware), 13, &la_sum);
    EXPECT_EQ(host_sum, pim_sum);
    EXPECT_EQ(host_sum, la_sum);
}

TEST(SystemProperties, HostOnlyNeverOffloadsPimOnlyAlwaysDoes)
{
    {
        System sys(smallConfig(ExecMode::HostOnly));
        Runtime rt(sys);
        const Addr a = rt.allocArray<std::uint64_t>(1024);
        rt.spawn(0, [&](Ctx &ctx) -> Task {
            for (int i = 0; i < 512; ++i)
                co_await ctx.inc64(a + 8 * (i * 2 % 1024));
            co_await ctx.drain();
        });
        rt.run();
        EXPECT_EQ(sys.pmu().peisMem(), 0u);
        EXPECT_EQ(sys.pmu().peisHost(), 512u);
    }
    {
        System sys(smallConfig(ExecMode::PimOnly));
        Runtime rt(sys);
        const Addr a = rt.allocArray<std::uint64_t>(1024);
        rt.spawn(0, [&](Ctx &ctx) -> Task {
            for (int i = 0; i < 512; ++i)
                co_await ctx.inc64(a + 8 * (i * 2 % 1024));
            co_await ctx.drain();
        });
        rt.run();
        EXPECT_EQ(sys.pmu().peisHost(), 0u);
        EXPECT_EQ(sys.pmu().peisMem(), 512u);
    }
}

TEST(SystemProperties, LocalityAwareSplitsByWorkingSet)
{
    // Tiny working set -> host; huge working set -> memory.
    auto pim_fraction = [](std::uint64_t words) {
        SystemConfig cfg = smallConfig(ExecMode::LocalityAware);
        System sys(cfg);
        Runtime rt(sys);
        const Addr a = rt.allocArray<std::uint64_t>(words);
        rt.spawnThreads(sys.numCores(),
                        [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                            Rng rng(tid + 17);
                            for (int i = 0; i < 4000; ++i)
                                co_await ctx.inc64(a +
                                                   8 * rng.below(words));
                            co_await ctx.drain();
                        });
        rt.run();
        const double total = static_cast<double>(sys.pmu().peisHost() +
                                                 sys.pmu().peisMem());
        return static_cast<double>(sys.pmu().peisMem()) / total;
    };
    EXPECT_LT(pim_fraction(1 << 10), 0.15);  // 8 KB « 256 KB L3
    EXPECT_GT(pim_fraction(1 << 18), 0.60);  // 2 MB » 256 KB L3
}

TEST(SystemProperties, PfenceCoversTlbDeferredWriters)
{
    // Regression: a PEI whose issue is delayed by a TLB miss must
    // still be covered by a pfence issued right after it.
    SystemConfig cfg = smallConfig(ExecMode::PimOnly);
    cfg.core.tlb_entries = 1; // thrash the TLB
    System sys(cfg);
    Runtime rt(sys);
    // Counters spread across many pages.
    const Addr a = rt.allocArray<std::uint64_t>(1 << 16);
    bool checked = false;
    rt.spawn(0, [&](Ctx &ctx) -> Task {
        for (int i = 0; i < 64; ++i)
            co_await ctx.inc64(a + 4096 * i); // one per page
        co_await ctx.pfence();
        std::uint64_t sum = 0;
        for (int i = 0; i < 64; ++i)
            sum += ctx.fread<std::uint64_t>(a + 4096 * i);
        EXPECT_EQ(sum, 64u);
        checked = true;
        co_await ctx.drain();
    });
    rt.run();
    EXPECT_TRUE(checked);
}

TEST(SystemProperties, BalancedDispatchMovesTrafficToIdleLink)
{
    // A read-dominated PEI stream (EuclidDist: 72 B requests, 20 B
    // responses when offloaded; 80 B responses host-side).  With
    // balanced dispatch the request/response byte split must end up
    // strictly more even than without.
    auto imbalance = [](bool balanced) {
        SystemConfig cfg = smallConfig(ExecMode::LocalityAware);
        cfg.pim.balanced_dispatch = balanced;
        System sys(cfg);
        Runtime rt(sys);
        const std::uint64_t floats = 1 << 18; // 1 MB of points
        const Addr a = rt.allocArray<float>(floats);
        rt.spawnThreads(
            sys.numCores(),
            [&](Ctx &ctx, unsigned tid, unsigned n) -> Task {
                const std::uint64_t blocks = floats / 16;
                float center[16] = {};
                for (std::uint64_t b = tid; b < blocks; b += n) {
                    co_await ctx.peiAsync(PeiOpcode::EuclidDist,
                                          a + 64 * b, center,
                                          sizeof(center));
                }
                co_await ctx.drain();
            });
        rt.run();
        const double req =
            static_cast<double>(sys.mem().requestBytes());
        const double res =
            static_cast<double>(sys.mem().responseBytes());
        return std::max(req, res) / std::max(1.0, std::min(req, res));
    };
    EXPECT_LT(imbalance(true), imbalance(false));
}

TEST(SystemProperties, WindowLimitsInFlightOps)
{
    SystemConfig cfg = smallConfig(ExecMode::HostOnly);
    cfg.core.window = 2;
    System sys(cfg);
    Runtime rt(sys);
    const Addr a = rt.allocArray<std::uint64_t>(1 << 12);
    rt.spawn(0, [&](Ctx &ctx) -> Task {
        for (int i = 0; i < 256; ++i) {
            co_await ctx.loadAsync(a + 64 * (i % (1 << 6)));
            EXPECT_LE(ctx.core().inFlight(), 2u);
        }
        co_await ctx.drain();
        EXPECT_EQ(ctx.core().inFlight(), 0u);
    });
    rt.run();
    EXPECT_GT(sys.stats().get("core0.window_stalls"), 0u);
}

} // namespace
} // namespace pei
