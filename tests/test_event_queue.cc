/**
 * @file
 * Unit tests for the discrete-event engine: ordering, determinism,
 * and coroutine plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace pei
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(1, [&] {
            eq.schedule(1, [&] { ++fired; });
            ++fired;
        });
        ++fired;
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = max_tick;
    eq.schedule(7, [&] { eq.schedule(0, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue eq;
    for (int i = 0; i < 42; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executedCount(), 42u);
}

Task
simpleCoro(EventQueue &eq, int &stage)
{
    stage = 1;
    co_await DelayAwaiter(eq, 10);
    stage = 2;
    co_await DelayAwaiter(eq, 10);
    stage = 3;
}

TEST(Task, RunsEagerlyAndSuspends)
{
    EventQueue eq;
    int stage = 0;
    Task t = simpleCoro(eq, stage);
    EXPECT_EQ(stage, 1); // ran until the first co_await
    EXPECT_FALSE(t.done());
    eq.run();
    EXPECT_EQ(stage, 3);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(eq.now(), 20u);
}

Task
inner(EventQueue &eq, std::vector<int> &log)
{
    log.push_back(1);
    co_await DelayAwaiter(eq, 5);
    log.push_back(2);
}

Task
outer(EventQueue &eq, std::vector<int> &log)
{
    Task t = inner(eq, log);
    co_await t;
    log.push_back(3);
}

TEST(Task, AwaitsSubTask)
{
    EventQueue eq;
    std::vector<int> log;
    Task t = outer(eq, log);
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ZeroDelayAwaitIsReady)
{
    EventQueue eq;
    int stage = 0;
    auto coro = [](EventQueue &eq, int &s) -> Task {
        co_await DelayAwaiter(eq, 0); // ready immediately, no suspend
        s = 1;
    };
    Task t = coro(eq, stage);
    EXPECT_EQ(stage, 1);
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace pei
