/**
 * @file
 * Unit tests for the discrete-event engine: ordering, determinism,
 * and coroutine plumbing — including op-for-op equivalence of the
 * slab-arena queue against a naive std::function reference queue,
 * stop-request cancellation latency, and the inline-continuation /
 * slot-pool building blocks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional> // stdfunction-allowed: naive reference queue under test
#include <string>
#include <vector>

#include "sim/continuation.hh"
#include "sim/event_queue.hh"
#include "sim/slot_pool.hh"
#include "sim/task.hh"

namespace pei
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(1, [&] {
            eq.schedule(1, [&] { ++fired; });
            ++fired;
        });
        ++fired;
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = max_tick;
    eq.schedule(7, [&] { eq.schedule(0, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue eq;
    for (int i = 0; i < 42; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executedCount(), 42u);
}

TEST(EventQueue, StopRequestHonoredWithinCadence)
{
    // Cancellation latency is bounded: run() polls the stop flag
    // every stop_check_interval events, so at most one full interval
    // executes after the request lands.
    EventQueue eq;
    std::uint64_t fired = 0;
    const std::uint64_t total = 8 * EventQueue::stop_check_interval;
    for (std::uint64_t i = 0; i < total; ++i) {
        eq.schedule(1, [&eq, &fired] {
            ++fired;
            if (fired == 123)
                eq.requestStop();
        });
    }
    eq.run();
    EXPECT_GE(fired, 123u);
    EXPECT_LE(fired, 123 + EventQueue::stop_check_interval);
    eq.clearStopRequest();
    eq.run();
    EXPECT_EQ(fired, total);
}

TEST(EventQueue, RunOutcomeReportsBreakReason)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    EventQueue::RunOutcome out = eq.run();
    EXPECT_EQ(out.executed, 1u);
    EXPECT_EQ(out.why, EventQueue::RunBreak::Drained);
    EXPECT_FALSE(out.stopped());

    eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    out = eq.run(15);
    EXPECT_EQ(out.executed, 1u);
    EXPECT_EQ(out.why, EventQueue::RunBreak::Limit);

    // A stop request used to look like a drain to raw-loop callers;
    // the outcome makes the cancellation visible and propagatable.
    eq.requestStop();
    out = eq.run();
    EXPECT_EQ(out.executed, 0u);
    EXPECT_EQ(out.why, EventQueue::RunBreak::Stopped);
    EXPECT_TRUE(out.stopped());
    EXPECT_THROW(out.throwIfStopped(), SimulationStopped);
    EXPECT_FALSE(eq.empty());

    eq.clearStopRequest();
    out = eq.run();
    EXPECT_EQ(out.executed, 1u);
    EXPECT_EQ(out.why, EventQueue::RunBreak::Drained);
    out.throwIfStopped(); // no-op on a clean drain
}

/**
 * The pre-refactor event queue, reimplemented naively: a binary heap
 * of fat nodes each holding a std::function.  Used as the ordering
 * oracle for the slab-arena queue — both are driven op-for-op below
 * and must execute identical sequences.
 */
class NaiveReferenceQueue
{
  public:
    Tick now() const { return cur_tick; }

    void
    schedule(Ticks delay, std::function<void()> fn)
    {
        events.push_back(Ev{cur_tick + delay, next_seq++, std::move(fn)});
        std::push_heap(events.begin(), events.end(), Later{});
    }

    bool
    runOne()
    {
        if (events.empty())
            return false;
        std::pop_heap(events.begin(), events.end(), Later{});
        Ev ev = std::move(events.back());
        events.pop_back();
        cur_tick = ev.when;
        ev.fn();
        return true;
    }

    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (runOne())
            ++n;
        return n;
    }

    bool empty() const { return events.empty(); }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Ev> events;
    Tick cur_tick = 0;
    std::uint64_t next_seq = 0;
};

/**
 * Deterministic event cascade: each event logs its id and spawns
 * children by fixed arithmetic rules, mixing same-tick (delay 0)
 * bursts with short delays so FIFO tie-breaking, nested scheduling,
 * and slab-slot reuse all get exercised.
 */
template <typename Queue>
void
spawnCascade(Queue &q, std::vector<std::uint64_t> &log, std::uint64_t id,
             int depth)
{
    q.schedule(id % 5, [&q, &log, id, depth] {
        log.push_back(id);
        if (depth < 3 && id % 3 == 0)
            spawnCascade(q, log, id * 7 + 1, depth + 1);
        if (depth < 3 && id % 4 == 1)
            spawnCascade(q, log, id * 11 + 2, depth + 1);
    });
}

TEST(EventQueue, MatchesNaiveReferenceQueueOpForOp)
{
    EventQueue arena_q;
    NaiveReferenceQueue naive_q;
    std::vector<std::uint64_t> arena_log, naive_log;

    // Several rounds of wide same-tick bursts with partial drains in
    // between: the arena queue cycles slots through its freelist and
    // grows past one chunk while the naive queue heap-allocates every
    // closure.  Their execution orders must stay identical.
    std::uint64_t id = 1;
    for (int round = 0; round < 6; ++round) {
        const int burst = 300 + 100 * round; // up to 800 > one chunk
        for (int i = 0; i < burst; ++i, ++id) {
            spawnCascade(arena_q, arena_log, id, 0);
            spawnCascade(naive_q, naive_log, id, 0);
        }
        // Partial drain so later rounds reuse freed slots mid-heap.
        for (int i = 0; i < burst / 2; ++i) {
            arena_q.runOne();
            naive_q.runOne();
        }
        ASSERT_EQ(arena_log, naive_log) << "diverged in round " << round;
    }
    while (arena_q.runOne()) {}
    naive_q.run();

    EXPECT_EQ(arena_log, naive_log);
    EXPECT_EQ(arena_q.now(), naive_q.now());
#ifndef PEISIM_REFERENCE_QUEUE
    // The bursts above outgrow a single 256-slot chunk, so slab
    // growth (not just first-chunk reuse) is covered.
    EXPECT_GT(arena_q.arenaCapacity(), 256u);
#endif
}

TEST(SlotPool, HandlesAreStableAndFreelistRecycles)
{
    SlotPool<std::string> pool;
    std::vector<std::uint32_t> handles;
    for (int i = 0; i < 600; ++i) // forces multi-chunk growth
        handles.push_back(pool.emplace("v" + std::to_string(i)));
    EXPECT_EQ(pool.liveCount(), 600u);
    EXPECT_GE(pool.capacity(), 600u);

    std::string &anchor = pool[handles[5]];
    for (int i = 100; i < 200; ++i)
        pool.erase(handles[i]);
    // Freed slots are recycled before any new chunk is allocated.
    const std::uint32_t before = pool.capacity();
    for (int i = 0; i < 100; ++i)
        pool.emplace("recycled");
    EXPECT_EQ(pool.capacity(), before);
    // Chunked storage never relocates: the reference from before the
    // churn still addresses the same element.
    EXPECT_EQ(&anchor, &pool[handles[5]]);
    EXPECT_EQ(anchor, "v5");
}

TEST(SlotPool, DestroysLiveSlotsAtTeardown)
{
    // Cancelled simulations tear pools down with transactions still
    // parked; their elements must still be destroyed exactly once.
    int destroyed = 0;
    struct Probe
    {
        int *counter;
        ~Probe() { ++*counter; }
    };
    {
        SlotPool<Probe> pool;
        pool.emplace(Probe{&destroyed});
        destroyed = 0; // ignore temporaries from emplace-by-move
        const auto h = pool.emplace(Probe{&destroyed});
        destroyed = 0;
        pool.erase(h);
        EXPECT_EQ(destroyed, 1);
        destroyed = 0;
    }
    EXPECT_EQ(destroyed, 1); // the still-live first slot
}

TEST(Continuation, MoveTransfersOwnership)
{
    int fired = 0;
    Continuation a([&fired] { ++fired; });
    EXPECT_TRUE(static_cast<bool>(a));
    Continuation b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    EXPECT_EQ(fired, 1);
}

TEST(Continuation, FitsDocumentedBudgetAndForwardsArgs)
{
    // 48-byte budget: six pointer-sized captures fit exactly.
    void *p[6] = {};
    Continuation full([p] { (void)p; });
    full();

    InlineFunction<int(int), 16> addk(
        [base = 40](int x) { return base + x; });
    EXPECT_EQ(addk(2), 42);
}

Task
simpleCoro(EventQueue &eq, int &stage)
{
    stage = 1;
    co_await DelayAwaiter(eq, 10);
    stage = 2;
    co_await DelayAwaiter(eq, 10);
    stage = 3;
}

TEST(Task, RunsEagerlyAndSuspends)
{
    EventQueue eq;
    int stage = 0;
    Task t = simpleCoro(eq, stage);
    EXPECT_EQ(stage, 1); // ran until the first co_await
    EXPECT_FALSE(t.done());
    eq.run();
    EXPECT_EQ(stage, 3);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(eq.now(), 20u);
}

Task
inner(EventQueue &eq, std::vector<int> &log)
{
    log.push_back(1);
    co_await DelayAwaiter(eq, 5);
    log.push_back(2);
}

Task
outer(EventQueue &eq, std::vector<int> &log)
{
    Task t = inner(eq, log);
    co_await t;
    log.push_back(3);
}

TEST(Task, AwaitsSubTask)
{
    EventQueue eq;
    std::vector<int> log;
    Task t = outer(eq, log);
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ZeroDelayAwaitIsReady)
{
    EventQueue eq;
    int stage = 0;
    auto coro = [](EventQueue &eq, int &s) -> Task {
        co_await DelayAwaiter(eq, 0); // ready immediately, no suspend
        s = 1;
    };
    Task t = coro(eq, stage);
    EXPECT_EQ(stage, 1);
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(eq.empty());
}

#ifndef NDEBUG
TEST(TaskDeathTest, ResumingDestroyedFrameIsCaught)
{
    // Classic discrete-event lifetime bug: an event holding a
    // coroutine resumption outlives the coroutine.  Debug builds
    // route every scheduled resumption through resumeLive(), which
    // panics instead of resuming freed memory.
    EventQueue eq;
    {
        auto coro = [](EventQueue &q) -> Task {
            co_await DelayAwaiter(q, 5);
        };
        Task t = coro(eq);
        EXPECT_FALSE(t.done());
    } // frame destroyed; its resumption is still scheduled
    EXPECT_DEATH(eq.run(), "destroyed");
}
#endif

} // namespace
} // namespace pei
