/**
 * @file
 * Shared per-test System configurations.
 *
 * Every test binary (unit, integration, fuzz) that constructs a
 * System should start from one of these instead of growing its own
 * copy, so "the machine the tests run on" is defined exactly once:
 *
 *  - tinyConfig():     smallest full stack (4 KB L1 / 16 KB L2);
 *                      cache-pressure and smoke tests.
 *  - smallConfig():    4 cores, 256 KB L3; system property tests.
 *  - workloadConfig(): 8 cores, 512 KB L3 (small enough to exercise
 *                      both locality regimes); §5 workload runs.
 */

#ifndef PEISIM_TESTS_FIXTURE_HH
#define PEISIM_TESTS_FIXTURE_HH

#include <string>

#include "runtime/system.hh"

namespace pei
{
namespace fixture
{

/** Smallest full-stack machine: tiny private caches force misses. */
inline SystemConfig
tinyConfig(ExecMode mode = ExecMode::LocalityAware)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    cfg.cores = 4;
    cfg.phys_bytes = 64ULL << 20;
    cfg.cache.l1_bytes = 4 << 10;
    cfg.cache.l2_bytes = 16 << 10;
    cfg.cache.l3_bytes = 256 << 10;
    cfg.hmc.num_cubes = 1;
    cfg.hmc.vaults_per_cube = 4;
    return cfg;
}

/** 4-core machine with default private caches; property tests. */
inline SystemConfig
smallConfig(ExecMode mode = ExecMode::LocalityAware)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    cfg.cores = 4;
    cfg.phys_bytes = 64ULL << 20;
    cfg.cache.l3_bytes = 256 << 10;
    cfg.hmc.vaults_per_cube = 4;
    return cfg;
}

/** 8-core machine for §5 workload validation runs. */
inline SystemConfig
workloadConfig(ExecMode mode = ExecMode::LocalityAware)
{
    SystemConfig cfg = SystemConfig::scaled(mode);
    cfg.cores = 8;
    cfg.phys_bytes = 256ULL << 20;
    cfg.cache.l3_bytes = 512 << 10; // small L3: exercises both regimes
    cfg.hmc.vaults_per_cube = 8;
    return cfg;
}

/** Identifier-safe mode name for INSTANTIATE_TEST_SUITE_P naming. */
inline std::string
execModeTestName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::HostOnly:
        return "HostOnly";
      case ExecMode::PimOnly:
        return "PimOnly";
      case ExecMode::IdealHost:
        return "IdealHost";
      case ExecMode::LocalityAware:
        return "LocalityAware";
    }
    return "Unknown";
}

} // namespace fixture
} // namespace pei

#endif // PEISIM_TESTS_FIXTURE_HH
